// Shared fixtures/helpers for the test suite.
#pragma once

#include "cts/embedding.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "workload/generator.hpp"

namespace sndr::test {

/// A small deterministic design for fast tests.
inline netlist::Design small_design(int sinks = 64, std::uint64_t seed = 3) {
  workload::DesignSpec spec;
  spec.name = "test";
  spec.num_sinks = sinks;
  spec.seed = seed;
  return workload::make_design(spec);
}

/// Synthesized tree + nets for a small design.
struct Flow {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
};

inline Flow small_flow(int sinks = 64, std::uint64_t seed = 3) {
  Flow f;
  f.design = small_design(sinks, seed);
  f.tech = tech::Technology::make_default_45nm();
  f.cts = cts::synthesize(f.design, f.tech);
  f.nets = netlist::build_nets(f.cts.tree);
  return f;
}

}  // namespace sndr::test
