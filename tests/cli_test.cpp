// End-to-end smoke test of the sndr CLI binary: real process invocations
// pinned to the documented exit-code contract (0 ok, 2 usage, 3 missing
// file, 4 parse error) and to the artifacts a run leaves behind (manifest
// schema sndr.run_manifest/2 with a stages array, CSV under the results
// dir). The binary path comes from the SNDR_CLI_PATH compile definition
// (tests/CMakeLists.txt).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "flow/config.hpp"

namespace {

namespace fs = std::filesystem;

/// A fresh scratch directory per test *process*. ctest runs each
/// discovered test in its own process, concurrently under -j — a shared
/// path would let one process's cleanup race another's fixtures.
const fs::path& scratch_dir() {
  static const fs::path dir = [] {
    fs::path d = fs::temp_directory_path() /
                 ("sndr_cli_test_" + std::to_string(::getpid()));
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

std::string path_in_scratch(const std::string& name) {
  return (scratch_dir() / name).string();
}

/// Runs `sndr <args>`, returns the exit code; captures stdout+stderr.
int run_cli(const std::string& args, std::string* output = nullptr) {
  const std::string log = path_in_scratch("last_run.log");
  const std::string cmd =
      std::string(SNDR_CLI_PATH) + " " + args + " > " + log + " 2>&1";
  const int raw = std::system(cmd.c_str());
  if (output != nullptr) {
    std::ifstream f(log);
    std::stringstream ss;
    ss << f.rdbuf();
    *output = ss.str();
  }
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Generates the shared test design once; returns its path.
const std::string& design_path() {
  static const std::string path = [] {
    const std::string p = path_in_scratch("design.txt");
    EXPECT_EQ(run_cli("generate --sinks 64 --seed 3 --out " + p), 0);
    return p;
  }();
  return path;
}

TEST(Cli, NoArgumentsPrintsUsage) {
  std::string out;
  EXPECT_EQ(run_cli("", &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownFlagIsAUsageError) {
  std::string out;
  EXPECT_EQ(run_cli("run --design " + design_path() + " --bogus 1", &out), 2);
  EXPECT_NE(out.find("--bogus"), std::string::npos);
}

TEST(Cli, MissingDesignFileExitsNotFound) {
  std::string out;
  EXPECT_EQ(run_cli("run --design " + path_in_scratch("absent.txt"), &out),
            3);
  EXPECT_NE(out.find("not_found"), std::string::npos);
}

TEST(Cli, MalformedDesignFileExitsParseError) {
  const std::string bad = path_in_scratch("bad_design.txt");
  std::ofstream(bad) << "garbage line\n";
  std::string out;
  EXPECT_EQ(run_cli("run --design " + bad, &out), 4);
  // The diagnostic carries a path:line prefix.
  EXPECT_NE(out.find("bad_design.txt:1:"), std::string::npos) << out;
}

TEST(Cli, MissingConfigFileExitsNotFound) {
  EXPECT_EQ(run_cli("run --design " + design_path() + " --config " +
                    path_in_scratch("absent.conf")),
            3);
}

TEST(Cli, RunWithConfigFileWritesArtifactsAndManifest) {
  const std::string results = path_in_scratch("results");
  const std::string conf = path_in_scratch("flow.conf");
  std::ofstream(conf) << "# e2e smoke config\n"
                      << "threads = 1\n"
                      << "training_samples = 60\n"
                      << "results_dir = " << results << "\n"
                      << "csv = run.csv\n"
                      << "metrics_out = manifest.json\n";
  std::string out;
  ASSERT_EQ(run_cli("run --design " + design_path() + " --config " + conf,
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("smart vs blanket"), std::string::npos);
  EXPECT_TRUE(fs::exists(results + "/run.csv"));

  // The manifest is schema /2 with a per-stage record of this run.
  const std::string manifest = read_file(results + "/manifest.json");
  EXPECT_NE(manifest.find("\"schema\": \"sndr.run_manifest/2\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"stages\": ["), std::string::npos);
  // Every pipeline stage appears — including "report", which writes the
  // manifest mid-stage and records itself provisionally.
  for (const char* stage :
       {"load", "cts", "route", "nets", "extract", "optimize", "report"}) {
    EXPECT_NE(manifest.find("{\"name\": \"" + std::string(stage) + "\""),
              std::string::npos)
        << stage;
  }
  EXPECT_NE(manifest.find("\"status\": \"skipped\""), std::string::npos)
      << "anneal/corners are off and must be recorded as skipped";
}

TEST(Cli, NoSmartSkipsOptimizer) {
  std::string out;
  EXPECT_EQ(run_cli("run --design " + design_path() +
                        " --no-smart --threads 1",
                    &out),
            0)
      << out;
  // The optimizer stage is off: only the baseline rows print, and the
  // smart-vs-blanket comparison line never appears.
  EXPECT_NE(out.find("all-default"), std::string::npos);
  EXPECT_NE(out.find("blanket-NDR"), std::string::npos);
  EXPECT_EQ(out.find("smart-NDR"), std::string::npos) << out;
  EXPECT_EQ(out.find("smart vs blanket"), std::string::npos) << out;
}

TEST(Cli, CliFlagsOverrideConfigFileValues) {
  const std::string results = path_in_scratch("results_override");
  const std::string conf = path_in_scratch("override.conf");
  std::ofstream(conf) << "threads = 1\n"
                      << "training_samples = 60\n"
                      << "results_dir = " << results << "\n"
                      << "csv = from_file.csv\n";
  ASSERT_EQ(run_cli("run --design " + design_path() + " --config " + conf +
                    " --csv from_cli.csv"),
            0);
  EXPECT_TRUE(fs::exists(results + "/from_cli.csv"));
  EXPECT_FALSE(fs::exists(results + "/from_file.csv"));
}

TEST(Cli, EvalUniformRule) {
  std::string out;
  EXPECT_EQ(run_cli("eval --design " + design_path() +
                        " --rule 2W2S --threads 1",
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("2W2S"), std::string::npos);
  EXPECT_EQ(run_cli("eval --design " + design_path() + " --rule NOPE"), 2);
}

TEST(Cli, HelpExitsZeroOnEverySpelling) {
  // Requested help is not an error: stdout + exit 0, unlike the bare
  // mis-invocation above (stderr + exit 2, same text).
  for (const std::string spelling :
       {"help", "--help", "-h", "run --help", "generate --help"}) {
    std::string out;
    EXPECT_EQ(run_cli(spelling, &out), 0) << spelling;
    EXPECT_NE(out.find("usage:"), std::string::npos) << spelling;
    EXPECT_NE(out.find("exit codes:"), std::string::npos) << spelling;
  }
}

TEST(Cli, HelpDocumentsEveryFlowConfigKey) {
  // The drift guard: every key FlowConfig::set() accepts must appear in
  // the help text (flag spelling --foo-bar and key spelling foo_bar are
  // the same up to hyphen/underscore, so compare normalized).
  std::string out;
  ASSERT_EQ(run_cli("help", &out), 0);
  std::replace(out.begin(), out.end(), '-', '_');
  for (const std::string& key : sndr::flow::FlowConfig::known_keys()) {
    EXPECT_NE(out.find(key), std::string::npos)
        << "help text does not mention config key '" << key << "'";
  }
}

TEST(Cli, VersionPrintsSchemasAndExitsZero) {
  for (const std::string spelling : {"version", "--version"}) {
    std::string out;
    EXPECT_EQ(run_cli(spelling, &out), 0) << spelling;
    // Git describe (never empty: "unknown" when git is unavailable) plus
    // both on-disk schema versions, pinned so a schema bump must touch
    // this test.
    EXPECT_EQ(out.rfind("sndr ", 0), 0u) << out;
    EXPECT_GT(out.size(), std::string("sndr \n").size()) << out;
    EXPECT_NE(out.find("sndr.run_manifest/2"), std::string::npos) << out;
    EXPECT_NE(out.find("sndr.anneal_checkpoint/1"), std::string::npos) << out;
  }
}

TEST(Cli, CancelledExitCodeIsDocumented) {
  std::string out;
  ASSERT_EQ(run_cli("help", &out), 0);
  EXPECT_NE(out.find("7 cancelled"), std::string::npos)
      << "help must document the kCancelled exit code";
  EXPECT_NE(out.find("version"), std::string::npos)
      << "help must mention the version subcommand";
}

TEST(Cli, CorruptCheckpointExitsParseError) {
  const std::string results = path_in_scratch("results_ckpt");
  const std::string base = "run --design " + design_path() +
                           " --threads 1 --training-samples 60 --anneal 60" +
                           " --checkpoint-interval 20 --checkpoint anneal.ck" +
                           " --results-dir " + results;
  ASSERT_EQ(run_cli(base), 0);
  const std::string ck = results + "/anneal.ck";
  ASSERT_TRUE(fs::exists(ck));
  // Truncate the snapshot mid-field: the rerun must refuse it with the
  // parse-error exit code and a path:line diagnostic, not resume quietly.
  const std::string text = read_file(ck);
  std::ofstream(ck, std::ios::trunc)
      << text.substr(0, text.find("rng_state") + 11);
  std::string out;
  EXPECT_EQ(run_cli(base, &out), 4) << out;
  EXPECT_NE(out.find("anneal.ck:"), std::string::npos) << out;
}

}  // namespace
