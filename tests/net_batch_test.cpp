// Cross-net lane batching (PR 6): shape buckets partition the net list
// into groups whose geometries share piece topology, and the multi-net
// batched kernels return results bitwise identical to the scalar per-net
// path — lane interleaving changes throughput, never values.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "extract/batch.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"
#include "timing/variation.hpp"

namespace sndr::ndr {
namespace {

void expect_exact_eq(const NetExact& got, const NetExact& want) {
  EXPECT_EQ(got.cap_switched, want.cap_switched);
  EXPECT_EQ(got.step_slew_worst, want.step_slew_worst);
  EXPECT_EQ(got.sigma_worst, want.sigma_worst);
  EXPECT_EQ(got.xtalk_worst, want.xtalk_worst);
  EXPECT_EQ(got.em_peak, want.em_peak);
  EXPECT_EQ(got.wire_delay_mean, want.wire_delay_mean);
  EXPECT_EQ(got.wire_delay_worst, want.wire_delay_worst);
}

TEST(NetShapeBuckets, GroupsPartitionTheNetList) {
  test::Flow f = test::small_flow(256, 11);
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  const extract::NetShapeBuckets b = extract::bucket_nets_by_shape(cache);

  ASSERT_EQ(static_cast<int>(b.group_of.size()), f.nets.size());
  std::vector<int> seen(f.nets.size(), 0);
  for (std::size_t g = 0; g < b.groups.size(); ++g) {
    ASSERT_FALSE(b.groups[g].empty());
    for (const int id : b.groups[g]) {
      EXPECT_EQ(b.group_of[id], static_cast<int>(g));
      ++seen[id];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);

  // Nets in one group really are same-shaped: identical piece topology and
  // load attach indices (the materialize_nets_batch precondition).
  for (const std::vector<int>& group : b.groups) {
    const extract::NetGeometry& g0 = cache.geometry(group[0]);
    for (const int id : group) {
      const extract::NetGeometry& gi = cache.geometry(id);
      EXPECT_EQ(gi.piece_parent, g0.piece_parent);
      ASSERT_EQ(gi.loads.size(), g0.loads.size());
      for (std::size_t k = 0; k < gi.loads.size(); ++k) {
        EXPECT_EQ(gi.loads[k].rc_index, g0.loads[k].rc_index);
      }
    }
  }
}

TEST(NetBatch, CrossNetAllRulesBitwiseMatchesScalar) {
  test::Flow f = test::small_flow(256, 11);
  const timing::AnalysisOptions aopt;
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  const extract::NetShapeBuckets buckets =
      extract::bucket_nets_by_shape(cache);
  const double freq = f.design.constraints.clock_freq;
  const int R = f.tech.rules.size();

  common::Arena arena;
  common::Arena scalar_arena;
  std::vector<NetExact> want(static_cast<std::size_t>(R));
  for (const std::vector<int>& group : buckets.groups) {
    const int n = std::min<int>(static_cast<int>(group.size()), 8);
    std::vector<const extract::NetGeometry*> geoms(n);
    std::vector<double> dres(n);
    for (int i = 0; i < n; ++i) {
      geoms[i] = &cache.geometry(group[i]);
      dres[i] = timing::net_driver_res(f.cts.tree, f.tech, f.nets[group[i]],
                                       aopt);
    }
    std::vector<NetExact> got(static_cast<std::size_t>(n * R));
    evaluate_nets_exact_all_rules(geoms.data(), dres.data(), n, f.tech, freq,
                                  arena, got.data());
    for (int i = 0; i < n; ++i) {
      SCOPED_TRACE("net " + std::to_string(group[i]));
      evaluate_net_exact_all_rules(*geoms[i], f.tech, dres[i], freq,
                                   scalar_arena, want.data());
      for (int r = 0; r < R; ++r) {
        SCOPED_TRACE("rule " + std::to_string(r));
        expect_exact_eq(got[static_cast<std::size_t>(i * R + r)], want[r]);
      }
    }
  }
}

TEST(NetBatch, MixedRuleLanesMatchScalarScratchOverload) {
  test::Flow f = test::small_flow(256, 11);
  const timing::AnalysisOptions aopt;
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  const extract::NetShapeBuckets buckets =
      extract::bucket_nets_by_shape(cache);
  const double freq = f.design.constraints.clock_freq;
  const int R = f.tech.rules.size();

  // The largest group, with a DIFFERENT rule per lane: lanes are
  // (net, rule) pairs, not a uniform rule sweep.
  const std::vector<int>& group = *std::max_element(
      buckets.groups.begin(), buckets.groups.end(),
      [](const auto& a, const auto& b) { return a.size() < b.size(); });
  const int n = std::min<int>(static_cast<int>(group.size()), 6);
  ASSERT_GE(n, 2) << "flow too small to exercise cross-net lanes";

  std::vector<extract::NetLane> lanes(n);
  std::vector<double> dres(n);
  for (int i = 0; i < n; ++i) {
    lanes[i] = {&cache.geometry(group[i]), &f.tech, &f.tech.rules[i % R]};
    dres[i] = timing::net_driver_res(f.cts.tree, f.tech, f.nets[group[i]],
                                     aopt);
  }
  common::Arena arena;
  arena.reset();
  std::vector<NetExact> got(static_cast<std::size_t>(n));
  evaluate_nets_exact_batch(lanes.data(), n, dres.data(), freq, arena,
                            got.data());

  NetEvalScratch scratch;
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    const NetExact want =
        evaluate_net_exact(cache.geometry(group[i]), f.tech,
                           f.tech.rules[i % R], dres[i], freq, scratch);
    expect_exact_eq(got[static_cast<std::size_t>(i)], want);
  }
}

TEST(NetBatch, WarmRowsBitwiseMatchLazyEvalAtAnyThreadCount) {
  test::Flow f = test::small_flow(256, 11);
  const timing::AnalysisOptions aopt;
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  const int n_nets = f.nets.size();
  const int R = f.tech.rules.size();

  // Baseline: lazy per-net row fills, single-threaded.
  common::set_thread_count(1);
  AssignmentState lazy(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const FlowEvaluation ev = evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                     blanket, aopt, &lazy.geometry_cache());
  lazy.rebuild(blanket, ev);
  std::vector<NetExact> base(static_cast<std::size_t>(n_nets * R));
  for (int net = 0; net < n_nets; ++net) {
    for (int r = 0; r < R; ++r) {
      base[static_cast<std::size_t>(net * R + r)] = lazy.exact_eval(net, r);
    }
  }
  EXPECT_EQ(lazy.exact_cache_misses(), n_nets);  // one per row fill.

  // Warmed: batched cross-net prefetch on 8 threads, then all hits.
  common::set_thread_count(8);
  AssignmentState warmed(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const FlowEvaluation ev2 =
      evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket, aopt,
               &warmed.geometry_cache());
  warmed.rebuild(blanket, ev2);
  warmed.warm_all_rows();
  EXPECT_EQ(warmed.exact_cache_misses(), n_nets);
  const std::int64_t hits_before = warmed.exact_cache_hits();
  for (int net = 0; net < n_nets; ++net) {
    SCOPED_TRACE("net " + std::to_string(net));
    for (int r = 0; r < R; ++r) {
      expect_exact_eq(warmed.exact_eval(net, r),
                      base[static_cast<std::size_t>(net * R + r)]);
    }
  }
  EXPECT_EQ(warmed.exact_cache_hits() - hits_before,
            static_cast<std::int64_t>(n_nets) * R);
  EXPECT_EQ(warmed.exact_cache_misses(), n_nets);  // warm rows never refill.
  common::set_thread_count(-1);
}

}  // namespace
}  // namespace sndr::ndr
