#include <gtest/gtest.h>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "geom/segment.hpp"

namespace sndr::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, 5.0};
  EXPECT_EQ((a + b), (Point{4.0, 7.0}));
  EXPECT_EQ((b - a), (Point{2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Point, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({3, 4}, {0, 0}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan({-1, -1}, {1, 1}), 4.0);
  EXPECT_DOUBLE_EQ(manhattan({5, 5}, {5, 5}), 0.0);
}

TEST(Point, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclidean({0, 0}, {3, 4}), 5.0);
}

TEST(Point, Lerp) {
  const Point a{0, 0};
  const Point b{10, 20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point{5, 10}));
  EXPECT_EQ(midpoint(a, b), (Point{5, 10}));
}

TEST(Point, AlmostEqual) {
  EXPECT_TRUE(almost_equal({1, 1}, {1 + 1e-12, 1}));
  EXPECT_FALSE(almost_equal({1, 1}, {1.1, 1}));
  EXPECT_TRUE(almost_equal({1, 1}, {1.05, 1}, 0.1));
}

TEST(BBox, EmptyByDefault) {
  BBox b;
  EXPECT_TRUE(b.empty());
  EXPECT_DOUBLE_EQ(b.width(), 0.0);
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

TEST(BBox, ExtendPoint) {
  BBox b;
  b.extend({1, 2});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.area(), 0.0);
  b.extend({4, 6});
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
  EXPECT_DOUBLE_EQ(b.height(), 4.0);
  EXPECT_DOUBLE_EQ(b.area(), 12.0);
  EXPECT_DOUBLE_EQ(b.half_perimeter(), 7.0);
}

TEST(BBox, NormalizesCorners) {
  const BBox b(5, 7, 1, 2);
  EXPECT_EQ(b.lo(), (Point{1, 2}));
  EXPECT_EQ(b.hi(), (Point{5, 7}));
}

TEST(BBox, ContainsAndClamp) {
  const BBox b(0, 0, 10, 10);
  EXPECT_TRUE(b.contains({5, 5}));
  EXPECT_TRUE(b.contains({0, 0}));
  EXPECT_TRUE(b.contains({10, 10}));
  EXPECT_FALSE(b.contains({10.01, 5}));
  EXPECT_EQ(b.clamp({-5, 5}), (Point{0, 5}));
  EXPECT_EQ(b.clamp({5, 15}), (Point{5, 10}));
  EXPECT_EQ(b.clamp({3, 4}), (Point{3, 4}));
}

TEST(BBox, Intersects) {
  const BBox a(0, 0, 10, 10);
  EXPECT_TRUE(a.intersects(BBox(5, 5, 15, 15)));
  EXPECT_TRUE(a.intersects(BBox(10, 10, 20, 20)));  // touching counts.
  EXPECT_FALSE(a.intersects(BBox(11, 11, 20, 20)));
  EXPECT_FALSE(a.intersects(BBox{}));
}

TEST(BBox, ExtendBoxAndInflate) {
  BBox a(0, 0, 1, 1);
  a.extend(BBox(5, 5, 6, 6));
  EXPECT_EQ(a.hi(), (Point{6, 6}));
  a.inflate(1.0);
  EXPECT_EQ(a.lo(), (Point{-1, -1}));
  EXPECT_EQ(a.hi(), (Point{7, 7}));
}

TEST(Segment, Classification) {
  EXPECT_TRUE((Segment{{0, 0}, {5, 0}}).horizontal());
  EXPECT_TRUE((Segment{{0, 0}, {0, 5}}).vertical());
  EXPECT_FALSE((Segment{{0, 0}, {5, 5}}).axis_parallel());
  EXPECT_TRUE((Segment{{1, 1}, {1, 1}}).degenerate());
}

TEST(Path, Length) {
  EXPECT_DOUBLE_EQ(path_length({}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}}), 0.0);
  EXPECT_DOUBLE_EQ(path_length({{0, 0}, {3, 0}, {3, 4}}), 7.0);
}

TEST(Path, SegmentsDropDegenerate) {
  const auto segs = path_segments({{0, 0}, {0, 0}, {3, 0}, {3, 0}, {3, 4}});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_TRUE(segs[0].horizontal());
  EXPECT_TRUE(segs[1].vertical());
}

TEST(Path, SegmentsDecomposeDiagonal) {
  const auto segs = path_segments({{0, 0}, {3, 4}});
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_DOUBLE_EQ(segs[0].length() + segs[1].length(), 7.0);
}

TEST(Path, LPath) {
  const auto hv = l_path({0, 0}, {3, 4}, true);
  ASSERT_EQ(hv.size(), 3u);
  EXPECT_EQ(hv[1], (Point{3, 0}));
  const auto vh = l_path({0, 0}, {3, 4}, false);
  EXPECT_EQ(vh[1], (Point{0, 4}));
  // Collinear: straight two-point path either way.
  EXPECT_EQ(l_path({0, 0}, {0, 7}, true).size(), 2u);
}

TEST(Path, PointAt) {
  const Path p{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(point_at(p, 0.0), (Point{0, 0}));
  EXPECT_EQ(point_at(p, 5.0), (Point{5, 0}));
  EXPECT_EQ(point_at(p, 10.0), (Point{10, 0}));
  EXPECT_EQ(point_at(p, 15.0), (Point{10, 5}));
  EXPECT_EQ(point_at(p, 100.0), (Point{10, 10}));  // clamped.
  EXPECT_EQ(point_at(p, -3.0), (Point{0, 0}));     // clamped.
}

TEST(Path, SplitAtMiddle) {
  const Path p{{0, 0}, {10, 0}, {10, 10}};
  const auto [head, tail] = split_at(p, 12.0);
  EXPECT_DOUBLE_EQ(path_length(head), 12.0);
  EXPECT_DOUBLE_EQ(path_length(tail), 8.0);
  EXPECT_EQ(head.back(), (Point{10, 2}));
  EXPECT_EQ(tail.front(), (Point{10, 2}));
  EXPECT_EQ(tail.back(), (Point{10, 10}));
}

TEST(Path, SplitAtVertex) {
  const Path p{{0, 0}, {10, 0}, {10, 10}};
  const auto [head, tail] = split_at(p, 10.0);
  EXPECT_DOUBLE_EQ(path_length(head), 10.0);
  EXPECT_DOUBLE_EQ(path_length(tail), 10.0);
}

TEST(Path, SplitAtEnds) {
  const Path p{{0, 0}, {10, 0}};
  const auto [h0, t0] = split_at(p, 0.0);
  EXPECT_DOUBLE_EQ(path_length(h0), 0.0);
  EXPECT_DOUBLE_EQ(path_length(t0), 10.0);
  const auto [h1, t1] = split_at(p, 10.0);
  EXPECT_DOUBLE_EQ(path_length(h1), 10.0);
  EXPECT_DOUBLE_EQ(path_length(t1), 0.0);
}

TEST(Path, Reversed) {
  const Path p{{0, 0}, {10, 0}, {10, 10}};
  const Path r = reversed(p);
  EXPECT_EQ(r.front(), (Point{10, 10}));
  EXPECT_EQ(r.back(), (Point{0, 0}));
  EXPECT_DOUBLE_EQ(path_length(r), path_length(p));
}

TEST(Path, DetourNoExtraIsLPath) {
  const Path p = detour_path({0, 0}, {3, 4}, 7.0, true);
  EXPECT_DOUBLE_EQ(path_length(p), 7.0);
}

class DetourLength : public ::testing::TestWithParam<double> {};

TEST_P(DetourLength, ProducesExactLength) {
  const double target = GetParam();
  const Path p = detour_path({0, 0}, {30, 40}, target, true);
  EXPECT_NEAR(path_length(p), target, 1e-9);
  EXPECT_EQ(p.front(), (Point{0, 0}));
  EXPECT_EQ(p.back(), (Point{30, 40}));
  for (const Segment& s : path_segments(p)) {
    EXPECT_TRUE(s.axis_parallel());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DetourLength,
                         ::testing::Values(70.0, 71.0, 80.0, 100.0, 250.0,
                                           1234.5));

TEST(Path, DetourVerticalBase) {
  // Force the midpoint onto a vertical segment.
  const Path p = detour_path({0, 0}, {0, 40}, 60.0, true);
  EXPECT_NEAR(path_length(p), 60.0, 1e-9);
  EXPECT_EQ(p.back(), (Point{0, 40}));
}

}  // namespace
}  // namespace sndr::geom
