#include <gtest/gtest.h>

#include "ndr/smart_ndr.hpp"
#include "tech/corners.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

TEST(Corners, StandardSetShape) {
  const auto corners = tech::standard_corners();
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_EQ(corners[0].name, "slow");
  EXPECT_EQ(corners[1].name, "typ");
  EXPECT_EQ(corners[2].name, "fast");
  EXPECT_GT(corners[0].r_scale, 1.0);
  EXPECT_LT(corners[2].r_scale, 1.0);
  // typ is the identity.
  EXPECT_DOUBLE_EQ(corners[1].r_scale, 1.0);
  EXPECT_DOUBLE_EQ(corners[1].c_scale, 1.0);
  EXPECT_DOUBLE_EQ(corners[1].vdd_scale, 1.0);
  EXPECT_DOUBLE_EQ(corners[1].cell_scale, 1.0);
}

TEST(Corners, ApplyCornerScalesCoefficients) {
  const tech::Technology base = tech::Technology::make_default_45nm();
  const tech::Corner slow = tech::standard_corners()[0];
  const tech::Technology t = tech::apply_corner(base, slow);
  EXPECT_DOUBLE_EQ(t.clock_layer.r_sheet,
                   base.clock_layer.r_sheet * slow.r_scale);
  EXPECT_DOUBLE_EQ(t.clock_layer.c_area,
                   base.clock_layer.c_area * slow.c_scale);
  EXPECT_DOUBLE_EQ(t.vdd, base.vdd * slow.vdd_scale);
  EXPECT_DOUBLE_EQ(t.buffers[0].drive_res,
                   base.buffers[0].drive_res * slow.cell_scale);
  EXPECT_EQ(t.name, base.name + "_slow");
  // Identity corner changes nothing electrical.
  const tech::Technology typ =
      tech::apply_corner(base, tech::standard_corners()[1]);
  EXPECT_DOUBLE_EQ(typ.clock_layer.r_sheet, base.clock_layer.r_sheet);
}

class CornerEvalFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(128, 21);
  ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
};

TEST_F(CornerEvalFixture, SlowCornerIsSlowest) {
  const ndr::MultiCornerReport rep = ndr::evaluate_corners(
      f.cts.tree, f.design, f.tech, f.nets, blanket);
  ASSERT_EQ(rep.corners.size(), 3u);
  const auto& slow = rep.corners[0].eval;
  const auto& typ = rep.corners[1].eval;
  const auto& fast = rep.corners[2].eval;
  EXPECT_GT(slow.timing.max_latency, typ.timing.max_latency);
  EXPECT_GT(typ.timing.max_latency, fast.timing.max_latency);
  EXPECT_GT(slow.timing.max_slew, fast.timing.max_slew);
  EXPECT_EQ(rep.worst_slew_corner(), 0);
  // Fast corner burns the most power (P ~ C V^2: +5% V beats -7% C).
  EXPECT_EQ(rep.worst_power_corner(), 2);
  // EM current ~ V*C: the slow corner's +8% C outweighs its -5% V, so slow
  // is the binding EM corner in this stack.
  EXPECT_EQ(rep.worst_em_corner(), 0);
}

TEST_F(CornerEvalFixture, TypCornerMatchesSingleCornerEvaluate) {
  const ndr::MultiCornerReport rep = ndr::evaluate_corners(
      f.cts.tree, f.design, f.tech, f.nets, blanket);
  const ndr::FlowEvaluation direct =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
  EXPECT_DOUBLE_EQ(rep.corners[1].eval.power.total_power,
                   direct.power.total_power);
  EXPECT_DOUBLE_EQ(rep.corners[1].eval.timing.skew(), direct.timing.skew());
}

TEST_F(CornerEvalFixture, OptimizingAtSlowCornerHoldsAcrossCorners) {
  // Optimize against the slow-corner technology (the conservative signoff
  // practice); the result must then hold at every corner for the timing
  // constraints, with EM checked at fast.
  const tech::Technology slow_tech =
      tech::apply_corner(f.tech, tech::standard_corners()[0]);
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, slow_tech, f.nets);
  const ndr::MultiCornerReport rep = ndr::evaluate_corners(
      f.cts.tree, f.design, f.tech, f.nets, smart.assignment);
  for (const auto& c : rep.corners) {
    EXPECT_EQ(c.eval.slew_violations, 0) << c.corner.name;
  }
}

}  // namespace
}  // namespace sndr
