// Golden-file test for the run manifest (schema sndr.run_manifest/2).
//
// Runs a small deterministic flow single-threaded, renders the manifest,
// normalizes the volatile fields (git state, host, timestamps, every wall
// time), and compares line-by-line against tests/golden/
// run_manifest_small.json. Counters, histogram contents, derived rates,
// span names/counts, and the key order are all pinned exactly — a schema
// drift or a counter regression shows up as a readable diff.
//
// Refresh after an intentional change:
//   SNDR_UPDATE_GOLDEN=1 ./build/tests/manifest_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "ndr/smart_ndr.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

const char* kGoldenPath =
    SNDR_TEST_SOURCE_DIR "/golden/run_manifest_small.json";

/// Replaces the value part of `"key": ...` with a placeholder.
void normalize_value(std::string& line, const std::string& key,
                     const char* placeholder) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t at = line.find(tag);
  if (at == std::string::npos) return;
  const std::size_t start = at + tag.size();
  // Value ends at the next comma or closing brace at this level; manifest
  // scalars never contain either, strings never contain escaped quotes of
  // their own here.
  std::size_t end = start;
  if (line[start] == '"') {
    end = line.find('"', start + 1) + 1;
  } else {
    end = line.find_first_of(",}", start);
    if (end == std::string::npos) end = line.size();
  }
  line.replace(start, end - start, placeholder);
}

std::string normalize(const std::string& manifest) {
  std::istringstream in(manifest);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    normalize_value(line, "git", "\"<git>\"");
    normalize_value(line, "host", "\"<host>\"");
    normalize_value(line, "started_utc", "\"<utc>\"");
    normalize_value(line, "wall_seconds", "<s>");
    normalize_value(line, "seconds", "<s>");  // stage entries.
    normalize_value(line, "total_s", "<s>");
    normalize_value(line, "mean_s", "<s>");
    // Arena high-water marks vary with thread count and sanitizer builds
    // (per-thread arenas, block-doubling growth); pin presence, not value.
    normalize_value(line, "arena.capacity_bytes", "<bytes>");
    normalize_value(line, "arena.used_bytes", "<bytes>");
    normalize_value(line, "process.peak_rss_bytes", "<bytes>");
    out << line << "\n";
  }
  return out.str();
}

std::string run_small_flow_manifest() {
  obs::MetricsRegistry::instance().reset();
  obs::TraceSink::instance().reset();
  common::set_thread_count(1);

  test::Flow f = test::small_flow(64, 3);
  const ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  (void)ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
  (void)ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket);
  ndr::AnnealOptions aopt;
  aopt.iterations = 200;
  (void)ndr::anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket,
                          aopt);
  common::set_thread_count(-1);

  obs::RunInfo info;
  info.tool = "manifest_golden_test";
  info.command = "small_flow";
  info.args = {"--sinks", "64", "--seed", "3"};
  info.threads = 1;
  info.seed = 3;
  info.wall_seconds = 0.5;  // normalized away; any value works.
  info.stages = {{"load", 0.1, "ok"}, {"optimize", 0.3, "ok"},
                 {"anneal", -1.0, "skipped"}};
  return obs::run_manifest_json(info);
}

TEST(ManifestGolden, SmallFlowMatchesGolden) {
  const std::string got = normalize(run_small_flow_manifest());

  if (std::getenv("SNDR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << got;
    GTEST_SKIP() << "golden refreshed: " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good())
      << "missing golden " << kGoldenPath
      << " — generate with SNDR_UPDATE_GOLDEN=1";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string want = ss.str();

  if (got == want) return;
  // Readable diff: first divergent line with context.
  std::istringstream gi(got), wi(want);
  std::string gl, wl;
  int line_no = 0;
  std::string msg;
  while (true) {
    const bool gok = static_cast<bool>(std::getline(gi, gl));
    const bool wok = static_cast<bool>(std::getline(wi, wl));
    ++line_no;
    if (!gok && !wok) break;
    if (gok != wok || gl != wl) {
      msg = "first difference at line " + std::to_string(line_no) +
            "\n  golden: " + (wok ? wl : "<eof>") +
            "\n  got:    " + (gok ? gl : "<eof>");
      break;
    }
  }
  FAIL() << "manifest drifted from golden (refresh intentionally with "
            "SNDR_UPDATE_GOLDEN=1)\n"
         << msg;
}

TEST(ManifestGolden, ManifestIsStableAcrossRepeatedRenders) {
  // Rendering twice without new observations must be byte-identical
  // (snapshot and aggregation are deterministic, names sorted).
  obs::MetricsRegistry::instance().reset();
  obs::TraceSink::instance().reset();
  SNDR_COUNTER_ADD("test.golden_stable", 7);
  obs::RunInfo info;
  info.tool = "t";
  info.command = "c";
  const std::string a = normalize(obs::run_manifest_json(info));
  const std::string b = normalize(obs::run_manifest_json(info));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"test.golden_stable\": 7"), std::string::npos);
  EXPECT_NE(a.find("\"schema\": \"sndr.run_manifest/2\""),
            std::string::npos);
}

}  // namespace
}  // namespace sndr
