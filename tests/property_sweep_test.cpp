// Cross-design property sweeps: the end-to-end invariants that must hold
// for *any* design the generator can produce, parameterized over size,
// spatial distribution, and seed. These are the guarantees a user of the
// library relies on without reading the implementation.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "route/congestion_route.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using Param = std::tuple<int, workload::SinkDistribution, std::uint64_t>;

struct SweepResult {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
  ndr::FlowEvaluation blanket;
  ndr::SmartNdrResult smart;
};

const SweepResult& run_once(const Param& key) {
  static std::map<Param, SweepResult> cache;
  auto it = cache.find(key);
  if (it == cache.end()) {
    workload::DesignSpec spec;
    spec.num_sinks = std::get<0>(key);
    spec.dist = std::get<1>(key);
    spec.seed = std::get<2>(key);
    spec.name = "sweep";
    SweepResult r;
    r.design = workload::make_design(spec);
    r.tech = tech::Technology::make_default_45nm();
    r.cts = cts::synthesize(r.design, r.tech);
    route::reroute_for_congestion(r.cts.tree, r.design.congestion);
    cts::refine_skew(r.cts.tree, r.design, r.tech);
    r.nets = netlist::build_nets(r.cts.tree);
    r.blanket = ndr::evaluate(
        r.cts.tree, r.design, r.tech, r.nets,
        ndr::assign_all(r.nets, r.tech.rules.blanket_index()));
    r.smart =
        ndr::optimize_smart_ndr(r.cts.tree, r.design, r.tech, r.nets);
    it = cache.emplace(key, std::move(r)).first;
  }
  return it->second;
}

class FlowSweep : public ::testing::TestWithParam<Param> {};

TEST_P(FlowSweep, TreeValidAndBlanketFeasible) {
  const SweepResult& r = run_once(GetParam());
  EXPECT_NO_THROW(
      r.cts.tree.validate(static_cast<int>(r.design.sinks.size())));
  EXPECT_TRUE(r.blanket.feasible())
      << "skew=" << units::to_ps(r.blanket.timing.skew())
      << " slew=" << units::to_ps(r.blanket.timing.max_slew);
}

TEST_P(FlowSweep, SmartFeasibleAndNoWorseThanBlanket) {
  const SweepResult& r = run_once(GetParam());
  EXPECT_TRUE(r.smart.final_eval.feasible());
  EXPECT_LE(r.smart.final_eval.power.total_power,
            r.blanket.power.total_power + 1e-12);
}

TEST_P(FlowSweep, AssignmentCoversEveryNetWithValidRule) {
  const SweepResult& r = run_once(GetParam());
  ASSERT_EQ(r.smart.assignment.size(),
            static_cast<std::size_t>(r.nets.size()));
  for (const int rule : r.smart.assignment) {
    EXPECT_GE(rule, 0);
    EXPECT_LT(rule, r.tech.rules.size());
  }
}

TEST_P(FlowSweep, SignoffInternallyConsistent) {
  const SweepResult& r = run_once(GetParam());
  const auto& ev = r.smart.final_eval;
  // Re-evaluating the returned assignment reproduces the reported signoff.
  const auto again =
      ndr::evaluate(r.cts.tree, r.design, r.tech, r.nets, ev.assignment);
  EXPECT_DOUBLE_EQ(again.power.total_power, ev.power.total_power);
  EXPECT_DOUBLE_EQ(again.timing.skew(), ev.timing.skew());
  EXPECT_EQ(again.slew_violations, ev.slew_violations);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, FlowSweep,
    ::testing::Values(
        Param{48, workload::SinkDistribution::kUniform, 1},
        Param{48, workload::SinkDistribution::kClustered, 2},
        Param{128, workload::SinkDistribution::kMixed, 3},
        Param{128, workload::SinkDistribution::kUniform, 4},
        Param{256, workload::SinkDistribution::kClustered, 5},
        Param{256, workload::SinkDistribution::kMixed, 6},
        Param{512, workload::SinkDistribution::kUniform, 7},
        Param{512, workload::SinkDistribution::kClustered, 8}));

}  // namespace
}  // namespace sndr
