// Multi-domain clock model tests: ClockDomainMap semantics,
// cts::derive_domains, workload::make_domain_workload, activity-weighted
// power / EM scaling, inter-clock signoff, and the pinned proof that the
// activity-weighted objective changes rule assignment vs capacitance-only.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "cts/domains.hpp"
#include "ndr/smart_ndr.hpp"
#include "workload/domains.hpp"

namespace sndr {
namespace {

const tech::Technology& tech45() {
  static const tech::Technology t = tech::Technology::make_default_45nm();
  return t;
}

workload::ScaleSpec small_spec(int nets = 40) {
  workload::ScaleSpec s;
  s.name = "domains_test";
  s.num_nets = nets;
  s.branching = 2;
  s.sinks_per_leaf = 2;
  return s;
}

/// First buffer child of `v` (the scale tree is all buffers below the
/// source, so this walks the b-ary hierarchy).
int first_buffer_child(const netlist::ClockTree& tree, int v) {
  for (const int c : tree.node(v).children) {
    if (tree.node(c).kind == netlist::NodeKind::kBuffer) return c;
  }
  return -1;
}

// ---- model basics ---------------------------------------------------------

TEST(ClockDomains, ElementNamesAreStable) {
  using netlist::DomainElement;
  EXPECT_STREQ(netlist::to_string(DomainElement::kRoot), "root");
  EXPECT_STREQ(netlist::to_string(DomainElement::kMux), "mux");
  EXPECT_STREQ(netlist::to_string(DomainElement::kGate), "icg");
  EXPECT_STREQ(netlist::to_string(DomainElement::kDivider), "div");
  EXPECT_STREQ(netlist::to_string(DomainElement::kInverter), "inv");
}

TEST(ClockDomains, DisabledMapAnswersNeutrally) {
  const netlist::ClockDomainMap map;
  EXPECT_FALSE(map.enabled());
  EXPECT_EQ(map.domain_of_node(3), 0);
  EXPECT_EQ(map.node_toggle_weight(3), 1.0);
  EXPECT_EQ(map.node_em_scale(3), 1.0);
}

TEST(ClockDomains, ToggleWeightAndEmScale) {
  netlist::ClockDomain d;
  d.activity = 0.5;
  d.divisor = 2;
  EXPECT_DOUBLE_EQ(d.toggle_weight(), 0.25);
  EXPECT_DOUBLE_EQ(d.em_scale(), 0.5);
  // The neutral domain weighs exactly 1.0 — the bitwise-degeneracy anchor.
  EXPECT_EQ(netlist::ClockDomain{}.toggle_weight(), 1.0);
  EXPECT_EQ(netlist::ClockDomain{}.em_scale(), 1.0);
}

TEST(ClockDomains, FirstDomainMustBeRoot) {
  netlist::ClockDomainMap map;
  netlist::ClockDomain gate;
  gate.element = netlist::DomainElement::kGate;
  EXPECT_THROW(map.add_domain(gate), std::invalid_argument);
}

TEST(ClockDomains, ValidateCatchesBadChains) {
  netlist::ClockDomainMap map;
  netlist::ClockDomain root;
  root.anchor = 0;
  map.add_domain(root);
  netlist::ClockDomain d;
  d.element = netlist::DomainElement::kDivider;
  d.anchor = 1;
  d.parent = 0;
  d.divisor = 2;
  map.add_domain(d);
  map.set_domain_of_node({0, 1});
  map.validate(2);  // well-formed.
  EXPECT_THROW(map.validate(1), std::invalid_argument);  // anchor range.

  netlist::ClockDomainMap bad;
  bad.add_domain(root);
  netlist::ClockDomain up;
  up.element = netlist::DomainElement::kGate;
  up.anchor = 1;
  up.parent = 0;
  up.activity = 1.5;  // not a duty.
  bad.add_domain(up);
  bad.set_domain_of_node({0, 1});
  EXPECT_THROW(bad.validate(2), std::invalid_argument);
}

// ---- derive_domains -------------------------------------------------------

TEST(DeriveDomains, SingleGateSplitsSubtree) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const int anchor = first_buffer_child(w.tree, w.tree.root());
  ASSERT_GE(anchor, 0);
  netlist::DomainAnnotation a;
  a.node = anchor;
  a.element = netlist::DomainElement::kGate;
  a.duty = 0.5;
  const netlist::ClockDomainMap map = cts::derive_domains(w.tree, {a});
  ASSERT_TRUE(map.enabled());
  ASSERT_EQ(map.size(), 2);
  EXPECT_EQ(map.domain(1).anchor, anchor);
  EXPECT_DOUBLE_EQ(map.domain(1).activity, 0.5);
  EXPECT_EQ(map.domain(1).divisor, 1);
  // Anchor and everything below it are in the new domain; the root and the
  // sibling subtree stay in domain 0.
  EXPECT_EQ(map.domain_of_node(anchor), 1);
  EXPECT_EQ(map.domain_of_node(w.tree.root()), 0);
  for (const int c : w.tree.node(anchor).children) {
    EXPECT_EQ(map.domain_of_node(c), 1);
  }
  // Sinks split between the domains and add up to the design total.
  EXPECT_GT(map.domain(0).sinks, 0);
  EXPECT_GT(map.domain(1).sinks, 0);
  EXPECT_EQ(map.domain(0).sinks + map.domain(1).sinks,
            static_cast<int>(w.design.sinks.size()));
}

TEST(DeriveDomains, NestedElementsAccumulate) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const int outer = first_buffer_child(w.tree, w.tree.root());
  const int inner = first_buffer_child(w.tree, outer);
  ASSERT_GE(inner, 0);
  netlist::DomainAnnotation gate;
  gate.node = outer;
  gate.element = netlist::DomainElement::kGate;
  gate.duty = 0.5;
  netlist::DomainAnnotation div;
  div.node = inner;
  div.element = netlist::DomainElement::kDivider;
  div.divide = 4;
  const netlist::ClockDomainMap map =
      cts::derive_domains(w.tree, {gate, div});
  ASSERT_EQ(map.size(), 3);
  EXPECT_EQ(map.domain(2).parent, 1);
  EXPECT_EQ(map.domain(2).divisor, 4);
  EXPECT_DOUBLE_EQ(map.domain(2).activity, 0.5);  // inherited from the ICG.
  EXPECT_DOUBLE_EQ(map.domain(2).toggle_weight(), 0.125);
  EXPECT_DOUBLE_EQ(map.node_em_scale(inner), std::sqrt(0.125));
}

TEST(DeriveDomains, InverterFlipsPolarityOnly) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const int outer = first_buffer_child(w.tree, w.tree.root());
  const int inner = first_buffer_child(w.tree, outer);
  netlist::DomainAnnotation inv1;
  inv1.node = outer;
  inv1.element = netlist::DomainElement::kInverter;
  netlist::DomainAnnotation inv2;
  inv2.node = inner;
  inv2.element = netlist::DomainElement::kInverter;
  const netlist::ClockDomainMap map =
      cts::derive_domains(w.tree, {inv1, inv2});
  ASSERT_EQ(map.size(), 3);
  EXPECT_TRUE(map.domain(1).inverted);
  EXPECT_FALSE(map.domain(2).inverted);  // double inversion cancels.
  EXPECT_EQ(map.domain(2).toggle_weight(), 1.0);  // rate-neutral, exactly.
  EXPECT_EQ(map.node_em_scale(inner), 1.0);
}

TEST(DeriveDomains, DerivedNamesEncodeIdAndKind) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  netlist::DomainAnnotation a;
  a.node = first_buffer_child(w.tree, w.tree.root());
  a.element = netlist::DomainElement::kDivider;
  a.divide = 2;
  const netlist::ClockDomainMap map = cts::derive_domains(w.tree, {a});
  EXPECT_EQ(map.domain(1).name, "d1_div");
  netlist::DomainAnnotation named = a;
  named.name = "cpu_half";
  EXPECT_EQ(cts::derive_domains(w.tree, {named}).domain(1).name, "cpu_half");
}

TEST(DeriveDomains, RejectsMalformedAnnotations) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const int anchor = first_buffer_child(w.tree, w.tree.root());
  netlist::DomainAnnotation ok;
  ok.node = anchor;

  netlist::DomainAnnotation bad = ok;
  bad.node = w.tree.size();  // out of range.
  EXPECT_THROW(cts::derive_domains(w.tree, {bad}), std::invalid_argument);
  bad.node = w.tree.root();  // the root can't be re-anchored.
  EXPECT_THROW(cts::derive_domains(w.tree, {bad}), std::invalid_argument);
  bad = ok;
  bad.element = netlist::DomainElement::kRoot;
  EXPECT_THROW(cts::derive_domains(w.tree, {bad}), std::invalid_argument);
  bad = ok;
  bad.divide = 0;
  EXPECT_THROW(cts::derive_domains(w.tree, {bad}), std::invalid_argument);
  bad = ok;
  bad.duty = 0.0;
  EXPECT_THROW(cts::derive_domains(w.tree, {bad}), std::invalid_argument);
  EXPECT_THROW(cts::derive_domains(w.tree, {ok, ok}),  // duplicate anchor.
               std::invalid_argument);
}

TEST(DeriveDomains, NoAnnotationsStaysDisabled) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const netlist::ClockDomainMap map = cts::derive_domains(w.tree, {});
  EXPECT_FALSE(map.enabled());
  EXPECT_EQ(map.node_toggle_weight(1), 1.0);
}

TEST(DeriveDomains, MuxPathAndDivisorRatioQueries) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(64), tech45());
  const int root = w.tree.root();
  ASSERT_GE(static_cast<int>(w.tree.node(root).children.size()), 2);
  const int left = w.tree.node(root).children[0];
  const int right = w.tree.node(root).children[1];
  const int under_left = first_buffer_child(w.tree, left);
  netlist::DomainAnnotation mux;
  mux.node = left;
  mux.element = netlist::DomainElement::kMux;
  netlist::DomainAnnotation div;
  div.node = under_left;
  div.element = netlist::DomainElement::kDivider;
  div.divide = 2;
  netlist::DomainAnnotation gate;
  gate.node = right;
  gate.element = netlist::DomainElement::kGate;
  gate.duty = 0.5;
  const netlist::ClockDomainMap map =
      cts::derive_domains(w.tree, {mux, div, gate});
  ASSERT_EQ(map.size(), 4);
  const int d_mux = map.domain_of_node(left);
  const int d_div = map.domain_of_node(under_left);
  const int d_gate = map.domain_of_node(right);
  EXPECT_EQ(map.domain_lca(d_div, d_gate), 0);
  EXPECT_EQ(map.domain_lca(d_div, d_mux), d_mux);
  EXPECT_TRUE(map.path_crosses_mux(d_div, d_gate));   // div sits below mux.
  EXPECT_TRUE(map.path_crosses_mux(d_mux, 0));
  EXPECT_FALSE(map.path_crosses_mux(d_gate, 0));      // gated, not muxed.
  EXPECT_EQ(map.divisor_ratio(d_div, d_gate), 2);
  EXPECT_EQ(map.divisor_ratio(d_gate, 0), 1);
}

TEST(DeriveDomains, AnnotationOrderDoesNotMatter) {
  // Domains derive from a topological walk of the tree, so the order the
  // annotations arrive in must not change a single field of the map.
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(64), tech45());
  const int root = w.tree.root();
  ASSERT_GE(static_cast<int>(w.tree.node(root).children.size()), 2);
  netlist::DomainAnnotation mux;
  mux.node = w.tree.node(root).children[0];
  mux.element = netlist::DomainElement::kMux;
  netlist::DomainAnnotation div;
  div.node = first_buffer_child(w.tree, mux.node);
  div.element = netlist::DomainElement::kDivider;
  div.divide = 3;
  netlist::DomainAnnotation gate;
  gate.node = w.tree.node(root).children[1];
  gate.element = netlist::DomainElement::kGate;
  gate.duty = 0.4;
  const netlist::ClockDomainMap fwd =
      cts::derive_domains(w.tree, {mux, div, gate});
  const netlist::ClockDomainMap rev =
      cts::derive_domains(w.tree, {gate, div, mux});
  ASSERT_EQ(fwd.size(), rev.size());
  for (int d = 0; d < fwd.size(); ++d) {
    EXPECT_EQ(fwd.domain(d).name, rev.domain(d).name);
    EXPECT_EQ(fwd.domain(d).anchor, rev.domain(d).anchor);
    EXPECT_EQ(fwd.domain(d).parent, rev.domain(d).parent);
    EXPECT_EQ(fwd.domain(d).divisor, rev.domain(d).divisor);
    EXPECT_EQ(fwd.domain(d).activity, rev.domain(d).activity);
    EXPECT_EQ(fwd.domain(d).sinks, rev.domain(d).sinks);
  }
  for (int node = 0; node < w.tree.size(); ++node) {
    EXPECT_EQ(fwd.domain_of_node(node), rev.domain_of_node(node));
  }
}

// ---- make_domain_workload -------------------------------------------------

TEST(DomainWorkload, DeterministicAcrossCalls) {
  workload::DomainSpec spec;
  spec.base = small_spec(48);
  const workload::DomainWorkload a =
      workload::make_domain_workload(spec, tech45());
  const workload::DomainWorkload b =
      workload::make_domain_workload(spec, tech45());
  ASSERT_EQ(a.annotations.size(), b.annotations.size());
  for (std::size_t i = 0; i < a.annotations.size(); ++i) {
    EXPECT_EQ(a.annotations[i].node, b.annotations[i].node);
    EXPECT_EQ(a.annotations[i].element, b.annotations[i].element);
    EXPECT_EQ(a.annotations[i].divide, b.annotations[i].divide);
    EXPECT_EQ(a.annotations[i].duty, b.annotations[i].duty);
  }
  ASSERT_EQ(a.design.clock_domains.size(), b.design.clock_domains.size());
  for (int d = 0; d < a.design.clock_domains.size(); ++d) {
    EXPECT_EQ(a.design.clock_domains.domain(d).anchor,
              b.design.clock_domains.domain(d).anchor);
    EXPECT_EQ(a.design.clock_domains.domain(d).activity,
              b.design.clock_domains.domain(d).activity);
  }

  workload::DomainSpec other = spec;
  other.domain_seed = spec.domain_seed + 1;
  const workload::DomainWorkload c =
      workload::make_domain_workload(other, tech45());
  bool same = a.annotations.size() == c.annotations.size();
  for (std::size_t i = 0; same && i < a.annotations.size(); ++i) {
    same = a.annotations[i].node == c.annotations[i].node &&
           a.annotations[i].duty == c.annotations[i].duty;
  }
  EXPECT_FALSE(same) << "domain_seed must move the element placement";
}

TEST(DomainWorkload, DomainSeedMovesElementsButKeepsBaseTree) {
  // domain_seed only reshuffles WHERE the mux/ICG/divider elements land;
  // the electrical base (tree topology, nets, sink count) is pinned by
  // the base ScaleSpec and must stay bitwise identical.
  workload::DomainSpec spec;
  spec.base = small_spec(48);
  workload::DomainSpec other = spec;
  other.domain_seed = spec.domain_seed + 17;
  const workload::DomainWorkload a =
      workload::make_domain_workload(spec, tech45());
  const workload::DomainWorkload b =
      workload::make_domain_workload(other, tech45());
  ASSERT_EQ(a.tree.size(), b.tree.size());
  for (int n = 0; n < a.tree.size(); ++n) {
    EXPECT_EQ(a.tree.node(n).parent, b.tree.node(n).parent);
    EXPECT_EQ(a.tree.node(n).loc.x, b.tree.node(n).loc.x);
    EXPECT_EQ(a.tree.node(n).loc.y, b.tree.node(n).loc.y);
  }
  ASSERT_EQ(a.nets.size(), b.nets.size());
  EXPECT_EQ(a.design.sinks.size(), b.design.sinks.size());
  EXPECT_EQ(a.annotations.size(), b.annotations.size());
}

TEST(DomainWorkload, ElementCountsClampToAvailableBuffers) {
  workload::DomainSpec spec;
  spec.base = small_spec(6);  // only a handful of buffers exist.
  spec.gates = 50;
  spec.dividers = 50;
  const workload::DomainWorkload w =
      workload::make_domain_workload(spec, tech45());
  EXPECT_LT(static_cast<int>(w.annotations.size()), spec.base.num_nets);
  EXPECT_EQ(w.design.clock_domains.size(),
            static_cast<int>(w.annotations.size()) + 1);
  w.design.clock_domains.validate(w.tree.size());
}

TEST(DomainWorkload, ZeroElementsDegeneratesToScaleWorkload) {
  workload::DomainSpec spec;
  spec.base = small_spec(48);
  spec.gates = spec.dividers = spec.muxes = spec.inverters = 0;
  const workload::DomainWorkload w =
      workload::make_domain_workload(spec, tech45());
  EXPECT_TRUE(w.annotations.empty());
  EXPECT_FALSE(w.design.clock_domains.enabled());
  const workload::ScaleWorkload plain =
      workload::make_scale_workload(spec.base, tech45());
  EXPECT_EQ(w.tree.size(), plain.tree.size());
  EXPECT_EQ(w.tree.total_wirelength(), plain.tree.total_wirelength());
  EXPECT_EQ(w.nets.size(), plain.nets.size());
}

// ---- weighted power and EM ------------------------------------------------

class GatedFlow : public ::testing::Test {
 protected:
  GatedFlow() {
    workload::DomainSpec spec;
    spec.base = small_spec(64);
    spec.gates = 1;
    spec.dividers = 1;
    spec.muxes = 0;
    spec.inverters = 0;
    spec.duty_min = spec.duty_max = 0.5;
    w_ = workload::make_domain_workload(spec, tech45());
    blanket_ = ndr::assign_all(w_.nets, tech45().rules.blanket_index());
  }

  workload::DomainWorkload w_;
  ndr::RuleAssignment blanket_;
};

TEST_F(GatedFlow, WeightedPowerBelowRawAndPerNetConsistent) {
  const ndr::FlowEvaluation ev = ndr::evaluate(
      w_.tree, w_.design, tech45(), w_.nets, blanket_);
  ASSERT_TRUE(w_.design.clock_domains.enabled());
  EXPECT_LT(ev.power.weighted_switched_cap, ev.power.switched_cap);
  int weighted_nets = 0;
  for (const netlist::Net& net : w_.nets.nets) {
    const double w = ev.power.net_toggle_weight[net.id];
    EXPECT_EQ(w, w_.design.clock_domains.node_toggle_weight(net.driver));
    if (w < 1.0) ++weighted_nets;
  }
  EXPECT_GT(weighted_nets, 0);
}

TEST_F(GatedFlow, NetPowerScalesWithToggleWeight) {
  const ndr::FlowEvaluation ev = ndr::evaluate(
      w_.tree, w_.design, tech45(), w_.nets, blanket_);
  // net_power = c_sw * vdd^2 * f * weight: recover the per-net constant
  // from an unweighted net and check weighted nets against it.
  double k = 0.0;
  for (const netlist::Net& net : w_.nets.nets) {
    if (ev.power.net_toggle_weight[net.id] == 1.0 &&
        ev.power.net_switched_cap[net.id] > 0.0) {
      k = ev.power.net_power[net.id] / ev.power.net_switched_cap[net.id];
      break;
    }
  }
  ASSERT_GT(k, 0.0);
  for (const netlist::Net& net : w_.nets.nets) {
    if (ev.power.net_switched_cap[net.id] <= 0.0) continue;
    const double expected = k * ev.power.net_switched_cap[net.id] *
                            ev.power.net_toggle_weight[net.id];
    EXPECT_NEAR(ev.power.net_power[net.id], expected,
                1e-9 * expected + 1e-30)
        << "net " << net.id;
  }
}

TEST_F(GatedFlow, EmDensityScalesBySqrtToggleWeight) {
  const ndr::FlowEvaluation gated = ndr::evaluate(
      w_.tree, w_.design, tech45(), w_.nets, blanket_);
  netlist::Design plain = w_.design;
  plain.clock_domains = netlist::ClockDomainMap();
  const ndr::FlowEvaluation ref = ndr::evaluate(
      w_.tree, plain, tech45(), w_.nets, blanket_);
  for (const netlist::Net& net : w_.nets.nets) {
    const double scale = w_.design.clock_domains.node_em_scale(net.driver);
    // Post-multiplication contract: scaled density == raw density * scale,
    // bitwise (this is exactly how analyze_em computes it).
    EXPECT_EQ(gated.em.net_peak_density[net.id],
              ref.em.net_peak_density[net.id] * scale)
        << "net " << net.id;
  }
}

// The acceptance pin: the activity-weighted objective provably changes
// rule assignment vs capacitance-only on a gated workload. At an elevated
// clock frequency EM makes cheap (narrow) rules infeasible for full-rate
// nets — but a subtree gated to a quarter of the toggle rate carries
// half the RMS current, so the SAME cheap rules are feasible there and
// the optimizer commits them. Capacitance-only (domains cleared) cannot
// see the difference and leaves those nets expensive.
TEST(DomainObjective, ActivityChangesRuleAssignment) {
  workload::DomainSpec spec;
  spec.base = small_spec(96);
  spec.gates = 1;
  spec.dividers = 1;
  spec.muxes = 0;
  spec.inverters = 0;
  spec.duty_min = spec.duty_max = 0.5;
  spec.max_divide = 4;
  workload::DomainWorkload w = workload::make_domain_workload(spec, tech45());
  ASSERT_TRUE(w.design.clock_domains.enabled());

  // Crank the frequency until EM pressure splits the rule choices between
  // the full-rate and gated subtrees (the exact multiple depends on the
  // library; scan a deterministic ladder and require a split to appear).
  netlist::Design plain = w.design;
  plain.clock_domains = netlist::ClockDomainMap();
  ndr::OptimizerOptions o;
  o.use_models = false;
  bool split = false;
  for (const double mult : {10.0, 11.0, 12.0, 14.0}) {
    netlist::Design gated_d = w.design;
    gated_d.constraints.clock_freq *= mult;
    netlist::Design plain_d = plain;
    plain_d.constraints.clock_freq *= mult;
    const ndr::SmartNdrResult gated = ndr::optimize_smart_ndr(
        w.tree, gated_d, tech45(), w.nets, o);
    const ndr::SmartNdrResult capacity_only = ndr::optimize_smart_ndr(
        w.tree, plain_d, tech45(), w.nets, o);
    if (gated.assignment != capacity_only.assignment) {
      split = true;
      // The divergence must sit in the reduced-rate subtrees, and must
      // point toward CHEAPER rules there (that's the whole point).
      double gated_cap = 0.0;
      double plain_cap = 0.0;
      for (const netlist::Net& net : w.nets.nets) {
        if (w.design.clock_domains.node_toggle_weight(net.driver) >= 1.0) {
          EXPECT_EQ(gated.assignment[net.id],
                    capacity_only.assignment[net.id])
              << "full-rate net " << net.id << " should not change";
        } else {
          gated_cap += gated.final_eval.power.net_switched_cap[net.id];
          plain_cap += capacity_only.final_eval.power.net_switched_cap[net.id];
        }
      }
      EXPECT_LT(gated_cap, plain_cap);
      break;
    }
  }
  EXPECT_TRUE(split)
      << "activity weighting never changed the assignment on the ladder";
}

// ---- inter-clock signoff --------------------------------------------------

TEST(InterClock, DisabledWithoutDomains) {
  const workload::ScaleWorkload w =
      workload::make_scale_workload(small_spec(), tech45());
  const ndr::FlowEvaluation ev = ndr::evaluate(
      w.tree, w.design, tech45(), w.nets,
      ndr::assign_all(w.nets, tech45().rules.blanket_index()));
  EXPECT_FALSE(ev.inter_clock.enabled);
  EXPECT_TRUE(ev.inter_clock.pairs.empty());
  EXPECT_EQ(ev.inter_clock_violations, 0);
}

TEST(InterClock, MuxPairsLoseCommonNodeAndGainGuard) {
  workload::DomainSpec spec;
  spec.base = small_spec(64);
  spec.gates = 1;
  spec.dividers = 0;
  spec.muxes = 1;
  spec.inverters = 0;
  const workload::DomainWorkload w =
      workload::make_domain_workload(spec, tech45());
  const ndr::FlowEvaluation ev = ndr::evaluate(
      w.tree, w.design, tech45(), w.nets,
      ndr::assign_all(w.nets, tech45().rules.blanket_index()));
  ASSERT_TRUE(ev.inter_clock.enabled);
  ASSERT_FALSE(ev.inter_clock.pairs.empty());
  bool saw_mux_pair = false;
  for (const report::InterClockPair& p : ev.inter_clock.pairs) {
    const bool mux =
        w.design.clock_domains.path_crosses_mux(p.domain_a, p.domain_b);
    if (mux) {
      saw_mux_pair = true;
      EXPECT_EQ(p.common_node, -1);
      EXPECT_GT(p.guard, 0.0);
      EXPECT_GT(p.budget, w.design.constraints.max_skew);
    } else {
      EXPECT_GE(p.common_node, 0);
      EXPECT_EQ(p.guard, 0.0);
      EXPECT_EQ(p.budget, w.design.constraints.max_skew);
    }
  }
  EXPECT_TRUE(saw_mux_pair);
}

TEST(InterClock, TightBudgetOverrideFlagsViolations) {
  workload::DomainSpec spec;
  spec.base = small_spec(64);
  spec.gates = 2;
  const workload::DomainWorkload w =
      workload::make_domain_workload(spec, tech45());
  netlist::Design tight = w.design;
  tight.constraints.max_inter_clock_skew = 1e-15;  // 1 fs: nothing passes.
  const ndr::FlowEvaluation ev = ndr::evaluate(
      w.tree, tight, tech45(), w.nets,
      ndr::assign_all(w.nets, tech45().rules.blanket_index()));
  ASSERT_TRUE(ev.inter_clock.enabled);
  EXPECT_GT(ev.inter_clock_violations, 0);
  EXPECT_FALSE(ev.feasible());
  for (const report::InterClockPair& p : ev.inter_clock.pairs) {
    EXPECT_EQ(p.budget, 1e-15);
  }
}

TEST(InterClock, DefaultBudgetsAreAdditiveOnFeasibleDesigns) {
  // A design passing the global skew + uncertainty signoff must also pass
  // the derived inter-clock budgets (DESIGN.md section 11) — the check is
  // purely additive until a user pins max_inter_clock_skew.
  workload::DomainSpec spec;
  spec.base = small_spec(96);
  spec.gates = 2;
  spec.dividers = 1;
  spec.muxes = 1;
  const workload::DomainWorkload w =
      workload::make_domain_workload(spec, tech45());
  const ndr::SmartNdrResult r = ndr::optimize_smart_ndr(
      w.tree, w.design, tech45(), w.nets);
  ASSERT_TRUE(r.final_eval.feasible());
  EXPECT_EQ(r.final_eval.inter_clock_violations, 0);
  EXPECT_TRUE(r.final_eval.inter_clock.ok());
}

}  // namespace
}  // namespace sndr
