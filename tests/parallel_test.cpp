// Determinism and cache-correctness contract of the parallel subsystem:
// every parallel primitive and every parallelized flow stage must be
// bit-identical at threads=1 and threads=N, and a cached exact_eval must
// match a fresh evaluation after arbitrary move/rebuild sequences.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/smart_ndr.hpp"
#include "tech/corners.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

/// Restores the global thread budget on scope exit so tests stay isolated.
struct ThreadGuard {
  ~ThreadGuard() { common::set_thread_count(-1); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  common::set_thread_count(8);
  std::vector<std::atomic<int>> hits(1000);
  common::parallel_for(1000, 7, [&](std::int64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackAndZeroLength) {
  ThreadGuard guard;
  common::set_thread_count(0);  // 0 = serial fallback.
  EXPECT_EQ(common::thread_count(), 1);
  int calls = 0;
  common::parallel_for(5, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 5);
  common::parallel_for(0, 2, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ParallelFor, PropagatesLowestChunkException) {
  ThreadGuard guard;
  common::set_thread_count(4);
  try {
    common::parallel_for(100, 1, [&](std::int64_t i) {
      if (i >= 40) throw std::runtime_error("chunk " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "chunk 40");
  }
}

/// Restores the grain-gate threshold to its env/default resolution.
struct MinUsGuard {
  ~MinUsGuard() { common::set_parallel_min_us(-1.0); }
};

TEST(ParallelGrain, SmallEstimatedWorkStaysOnCallerThread) {
  ThreadGuard guard;
  MinUsGuard min_guard;
  common::set_thread_count(8);
  common::set_parallel_min_us(1000.0);
  // 100 items x 1 us = 100 us of estimated work, below the 1000 us gate:
  // the loop must run inline on the calling thread, never on the pool.
  std::vector<std::thread::id> ids(100);
  common::parallel_for(100, 4, /*est_us_per_item=*/1.0, [&](std::int64_t i) {
    ids[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, std::this_thread::get_id());
  // 100 x 50 us = 5000 us clears the gate: the pool path is eligible, and
  // the coverage contract (every i exactly once) still holds.
  std::vector<std::atomic<int>> hits(100);
  common::parallel_for(100, 4, /*est_us_per_item=*/50.0,
                       [&](std::int64_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelGrain, GatedReduceBitIdenticalToUngated) {
  ThreadGuard guard;
  MinUsGuard min_guard;
  common::set_thread_count(8);
  const auto map = [](std::int64_t i) {
    return 1.0 / (1.0 + static_cast<double>(i));
  };
  const auto combine = [](double a, double b) { return a + b; };
  const double ungated =
      common::parallel_reduce(10000, 64, 0.0, map, combine);
  // Force the gate closed: the serial path must reduce through the same
  // chunk association, so the sum is bitwise equal.
  common::set_parallel_min_us(1e9);
  EXPECT_EQ(common::parallel_reduce(10000, 64, /*est_us_per_item=*/1.0, 0.0,
                                    map, combine),
            ungated);
  // Gate disabled (threshold 0): the annotated overload defers to the
  // plain parallel path.
  common::set_parallel_min_us(0.0);
  EXPECT_EQ(common::parallel_reduce(10000, 64, /*est_us_per_item=*/1.0, 0.0,
                                    map, combine),
            ungated);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  // Floating-point sums depend on association; the chunked reduction must
  // associate identically at any thread count.
  const auto run = [] {
    return common::parallel_reduce(
        100000, 64, 0.0,
        [](std::int64_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
  };
  common::set_thread_count(1);
  const double serial = run();
  for (const int threads : {2, 3, 8}) {
    common::set_thread_count(threads);
    EXPECT_EQ(serial, run()) << "threads=" << threads;
  }
}

TEST(ParallelInvoke, RunsAllTasks) {
  ThreadGuard guard;
  common::set_thread_count(4);
  std::atomic<int> mask{0};
  common::parallel_invoke([&] { mask |= 1; }, [&] { mask |= 2; },
                          [&] { mask |= 4; });
  EXPECT_EQ(mask.load(), 7);
}

class ParallelFlowFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(192, 11);
  ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  ThreadGuard guard;
};

/// Exact (bitwise) equality of two full evaluations.
void expect_identical(const ndr::FlowEvaluation& a,
                      const ndr::FlowEvaluation& b) {
  ASSERT_EQ(a.timing.sink_arrival.size(), b.timing.sink_arrival.size());
  for (std::size_t i = 0; i < a.timing.sink_arrival.size(); ++i) {
    EXPECT_EQ(a.timing.sink_arrival[i], b.timing.sink_arrival[i]);
    EXPECT_EQ(a.timing.sink_slew[i], b.timing.sink_slew[i]);
  }
  ASSERT_EQ(a.variation.net_sigma.size(), b.variation.net_sigma.size());
  for (std::size_t i = 0; i < a.variation.net_sigma.size(); ++i) {
    EXPECT_EQ(a.variation.net_sigma[i], b.variation.net_sigma[i]);
    EXPECT_EQ(a.variation.net_xtalk[i], b.variation.net_xtalk[i]);
  }
  EXPECT_EQ(a.variation.max_uncertainty, b.variation.max_uncertainty);
  EXPECT_EQ(a.power.total_power, b.power.total_power);
  EXPECT_EQ(a.power.switched_cap, b.power.switched_cap);
  EXPECT_EQ(a.em.worst_density, b.em.worst_density);
  EXPECT_EQ(a.timing.max_slew, b.timing.max_slew);
  EXPECT_EQ(a.timing.skew(), b.timing.skew());
  EXPECT_EQ(a.max_track_util, b.max_track_util);
  ASSERT_EQ(a.parasitics.size(), b.parasitics.size());
  for (std::size_t i = 0; i < a.parasitics.size(); ++i) {
    EXPECT_EQ(a.parasitics[i].wirelength, b.parasitics[i].wirelength);
    EXPECT_EQ(a.parasitics[i].wire_cap_gnd, b.parasitics[i].wire_cap_gnd);
    EXPECT_EQ(a.parasitics[i].wire_cap_cpl, b.parasitics[i].wire_cap_cpl);
  }
}

TEST_F(ParallelFlowFixture, EvaluateBitIdenticalAtOneAndEightThreads) {
  common::set_thread_count(1);
  const ndr::FlowEvaluation serial =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
  common::set_thread_count(8);
  const ndr::FlowEvaluation parallel =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
  expect_identical(serial, parallel);
}

TEST_F(ParallelFlowFixture, CornersBitIdenticalAtOneAndEightThreads) {
  common::set_thread_count(1);
  const ndr::MultiCornerReport serial =
      ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket);
  common::set_thread_count(8);
  const ndr::MultiCornerReport parallel =
      ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket);
  ASSERT_EQ(serial.corners.size(), parallel.corners.size());
  for (std::size_t c = 0; c < serial.corners.size(); ++c) {
    EXPECT_EQ(serial.corners[c].corner.name, parallel.corners[c].corner.name);
    expect_identical(serial.corners[c].eval, parallel.corners[c].eval);
  }
  EXPECT_EQ(serial.worst_slew_corner(), parallel.worst_slew_corner());
  EXPECT_EQ(serial.worst_power_corner(), parallel.worst_power_corner());
}

TEST_F(ParallelFlowFixture, SmartNdrBitIdenticalAcrossThreadCounts) {
  // End-to-end determinism: training, scoring, and signoff all run through
  // the parallel engine, and the committed assignment must not depend on
  // the thread count.
  ndr::OptimizerOptions opt;
  opt.threads = 1;
  const ndr::SmartNdrResult serial =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
  opt.threads = 8;
  const ndr::SmartNdrResult parallel =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.final_eval.power.total_power,
            parallel.final_eval.power.total_power);
  EXPECT_EQ(parallel.stats.threads_used, 8);
}

class ExactCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    f = test::small_flow(96, 23);
    blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
    state = std::make_unique<ndr::AssignmentState>(f.cts.tree, f.design,
                                                   f.tech, f.nets, aopt);
    ev = ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket, aopt);
    state->rebuild(blanket, ev);
  }

  /// Fresh (uncached) reference evaluation of (net, rule).
  ndr::NetExact fresh(int net_id, int rule) const {
    return ndr::evaluate_net_exact(
        f.cts.tree, f.design, f.tech, f.nets[net_id], f.tech.rules[rule],
        state->summary(net_id).driver_res, f.design.constraints.clock_freq);
  }

  static void expect_scalars_equal(const ndr::NetExact& a,
                                   const ndr::NetExact& b) {
    EXPECT_EQ(a.cap_switched, b.cap_switched);
    EXPECT_EQ(a.step_slew_worst, b.step_slew_worst);
    EXPECT_EQ(a.sigma_worst, b.sigma_worst);
    EXPECT_EQ(a.xtalk_worst, b.xtalk_worst);
    EXPECT_EQ(a.em_peak, b.em_peak);
    EXPECT_EQ(a.wire_delay_mean, b.wire_delay_mean);
    EXPECT_EQ(a.wire_delay_worst, b.wire_delay_worst);
  }

  test::Flow f;
  timing::AnalysisOptions aopt;
  ndr::RuleAssignment blanket;
  std::unique_ptr<ndr::AssignmentState> state;
  ndr::FlowEvaluation ev;
};

TEST_F(ExactCacheFixture, SecondCallHitsAndMatches) {
  const int net = f.nets.size() / 2;
  const ndr::NetExact first = state->exact_eval(net, 1);
  const auto misses = state->exact_cache_misses();
  const ndr::NetExact second = state->exact_eval(net, 1);
  EXPECT_EQ(state->exact_cache_misses(), misses);  // no new miss.
  EXPECT_GE(state->exact_cache_hits(), 1);
  expect_scalars_equal(first, second);
  expect_scalars_equal(second, fresh(net, 1));
}

TEST_F(ExactCacheFixture, CachedMatchesFreshAfterMovesAndRebuild) {
  // Warm the cache broadly, then churn the state with moves and a rebuild;
  // every subsequent cached answer must equal a from-scratch evaluation.
  for (int net = 0; net < f.nets.size(); net += 3) {
    for (int r = 0; r < f.tech.rules.size(); ++r) state->exact_eval(net, r);
  }
  ndr::RuleAssignment a = blanket;
  for (const int net : {1, f.nets.size() / 3, f.nets.size() - 1}) {
    const ndr::NetExact exact = state->exact_eval(net, 1);
    state->apply_move(net, 1, exact);
    a[net] = 1;
  }
  for (const int net : {0, 1, f.nets.size() / 3, f.nets.size() - 1}) {
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      expect_scalars_equal(state->exact_eval(net, r), fresh(net, r));
    }
  }

  const ndr::FlowEvaluation ev2 =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt);
  state->rebuild(a, ev2);
  for (const int net : {0, f.nets.size() / 2}) {
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      expect_scalars_equal(state->exact_eval(net, r), fresh(net, r));
    }
  }
}

TEST_F(ExactCacheFixture, ApplyMoveKeepsCacheWarmAndConsistent) {
  // A move changes no exact_eval input (the rule is part of the key), so
  // the whole cache survives it — and every surviving entry must still
  // agree with a from-scratch evaluation.
  const int moved = 2;
  const int other = f.nets.size() - 1;
  state->exact_eval(moved, 0);
  state->exact_eval(other, 1);
  const ndr::NetExact exact = state->exact_eval(moved, 1);
  const auto misses_before = state->exact_cache_misses();

  state->apply_move(moved, 1, exact);

  expect_scalars_equal(state->exact_eval(other, 1), fresh(other, 1));
  expect_scalars_equal(state->exact_eval(moved, 0), fresh(moved, 0));
  expect_scalars_equal(state->exact_eval(moved, 1), fresh(moved, 1));
  EXPECT_EQ(state->exact_cache_misses(), misses_before);  // all hits.
}

TEST_F(ExactCacheFixture, RebuildKeepsEntriesWithUnchangedContext) {
  // exact_eval is keyed on the net's electrical context (driver_res); a
  // resync that does not change it must keep the memoized rows warm — this
  // is what lets the cache survive the optimizer/annealer refresh cadence.
  state->exact_eval(0, 1);
  state->rebuild(blanket, ev);
  const auto misses_before = state->exact_cache_misses();
  const ndr::NetExact cached = state->exact_eval(0, 1);
  EXPECT_EQ(state->exact_cache_misses(), misses_before);
  EXPECT_GE(state->exact_cache_hits(), 1);
  expect_scalars_equal(cached, fresh(0, 1));
}

}  // namespace
}  // namespace sndr
