#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/congestion.hpp"
#include "netlist/design.hpp"

namespace sndr::netlist {
namespace {

ClockTree two_level_tree() {
  // source -> buffer -> (steiner -> sink0, sink1)
  ClockTree t;
  const int src = t.add_source({0, 0});
  const int buf = t.add_buffer({10, 0}, src, 0);
  const int st = t.add_steiner({20, 0}, buf);
  t.add_sink({20, 10}, st, 0);
  t.add_sink({30, 0}, st, 1);
  return t;
}

TEST(ClockTree, Construction) {
  const ClockTree t = two_level_tree();
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.count(NodeKind::kSink), 2);
  EXPECT_EQ(t.count(NodeKind::kBuffer), 1);
  EXPECT_EQ(t.count(NodeKind::kSteiner), 1);
  EXPECT_NO_THROW(t.validate(2));
}

TEST(ClockTree, SecondSourceThrows) {
  ClockTree t;
  t.add_source({0, 0});
  EXPECT_THROW(t.add_source({1, 1}), std::logic_error);
}

TEST(ClockTree, InvalidParentThrows) {
  ClockTree t;
  t.add_source({0, 0});
  EXPECT_THROW(t.add_steiner({1, 1}, 7), std::logic_error);
  EXPECT_THROW(t.add_steiner({1, 1}, -1), std::logic_error);
}

TEST(ClockTree, SinkCannotHaveChildren) {
  ClockTree t;
  const int src = t.add_source({0, 0});
  const int sink = t.add_sink({1, 0}, src, 0);
  EXPECT_THROW(t.add_steiner({2, 0}, sink), std::logic_error);
}

TEST(ClockTree, ValidateCatchesMissingSink) {
  const ClockTree t = two_level_tree();
  EXPECT_THROW(t.validate(3), std::logic_error);  // sink 2 missing.
}

TEST(ClockTree, ValidateCatchesDuplicateSink) {
  ClockTree t;
  const int src = t.add_source({0, 0});
  t.add_sink({1, 0}, src, 0);
  t.add_sink({2, 0}, src, 0);
  EXPECT_THROW(t.validate(1), std::logic_error);
  EXPECT_THROW(t.validate(2), std::logic_error);  // also: sink 1 missing.
}

TEST(ClockTree, TopologicalOrderParentsFirst) {
  const ClockTree t = two_level_tree();
  const auto order = t.topological_order();
  ASSERT_EQ(order.size(), 5u);
  std::vector<int> pos(t.size());
  for (int i = 0; i < t.size(); ++i) pos[order[i]] = i;
  for (int id = 0; id < t.size(); ++id) {
    if (t.node(id).parent >= 0) {
      EXPECT_LT(pos[t.node(id).parent], pos[id]);
    }
  }
}

TEST(ClockTree, BufferDepth) {
  const ClockTree t = two_level_tree();
  EXPECT_EQ(t.buffer_depth(0), 0);  // source.
  EXPECT_EQ(t.buffer_depth(1), 1);  // the buffer itself.
  EXPECT_EQ(t.buffer_depth(3), 1);  // sink below one buffer.
  EXPECT_EQ(t.max_buffer_depth(), 1);
}

TEST(ClockTree, EdgeLengthDefaultsToManhattan) {
  const ClockTree t = two_level_tree();
  EXPECT_DOUBLE_EQ(t.edge_length(1), 10.0);
  EXPECT_DOUBLE_EQ(t.edge_length(3), 10.0);
  EXPECT_DOUBLE_EQ(t.edge_length(0), 0.0);  // root has no edge.
  EXPECT_DOUBLE_EQ(t.total_wirelength(), 40.0);
}

TEST(ClockTree, SetPathValidatesEndpoints) {
  ClockTree t = two_level_tree();
  EXPECT_NO_THROW(t.set_path(1, {{0, 0}, {5, 0}, {5, 5}, {10, 5}, {10, 0}}));
  EXPECT_DOUBLE_EQ(t.edge_length(1), 20.0);
  EXPECT_THROW(t.set_path(1, {{0, 0}, {9, 0}}), std::logic_error);
  EXPECT_THROW(t.set_path(1, {{0, 0}}), std::logic_error);
  EXPECT_THROW(t.set_path(0, {{0, 0}, {1, 1}}), std::logic_error);
}

TEST(ClockTree, EnsureDefaultPaths) {
  ClockTree t = two_level_tree();
  t.ensure_default_paths();
  for (int id = 1; id < t.size(); ++id) {
    EXPECT_GE(t.node(id).path.size(), 2u);
  }
  EXPECT_NO_THROW(t.validate(2));
}

TEST(ClockTree, SetCellOnlyOnBuffers) {
  ClockTree t = two_level_tree();
  t.set_cell(1, 3);
  EXPECT_EQ(t.node(1).cell, 3);
  EXPECT_THROW(t.set_cell(2, 1), std::logic_error);
}

TEST(ClockTree, MoveNodeClearsIncidentPaths) {
  ClockTree t = two_level_tree();
  t.ensure_default_paths();
  t.move_node(2, {25, 5});
  EXPECT_TRUE(t.node(2).path.empty());
  EXPECT_TRUE(t.node(3).path.empty());
  EXPECT_TRUE(t.node(4).path.empty());
  EXPECT_FALSE(t.node(1).path.empty());
}

TEST(ClockNets, TwoLevelDecomposition) {
  const ClockTree t = two_level_tree();
  const NetList nets = build_nets(t);
  ASSERT_EQ(nets.size(), 2);
  // Net 0: source -> buffer input.
  EXPECT_EQ(nets[0].driver, 0);
  EXPECT_EQ(nets[0].depth, 0);
  ASSERT_EQ(nets[0].loads.size(), 1u);
  EXPECT_EQ(nets[0].loads[0], 1);
  // Net 1: buffer -> both sinks through the steiner node.
  EXPECT_EQ(nets[1].driver, 1);
  EXPECT_EQ(nets[1].depth, 1);
  EXPECT_EQ(nets[1].loads.size(), 2u);
  EXPECT_EQ(nets[1].wires.size(), 3u);  // steiner + 2 sinks.
  // Edge mapping.
  EXPECT_EQ(nets.net_of_edge[0], -1);
  EXPECT_EQ(nets.net_of_edge[1], 0);
  EXPECT_EQ(nets.net_of_edge[2], 1);
  EXPECT_EQ(nets.net_driven[0], 0);
  EXPECT_EQ(nets.net_driven[1], 1);
  EXPECT_EQ(nets.net_driven[2], -1);
}

TEST(ClockNets, WirelengthSplitsAcrossNets) {
  const ClockTree t = two_level_tree();
  const NetList nets = build_nets(t);
  EXPECT_DOUBLE_EQ(net_wirelength(t, nets[0]), 10.0);
  EXPECT_DOUBLE_EQ(net_wirelength(t, nets[1]), 30.0);
}

TEST(ClockNets, DepthIncreasesThroughBufferChain) {
  ClockTree t;
  int n = t.add_source({0, 0});
  n = t.add_buffer({1, 0}, n, 0);
  n = t.add_buffer({2, 0}, n, 0);
  t.add_sink({3, 0}, n, 0);
  const NetList nets = build_nets(t);
  ASSERT_EQ(nets.size(), 3);
  EXPECT_EQ(nets[0].depth, 0);
  EXPECT_EQ(nets[1].depth, 1);
  EXPECT_EQ(nets[2].depth, 2);
}

TEST(CongestionMap, CellIndexing) {
  const CongestionMap m(geom::BBox(0, 0, 100, 100), 10, 10, 0.5, 1.0);
  EXPECT_EQ(m.cell_count(), 100);
  EXPECT_EQ(m.cell_index({5, 5}), 0);
  EXPECT_EQ(m.cell_index({95, 95}), 99);
  EXPECT_EQ(m.cell_index({-100, -100}), 0);    // clamped.
  EXPECT_EQ(m.cell_index({1000, 1000}), 99);   // clamped.
  const geom::BBox cell = m.cell_box(11);
  EXPECT_EQ(cell.lo(), (geom::Point{10, 10}));
  EXPECT_EQ(cell.hi(), (geom::Point{20, 20}));
}

TEST(CongestionMap, InvalidArgsThrow) {
  EXPECT_THROW(CongestionMap(geom::BBox(0, 0, 1, 1), 0, 5, 0.5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(CongestionMap(geom::BBox{}, 2, 2, 0.5, 1.0),
               std::invalid_argument);
}

TEST(CongestionMap, AvgOccupancyWeighted) {
  CongestionMap m(geom::BBox(0, 0, 100, 100), 2, 1, 0.0, 1.0);
  m.set_occupancy_cell(0, 0.2);
  m.set_occupancy_cell(1, 0.8);
  // 50um in each cell: exact despite step quantization.
  EXPECT_NEAR(m.avg_occupancy({{0, 50}, {100, 50}}), 0.5, 1e-9);
  // Off-grid span: correct within the documented step quantization.
  EXPECT_NEAR(m.avg_occupancy({{20, 50}, {80, 50}}), 0.5, 0.15);
  // Entirely inside cell 0.
  EXPECT_NEAR(m.avg_occupancy({{0, 50}, {40, 50}}), 0.2, 1e-9);
}

TEST(CongestionMap, ForEachCellLengthsSumToPathLength) {
  const CongestionMap m(geom::BBox(0, 0, 100, 100), 7, 3, 0.5, 1.0);
  const geom::Path path{{3, 7}, {88, 7}, {88, 93}, {15, 93}};
  double total = 0.0;
  m.for_each_cell(path, [&](int, double len) { total += len; });
  EXPECT_NEAR(total, geom::path_length(path), 1e-9);
}

TEST(CongestionMap, UniformCapacityDerivation) {
  const CongestionMap m = CongestionMap::uniform(
      geom::BBox(0, 0, 100, 100), 10, 10, 0.3, 0.28, 0.5);
  // Cell 10x10 um => 100/0.28 track-um * 0.5.
  EXPECT_NEAR(m.capacity_cell(0), 100.0 / 0.28 * 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(m.occupancy_at({50, 50}), 0.3);
}

TEST(RoutingUsage, AddAndOverflow) {
  CongestionMap m(geom::BBox(0, 0, 100, 100), 1, 1, 0.5, 100.0);
  RoutingUsage u(&m);
  EXPECT_EQ(u.overflow_cells(), 0);
  u.add({{0, 50}, {50, 50}}, 1.0);
  EXPECT_NEAR(u.used_cell(0), 50.0, 1e-9);
  EXPECT_NEAR(u.max_utilization(), 0.5, 1e-9);
  EXPECT_TRUE(u.fits({{0, 60}, {40, 60}}, 1.0));
  EXPECT_FALSE(u.fits({{0, 60}, {60, 60}}, 1.0));
  u.add({{0, 60}, {60, 60}}, 1.0);
  EXPECT_EQ(u.overflow_cells(), 1);
  // Negative delta (rule downgrade) releases capacity.
  u.add({{0, 60}, {60, 60}}, -1.0);
  EXPECT_EQ(u.overflow_cells(), 0);
}

TEST(Design, TotalSinkCap) {
  Design d;
  d.sinks.push_back({"a", {0, 0}, 2e-15});
  d.sinks.push_back({"b", {1, 1}, 3e-15});
  EXPECT_DOUBLE_EQ(d.total_sink_cap(), 5e-15);
}

}  // namespace
}  // namespace sndr::netlist
