#include <gtest/gtest.h>

#include <numeric>

#include "ndr/smart_ndr.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using units::ps;

std::vector<double> blanket_offsets(const test::Flow& f) {
  const auto ev = ndr::evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  std::vector<double> off = ev.timing.sink_arrival;
  const double mean =
      std::accumulate(off.begin(), off.end(), 0.0) / off.size();
  for (double& a : off) a -= mean;
  return off;
}

TEST(UsefulSkew, DisabledByDefault) {
  const netlist::Design d = test::small_design(8);
  EXPECT_FALSE(d.useful_skew.enabled());
}

TEST(UsefulSkew, AttachShapes) {
  netlist::Design d = test::small_design(100, 5);
  workload::attach_useful_skew(d, 0.3, 10.0, 40.0);
  ASSERT_TRUE(d.useful_skew.enabled());
  ASSERT_EQ(d.useful_skew.lo.size(), 100u);
  int tight = 0;
  for (std::size_t s = 0; s < 100; ++s) {
    EXPECT_LT(d.useful_skew.lo[s], d.useful_skew.hi[s]);
    const double half =
        0.5 * (d.useful_skew.hi[s] - d.useful_skew.lo[s]);
    EXPECT_TRUE(std::abs(half - 10 * ps) < 1e-15 ||
                std::abs(half - 40 * ps) < 1e-15);
    if (std::abs(half - 10 * ps) < 1e-15) ++tight;
  }
  // ~30% tight, loose statistical bound.
  EXPECT_GT(tight, 10);
  EXPECT_LT(tight, 55);
}

TEST(UsefulSkew, AttachIsDeterministic) {
  netlist::Design a = test::small_design(50, 5);
  netlist::Design b = test::small_design(50, 5);
  workload::attach_useful_skew(a, 0.5, 10.0, 40.0);
  workload::attach_useful_skew(b, 0.5, 10.0, 40.0);
  EXPECT_EQ(a.useful_skew.lo, b.useful_skew.lo);
  EXPECT_EQ(a.useful_skew.hi, b.useful_skew.hi);
}

TEST(UsefulSkew, CentersShiftWindows) {
  netlist::Design d = test::small_design(4, 5);
  workload::attach_useful_skew(d, 0.0, 10.0, 20.0,
                               {1 * ps, -2 * ps, 0.0, 3 * ps});
  EXPECT_DOUBLE_EQ(d.useful_skew.lo[1], -2 * ps - 20 * ps);
  EXPECT_DOUBLE_EQ(d.useful_skew.hi[3], 3 * ps + 20 * ps);
}

TEST(UsefulSkew, EvaluationCountsWindowViolations) {
  test::Flow f = test::small_flow(64, 13);
  const std::vector<double> off = blanket_offsets(f);
  // Impossible windows: everything violates.
  f.design.useful_skew.lo.assign(f.design.sinks.size(), 1.0);
  f.design.useful_skew.hi.assign(f.design.sinks.size(), 2.0);
  auto ev = ndr::evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  EXPECT_EQ(ev.window_violations,
            static_cast<int>(f.design.sinks.size()));
  EXPECT_FALSE(ev.feasible());

  // Windows centered on the blanket offsets: all clean.
  workload::attach_useful_skew(f.design, 0.5, 5.0, 30.0, off);
  ev = ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                     ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  EXPECT_EQ(ev.window_violations, 0);
}

TEST(UsefulSkew, OptimizerRespectsWindows) {
  test::Flow f = test::small_flow(256, 31);
  const std::vector<double> off = blanket_offsets(f);
  workload::attach_useful_skew(f.design, 0.3, 6.0, 60.0, off);
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  EXPECT_TRUE(smart.final_eval.feasible());
  EXPECT_EQ(smart.final_eval.window_violations, 0);
  // Still saves power versus blanket.
  const auto blanket = ndr::evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  EXPECT_LT(smart.final_eval.power.total_power, blanket.power.total_power);
}

TEST(UsefulSkew, LooserWindowsNeverHurt) {
  test::Flow f = test::small_flow(256, 31);
  const std::vector<double> off = blanket_offsets(f);

  workload::attach_useful_skew(f.design, 1.0, 4.0, 4.0, off);
  const ndr::SmartNdrResult tight =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);

  workload::attach_useful_skew(f.design, 1.0, 80.0, 80.0, off);
  const ndr::SmartNdrResult loose =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);

  EXPECT_LE(loose.final_eval.power.total_power,
            tight.final_eval.power.total_power + 1e-9);
}

}  // namespace
}  // namespace sndr
