#include <gtest/gtest.h>

#include <cmath>

#include "ndr/evaluation.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"
#include "timing/delay_metrics.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace sndr::timing {
namespace {

using units::fF;
using units::ps;

TEST(DelayMetrics, SinglePoleConsistency) {
  // One pole with tau: m1 = tau, circuit m2 = tau^2.
  const double tau = 50 * ps;
  const double m1 = tau;
  const double m2 = tau * tau;
  EXPECT_DOUBLE_EQ(delay_elmore(m1), tau);
  // D2M is exact for one pole: the 50% point ln2 * tau.
  EXPECT_NEAR(delay_d2m(m1, m2), 0.69315 * tau, 1e-15);
  // Slew is exact for one pole: ln9 * tau.
  EXPECT_NEAR(step_slew(m1, m2), 2.19722 * tau, 1e-15);
}

TEST(DelayMetrics, D2mNeverExceedsElmore) {
  // For RC trees the circuit m2 >= m1^2 (Cauchy-Schwarz over the shared-
  // resistance kernel), which makes D2M <= ln2^{-1}-free Elmore bound.
  for (const double ratio : {1.0, 1.5, 2.0, 3.0, 10.0}) {
    const double m1 = 10 * ps;
    const double m2 = ratio * m1 * m1;
    EXPECT_LE(delay_d2m(m1, m2), delay_elmore(m1) + 1e-18);
  }
}

TEST(DelayMetrics, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(delay_d2m(1e-12, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(step_slew(1e-12, 0.4e-24), 0.0);  // 2*m2 < m1^2 clamps.
}

TEST(DelayMetrics, PeriSlewCombination) {
  EXPECT_DOUBLE_EQ(peri_slew(30 * ps, 40 * ps), 50 * ps);
  EXPECT_DOUBLE_EQ(peri_slew(0.0, 40 * ps), 40 * ps);
  EXPECT_GE(peri_slew(30 * ps, 40 * ps), 40 * ps);  // never improves.
}

class TimingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    flow_ = test::small_flow(48);
    assignment_.assign(flow_.nets.size(), flow_.tech.rules.blanket_index());
    const extract::Extractor ex(flow_.tech, flow_.design);
    parasitics_ = ex.extract_all(flow_.cts.tree, flow_.nets, assignment_);
  }

  test::Flow flow_;
  std::vector<int> assignment_;
  std::vector<extract::NetParasitics> parasitics_;
};

TEST_F(TimingFixture, AllSinksTimed) {
  const TimingReport rep = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                   flow_.nets, parasitics_);
  ASSERT_EQ(rep.sink_arrival.size(), flow_.design.sinks.size());
  for (const double a : rep.sink_arrival) {
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 5'000 * ps);
  }
  EXPECT_GE(rep.max_latency, rep.min_latency);
  EXPECT_GE(rep.skew(), 0.0);
  EXPECT_GT(rep.max_slew, 0.0);
}

TEST_F(TimingFixture, CtsTreeIsWellBalanced) {
  const TimingReport rep = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                   flow_.nets, parasitics_);
  // The embedder balances Elmore; D2M timing should stay within the design
  // skew budget with margin.
  EXPECT_LE(rep.skew(), flow_.design.constraints.max_skew);
}

TEST_F(TimingFixture, ElmoreLatencyExceedsD2m) {
  AnalysisOptions d2m;
  AnalysisOptions elm;
  elm.use_d2m = false;
  const TimingReport a = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                 flow_.nets, parasitics_, d2m);
  const TimingReport b = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                 flow_.nets, parasitics_, elm);
  for (std::size_t s = 0; s < a.sink_arrival.size(); ++s) {
    EXPECT_LE(a.sink_arrival[s], b.sink_arrival[s] + 1e-18);
  }
}

TEST_F(TimingFixture, MillerFactorSlowsNets) {
  AnalysisOptions base;
  AnalysisOptions miller;
  miller.timing_miller = 2.0;
  const TimingReport a = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                 flow_.nets, parasitics_, base);
  const TimingReport b = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                 flow_.nets, parasitics_, miller);
  EXPECT_GT(b.max_latency, a.max_latency);
}

TEST_F(TimingFixture, SlewViolationCounting) {
  const TimingReport rep = analyze(flow_.cts.tree, flow_.design, flow_.tech,
                                   flow_.nets, parasitics_);
  EXPECT_EQ(rep.slew_violations(1.0), 0);             // 1 second limit.
  EXPECT_EQ(rep.slew_violations(0.0), flow_.nets.size());
}

TEST_F(TimingFixture, SizeMismatchThrows) {
  parasitics_.pop_back();
  EXPECT_THROW(analyze(flow_.cts.tree, flow_.design, flow_.tech, flow_.nets,
                       parasitics_),
               std::invalid_argument);
}

// Rule-monotonicity properties of the variation engine, swept over nets.
class VariationProps : public ::testing::TestWithParam<int> {
 protected:
  static test::Flow& flow() {
    static test::Flow f = test::small_flow(48);
    return f;
  }
};

// Builds hand-made parasitics for a straight line of `pieces` x `piece_um`
// routed with `rule`, terminated by a small pin, consistent with the layer
// model (so net_variation's perturbation math applies exactly).
extract::NetParasitics line_parasitics(const tech::Technology& t,
                                       const tech::RoutingRule& rule,
                                       int pieces, double piece_um) {
  extract::NetParasitics par;
  const double res = tech::wire_res_per_um(t.clock_layer, rule) * piece_um;
  const double cap =
      tech::wire_cap_gnd_per_um(t.clock_layer, rule) * piece_um;
  int cur = 0;
  for (int i = 0; i < pieces; ++i) {
    cur = par.rc.add_node(cur, res, cap, 0.0);
    par.rc.node(cur).wire_len = piece_um;
    par.wirelength += piece_um;
    par.wire_cap_gnd += cap;
  }
  par.rc.node(cur).cap_gnd += 2e-15;
  par.load_cap = 2e-15;
  par.load_rc_index = {cur};
  return par;
}

TEST_P(VariationProps, WiderRuleShrinksSigmaOnResistanceDominatedNets) {
  // The paper's claim "wider wires -> smaller delay sigma" holds where wire
  // resistance dominates (long nets, weak upstream R). On short, driver-
  // dominated nets the cap-variation term (same driver R, larger dC) can
  // win, which is exactly why smart NDR narrows such nets. Test the claim
  // in its regime: a long line with a modest driver.
  const tech::Technology t = [] {
    tech::Technology t = tech::Technology::make_default_45nm();
    t.clock_layer.sigma_thickness = 0.0;  // isolate width variation.
    return t;
  }();
  const int pieces = 5 + GetParam();
  const auto par_1w = line_parasitics(t, t.rules[0], pieces, 100.0);
  const auto par_2w = line_parasitics(t, t.rules[2], pieces, 100.0);
  const auto v1 = net_variation(par_1w, t, t.rules[0], 100.0);
  const auto v2 = net_variation(par_2w, t, t.rules[2], 100.0);
  EXPECT_LT(v2.worst_sigma(), v1.worst_sigma());
}

TEST_P(VariationProps, WiderSpacingShrinksCrosstalk) {
  test::Flow& f = flow();
  const int net_id = GetParam() % f.nets.size();
  const extract::Extractor ex(f.tech, f.design);
  const AnalysisOptions opt;
  const double rdrv = net_driver_res(f.cts.tree, f.tech, f.nets[net_id], opt);

  const auto par_1s = ex.extract_net(f.cts.tree, f.nets[net_id],
                                     f.tech.rules[0]);  // 1W1S
  const auto par_2s = ex.extract_net(f.cts.tree, f.nets[net_id],
                                     f.tech.rules[1]);  // 1W2S
  const auto v1 = net_variation(par_1s, f.tech, f.tech.rules[0], rdrv);
  const auto v2 = net_variation(par_2s, f.tech, f.tech.rules[1], rdrv);
  EXPECT_LE(v2.worst_xtalk(), v1.worst_xtalk() + 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Nets, VariationProps, ::testing::Range(0, 12));

TEST_F(TimingFixture, VariationReportStructure) {
  const VariationReport rep =
      analyze_variation(flow_.cts.tree, flow_.design, flow_.tech, flow_.nets,
                        parasitics_, assignment_);
  ASSERT_EQ(rep.sink_uncertainty.size(), flow_.design.sinks.size());
  for (std::size_t s = 0; s < rep.sink_uncertainty.size(); ++s) {
    EXPECT_NEAR(rep.sink_uncertainty[s],
                3.0 * rep.sink_sigma[s] + rep.sink_xtalk[s], 1e-18);
    EXPECT_GE(rep.sink_xtalk[s], 0.0);
    EXPECT_GE(rep.sink_sigma[s], 0.0);
  }
  EXPECT_GT(rep.max_uncertainty, 0.0);
  EXPECT_EQ(rep.violations(1.0), 0);
  EXPECT_EQ(rep.violations(0.0),
            static_cast<int>(flow_.design.sinks.size()));
}

TEST_F(TimingFixture, DefaultRulesHaveMoreUncertaintyThanBlanket) {
  const auto blanket =
      analyze_variation(flow_.cts.tree, flow_.design, flow_.tech, flow_.nets,
                        parasitics_, assignment_);
  const std::vector<int> def(assignment_.size(), 0);
  const extract::Extractor ex(flow_.tech, flow_.design);
  const auto par_def = ex.extract_all(flow_.cts.tree, flow_.nets, def);
  const auto all_def = analyze_variation(flow_.cts.tree, flow_.design,
                                         flow_.tech, flow_.nets, par_def,
                                         def);
  EXPECT_GT(all_def.max_uncertainty, blanket.max_uncertainty);
}

TEST_F(TimingFixture, AggressorActivityScalesXtalk) {
  tech::Technology quiet = flow_.tech;
  quiet.aggressor_activity = 0.0;
  const auto rep = analyze_variation(flow_.cts.tree, flow_.design, quiet,
                                     flow_.nets, parasitics_, assignment_);
  for (const double x : rep.sink_xtalk) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NetDriverRes, SourceVsBuffer) {
  test::Flow f = test::small_flow(16);
  AnalysisOptions opt;
  opt.source_drive_res = 123.0;
  EXPECT_DOUBLE_EQ(net_driver_res(f.cts.tree, f.tech, f.nets[0], opt), 123.0);
  // Any deeper net is buffer-driven.
  const auto& deep = f.nets[f.nets.size() - 1];
  const auto& drv = f.cts.tree.node(deep.driver);
  ASSERT_EQ(drv.kind, netlist::NodeKind::kBuffer);
  EXPECT_DOUBLE_EQ(net_driver_res(f.cts.tree, f.tech, deep, opt),
                   f.tech.buffers[drv.cell].drive_res);
}

}  // namespace
}  // namespace sndr::timing
