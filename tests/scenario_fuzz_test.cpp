// Property-based scenario fuzzing of the multi-domain flow (ISSUE 8's
// headline deliverable; DESIGN.md section 11 catalogs the invariants).
//
// Each test draws randomized multi-domain scenarios (fuzz_util.hpp) and
// asserts properties that must hold for EVERY workload, not just the
// golden ones:
//
//   * bitwise determinism: evaluate / optimize / anneal results identical
//     at 1 vs 8 threads, under a geometry byte budget vs unbounded, and
//     across checkpoint-resume vs uninterrupted;
//   * metamorphic: raising a gated subtree's activity never makes the
//     optimizer pick a CHEAPER rule for its nets when the global
//     constraints are relaxed to equal slack (the EM-feasible set only
//     shrinks); an all-neutral domain graph (duty 1.0, no dividers)
//     degenerates bitwise to the single-tree world;
//   * accounting: the weighted-power rollup, toggle-weight bounds, the
//     inter-clock pair report, and the search state's energy all agree.
//
// Reproduce one failure from the seed the trace prints:
//   SNDR_FUZZ_SEED=<base> SNDR_FUZZ_ITERS=<n> ctest -R <test>
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "dse/explorer.hpp"
#include "flow/checkpoint.hpp"
#include "fuzz_util.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/smart_ndr.hpp"

namespace sndr {
namespace {

namespace fuzz = test::fuzz;

/// Restores the process-wide lane count on scope exit so fuzz tests don't
/// leak thread-count state into each other.
class ThreadGuard {
 public:
  ThreadGuard() : saved_(common::thread_count()) {}
  ~ThreadGuard() { common::set_thread_count(saved_); }

 private:
  int saved_;
};

const tech::Technology& default_tech() {
  static const tech::Technology tech = tech::Technology::make_default_45nm();
  return tech;
}

/// Bitwise equality of everything downstream analyses derive from.
void expect_eval_bitwise(const ndr::FlowEvaluation& a,
                         const ndr::FlowEvaluation& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.power.net_switched_cap, b.power.net_switched_cap);
  EXPECT_EQ(a.power.net_power, b.power.net_power);
  EXPECT_EQ(a.power.net_toggle_weight, b.power.net_toggle_weight);
  EXPECT_EQ(a.power.switched_cap, b.power.switched_cap);
  EXPECT_EQ(a.power.weighted_switched_cap, b.power.weighted_switched_cap);
  EXPECT_EQ(a.power.total_power, b.power.total_power);
  EXPECT_EQ(a.timing.sink_arrival, b.timing.sink_arrival);
  EXPECT_EQ(a.variation.sink_uncertainty, b.variation.sink_uncertainty);
  EXPECT_EQ(a.em.net_slack, b.em.net_slack);
  EXPECT_EQ(a.inter_clock.violations, b.inter_clock.violations);
  EXPECT_EQ(a.feasible(), b.feasible());
}

ndr::OptimizerOptions exact_options() {
  ndr::OptimizerOptions o;
  o.use_models = false;  // exact scoring: no model-training cost per run.
  return o;
}

// ---- bitwise determinism --------------------------------------------------

TEST(ScenarioFuzz, EvaluateThreadInvariance) {
  ThreadGuard guard;
  const int n = fuzz::scenario_count(60);
  for (int i = 0; i < n; ++i) {
    const fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(1, i));
    SCOPED_TRACE(s.label());
    const workload::DomainWorkload w = fuzz::build(s, default_tech());
    const ndr::RuleAssignment blanket =
        ndr::assign_all(w.nets, default_tech().rules.blanket_index());
    common::set_thread_count(1);
    const ndr::FlowEvaluation serial = ndr::evaluate(
        w.tree, w.design, default_tech(), w.nets, blanket);
    common::set_thread_count(8);
    const ndr::FlowEvaluation parallel = ndr::evaluate(
        w.tree, w.design, default_tech(), w.nets, blanket);
    expect_eval_bitwise(serial, parallel);
  }
}

TEST(ScenarioFuzz, OptimizeThreadAndBudgetInvariance) {
  ThreadGuard guard;
  const int n = fuzz::scenario_count(30);
  for (int i = 0; i < n; ++i) {
    const fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(2, i));
    SCOPED_TRACE(s.label());
    const workload::DomainWorkload w = fuzz::build(s, default_tech());

    ndr::OptimizerOptions base = exact_options();
    base.threads = 1;
    const ndr::SmartNdrResult a = ndr::optimize_smart_ndr(
        w.tree, w.design, default_tech(), w.nets, base);

    ndr::OptimizerOptions threaded = exact_options();
    threaded.threads = 8;
    const ndr::SmartNdrResult b = ndr::optimize_smart_ndr(
        w.tree, w.design, default_tech(), w.nets, threaded);

    ndr::OptimizerOptions budgeted = exact_options();
    budgeted.threads = 8;
    budgeted.geometry_budget_bytes = 32 * 1024;  // forces LRU eviction.
    const ndr::SmartNdrResult c = ndr::optimize_smart_ndr(
        w.tree, w.design, default_tech(), w.nets, budgeted);

    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.assignment, c.assignment);
    expect_eval_bitwise(a.final_eval, b.final_eval);
    expect_eval_bitwise(a.final_eval, c.final_eval);
  }
}

TEST(ScenarioFuzz, AnnealThreadAndBudgetInvariance) {
  ThreadGuard guard;
  const int n = fuzz::scenario_count(20);
  for (int i = 0; i < n; ++i) {
    const fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(3, i));
    SCOPED_TRACE(s.label());
    const workload::DomainWorkload w = fuzz::build(s, default_tech());
    const ndr::RuleAssignment blanket =
        ndr::assign_all(w.nets, default_tech().rules.blanket_index());

    ndr::AnnealOptions base;
    base.iterations = 250;
    base.threads = 1;
    const ndr::AnnealResult a = ndr::anneal_rules(
        w.tree, w.design, default_tech(), w.nets, blanket, base);

    ndr::AnnealOptions alt = base;
    alt.threads = 8;
    alt.geometry_budget_bytes = 32 * 1024;
    const ndr::AnnealResult b = ndr::anneal_rules(
        w.tree, w.design, default_tech(), w.nets, blanket, alt);

    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.start_cap, b.start_cap);
    EXPECT_EQ(a.end_cap, b.end_cap);
    expect_eval_bitwise(a.final_eval, b.final_eval);
  }
}

TEST(ScenarioFuzz, AnnealCheckpointResumeBitwise) {
  const int n = fuzz::scenario_count(20);
  for (int i = 0; i < n; ++i) {
    const fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(4, i));
    SCOPED_TRACE(s.label());
    const workload::DomainWorkload w = fuzz::build(s, default_tech());
    const ndr::RuleAssignment blanket =
        ndr::assign_all(w.nets, default_tech().rules.blanket_index());

    ndr::AnnealOptions opt;
    opt.iterations = 300;
    opt.checkpoint_interval = 100;
    std::vector<ndr::AnnealCheckpoint> snaps;
    opt.checkpoint_sink = [&snaps](const ndr::AnnealCheckpoint& ck) {
      snaps.push_back(ck);
    };
    const ndr::AnnealResult whole = ndr::anneal_rules(
        w.tree, w.design, default_tech(), w.nets, blanket, opt);
    ASSERT_GE(snaps.size(), 2u);

    ndr::AnnealOptions resume_opt;
    resume_opt.iterations = opt.iterations;
    resume_opt.resume = snaps[snaps.size() / 2 - 1];
    const ndr::AnnealResult resumed = ndr::anneal_rules(
        w.tree, w.design, default_tech(), w.nets, blanket, resume_opt);

    EXPECT_EQ(whole.assignment, resumed.assignment);
    EXPECT_EQ(whole.accepted, resumed.accepted);
    EXPECT_EQ(whole.end_cap, resumed.end_cap);
    expect_eval_bitwise(whole.final_eval, resumed.final_eval);
  }
}

// ---- metamorphic invariants -----------------------------------------------

// Raising a gated subtree's activity (duty) raises its EM current scale
// and only SHRINKS each gated net's feasible-rule set; with the global
// couplings relaxed to equal slack (skew / uncertainty / slew / capacity
// all loose) the optimizer must therefore never hand a gated net a
// cheaper rule than it got at the lower activity.
TEST(ScenarioFuzz, RaisingActivityNeverPicksCheaperRules) {
  const int n = fuzz::scenario_count(20);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = fuzz::scenario_seed(5, i);
    SCOPED_TRACE("scenario seed=" + std::to_string(seed));
    workload::Rng rng(seed);
    fuzz::Scenario s = fuzz::make_scenario(seed);
    s.spec.gates = 1;
    s.spec.dividers = 0;
    s.spec.muxes = 0;
    s.spec.inverters = 0;
    s.spec.base.occupancy = 0.05;    // capacity never binds.
    s.freq_mult = 1.5 + rng.uniform();  // EM pressure so the lever bites.
    const double duty_lo = 0.2 + 0.3 * rng.uniform();
    const double duty_hi = duty_lo + 0.2 + 0.25 * rng.uniform();

    s.spec.duty_min = s.spec.duty_max = duty_lo;
    workload::DomainWorkload low = fuzz::build(s, default_tech());
    s.spec.duty_min = s.spec.duty_max = duty_hi;
    workload::DomainWorkload high = fuzz::build(s, default_tech());

    for (netlist::Design* d : {&low.design, &high.design}) {
      d->constraints.max_skew *= 1e3;
      d->constraints.max_uncertainty *= 1e3;
      d->constraints.max_slew *= 10.0;
    }

    const ndr::SmartNdrResult a = ndr::optimize_smart_ndr(
        low.tree, low.design, default_tech(), low.nets, exact_options());
    const ndr::SmartNdrResult b = ndr::optimize_smart_ndr(
        high.tree, high.design, default_tech(), high.nets, exact_options());

    for (const netlist::Net& net : low.nets.nets) {
      if (low.design.clock_domains.node_toggle_weight(net.driver) >= 1.0) {
        continue;  // outside the gated subtree.
      }
      EXPECT_GE(b.final_eval.power.net_switched_cap[net.id],
                a.final_eval.power.net_switched_cap[net.id])
          << "net " << net.id << " got cheaper at higher activity";
    }
  }
}

// A domain graph whose elements are all rate-neutral (ICGs at duty exactly
// 1.0, muxes, inverters; no dividers) must reproduce the single-tree
// results bit for bit: every weighting hook multiplies by exactly 1.0.
TEST(ScenarioFuzz, NeutralDomainGraphDegeneratesBitwise) {
  const int n = fuzz::scenario_count(20);
  for (int i = 0; i < n; ++i) {
    fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(6, i));
    SCOPED_TRACE(s.label());
    s.spec.dividers = 0;
    s.spec.gates = std::max(1, s.spec.gates);  // at least one element.
    s.spec.duty_min = s.spec.duty_max = 1.0;
    s.freq_mult = 1.0;
    const workload::DomainWorkload w = fuzz::build(s, default_tech());
    ASSERT_TRUE(w.design.clock_domains.enabled());

    netlist::Design plain = w.design;
    plain.clock_domains = netlist::ClockDomainMap();

    const ndr::SmartNdrResult a = ndr::optimize_smart_ndr(
        w.tree, w.design, default_tech(), w.nets, exact_options());
    const ndr::SmartNdrResult b = ndr::optimize_smart_ndr(
        w.tree, plain, default_tech(), w.nets, exact_options());

    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.final_eval.power.switched_cap,
              b.final_eval.power.switched_cap);
    // Neutral weights: the weighted rollup IS the raw one, bitwise.
    EXPECT_EQ(a.final_eval.power.weighted_switched_cap,
              b.final_eval.power.switched_cap);
    EXPECT_EQ(a.final_eval.power.net_power, b.final_eval.power.net_power);
    EXPECT_EQ(a.final_eval.em.net_slack, b.final_eval.em.net_slack);
    EXPECT_EQ(a.final_eval.timing.sink_arrival,
              b.final_eval.timing.sink_arrival);

    ndr::AnnealOptions sa;
    sa.iterations = 150;
    const ndr::AnnealResult ra = ndr::anneal_rules(
        w.tree, w.design, default_tech(), w.nets, a.assignment, sa);
    const ndr::AnnealResult rb = ndr::anneal_rules(
        w.tree, plain, default_tech(), w.nets, b.assignment, sa);
    EXPECT_EQ(ra.assignment, rb.assignment);
    EXPECT_EQ(ra.end_cap, rb.end_cap);
  }
}

// ---- accounting -----------------------------------------------------------

TEST(ScenarioFuzz, WeightedPowerAndInterClockAccounting) {
  const int n = fuzz::scenario_count(40);
  for (int i = 0; i < n; ++i) {
    const fuzz::Scenario s = fuzz::make_scenario(fuzz::scenario_seed(7, i));
    SCOPED_TRACE(s.label());
    const workload::DomainWorkload w = fuzz::build(s, default_tech());
    const ndr::RuleAssignment blanket =
        ndr::assign_all(w.nets, default_tech().rules.blanket_index());
    const ndr::FlowEvaluation ev = ndr::evaluate(
        w.tree, w.design, default_tech(), w.nets, blanket);

    // Toggle weights are rates: in (0, 1], exactly 1.0 without domains.
    double acc = 0.0;
    for (std::size_t k = 0; k < ev.power.net_toggle_weight.size(); ++k) {
      const double wk = ev.power.net_toggle_weight[k];
      EXPECT_GT(wk, 0.0);
      EXPECT_LE(wk, 1.0);
      acc += ev.power.net_switched_cap[k] * wk;
    }
    const double tol = 1e-12 * std::abs(acc) + 1e-30;
    EXPECT_NEAR(ev.power.weighted_switched_cap, acc, tol);
    EXPECT_LE(ev.power.weighted_switched_cap,
              ev.power.switched_cap * (1.0 + 1e-12));

    // Inter-clock pair report self-consistency.
    const netlist::ClockDomainMap& domains = w.design.clock_domains;
    EXPECT_EQ(ev.inter_clock.enabled, domains.enabled());
    int sink_domains = 0;
    int domain_sinks = 0;
    for (const netlist::ClockDomain& d : domains.domains()) {
      if (d.sinks > 0) ++sink_domains;
      domain_sinks += d.sinks;
    }
    if (domains.enabled()) {
      EXPECT_EQ(domain_sinks, static_cast<int>(w.design.sinks.size()));
      EXPECT_EQ(static_cast<int>(ev.inter_clock.pairs.size()),
                sink_domains * (sink_domains - 1) / 2);
    } else {
      EXPECT_TRUE(ev.inter_clock.pairs.empty());
    }
    int bad = 0;
    double worst = 0.0;
    for (const report::InterClockPair& p : ev.inter_clock.pairs) {
      if (!p.ok) ++bad;
      worst = std::max(worst, p.skew);
      EXPECT_GT(p.budget, 0.0);
      EXPECT_GE(p.divisor_ratio, 1);
      if (p.common_node >= 0) {
        EXPECT_EQ(p.guard, 0.0);  // shared path cancels variation.
      } else {
        EXPECT_GE(p.guard, 0.0);
      }
      EXPECT_EQ(p.ok, p.skew + p.guard <= p.budget);
    }
    EXPECT_EQ(ev.inter_clock.violations, bad);
    EXPECT_EQ(ev.inter_clock.worst_skew, worst);
    EXPECT_EQ(ev.inter_clock_violations, ev.inter_clock.violations);

    // The search state's energy bookkeeping matches the power report.
    ndr::AssignmentState state(w.tree, w.design, default_tech(), w.nets,
                               timing::AnalysisOptions{});
    state.rebuild(blanket, ev);
    double energy = 0.0;
    for (const netlist::Net& net : w.nets.nets) {
      EXPECT_EQ(state.net_weight(net.id),
                ev.power.net_toggle_weight[net.id]);
      energy += state.net_weight(net.id) * state.net_cap(net.id);
    }
    EXPECT_NEAR(state.total_energy(), energy,
                1e-12 * std::abs(energy) + 1e-30);
  }
}

// ---- corruption robustness ------------------------------------------------

// Checkpoint files under random corruption: a pristine file round-trips
// bitwise; line-boundary truncation, a token appended to any line, and a
// duplicated line must all be rejected as kParseError — never loaded as a
// quietly different resume point, never a crash.
TEST(ScenarioFuzz, CheckpointCorruptionAlwaysParseErrors) {
  const int n = fuzz::scenario_count(40);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sndr_fuzz_ck_" + std::to_string(fuzz::seed_base())))
          .string();
  const auto write_lines = [&](const std::vector<std::string>& lines) {
    std::ofstream f(path, std::ios::trunc);
    for (const std::string& l : lines) f << l << "\n";
  };
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = fuzz::scenario_seed(8, i);
    workload::Rng rng(seed);
    ndr::AnnealCheckpoint ck;
    ck.iteration = 1 + static_cast<int>(rng.uniform_int(1000));
    ck.temperature = rng.uniform(1e-6, 10.0);
    ck.cooling = rng.uniform(0.5, 1.0);
    ck.rng_state = rng.next_u64();
    ck.accepted_since_refresh = static_cast<int>(rng.uniform_int(100));
    ck.proposed = static_cast<int>(rng.uniform_int(10000));
    ck.accepted = static_cast<int>(rng.uniform_int(10000));
    ck.rejected = static_cast<int>(rng.uniform_int(10000));
    ck.uphill_accepted = static_cast<int>(rng.uniform_int(1000));
    ck.delta_updates = static_cast<int>(rng.uniform_int(10000));
    ck.full_rebuilds = static_cast<int>(rng.uniform_int(100));
    ck.start_cap = rng.uniform(1e-15, 1e-9);
    ck.start_feasible = rng.uniform_int(2) == 1;
    ck.best_cap = rng.uniform(1e-15, 1e-9);
    const int nets = 1 + static_cast<int>(rng.uniform_int(40));
    for (int j = 0; j < nets; ++j) {
      ck.assignment.push_back(static_cast<int>(rng.uniform_int(5)));
      ck.best.push_back(static_cast<int>(rng.uniform_int(5)));
    }
    const std::uint64_t fp = rng.next_u64();
    ASSERT_TRUE(flow::save_checkpoint(path, ck, fp).ok()) << "seed=" << seed;

    const auto pristine = flow::load_checkpoint(path, fp);
    ASSERT_TRUE(pristine.ok()) << "seed=" << seed;
    EXPECT_EQ(pristine.value().assignment, ck.assignment) << "seed=" << seed;
    EXPECT_EQ(pristine.value().best, ck.best) << "seed=" << seed;
    EXPECT_EQ(pristine.value().rng_state, ck.rng_state) << "seed=" << seed;
    EXPECT_EQ(pristine.value().temperature, ck.temperature)
        << "seed=" << seed;

    std::vector<std::string> lines;
    {
      std::ifstream f(path);
      std::string l;
      while (std::getline(f, l)) lines.push_back(l);
    }
    const auto expect_parse_error = [&](const std::string& what) {
      const auto r = flow::load_checkpoint(path, fp);
      ASSERT_FALSE(r.ok()) << what << " seed=" << seed;
      EXPECT_EQ(r.status().code(), common::StatusCode::kParseError)
          << what << " seed=" << seed << ": " << r.status().to_string();
    };

    // Truncate at a random line boundary (strictly before the end).
    std::vector<std::string> mutated(
        lines.begin(),
        lines.begin() + static_cast<long>(rng.uniform_int(lines.size())));
    write_lines(mutated);
    expect_parse_error("truncated");

    // Append a stray token to one random line.
    mutated = lines;
    mutated[rng.uniform_int(lines.size())] += " 7";
    write_lines(mutated);
    expect_parse_error("junk-appended");

    // Duplicate one random line in place.
    mutated = lines;
    const std::size_t dup = rng.uniform_int(lines.size());
    mutated.insert(mutated.begin() + static_cast<long>(dup), lines[dup]);
    write_lines(mutated);
    expect_parse_error("duplicated");
  }
  std::filesystem::remove(path);
}

// Property: the DSE Pareto front is exactly the non-dominated feasible
// subset, for ANY point cloud — no emitted member is dominated by any
// feasible point, every omitted feasible point is dominated by some front
// member, infeasible points never appear, and the id order is
// (power, skew, id). Random clouds include deliberate duplicates and ties
// so the strictness half of dominates() is exercised too.
TEST(ScenarioFuzz, DseFrontNeverContainsDominatedPoints) {
  const int n = fuzz::scenario_count(40);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t seed = fuzz::scenario_seed(9, i);
    workload::Rng rng(seed);
    std::vector<dse::PointResult> points;
    const int count = 2 + static_cast<int>(rng.uniform_int(24));
    for (int id = 0; id < count; ++id) {
      dse::PointResult p;
      p.id = id;
      // Coarse grids of values make exact ties / duplicates common.
      p.total_power = 1e-3 * static_cast<double>(1 + rng.uniform_int(6));
      p.skew = 1e-11 * static_cast<double>(1 + rng.uniform_int(6));
      p.settings.uncertainty_margin =
          0.02 * static_cast<double>(1 + rng.uniform_int(4));
      p.feasible = rng.uniform_int(4) != 0;  // ~25% infeasible.
      points.push_back(p);
    }

    const std::vector<int> front = dse::pareto_front(points);
    std::vector<bool> on_front(points.size(), false);
    for (const int id : front) {
      on_front[static_cast<std::size_t>(id)] = true;
      const dse::PointResult& p = points[static_cast<std::size_t>(id)];
      EXPECT_TRUE(p.feasible) << "seed=" << seed << " id=" << id;
      for (const dse::PointResult& q : points) {
        EXPECT_FALSE(q.feasible && dse::dominates(q, p))
            << "seed=" << seed << ": front point " << id
            << " dominated by " << q.id;
      }
    }
    // Completeness: a feasible point off the front must be dominated.
    for (const dse::PointResult& p : points) {
      if (!p.feasible || on_front[static_cast<std::size_t>(p.id)]) continue;
      bool dominated = false;
      for (const dse::PointResult& q : points) {
        if (q.feasible && dse::dominates(q, p)) dominated = true;
      }
      EXPECT_TRUE(dominated)
          << "seed=" << seed << ": feasible point " << p.id
          << " missing from the front yet dominated by nobody";
    }
    // Deterministic emission order: (power, skew, id) ascending.
    for (std::size_t k = 0; k + 1 < front.size(); ++k) {
      const dse::PointResult& a = points[static_cast<std::size_t>(front[k])];
      const dse::PointResult& b =
          points[static_cast<std::size_t>(front[k + 1])];
      const bool ordered =
          a.total_power < b.total_power ||
          (a.total_power == b.total_power &&
           (a.skew < b.skew || (a.skew == b.skew && a.id < b.id)));
      EXPECT_TRUE(ordered) << "seed=" << seed << " at front position " << k;
    }
  }
}

}  // namespace
}  // namespace sndr
