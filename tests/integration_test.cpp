// End-to-end flow tests: workload -> CTS -> route -> smart NDR -> signoff,
// across benchmark families. These pin down the paper's qualitative claims
// as executable assertions.
#include <gtest/gtest.h>

#include "ndr/smart_ndr.hpp"
#include "route/congestion_route.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

struct FullFlow {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
  ndr::FlowEvaluation all_default;
  ndr::FlowEvaluation blanket;
  ndr::SmartNdrResult smart;
};

FullFlow run_flow(const workload::DesignSpec& spec) {
  FullFlow f;
  f.design = workload::make_design(spec);
  f.tech = tech::Technology::make_default_45nm();
  f.cts = cts::synthesize(f.design, f.tech);
  route::reroute_for_congestion(f.cts.tree, f.design.congestion);
  f.nets = netlist::build_nets(f.cts.tree);
  f.all_default = ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                ndr::assign_all(f.nets, 0));
  f.blanket = ndr::evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  f.smart = ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  return f;
}

class BenchmarkFlow : public ::testing::TestWithParam<int> {
 protected:
  static const FullFlow& flow(int idx) {
    static std::map<int, FullFlow> cache;
    auto it = cache.find(idx);
    if (it == cache.end()) {
      auto specs = workload::paper_benchmarks();
      it = cache.emplace(idx, run_flow(specs.at(idx))).first;
    }
    return it->second;
  }
};

TEST_P(BenchmarkFlow, TreeIsValid) {
  const FullFlow& f = flow(GetParam());
  EXPECT_NO_THROW(
      f.cts.tree.validate(static_cast<int>(f.design.sinks.size())));
}

TEST_P(BenchmarkFlow, BlanketIsFeasible) {
  const FullFlow& f = flow(GetParam());
  EXPECT_TRUE(f.blanket.feasible())
      << "skew=" << units::to_ps(f.blanket.timing.skew())
      << " slew=" << units::to_ps(f.blanket.timing.max_slew)
      << " unc=" << units::to_ps(f.blanket.variation.max_uncertainty)
      << " em=" << f.blanket.em_violations
      << " overflow=" << f.blanket.overflow_cells;
}

TEST_P(BenchmarkFlow, AllDefaultViolatesRobustness) {
  // The reason blanket NDR exists: default rules break slew/uncertainty on
  // production-size trees. The smallest block can squeak by (small cores
  // have short runs), but robustness must still be strictly worse than the
  // blanket implementation.
  const FullFlow& f = flow(GetParam());
  if (f.design.sinks.size() >= 2000) {
    EXPECT_FALSE(f.all_default.feasible());
  }
  EXPECT_GT(f.all_default.timing.max_slew, f.blanket.timing.max_slew);
  EXPECT_GT(f.all_default.variation.max_uncertainty,
            f.blanket.variation.max_uncertainty);
  EXPECT_GT(f.all_default.timing.skew(), f.blanket.timing.skew());
}

TEST_P(BenchmarkFlow, SmartIsFeasibleAndSaves) {
  const FullFlow& f = flow(GetParam());
  ASSERT_TRUE(f.smart.final_eval.feasible());
  const double saving = 1.0 - f.smart.final_eval.power.total_power /
                                  f.blanket.power.total_power;
  // The paper's headline: meaningful clock power reduction vs blanket NDR.
  EXPECT_GT(saving, 0.04) << "saving=" << saving;
  EXPECT_LT(saving, 0.50);
  // And the smart result is within reach of the all-default power floor.
  EXPECT_LE(f.smart.final_eval.power.total_power,
            1.05 * f.all_default.power.total_power);
}

TEST_P(BenchmarkFlow, SmartUsesMixedRules) {
  const FullFlow& f = flow(GetParam());
  int used = 0;
  for (const int c : f.smart.rule_histogram) {
    if (c > 0) ++used;
  }
  EXPECT_GE(used, 2);  // per-net choice, not another blanket.
}

// Only the two smallest benchmarks run in unit-test time; the full set is
// exercised by the bench binaries.
INSTANTIATE_TEST_SUITE_P(SmallBenchmarks, BenchmarkFlow,
                         ::testing::Values(0, 1));

TEST(GoldenRegression, QuickstartNumbers) {
  // Golden values for the fixed-seed quickstart design; update only when a
  // deliberate model change shifts them (document in EXPERIMENTS.md).
  const FullFlow f = run_flow(workload::quickstart_spec());
  EXPECT_EQ(static_cast<int>(f.design.sinks.size()), 200);
  EXPECT_TRUE(f.smart.final_eval.feasible());
  // Loose golden windows (20%) guard against silent model drift.
  EXPECT_NEAR(units::to_mm(f.cts.wirelength), 7.96, 1.6);
  EXPECT_NEAR(f.blanket.power.total_power * 1e3, 4.24, 0.9);
  EXPECT_LE(f.smart.final_eval.power.total_power,
            f.blanket.power.total_power);
}

TEST(Robustness, OneSinkFullFlow) {
  workload::DesignSpec spec;
  spec.num_sinks = 1;
  spec.seed = 2;
  const FullFlow f = run_flow(spec);
  EXPECT_TRUE(f.smart.final_eval.feasible());
  EXPECT_DOUBLE_EQ(f.smart.final_eval.timing.skew(), 0.0);
}

TEST(Robustness, TinyDesignsAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    workload::DesignSpec spec;
    spec.num_sinks = 17;
    spec.seed = seed;
    const FullFlow f = run_flow(spec);
    EXPECT_TRUE(f.smart.final_eval.feasible()) << "seed " << seed;
  }
}

TEST(Robustness, CustomTechnologyFlow) {
  // A user-defined stack: coarser metal, only two rules.
  tech::Technology t = tech::Technology::from_text(
      "name = custom\n"
      "vdd = 0.9\n"
      "layer.min_width = 0.2\n"
      "layer.min_space = 0.2\n"
      "layer.r_sheet = 0.15\n"
      "rule = 1W1S 1 1\n"
      "rule = 2W2S 2 2\n"
      "blanket_rule = 2W2S\n");
  workload::DesignSpec spec;
  spec.num_sinks = 64;
  spec.seed = 4;
  netlist::Design design = workload::make_design(spec);
  const auto cts = cts::synthesize(design, t);
  const auto nets = netlist::build_nets(cts.tree);
  const auto smart = ndr::optimize_smart_ndr(cts.tree, design, t, nets);
  EXPECT_EQ(static_cast<int>(smart.rule_histogram.size()), 2);
  EXPECT_TRUE(smart.final_eval.feasible());
}

}  // namespace
}  // namespace sndr
