// Reusable scenario generation for the property-based fuzz harness
// (scenario_fuzz_test.cpp, and anything else that wants "a random but
// reproducible multi-domain workload").
//
// Every scenario derives from one uint64 seed via workload::Rng, so a
// failing case reproduces from the single number the test prints:
//
//   SNDR_FUZZ_SEED=<base> ctest -R ScenarioFuzz
//
// Environment knobs:
//   SNDR_FUZZ_ITERS  scenarios per test (default: each test's baked-in
//                    count, sized so the whole harness stays in seconds;
//                    sanitizer CI legs set a small value).
//   SNDR_FUZZ_SEED   base seed (default 1); scenario i of a test uses
//                    base * 1000003 + test_offset + i.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "workload/domains.hpp"
#include "workload/rng.hpp"

namespace sndr::test::fuzz {

/// Scenarios per test: SNDR_FUZZ_ITERS when set (>0), else `dflt`.
inline int scenario_count(int dflt) {
  if (const char* env = std::getenv("SNDR_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

/// Base seed: SNDR_FUZZ_SEED when set, else 1.
inline std::uint64_t seed_base() {
  if (const char* env = std::getenv("SNDR_FUZZ_SEED")) {
    const std::uint64_t v = std::strtoull(env, nullptr, 10);
    if (v != 0) return v;
  }
  return 1;
}

/// Seed of scenario `i` of the test at `test_offset` (a distinct constant
/// per TEST so tests never share scenario streams).
inline std::uint64_t scenario_seed(std::uint64_t test_offset, int i) {
  return seed_base() * 1000003ULL + test_offset * 7919ULL +
         static_cast<std::uint64_t>(i);
}

/// One randomized multi-domain scenario. `freq_mult` scales the design's
/// clock frequency after generation (EM pressure varies across scenarios).
struct Scenario {
  std::uint64_t seed = 0;
  workload::DomainSpec spec;
  double freq_mult = 1.0;

  std::string label() const {
    return "scenario seed=" + std::to_string(seed) +
           " nets=" + std::to_string(spec.base.num_nets) +
           " gates=" + std::to_string(spec.gates) +
           " div=" + std::to_string(spec.dividers) +
           " mux=" + std::to_string(spec.muxes) +
           " inv=" + std::to_string(spec.inverters) +
           " fmul=" + std::to_string(freq_mult);
  }
};

/// Draws a scenario from `seed`: 30-140 nets, branching 2-4, up to two of
/// each element kind, clock frequency 0.5x-2.5x the workload default.
inline Scenario make_scenario(std::uint64_t seed) {
  workload::Rng rng(seed);
  Scenario s;
  s.seed = seed;
  s.spec.base.name = "fuzz";
  s.spec.base.num_nets = 30 + static_cast<int>(rng.uniform_int(111));
  s.spec.base.branching = 2 + static_cast<int>(rng.uniform_int(3));
  s.spec.base.sinks_per_leaf = 1 + static_cast<int>(rng.uniform_int(3));
  s.spec.base.seed = rng.next_u64();
  s.spec.gates = static_cast<int>(rng.uniform_int(3));
  s.spec.dividers = static_cast<int>(rng.uniform_int(3));
  s.spec.muxes = static_cast<int>(rng.uniform_int(2));
  s.spec.inverters = static_cast<int>(rng.uniform_int(2));
  s.spec.duty_min = 0.2;
  s.spec.duty_max = 0.9;
  s.spec.max_divide = 4;
  s.spec.domain_seed = rng.next_u64();
  s.freq_mult = 0.5 + 2.0 * rng.uniform();
  return s;
}

/// Materializes the scenario's workload (domain map derived, frequency
/// scaled). Same scenario -> bit-identical workload, everywhere.
inline workload::DomainWorkload build(const Scenario& s,
                                      const tech::Technology& tech) {
  workload::DomainWorkload w = workload::make_domain_workload(s.spec, tech);
  w.design.constraints.clock_freq *= s.freq_mult;
  return w;
}

}  // namespace sndr::test::fuzz
