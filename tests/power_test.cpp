#include <gtest/gtest.h>

#include "extract/extractor.hpp"
#include "power/clock_power.hpp"
#include "power/em.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr::power {
namespace {

using units::GHz;

class PowerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    flow_ = test::small_flow(48);
    assignment_.assign(flow_.nets.size(), flow_.tech.rules.blanket_index());
    const extract::Extractor ex(flow_.tech, flow_.design);
    parasitics_ = ex.extract_all(flow_.cts.tree, flow_.nets, assignment_);
  }

  PowerReport run() {
    return analyze_power(flow_.cts.tree, flow_.design, flow_.tech, flow_.nets,
                         parasitics_);
  }

  test::Flow flow_;
  std::vector<int> assignment_;
  std::vector<extract::NetParasitics> parasitics_;
};

TEST_F(PowerFixture, RollupIdentities) {
  const PowerReport rep = run();
  double sum_cap = 0.0;
  double sum_pow = 0.0;
  for (int i = 0; i < flow_.nets.size(); ++i) {
    sum_cap += rep.net_switched_cap[i];
    sum_pow += rep.net_power[i];
  }
  EXPECT_NEAR(sum_cap, rep.switched_cap, 1e-18);
  EXPECT_NEAR(sum_pow, rep.net_switching_power, 1e-9);
  EXPECT_NEAR(rep.total_power,
              rep.net_switching_power + rep.buffer_internal_power, 1e-12);
  // P = C V^2 f.
  const double vdd2 = flow_.tech.vdd * flow_.tech.vdd;
  EXPECT_NEAR(rep.net_switching_power,
              rep.switched_cap * vdd2 * flow_.design.constraints.clock_freq,
              1e-9);
}

TEST_F(PowerFixture, PinCapIncludesAllSinksAndBuffers) {
  const PowerReport rep = run();
  double expected = flow_.design.total_sink_cap();
  for (const auto& n : flow_.cts.tree.nodes()) {
    if (n.kind == netlist::NodeKind::kBuffer) {
      expected += flow_.tech.buffers[n.cell].input_cap;
    }
  }
  EXPECT_NEAR(rep.pin_cap, expected, 1e-18);
}

TEST_F(PowerFixture, BufferInternalPowerCountsEveryBuffer) {
  const PowerReport rep = run();
  double expected = 0.0;
  for (const auto& n : flow_.cts.tree.nodes()) {
    if (n.kind == netlist::NodeKind::kBuffer) {
      expected += flow_.tech.buffers[n.cell].internal_energy *
                  flow_.design.constraints.clock_freq;
    }
  }
  EXPECT_NEAR(rep.buffer_internal_power, expected, 1e-12);
}

TEST_F(PowerFixture, PowerScalesLinearlyWithFrequency) {
  const PowerReport at1 = run();
  flow_.design.constraints.clock_freq = 2 * GHz;
  const PowerReport at2 = run();
  EXPECT_NEAR(at2.total_power, 2.0 * at1.total_power, 1e-9);
}

TEST_F(PowerFixture, MismatchThrows) {
  parasitics_.pop_back();
  EXPECT_THROW(run(), std::invalid_argument);
}

TEST_F(PowerFixture, EmDensityScalesWithFrequency) {
  const auto& par = parasitics_[0];
  const auto& rule = flow_.tech.rules.blanket_rule();
  const double j1 = net_peak_current_density(par, flow_.tech, rule, 1 * GHz);
  const double j2 = net_peak_current_density(par, flow_.tech, rule, 2 * GHz);
  EXPECT_NEAR(j2, 2.0 * j1, 1e-12);
  EXPECT_GT(j1, 0.0);
}

TEST_F(PowerFixture, WiderRuleLowersDensity) {
  const extract::Extractor ex(flow_.tech, flow_.design);
  const auto& net = flow_.nets[0];
  const auto& def = flow_.tech.rules.default_rule();
  const auto& wide = flow_.tech.rules[flow_.tech.rules.find("3W3S")];
  const auto par_d = ex.extract_net(flow_.cts.tree, net, def);
  const auto par_w = ex.extract_net(flow_.cts.tree, net, wide);
  EXPECT_GT(net_peak_current_density(par_d, flow_.tech, def, 1 * GHz),
            net_peak_current_density(par_w, flow_.tech, wide, 1 * GHz));
}

TEST_F(PowerFixture, EmWorstIsNearDriver) {
  // The peak density piece carries (nearly) the whole net cap.
  const auto& par = parasitics_[0];
  const auto down = par.rc.downstream_cap(flow_.tech.miller_power);
  const double j = net_peak_current_density(
      flow_.tech.em_crest_factor <= 0 ? parasitics_[0] : par, flow_.tech,
      flow_.tech.rules.blanket_rule(), 1 * GHz);
  const double width = flow_.tech.clock_layer.min_width *
                       flow_.tech.rules.blanket_rule().width_mult;
  const double upper = flow_.tech.em_crest_factor * 1 * GHz *
                       flow_.tech.vdd * down[0] / width;
  EXPECT_LE(j, upper + 1e-12);
  EXPECT_GT(j, 0.7 * upper);
}

TEST_F(PowerFixture, EmReportStructure) {
  const EmReport rep = analyze_em(flow_.design, flow_.tech, flow_.nets,
                                  parasitics_, assignment_);
  ASSERT_EQ(rep.net_peak_density.size(),
            static_cast<std::size_t>(flow_.nets.size()));
  for (int i = 0; i < flow_.nets.size(); ++i) {
    EXPECT_NEAR(rep.net_slack[i],
                flow_.tech.clock_layer.em_jmax - rep.net_peak_density[i],
                1e-15);
  }
  EXPECT_GE(rep.worst_net, 0);
  EXPECT_DOUBLE_EQ(rep.net_peak_density[rep.worst_net], rep.worst_density);
  EXPECT_EQ(rep.violations(), 0);  // blanket at 1 GHz is EM-clean.
}

TEST_F(PowerFixture, EmViolationsAtExtremeFrequency) {
  flow_.design.constraints.clock_freq = 10 * GHz;
  const EmReport rep = analyze_em(flow_.design, flow_.tech, flow_.nets,
                                  parasitics_, assignment_);
  EXPECT_GT(rep.violations(), 0);
}

}  // namespace
}  // namespace sndr::power
