#include <gtest/gtest.h>

#include "route/congestion_route.hpp"
#include "route/steiner.hpp"
#include "test_util.hpp"
#include "workload/rng.hpp"

namespace sndr::route {
namespace {

TEST(ClosestOnPath, HorizontalSegment) {
  const geom::Path p{{0, 0}, {10, 0}};
  EXPECT_EQ(closest_on_path(p, {5, 3}).first, (geom::Point{5, 0}));
  EXPECT_DOUBLE_EQ(closest_on_path(p, {5, 3}).second, 3.0);
  EXPECT_EQ(closest_on_path(p, {-4, 0}).first, (geom::Point{0, 0}));
  EXPECT_EQ(closest_on_path(p, {14, 2}).first, (geom::Point{10, 0}));
}

TEST(ClosestOnPath, LShapedPath) {
  const geom::Path p{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(closest_on_path(p, {8, 6}).first, (geom::Point{10, 6}));
  EXPECT_EQ(closest_on_path(p, {3, 1}).first, (geom::Point{3, 0}));
}

TEST(Rsmt, SingleTerminal) {
  const SteinerTree t = build_rsmt({{5, 5}});
  EXPECT_EQ(t.size(), 1);
  EXPECT_DOUBLE_EQ(t.length(), 0.0);
  EXPECT_EQ(t.terminal_node[0], 0);
}

TEST(Rsmt, EmptyThrows) {
  EXPECT_THROW(build_rsmt({}), std::invalid_argument);
}

TEST(Rsmt, TwoTerminals) {
  const SteinerTree t = build_rsmt({{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(t.length(), 7.0);
}

TEST(Rsmt, SteinerPointSavesWire) {
  // Three terminals in a T: the Steiner tree should reuse the trunk.
  const SteinerTree t = build_rsmt({{0, 0}, {10, 0}, {5, 5}});
  // MST cost would be 10 + 10 = 20; Steiner cost 10 + 5 = 15.
  EXPECT_DOUBLE_EQ(t.length(), 15.0);
  EXPECT_EQ(t.size(), 4);  // 3 terminals + 1 split point.
}

TEST(Rsmt, AllTerminalsConnected) {
  workload::Rng rng(7);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  const SteinerTree t = build_rsmt(pts);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int node = t.terminal_node[i];
    ASSERT_GE(node, 0);
    EXPECT_TRUE(geom::almost_equal(t.points[node], pts[i]));
    // Walk to root.
    int v = node;
    int hops = 0;
    while (t.parent[v] >= 0 && hops < t.size()) {
      v = t.parent[v];
      ++hops;
    }
    EXPECT_EQ(v, 0);
  }
}

TEST(Rsmt, NoLongerThanStarTopology) {
  workload::Rng rng(13);
  std::vector<geom::Point> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({rng.uniform(0, 200), rng.uniform(0, 200)});
  }
  const SteinerTree t = build_rsmt(pts);
  double star = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    star += geom::manhattan(pts[0], pts[i]);
  }
  EXPECT_LT(t.length(), star);
}

TEST(Rsmt, Deterministic) {
  const std::vector<geom::Point> pts{{0, 0}, {7, 3}, {2, 9}, {8, 8}, {4, 4}};
  const SteinerTree a = build_rsmt(pts);
  const SteinerTree b = build_rsmt(pts);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.length(), b.length());
}

TEST(Rsmt, DuplicateTerminals) {
  const SteinerTree t = build_rsmt({{1, 1}, {1, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(t.length(), 0.0);
  EXPECT_EQ(t.terminal_node[2], 2);
}

TEST(RerouteForCongestion, PreservesLengthAndValidity) {
  test::Flow f = test::small_flow(64, 21);
  const double before = f.cts.tree.total_wirelength();
  const int changed = reroute_for_congestion(f.cts.tree, f.design.congestion);
  EXPECT_GE(changed, 0);
  EXPECT_NEAR(f.cts.tree.total_wirelength(), before, 1e-6);
  EXPECT_NO_THROW(f.cts.tree.validate(64));
}

TEST(RerouteForCongestion, PicksLowerOccupancySide) {
  // Two-cell map: HV route crosses the hot cell, VH the cool one.
  netlist::CongestionMap map(geom::BBox(0, 0, 100, 100), 2, 2, 0.1, 1e9);
  map.set_occupancy_cell(1, 0.9);  // cell (1,0): lower-right.
  netlist::ClockTree tree;
  const int src = tree.add_source({10, 10});
  tree.add_sink({90, 90}, src, 0);
  tree.ensure_default_paths();
  reroute_for_congestion(tree, map);
  // VH route avoids lower-right: corner at (10,90).
  ASSERT_EQ(tree.node(1).path.size(), 3u);
  EXPECT_EQ(tree.node(1).path[1], (geom::Point{10, 90}));
}

TEST(ComputeUsage, ScalesWithRulePitch) {
  test::Flow f = test::small_flow(48, 3);
  const auto def = compute_usage(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), 0), f.tech, f.design.congestion);
  const auto ndr = compute_usage(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), f.tech.rules.blanket_index()), f.tech,
      f.design.congestion);
  EXPECT_NEAR(ndr.max_utilization(), 2.0 * def.max_utilization(), 1e-9);
}

TEST(ComputeUsage, ValidatesAssignment) {
  test::Flow f = test::small_flow(8);
  EXPECT_THROW(compute_usage(f.cts.tree, f.nets, {0}, f.tech,
                             f.design.congestion),
               std::invalid_argument);
}

}  // namespace
}  // namespace sndr::route
