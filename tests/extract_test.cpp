#include <gtest/gtest.h>

#include <cmath>

#include "extract/extractor.hpp"
#include "extract/rc_tree.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr::extract {
namespace {

using units::fF;
using units::ps;

TEST(RcTree, StartsWithDriverNode) {
  const RcTree rc;
  EXPECT_EQ(rc.size(), 1);
  EXPECT_EQ(rc.node(0).parent, -1);
}

TEST(RcTree, AddNodeValidatesParent) {
  RcTree rc;
  EXPECT_THROW(rc.add_node(5, 1, 1, 0), std::logic_error);
  EXPECT_THROW(rc.add_node(-1, 1, 1, 0), std::logic_error);
  EXPECT_EQ(rc.add_node(0, 1, 1, 0), 1);
}

TEST(RcTree, TotalsAndDownstream) {
  RcTree rc;
  rc.node(0).cap_gnd = 1 * fF;
  const int a = rc.add_node(0, 100, 2 * fF, 1 * fF);
  const int b = rc.add_node(a, 100, 3 * fF, 0);
  const int c = rc.add_node(a, 100, 4 * fF, 2 * fF);
  EXPECT_DOUBLE_EQ(rc.total_cap_gnd(), 10 * fF);
  EXPECT_DOUBLE_EQ(rc.total_cap_cpl(), 3 * fF);
  const auto down = rc.downstream_cap(1.0);
  EXPECT_DOUBLE_EQ(down[0], 13 * fF);
  EXPECT_DOUBLE_EQ(down[a], 12 * fF);
  EXPECT_DOUBLE_EQ(down[b], 3 * fF);
  EXPECT_DOUBLE_EQ(down[c], 6 * fF);
  // Miller factor weights only coupling caps.
  const auto down2 = rc.downstream_cap(2.0);
  EXPECT_DOUBLE_EQ(down2[0], 16 * fF);
}

TEST(RcTree, ElmoreHandComputed) {
  // Driver (R=100) -> node a (R=50, C=10fF) -> node b (R=50, C=20fF).
  RcTree rc;
  const int a = rc.add_node(0, 50, 10 * fF, 0);
  const int b = rc.add_node(a, 50, 20 * fF, 0);
  const auto d = rc.elmore_delay(100.0, 1.0);
  EXPECT_DOUBLE_EQ(d[0], 100 * 30 * fF);
  EXPECT_DOUBLE_EQ(d[a], 100 * 30 * fF + 50 * 30 * fF);
  EXPECT_DOUBLE_EQ(d[b], 100 * 30 * fF + 50 * 30 * fF + 50 * 20 * fF);
}

TEST(RcTree, ElmoreBranchesSeeOnlyTheirSubtreeResistance) {
  // Y topology: two equal branches; delay at one leaf must not include the
  // other branch's resistance (only shared R times total C).
  RcTree rc;
  const int a = rc.add_node(0, 100, 0, 0);         // shared trunk.
  const int l = rc.add_node(a, 200, 10 * fF, 0);   // left leaf.
  const int r = rc.add_node(a, 300, 20 * fF, 0);   // right leaf.
  const auto d = rc.elmore_delay(0.0, 1.0);
  EXPECT_DOUBLE_EQ(d[l], 100 * 30 * fF + 200 * 10 * fF);
  EXPECT_DOUBLE_EQ(d[r], 100 * 30 * fF + 300 * 20 * fF);
}

TEST(RcTree, SecondMomentSinglePole) {
  // Lumped RC: driver R, single cap. m1 = tau, circuit m2 = tau^2.
  RcTree rc;
  const int a = rc.add_node(0, 0.0, 100 * fF, 0);
  const double tau = 500.0 * 100 * fF;
  EXPECT_DOUBLE_EQ(rc.elmore_delay(500.0, 1.0)[a], tau);
  EXPECT_NEAR(rc.second_moment(500.0, 1.0)[a], tau * tau, 1e-30);
}

class ExtractFixture : public ::testing::Test {
 protected:
  test::Flow flow_ = test::small_flow(32);
  Extractor extractor_{flow_.tech, flow_.design};
};

TEST_F(ExtractFixture, WirelengthMatchesTree) {
  const auto& nets = flow_.nets;
  double total = 0.0;
  for (const auto& net : nets.nets) {
    const NetParasitics par = extractor_.extract_net(
        flow_.cts.tree, net, flow_.tech.rules.blanket_rule());
    EXPECT_NEAR(par.wirelength, netlist::net_wirelength(flow_.cts.tree, net),
                1e-6);
    total += par.wirelength;
  }
  EXPECT_NEAR(total, flow_.cts.tree.total_wirelength(), 1e-6);
}

TEST_F(ExtractFixture, CapScalesWithRule) {
  const auto& net = flow_.nets[flow_.nets.size() - 1];
  const NetParasitics def = extractor_.extract_net(
      flow_.cts.tree, net, flow_.tech.rules.default_rule());
  const NetParasitics wide = extractor_.extract_net(
      flow_.cts.tree, net, flow_.tech.rules[tech::RuleSet::standard().find(
                               "2W1S")]);
  const NetParasitics spaced = extractor_.extract_net(
      flow_.cts.tree, net, flow_.tech.rules[tech::RuleSet::standard().find(
                               "1W2S")]);
  EXPECT_GT(wide.wire_cap_gnd, def.wire_cap_gnd);
  EXPECT_DOUBLE_EQ(spaced.wire_cap_gnd, def.wire_cap_gnd);
  EXPECT_LT(spaced.wire_cap_cpl, def.wire_cap_cpl);
  EXPECT_DOUBLE_EQ(wide.load_cap, def.load_cap);  // pins unaffected.
}

TEST_F(ExtractFixture, LoadsArePlacedAndCapped) {
  for (const auto& net : flow_.nets.nets) {
    const NetParasitics par = extractor_.extract_net(
        flow_.cts.tree, net, flow_.tech.rules.blanket_rule());
    ASSERT_EQ(par.load_rc_index.size(), net.loads.size());
    double pin_cap = 0.0;
    for (const int load : net.loads) {
      pin_cap +=
          load_pin_cap(flow_.cts.tree, flow_.design, flow_.tech, load);
    }
    EXPECT_NEAR(par.load_cap, pin_cap, 1e-20);
    // Total extracted cap is consistent with its parts.
    EXPECT_NEAR(par.rc.total_cap_gnd(), par.wire_cap_gnd + par.load_cap,
                1e-20);
    EXPECT_NEAR(par.rc.total_cap_cpl(), par.wire_cap_cpl, 1e-20);
  }
}

TEST_F(ExtractFixture, SegmentationRespectsMaxSeg) {
  const ExtractOptions fine{5.0};
  const Extractor fine_ex(flow_.tech, flow_.design, fine);
  const auto& net = flow_.nets[0];
  const NetParasitics par = fine_ex.extract_net(
      flow_.cts.tree, net, flow_.tech.rules.blanket_rule());
  for (int i = 1; i < par.rc.size(); ++i) {
    EXPECT_LE(par.rc.node(i).wire_len, 5.0 + 1e-9);
  }
}

TEST_F(ExtractFixture, FinerSegmentationConvergesElmore) {
  // Elmore at the loads should be nearly invariant to segmentation.
  const auto& net = flow_.nets[flow_.nets.size() - 1];
  const Extractor coarse(flow_.tech, flow_.design, {40.0});
  const Extractor fine(flow_.tech, flow_.design, {2.0});
  const auto pc = coarse.extract_net(flow_.cts.tree, net,
                                     flow_.tech.rules.blanket_rule());
  const auto pf = fine.extract_net(flow_.cts.tree, net,
                                   flow_.tech.rules.blanket_rule());
  const auto dc = pc.rc.elmore_delay(300.0, 1.0);
  const auto df = pf.rc.elmore_delay(300.0, 1.0);
  for (std::size_t i = 0; i < net.loads.size(); ++i) {
    const double c = dc[pc.load_rc_index[i]];
    const double f = df[pf.load_rc_index[i]];
    EXPECT_NEAR(c, f, 0.05 * std::max(f, 0.1 * ps));
  }
}

TEST_F(ExtractFixture, ExtractAllMatchesPerNet) {
  const auto all = extractor_.extract_all(
      flow_.cts.tree, flow_.nets,
      std::vector<int>(flow_.nets.size(), flow_.tech.rules.blanket_index()));
  ASSERT_EQ(static_cast<int>(all.size()), flow_.nets.size());
  for (const auto& net : flow_.nets.nets) {
    const NetParasitics one = extractor_.extract_net(
        flow_.cts.tree, net, flow_.tech.rules.blanket_rule());
    EXPECT_DOUBLE_EQ(all[net.id].wire_cap_gnd, one.wire_cap_gnd);
    EXPECT_DOUBLE_EQ(all[net.id].wirelength, one.wirelength);
  }
}

TEST_F(ExtractFixture, ExtractAllValidatesAssignmentSize) {
  EXPECT_THROW(extractor_.extract_all(flow_.cts.tree, flow_.nets, {0}),
               std::invalid_argument);
}

TEST_F(ExtractFixture, SwitchedCapAccounting) {
  const auto& net = flow_.nets[0];
  const NetParasitics par = extractor_.extract_net(
      flow_.cts.tree, net, flow_.tech.rules.blanket_rule());
  EXPECT_DOUBLE_EQ(par.switched_cap(1.0),
                   par.wire_cap_gnd + par.load_cap + par.wire_cap_cpl);
  EXPECT_DOUBLE_EQ(par.switched_cap(0.0), par.wire_cap_gnd + par.load_cap);
  EXPECT_GT(par.switched_cap(2.0), par.switched_cap(1.0));
}

class OccupancySweep : public ::testing::TestWithParam<double> {};

TEST_P(OccupancySweep, CouplingTracksOccupancy) {
  // A design with uniform occupancy: extracted coupling must scale linearly.
  workload::DesignSpec spec;
  spec.num_sinks = 16;
  spec.seed = 5;
  spec.occupancy_base = GetParam();
  spec.occupancy_noise = 0.0;
  spec.hotspots = 0;
  netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  const auto cts = cts::synthesize(design, tech);
  const auto nets = netlist::build_nets(cts.tree);
  const Extractor ex(tech, design);
  const auto par =
      ex.extract_net(cts.tree, nets[0], tech.rules.default_rule());
  const double per_um =
      2.0 * GetParam() *
      tech::wire_cap_couple_per_um(tech.clock_layer,
                                   tech.rules.default_rule());
  EXPECT_NEAR(par.wire_cap_cpl, per_um * par.wirelength,
              1e-3 * per_um * par.wirelength + 1e-22);
}

INSTANTIATE_TEST_SUITE_P(Levels, OccupancySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9));

}  // namespace
}  // namespace sndr::extract
