// Equivalence contract of two-phase extraction: parasitics materialized
// from a rule-independent GeometryCache must be bit-identical to fresh
// extraction — across every rule, every process corner, after rebuild()
// churn, and at any thread count — and the fused moment kernel must agree
// with the legacy three-pass entry points.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/corner_eval.hpp"
#include "tech/corners.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

/// Restores the global thread budget on scope exit so tests stay isolated.
struct ThreadGuard {
  ~ThreadGuard() { common::set_thread_count(-1); }
};

/// Bitwise comparison of complete parasitics (every node field included).
void expect_parasitics_identical(const extract::NetParasitics& a,
                                 const extract::NetParasitics& b) {
  ASSERT_EQ(a.rc.size(), b.rc.size());
  for (int i = 0; i < a.rc.size(); ++i) {
    const extract::RcNode& na = a.rc.node(i);
    const extract::RcNode& nb = b.rc.node(i);
    EXPECT_EQ(na.parent, nb.parent);
    EXPECT_EQ(na.res, nb.res);
    EXPECT_EQ(na.cap_gnd, nb.cap_gnd);
    EXPECT_EQ(na.cap_cpl, nb.cap_cpl);
    EXPECT_EQ(na.tree_node, nb.tree_node);
    EXPECT_EQ(na.wire_len, nb.wire_len);
    EXPECT_EQ(na.occupancy, nb.occupancy);
  }
  EXPECT_EQ(a.load_rc_index, b.load_rc_index);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.wire_cap_gnd, b.wire_cap_gnd);
  EXPECT_EQ(a.wire_cap_cpl, b.wire_cap_cpl);
  EXPECT_EQ(a.load_cap, b.load_cap);
}

void expect_evaluations_identical(const ndr::FlowEvaluation& a,
                                  const ndr::FlowEvaluation& b) {
  ASSERT_EQ(a.parasitics.size(), b.parasitics.size());
  for (std::size_t i = 0; i < a.parasitics.size(); ++i) {
    expect_parasitics_identical(a.parasitics[i], b.parasitics[i]);
  }
  ASSERT_EQ(a.timing.sink_arrival.size(), b.timing.sink_arrival.size());
  for (std::size_t i = 0; i < a.timing.sink_arrival.size(); ++i) {
    EXPECT_EQ(a.timing.sink_arrival[i], b.timing.sink_arrival[i]);
    EXPECT_EQ(a.timing.sink_slew[i], b.timing.sink_slew[i]);
  }
  ASSERT_EQ(a.variation.net_sigma.size(), b.variation.net_sigma.size());
  for (std::size_t i = 0; i < a.variation.net_sigma.size(); ++i) {
    EXPECT_EQ(a.variation.net_sigma[i], b.variation.net_sigma[i]);
    EXPECT_EQ(a.variation.net_xtalk[i], b.variation.net_xtalk[i]);
  }
  EXPECT_EQ(a.variation.max_uncertainty, b.variation.max_uncertainty);
  EXPECT_EQ(a.power.total_power, b.power.total_power);
  EXPECT_EQ(a.power.switched_cap, b.power.switched_cap);
  EXPECT_EQ(a.em.worst_density, b.em.worst_density);
  EXPECT_EQ(a.timing.max_slew, b.timing.max_slew);
  EXPECT_EQ(a.timing.skew(), b.timing.skew());
  EXPECT_EQ(a.max_track_util, b.max_track_util);
}

class ExtractCacheFixture : public ::testing::Test {
 protected:
  ExtractCacheFixture() : f(test::small_flow(48, 7)) {}

  test::Flow f;
};

TEST_F(ExtractCacheFixture, MaterializeMatchesFreshExtractionForEveryRule) {
  const extract::Extractor extractor(f.tech, f.design);
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  ASSERT_EQ(cache.net_count(), f.nets.size());
  EXPECT_EQ(cache.builds(), f.nets.size());

  extract::NetParasitics cached;  // reused across nets: warm-buffer path.
  for (const netlist::Net& net : f.nets.nets) {
    for (const tech::RoutingRule& rule : f.tech.rules) {
      const extract::NetParasitics fresh =
          extractor.extract_net(f.cts.tree, net, rule);
      extract::materialize(cache.geometry(net.id), f.tech, rule, cached);
      expect_parasitics_identical(fresh, cached);
    }
  }
  // Nothing above re-walked any geometry.
  EXPECT_EQ(cache.builds(), f.nets.size());
}

TEST_F(ExtractCacheFixture, OneCacheServesEveryProcessCorner) {
  // Corner derating rescales electrical coefficients only, so the same
  // geometry must reproduce fresh extraction under every derated clone.
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  extract::NetParasitics cached;
  for (const tech::Corner& corner : tech::standard_corners()) {
    const tech::Technology cornered = tech::apply_corner(f.tech, corner);
    const extract::Extractor extractor(cornered, f.design);
    for (const netlist::Net& net : f.nets.nets) {
      for (const tech::RoutingRule& rule : cornered.rules) {
        const extract::NetParasitics fresh =
            extractor.extract_net(f.cts.tree, net, rule);
        extract::materialize(cache.geometry(net.id), cornered, rule, cached);
        expect_parasitics_identical(fresh, cached);
      }
    }
  }
  EXPECT_EQ(cache.builds(), f.nets.size());
}

TEST_F(ExtractCacheFixture, FusedMomentsMatchLegacyEntryPoints) {
  const extract::Extractor extractor(f.tech, f.design);
  const double driver_res = 150.0;
  extract::RcMoments scratch;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetParasitics par =
        extractor.extract_net(f.cts.tree, net, f.tech.rules[0]);
    for (const double miller : {1.0, 2.0}) {
      par.rc.moments(driver_res, miller, scratch);
      const std::vector<double> down = par.rc.downstream_cap(miller);
      const std::vector<double> m1 = par.rc.elmore_delay(driver_res, miller);
      const std::vector<double> m2 =
          par.rc.second_moment(driver_res, miller);
      ASSERT_EQ(static_cast<int>(scratch.m2.size()), par.rc.size());
      for (int i = 0; i < par.rc.size(); ++i) {
        EXPECT_EQ(scratch.down[i], down[i]);
        EXPECT_EQ(scratch.m1[i], m1[i]);
        EXPECT_EQ(scratch.m2[i], m2[i]);
      }

      // Independent reference: the historical three-pass m2 algorithm
      // (accumulate C*m1 downstream, prefix-sum R along paths). The fused
      // kernel associates differently, so compare to relative precision.
      std::vector<double> weighted(par.rc.size(), 0.0);
      for (int i = par.rc.size() - 1; i >= 0; --i) {
        weighted[i] += par.rc.node(i).cap_total(miller) * m1[i];
        const int p = par.rc.node(i).parent;
        if (p >= 0) weighted[p] += weighted[i];
      }
      std::vector<double> ref(par.rc.size(), 0.0);
      ref[0] = driver_res * weighted[0];
      for (int i = 1; i < par.rc.size(); ++i) {
        ref[i] = ref[par.rc.node(i).parent] + par.rc.node(i).res * weighted[i];
      }
      for (int i = 0; i < par.rc.size(); ++i) {
        EXPECT_NEAR(scratch.m2[i], ref[i], 1e-12 * std::abs(ref[i]) + 1e-40);
      }
    }
  }
}

TEST_F(ExtractCacheFixture, EvaluateBitIdenticalWithAndWithoutCache) {
  ThreadGuard guard;
  const ndr::RuleAssignment blanket = ndr::assign_all(f.nets, 0);
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  for (const int threads : {1, 8}) {
    common::set_thread_count(threads);
    const ndr::FlowEvaluation fresh =
        ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
    const ndr::FlowEvaluation cached = ndr::evaluate(
        f.cts.tree, f.design, f.tech, f.nets, blanket, {}, &cache);
    expect_evaluations_identical(fresh, cached);
  }
  EXPECT_EQ(cache.builds(), f.nets.size());
}

TEST_F(ExtractCacheFixture, ExactEvalMissesNeverRewalkGeometry) {
  ThreadGuard guard;
  for (const int threads : {1, 8}) {
    common::set_thread_count(threads);
    ndr::AssignmentState state(f.cts.tree, f.design, f.tech, f.nets, {});
    // The state builds its shared cache exactly once per net up front...
    EXPECT_EQ(state.geometry_cache().builds(), f.nets.size());

    const ndr::RuleAssignment blanket = ndr::assign_all(f.nets, 0);
    const ndr::FlowEvaluation ev =
        ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket, {},
                      &state.geometry_cache());
    state.rebuild(blanket, ev);

    // ...and every exact-eval miss across every (net, rule), every full
    // evaluation, every corner of signoff, and rebuild() churn shares it.
    const double freq = f.design.constraints.clock_freq;
    for (const netlist::Net& net : f.nets.nets) {
      for (int r = 0; r < f.tech.rules.size(); ++r) {
        const ndr::NetExact cached = state.exact_eval(net.id, r);
        const ndr::NetExact fresh = ndr::evaluate_net_exact(
            f.cts.tree, f.design, f.tech, net, f.tech.rules[r],
            state.summary(net.id).driver_res, freq);
        EXPECT_EQ(cached.cap_switched, fresh.cap_switched);
        EXPECT_EQ(cached.step_slew_worst, fresh.step_slew_worst);
        EXPECT_EQ(cached.sigma_worst, fresh.sigma_worst);
        EXPECT_EQ(cached.xtalk_worst, fresh.xtalk_worst);
        EXPECT_EQ(cached.em_peak, fresh.em_peak);
        EXPECT_EQ(cached.wire_delay_mean, fresh.wire_delay_mean);
        EXPECT_EQ(cached.wire_delay_worst, fresh.wire_delay_worst);
      }
    }
    state.rebuild(blanket, ev);
    const ndr::MultiCornerReport corners = ndr::evaluate_corners(
        f.cts.tree, f.design, f.tech, f.nets, blanket,
        tech::standard_corners(), {}, &state.geometry_cache());
    ASSERT_FALSE(corners.corners.empty());
    EXPECT_EQ(state.geometry_cache().builds(), f.nets.size());
  }
}

TEST_F(ExtractCacheFixture, InvalidateFollowsCongestionChange) {
  extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  // Perturb the congestion map: the cached occupancies are now stale until
  // invalidate() re-walks the nets.
  netlist::CongestionMap& cong = f.design.congestion;
  ASSERT_TRUE(cong.valid());
  for (int c = 0; c < cong.cell_count(); ++c) {
    cong.set_occupancy_cell(c, 0.5 * cong.occupancy_cell(c) + 0.25);
  }
  cache.invalidate();
  EXPECT_EQ(cache.builds(), 2 * f.nets.size());

  const extract::Extractor extractor(f.tech, f.design);
  extract::NetParasitics cached;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetParasitics fresh =
        extractor.extract_net(f.cts.tree, net,
                              f.tech.rules[f.tech.rules.size() - 1]);
    extract::materialize(cache.geometry(net.id), f.tech, f.tech.rules[f.tech.rules.size() - 1], cached);
    expect_parasitics_identical(fresh, cached);
  }
}

}  // namespace
}  // namespace sndr
