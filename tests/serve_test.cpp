// Service-layer tests (DESIGN.md §12): the SharedCache content-fingerprint
// contract, concurrent server submits bitwise-matching serial CLI runs,
// admission control (reject undeclared/oversized, never oversubscribe),
// cooperative cancellation (mid-anneal unwind with kCancelled, no partial
// artifacts, checkpoint resume bitwise identical to an uninterrupted run),
// and graceful shutdown in both drain and cancel modes.
//
// The concurrent tests also run under TSan in scripts/tier1.sh.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "flow/config.hpp"
#include "io/design_io.hpp"
#include "serve/server.hpp"
#include "serve/shared_cache.hpp"
#include "serve/submit.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using common::StatusCode;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream(path) << text;
  return path;
}

/// A design written to disk (the service consumes configs, not objects).
std::string design_file(const std::string& name, int sinks,
                        std::uint64_t seed) {
  const std::string path = temp_path(name);
  io::write_design_file(path, test::small_design(sinks, seed));
  return path;
}

flow::FlowConfig small_config(const std::string& design_path,
                              std::uint64_t seed = 1) {
  flow::FlowConfig c;
  c.design_path = design_path;
  c.seed = seed;
  c.training_samples = 40;
  return c;
}

void expect_outcome_eq(const serve::JobOutcome& a,
                       const serve::JobOutcome& b) {
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a.result->final_assignment(), *b.result->final_assignment());
  EXPECT_EQ(a.result->final_eval().power.total_power,
            b.result->final_eval().power.total_power);
  EXPECT_EQ(a.result->final_eval().power.switched_cap,
            b.result->final_eval().power.switched_cap);
  EXPECT_EQ(a.result->final_eval().timing.sink_arrival,
            b.result->final_eval().timing.sink_arrival);
  EXPECT_EQ(a.result->feasible, b.result->feasible);
  EXPECT_EQ(a.sinks, b.sinks);
  EXPECT_EQ(a.nets, b.nets);
}

// ---- SharedCache ----------------------------------------------------------

TEST(SharedCacheFingerprint, ContentKeyedNotNameKeyed) {
  const std::string a = write_file("serve_fp_a.txt", "same bytes\n");
  const std::string b = write_file("serve_fp_b.txt", "same bytes\n");
  const std::string c = write_file("serve_fp_c.txt", "other bytes\n");
  auto fa = serve::file_fingerprint(a);
  auto fb = serve::file_fingerprint(b);
  auto fc = serve::file_fingerprint(c);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fa.value(), fb.value());  // renaming does not defeat sharing.
  EXPECT_NE(fa.value(), fc.value());  // editing does.
  EXPECT_EQ(fa.value().size(), 16u);  // 64-bit hex.
}

TEST(SharedCacheFingerprint, MissingFileIsNotFound) {
  auto r = serve::file_fingerprint(temp_path("serve_fp_missing.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(SharedCache, TechParsedOncePerContent) {
  const std::string design = design_file("serve_cache_d.txt", 32, 5);
  serve::SharedCache cache;
  flow::FlowConfig c = small_config(design);

  serve::SharedCache::Lease first = cache.acquire(c);
  ASSERT_TRUE(first.valid);
  serve::SharedCache::Lease second = cache.acquire(c);
  ASSERT_TRUE(second.valid);
  EXPECT_EQ(first.world.tech.get(), second.world.tech.get());  // shared.
  EXPECT_EQ(cache.stats().tech_misses, 1);
  EXPECT_EQ(cache.stats().tech_hits, 1);
}

TEST(SharedCache, PredictorHarvestedThenReusedBitwise) {
  const std::string design = design_file("serve_cache_p.txt", 48, 7);
  serve::SharedCache cache;

  serve::JobOutcome first = serve::execute_job(small_config(design), &cache);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.stats().predictor_misses, 1);
  EXPECT_EQ(cache.stats().predictor_stores, 1);

  serve::JobOutcome second = serve::execute_job(small_config(design), &cache);
  EXPECT_EQ(cache.stats().predictor_hits, 1);
  expect_outcome_eq(first, second);

  // And both identical to a no-cache run: reuse changes cost, not bits.
  serve::JobOutcome bare = serve::execute_job(small_config(design), nullptr);
  expect_outcome_eq(bare, second);
}

TEST(SharedCache, PredictorKeyTracksTrainingSamples) {
  const std::string design = design_file("serve_cache_k.txt", 32, 9);
  serve::SharedCache cache;
  flow::FlowConfig a = small_config(design);
  flow::FlowConfig b = small_config(design);
  b.training_samples = 80;
  EXPECT_NE(cache.acquire(a).predictor_key, cache.acquire(b).predictor_key);

  flow::FlowConfig no_models = small_config(design);
  no_models.scoring = "exact_net";
  EXPECT_TRUE(cache.acquire(no_models).predictor_key.empty());
}

TEST(SharedCache, MissingInputsNeverMaskTheCanonicalError) {
  serve::SharedCache cache;

  // Missing design, default tech: the lease still carries the shared
  // default technology (no predictor key — nothing to fingerprint), and
  // the job itself reports the canonical loader error.
  flow::FlowConfig no_design =
      small_config(temp_path("serve_cache_missing.txt"));
  serve::SharedCache::Lease lease = cache.acquire(no_design);
  EXPECT_TRUE(lease.valid);
  EXPECT_TRUE(lease.predictor_key.empty());
  serve::JobOutcome out = serve::execute_job(no_design, &cache);
  EXPECT_EQ(out.status.code(), StatusCode::kNotFound);

  // Missing tech file: nothing to share — invalid lease, and the job's
  // Session walks the loaders itself (design first, then tech) for the
  // same diagnostics as the standalone CLI.
  flow::FlowConfig no_tech =
      small_config(design_file("serve_cache_nt.txt", 32, 6));
  no_tech.tech_path = temp_path("serve_cache_missing_tech.txt");
  EXPECT_FALSE(cache.acquire(no_tech).valid);
  serve::JobOutcome out2 = serve::execute_job(no_tech, &cache);
  EXPECT_EQ(out2.status.code(), StatusCode::kNotFound);
}

// ---- Server: concurrency and identity -------------------------------------

TEST(Server, ConcurrentSubmitsMatchSerialBitwise) {
  const std::vector<std::string> designs = {
      design_file("serve_cc_1.txt", 32, 11),
      design_file("serve_cc_2.txt", 48, 12),
      design_file("serve_cc_3.txt", 64, 13),
  };
  const int jobs = 12;
  std::vector<flow::FlowConfig> configs;
  for (int i = 0; i < jobs; ++i) {
    configs.push_back(
        small_config(designs[i % designs.size()], 100 + i));
  }

  std::vector<serve::JobOutcome> serial;
  for (const flow::FlowConfig& c : configs) {
    serial.push_back(serve::execute_job(c, nullptr));
  }

  serve::ServerOptions options;
  options.workers = 3;
  serve::Server server(options);
  std::vector<int> ids;
  for (const flow::FlowConfig& c : configs) {
    common::Result<int> id = server.submit(c);
    ASSERT_TRUE(id.ok()) << id.status().to_string();
    ids.push_back(id.value());
  }
  for (int i = 0; i < jobs; ++i) {
    common::Result<serve::JobRecord> rec = server.wait(ids[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, serve::JobState::kDone);
    expect_outcome_eq(serial[i], rec.value().outcome);
  }
  const auto snap = server.metrics_snapshot();
  EXPECT_EQ(snap.counter("serve.jobs_admitted"), jobs);
  EXPECT_EQ(snap.counter("serve.jobs_completed"), jobs);
  EXPECT_EQ(snap.counter("serve.jobs_failed"), 0);
  server.shutdown(serve::Server::Shutdown::kDrain);
}

TEST(Server, FailedJobSurfacesTypedStatusInRecord) {
  serve::Server server({});
  common::Result<int> id =
      server.submit(small_config(temp_path("serve_no_such_design.txt")));
  ASSERT_TRUE(id.ok());
  common::Result<serve::JobRecord> rec = server.wait(id.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().outcome.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server.metrics_snapshot().counter("serve.jobs_failed"), 1);
}

TEST(Server, WaitOnUnknownIdIsInvalidArgument) {
  serve::Server server({});
  EXPECT_EQ(server.wait(42).status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.cancel(42));
}

// ---- Server: admission control --------------------------------------------

TEST(Server, RejectsUndeclaredOrOversizedMemoryUnderBudget) {
  const std::string design = design_file("serve_adm.txt", 32, 21);
  serve::ServerOptions options;
  options.memory_budget_bytes = 64u << 20;
  serve::Server server(options);

  flow::FlowConfig undeclared = small_config(design);
  common::Result<int> r1 = server.submit(undeclared);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("declare"), std::string::npos);

  flow::FlowConfig oversized = small_config(design);
  oversized.memory_budget_bytes = 128u << 20;
  common::Result<int> r2 = server.submit(oversized);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  flow::FlowConfig fits = small_config(design);
  fits.memory_budget_bytes = 16u << 20;
  common::Result<int> r3 = server.submit(fits);
  ASSERT_TRUE(r3.ok()) << r3.status().to_string();
  ASSERT_TRUE(server.wait(r3.value()).ok());
  EXPECT_EQ(server.metrics_snapshot().counter("serve.jobs_rejected"), 2);
}

TEST(Server, BlocksRatherThanOversubscribesMemory) {
  // Two jobs each declaring > half the budget cannot run together; the
  // server must serialize them and still finish both.
  const std::string design = design_file("serve_adm_blk.txt", 32, 22);
  serve::ServerOptions options;
  options.workers = 2;
  options.memory_budget_bytes = 100u << 20;
  serve::Server server(options);

  flow::FlowConfig big = small_config(design);
  big.memory_budget_bytes = 70u << 20;
  common::Result<int> a = server.submit(big);
  common::Result<int> b = server.submit(big);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(server.wait(a.value()).value().outcome.ok());
  ASSERT_TRUE(server.wait(b.value()).value().outcome.ok());
  EXPECT_EQ(server.metrics_snapshot().counter("serve.jobs_completed"), 2);
}

// ---- Cancellation ---------------------------------------------------------

TEST(Cancel, PreCancelledJobReturnsCancelledAndWritesNothing) {
  const std::string dir = temp_path("serve_cancel_pre");
  std::filesystem::remove_all(dir);
  flow::FlowConfig c = small_config(design_file("serve_cancel_d.txt", 32, 31));
  c.results_dir = dir;
  c.metrics_out = "run.json";
  c.spef_out = "out.spef";

  common::CancelToken token;
  token.cancel();
  serve::JobOutcome out = serve::execute_job(c, nullptr, token);
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(out.result.has_value());
  EXPECT_FALSE(std::filesystem::exists(dir));  // nothing written at all.
}

TEST(Cancel, MidAnnealReturnsCancelledLeavesNoPartialArtifacts) {
  const std::string design = design_file("serve_cancel_anneal.txt", 48, 33);
  const std::string ref_dir = temp_path("serve_cancel_ref");
  const std::string dir = temp_path("serve_cancel_mid");
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(dir);

  flow::FlowConfig base = small_config(design);
  base.anneal_iterations = 400000;
  base.checkpoint_interval = 100;
  base.checkpoint_path = "anneal.ck";
  base.metrics_out = "run.json";
  base.spef_out = "out.spef";

  // Uninterrupted reference (its own results dir, its own checkpoint).
  flow::FlowConfig ref_config = base;
  ref_config.results_dir = ref_dir;
  const serve::JobOutcome ref = serve::execute_job(ref_config, nullptr);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref.result->anneal.has_value());

  // Cancelled run: fire the token once the first checkpoint exists, i.e.
  // provably mid-anneal.
  flow::FlowConfig cancelled_config = base;
  cancelled_config.results_dir = dir;
  const std::string ck = cancelled_config.output_path("anneal.ck");
  common::CancelToken token;
  serve::JobOutcome cancelled;
  std::thread runner([&cancelled, &cancelled_config, &token] {
    cancelled = serve::execute_job(cancelled_config, nullptr, token);
  });
  while (!std::filesystem::exists(ck)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  token.cancel();
  runner.join();

  ASSERT_EQ(cancelled.status.code(), StatusCode::kCancelled)
      << cancelled.status.to_string()
      << " (the run finished before the cancel landed; raise "
         "anneal_iterations)";
  // The checkpoint is the ONLY artifact: no manifest, no SPEF, no tmp
  // leftovers from the atomic writers.
  EXPECT_TRUE(std::filesystem::exists(ck));
  EXPECT_FALSE(
      std::filesystem::exists(cancelled_config.output_path("run.json")));
  EXPECT_FALSE(
      std::filesystem::exists(cancelled_config.output_path("out.spef")));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << "partial file: " << entry.path();
  }

  // Resubmit the same config: it resumes from the cancelled run's
  // checkpoint and lands on the uninterrupted run's bits.
  const serve::JobOutcome resumed =
      serve::execute_job(cancelled_config, nullptr);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed.result->anneal.has_value());
  EXPECT_GT(resumed.result->resumed_from_iteration, 0);
  EXPECT_EQ(ref.result->anneal->assignment, resumed.result->anneal->assignment);
  EXPECT_EQ(ref.result->anneal->final_eval.power.switched_cap,
            resumed.result->anneal->final_eval.power.switched_cap);
  expect_outcome_eq(ref, resumed);

  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(dir);
}

TEST(Cancel, QueuedJobCancelledBeforeStartNeverRuns) {
  const std::string design = design_file("serve_cancel_q.txt", 48, 35);
  serve::ServerOptions options;
  options.workers = 1;  // one lane: the second job must queue.
  serve::Server server(options);

  flow::FlowConfig slow = small_config(design);
  slow.anneal_iterations = 400000;
  common::Result<int> running = server.submit(slow);
  ASSERT_TRUE(running.ok());

  const std::string victim_dir = temp_path("serve_cancel_q_out");
  std::filesystem::remove_all(victim_dir);
  flow::FlowConfig queued = small_config(design);
  queued.results_dir = victim_dir;
  queued.metrics_out = "run.json";
  common::Result<int> victim = server.submit(queued);
  ASSERT_TRUE(victim.ok());

  EXPECT_TRUE(server.cancel(victim.value()));
  EXPECT_TRUE(server.cancel(running.value()));  // unwind the anneal too.

  common::Result<serve::JobRecord> vrec = server.wait(victim.value());
  ASSERT_TRUE(vrec.ok());
  EXPECT_EQ(vrec.value().outcome.status.code(), StatusCode::kCancelled);
  EXPECT_FALSE(std::filesystem::exists(victim_dir));  // never started.

  common::Result<serve::JobRecord> rrec = server.wait(running.value());
  ASSERT_TRUE(rrec.ok());
  // The running job either unwound with kCancelled or (tiny race) had
  // already finished; both are terminal, nothing hangs.
  EXPECT_TRUE(rrec.value().outcome.status.code() == StatusCode::kCancelled ||
              rrec.value().outcome.ok());
  EXPECT_GE(server.metrics_snapshot().counter("serve.jobs_cancelled"), 1);
}

// ---- Shutdown -------------------------------------------------------------

TEST(Shutdown, DrainFinishesEveryQueuedJob) {
  const std::string design = design_file("serve_drain.txt", 32, 41);
  serve::ServerOptions options;
  options.workers = 2;
  serve::Server server(options);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(server.submit(small_config(design, 50 + i)).ok());
  }
  const std::vector<serve::JobRecord> records = server.drain();
  ASSERT_EQ(records.size(), 6u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, static_cast<int>(i) + 1);  // ascending ids.
    EXPECT_EQ(records[i].state, serve::JobState::kDone);
    EXPECT_TRUE(records[i].outcome.ok());
  }
  // Post-shutdown submits are rejected, not queued.
  common::Result<int> late = server.submit(small_config(design));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kInvalidArgument);
}

TEST(Shutdown, CancelModeTerminatesWithoutFinishingTheQueue) {
  const std::string design = design_file("serve_shutdown.txt", 48, 43);
  serve::ServerOptions options;
  options.workers = 1;
  serve::Server server(options);
  flow::FlowConfig slow = small_config(design);
  slow.anneal_iterations = 400000;
  std::vector<int> ids;
  for (int i = 0; i < 4; ++i) {
    common::Result<int> id = server.submit(slow);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  server.shutdown(serve::Server::Shutdown::kCancel);
  int cancelled = 0;
  for (const int id : ids) {
    common::Result<serve::JobRecord> rec = server.wait(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec.value().state, serve::JobState::kDone);
    if (rec.value().outcome.status.code() == StatusCode::kCancelled) {
      ++cancelled;
    }
  }
  // The queued jobs (at least) must have been cancelled, not run.
  EXPECT_GE(cancelled, 3);
}

// ---- sndr_serve tool ------------------------------------------------------

/// Runs `sndr_serve <args>`, returns the exit code; captures stdout+stderr.
int run_serve_tool(const std::string& args, std::string* output = nullptr) {
  const std::string log = temp_path("serve_tool_run.log");
  const std::string cmd =
      std::string(SNDR_SERVE_PATH) + " " + args + " > " + log + " 2>&1";
  const int raw = std::system(cmd.c_str());
  if (output != nullptr) {
    std::ifstream f(log);
    std::stringstream ss;
    ss << f.rdbuf();
    *output = ss.str();
  }
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

TEST(ServeTool, SpoolExitCodeSeparatesCleanFromRejected) {
  namespace fs = std::filesystem;
  const std::string design = design_file("serve_tool_design.txt", 24, 7);
  const fs::path spool = fs::path(temp_path("serve_tool_spool"));
  fs::remove_all(spool);
  fs::create_directories(spool);
  std::ofstream((spool / "a.job").string())
      << "design = " << design << "\n"
      << "training_samples = 40\n"
      << "memory_budget = 4M\n";

  // Budget declared and under the server budget: clean run, exit 0.
  std::string out;
  EXPECT_EQ(run_serve_tool("--spool " + spool.string() +
                               " --memory-budget 64M --threads 1",
                           &out),
            0)
      << out;
  EXPECT_NE(out.find("submitted"), std::string::npos) << out;
  EXPECT_NE(out.find("feasible"), std::string::npos) << out;

  // An undeclared-budget job is rejected at admission; even though the
  // drained record list is empty the spool run must NOT read as success.
  std::ofstream((spool / "a.job").string(), std::ios::trunc)
      << "design = " << design << "\n"
      << "training_samples = 40\n";
  EXPECT_EQ(run_serve_tool("--spool " + spool.string() +
                               " --memory-budget 64M --threads 1",
                           &out),
            1)
      << out;
  EXPECT_NE(out.find("rejected"), std::string::npos) << out;
}

}  // namespace
}  // namespace sndr
