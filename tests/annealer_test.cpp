#include <gtest/gtest.h>

#include <cmath>

#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"

namespace sndr::ndr {
namespace {

class AnnealerFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(128, 31);
};

TEST_F(AnnealerFixture, NeverWorseThanStartAndFeasible) {
  const SmartNdrResult greedy =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  AnnealOptions opt;
  opt.iterations = 4000;
  const AnnealResult sa = anneal_rules(f.cts.tree, f.design, f.tech, f.nets,
                                       greedy.assignment, opt);
  EXPECT_TRUE(sa.final_eval.feasible());
  EXPECT_LE(sa.final_eval.power.switched_cap,
            greedy.final_eval.power.switched_cap + 1e-18);
  EXPECT_LE(sa.end_cap, sa.start_cap + 1e-18);
  EXPECT_GT(sa.proposed, 0);
}

TEST_F(AnnealerFixture, ImprovesFromBlanketStart) {
  // Starting from blanket (not the greedy optimum), annealing must find
  // substantial savings on its own.
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  AnnealOptions opt;
  opt.iterations = 6000;
  const AnnealResult sa =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  EXPECT_TRUE(sa.final_eval.feasible());
  EXPECT_LT(sa.end_cap, 0.97 * sa.start_cap);
  EXPECT_GT(sa.accepted, 0);
}

TEST_F(AnnealerFixture, Deterministic) {
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  AnnealOptions opt;
  opt.iterations = 2000;
  const AnnealResult a =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  const AnnealResult b =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST_F(AnnealerFixture, SeedChangesTrajectoryNotFeasibility) {
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  AnnealOptions opt;
  opt.iterations = 2000;
  opt.seed = 2;
  const AnnealResult a =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  opt.seed = 3;
  const AnnealResult b =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  EXPECT_TRUE(a.final_eval.feasible());
  EXPECT_TRUE(b.final_eval.feasible());
  EXPECT_NE(a.accepted, b.accepted);
}

TEST_F(AnnealerFixture, ZeroIterationsIsIdentity) {
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  AnnealOptions opt;
  opt.iterations = 0;
  const AnnealResult sa =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  EXPECT_EQ(sa.assignment, blanket);
  EXPECT_EQ(sa.proposed, 0);
}

TEST_F(AnnealerFixture, AcceptedPlusRejectedEqualsProposed) {
  // Every proposed move is decided exactly once, whichever of the three
  // rejection gates (Metropolis, EM bound, incremental constraint check)
  // fires — across seeds so all gates get exercised.
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  for (const std::uint64_t seed : {1u, 7u, 23u, 101u}) {
    AnnealOptions opt;
    opt.iterations = 1500;
    opt.seed = seed;
    const AnnealResult sa =
        anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
    EXPECT_EQ(sa.proposed, opt.iterations) << "seed " << seed;
    EXPECT_EQ(sa.accepted + sa.rejected, sa.proposed) << "seed " << seed;
    EXPECT_GE(sa.rejected, 0) << "seed " << seed;
  }
}

TEST_F(AnnealerFixture, ZeroEvalHitRateIsZeroNotNaN) {
  // Regression: with zero exact evals the hit rate must report 0.0
  // (hits/total used to be an unguarded division).
  AnnealOptions opt;
  opt.iterations = 0;
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  const AnnealResult sa =
      anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  EXPECT_EQ(sa.exact_cache_hits + sa.exact_cache_misses, 0);
  EXPECT_EQ(sa.exact_cache_hit_rate(), 0.0);
  EXPECT_FALSE(std::isnan(sa.exact_cache_hit_rate()));
  EXPECT_EQ(AnnealResult{}.exact_cache_hit_rate(), 0.0);
  EXPECT_EQ(OptimizerStats{}.exact_cache_hit_rate(), 0.0);
}

}  // namespace
}  // namespace sndr::ndr
