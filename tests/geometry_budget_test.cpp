// Budgeted GeometryCache tests (DESIGN.md "Memory budget").
//
// The contract under test: a byte budget changes WHEN geometry is built
// (LRU eviction + lazy rebuild) but never WHAT is built — every flow
// result is bitwise identical to the unbounded path, at any thread count.
// Alongside the identity checks, the accounting invariants: resident
// bytes return under the budget once pins are released, pinned entries
// survive arbitrary eviction pressure, and the unbounded-only entry
// points refuse to run in budgeted mode.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using extract::GeometryCache;
using extract::NetGeometry;

/// A budget small enough to force heavy eviction on the test design but
/// large enough to hold the single largest net (the cache must always be
/// able to pin at least one entry).
std::size_t heavy_eviction_budget(const GeometryCache& unbounded) {
  return unbounded.resident_bytes() / 8 + 1024;
}

void expect_geom_eq(const NetGeometry& a, const NetGeometry& b) {
  EXPECT_EQ(a.piece_parent, b.piece_parent);
  EXPECT_EQ(a.piece_len, b.piece_len);
  EXPECT_EQ(a.piece_occ, b.piece_occ);
  EXPECT_EQ(a.node_tree_node, b.node_tree_node);
  EXPECT_EQ(a.postorder, b.postorder);
  EXPECT_EQ(a.node_rc, b.node_rc);
  EXPECT_EQ(a.wirelength, b.wirelength);
  ASSERT_EQ(a.loads.size(), b.loads.size());
  for (std::size_t i = 0; i < a.loads.size(); ++i) {
    EXPECT_EQ(a.loads[i].rc_index, b.loads[i].rc_index);
    EXPECT_EQ(a.loads[i].buffer_cell, b.loads[i].buffer_cell);
    EXPECT_EQ(a.loads[i].sink_cap, b.loads[i].sink_cap);
  }
}

void expect_eval_eq(const ndr::FlowEvaluation& a,
                    const ndr::FlowEvaluation& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.power.switched_cap, b.power.switched_cap);
  EXPECT_EQ(a.power.total_power, b.power.total_power);
  EXPECT_EQ(a.power.net_switched_cap, b.power.net_switched_cap);
  EXPECT_EQ(a.timing.max_slew, b.timing.max_slew);
  EXPECT_EQ(a.timing.min_latency, b.timing.min_latency);
  EXPECT_EQ(a.timing.max_latency, b.timing.max_latency);
  EXPECT_EQ(a.timing.sink_arrival, b.timing.sink_arrival);
  EXPECT_EQ(a.timing.sink_slew, b.timing.sink_slew);
  EXPECT_EQ(a.variation.max_uncertainty, b.variation.max_uncertainty);
  EXPECT_EQ(a.variation.sink_uncertainty, b.variation.sink_uncertainty);
  EXPECT_EQ(a.em.worst_density, b.em.worst_density);
  EXPECT_EQ(a.max_track_util, b.max_track_util);
  EXPECT_EQ(a.overflow_cells, b.overflow_cells);
  EXPECT_EQ(a.slew_violations, b.slew_violations);
  EXPECT_EQ(a.uncertainty_violations, b.uncertainty_violations);
  EXPECT_EQ(a.em_violations, b.em_violations);
  EXPECT_EQ(a.window_violations, b.window_violations);
  EXPECT_EQ(a.skew_ok, b.skew_ok);
}

TEST(GeometryBudget, PinnedMatchesUnboundedBitwise) {
  const test::Flow f = test::small_flow();
  const GeometryCache unbounded(f.cts.tree, f.design, f.nets);
  const GeometryCache budgeted(f.cts.tree, f.design, f.nets,
                               heavy_eviction_budget(unbounded), {});
  ASSERT_TRUE(budgeted.budgeted());
  // Two passes: the second re-reads entries the budget already evicted,
  // so rebuilt geometry is compared too, not just first builds.
  for (int pass = 0; pass < 2; ++pass) {
    for (int id = 0; id < unbounded.net_count(); ++id) {
      const GeometryCache::Pinned p = budgeted.pinned(id);
      expect_geom_eq(unbounded.geometry(id), *p);
    }
  }
  EXPECT_GT(budgeted.evictions(), 0);
  EXPECT_GT(budgeted.builds(), unbounded.builds());
}

TEST(GeometryBudget, GeometryThrowsInBudgetedMode) {
  const test::Flow f = test::small_flow(16);
  const GeometryCache budgeted(f.cts.tree, f.design, f.nets, 4096, {});
  EXPECT_THROW(budgeted.geometry(0), std::logic_error);
  EXPECT_NO_THROW(budgeted.pinned(0));
}

TEST(GeometryBudget, AccountingInvariantsUnderEvictionPressure) {
  const test::Flow f = test::small_flow();
  const GeometryCache unbounded(f.cts.tree, f.design, f.nets);
  const std::size_t budget = heavy_eviction_budget(unbounded);
  const GeometryCache cache(f.cts.tree, f.design, f.nets, budget, {});
  EXPECT_EQ(cache.budget_bytes(), budget);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  for (int id = 0; id < cache.net_count(); ++id) {
    const GeometryCache::Pinned p = cache.pinned(id);
    EXPECT_GT(cache.resident_bytes(), 0u);
  }
  // No pins outstanding: eviction has brought residency under the budget.
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  EXPECT_GE(cache.highwater_bytes(), cache.resident_bytes());
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_GE(cache.builds(), cache.net_count());
  // A full second sweep rebuilds evicted entries.
  const std::int64_t builds_before = cache.builds();
  for (int id = 0; id < cache.net_count(); ++id) cache.pinned(id);
  EXPECT_GT(cache.builds(), builds_before);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
}

TEST(GeometryBudget, PinnedEntrySurvivesEviction) {
  const test::Flow f = test::small_flow();
  const GeometryCache unbounded(f.cts.tree, f.design, f.nets);
  const GeometryCache cache(f.cts.tree, f.design, f.nets,
                            heavy_eviction_budget(unbounded), {});
  const GeometryCache::Pinned held = cache.pinned(0);
  const NetGeometry* addr = held.get();
  const NetGeometry copy = *held;  // contents before the churn.
  // Cycle every other net several times — plenty of eviction pressure.
  for (int pass = 0; pass < 3; ++pass) {
    for (int id = 1; id < cache.net_count(); ++id) cache.pinned(id);
  }
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_EQ(held.get(), addr);  // never relocated while pinned.
  expect_geom_eq(copy, *held);  // never clobbered while pinned.
}

TEST(GeometryBudget, InvalidateWhilePinnedThrowsThenRebuildsLazily) {
  const test::Flow f = test::small_flow(16);
  GeometryCache cache(f.cts.tree, f.design, f.nets, 1 << 20, {});
  {
    const GeometryCache::Pinned held = cache.pinned(0);
    EXPECT_THROW(cache.invalidate(), std::logic_error);
  }
  EXPECT_NO_THROW(cache.invalidate());
  EXPECT_EQ(cache.resident_bytes(), 0u);
  const std::int64_t builds_before = cache.builds();
  cache.pinned(0);
  EXPECT_EQ(cache.builds(), builds_before + 1);
}

TEST(GeometryBudget, EvaluateBitwiseIdenticalUnderBudget) {
  const test::Flow f = test::small_flow();
  const ndr::RuleAssignment blanket = ndr::assign_all(f.nets, 0);
  const GeometryCache unbounded(f.cts.tree, f.design, f.nets);
  const GeometryCache budgeted(f.cts.tree, f.design, f.nets,
                               heavy_eviction_budget(unbounded), {});
  const ndr::FlowEvaluation ref = ndr::evaluate(
      f.cts.tree, f.design, f.tech, f.nets, blanket, {}, &unbounded);
  for (const int threads : {1, 8}) {
    common::set_thread_count(threads);
    const ndr::FlowEvaluation got = ndr::evaluate(
        f.cts.tree, f.design, f.tech, f.nets, blanket, {}, &budgeted);
    expect_eval_eq(ref, got);
  }
  common::set_thread_count(-1);
  EXPECT_GT(budgeted.evictions(), 0);
}

TEST(GeometryBudget, CornersBitwiseIdenticalUnderBudget) {
  const test::Flow f = test::small_flow();
  const ndr::RuleAssignment blanket = ndr::assign_all(f.nets, 0);
  const GeometryCache unbounded(f.cts.tree, f.design, f.nets);
  const GeometryCache budgeted(f.cts.tree, f.design, f.nets,
                               heavy_eviction_budget(unbounded), {});
  const ndr::MultiCornerReport ref =
      ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket,
                            tech::standard_corners(), {}, &unbounded);
  const ndr::MultiCornerReport got =
      ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket,
                            tech::standard_corners(), {}, &budgeted);
  ASSERT_EQ(ref.corners.size(), got.corners.size());
  for (std::size_t c = 0; c < ref.corners.size(); ++c) {
    expect_eval_eq(ref.corners[c].eval, got.corners[c].eval);
  }
}

TEST(GeometryBudget, OptimizeBitwiseIdenticalUnderBudget) {
  const test::Flow f = test::small_flow();
  ndr::OptimizerOptions opts;
  opts.threads = 1;
  const ndr::SmartNdrResult ref =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opts);

  // Size the budget off the unbounded search's own footprint.
  const GeometryCache probe(f.cts.tree, f.design, f.nets);
  opts.geometry_budget_bytes = heavy_eviction_budget(probe);
  for (const int threads : {1, 8}) {
    opts.threads = threads;
    const ndr::SmartNdrResult got =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opts);
    EXPECT_EQ(ref.assignment, got.assignment);
    expect_eval_eq(ref.final_eval, got.final_eval);
    EXPECT_EQ(ref.rule_histogram, got.rule_histogram);
  }
  common::set_thread_count(-1);
}

}  // namespace
}  // namespace sndr
