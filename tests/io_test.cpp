#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "extract/extractor.hpp"
#include "io/line_reader.hpp"
#include "io/spef.hpp"
#include "io/svg.hpp"
#include "test_util.hpp"

namespace sndr::io {
namespace {

class IoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    flow_ = test::small_flow(48, 9);
    assignment_.assign(flow_.nets.size(), flow_.tech.rules.blanket_index());
    const extract::Extractor ex(flow_.tech, flow_.design);
    parasitics_ = ex.extract_all(flow_.cts.tree, flow_.nets, assignment_);
  }

  test::Flow flow_;
  std::vector<int> assignment_;
  std::vector<extract::NetParasitics> parasitics_;
};

TEST_F(IoFixture, SpefRoundTripPreservesTotals) {
  std::ostringstream os;
  write_spef(os, flow_.cts.tree, flow_.design, flow_.nets, parasitics_);
  std::istringstream is(os.str());
  const SpefFile spef = read_spef(is);

  EXPECT_EQ(spef.design_name, flow_.design.name);
  ASSERT_EQ(static_cast<int>(spef.nets.size()), flow_.nets.size());
  for (const auto& net : flow_.nets.nets) {
    const SpefNet* sn = spef.find("clk_net_" + std::to_string(net.id));
    ASSERT_NE(sn, nullptr);
    const extract::NetParasitics& par = parasitics_[net.id];
    // Header total and the sum of *CAP entries both match the extraction.
    EXPECT_NEAR(sn->total_cap, par.switched_cap(1.0),
                1e-5 * par.switched_cap(1.0) + 1e-18);
    EXPECT_NEAR(sn->cap_sum(), par.switched_cap(1.0),
                1e-4 * par.switched_cap(1.0) + 1e-17);
    // One resistor per non-driver RC node.
    EXPECT_EQ(static_cast<int>(sn->resistors.size()), par.rc.size() - 1);
    double res_total = 0.0;
    for (const auto& r : sn->resistors) res_total += r.ohm;
    double expected_res = 0.0;
    for (int i = 1; i < par.rc.size(); ++i) {
      expected_res += par.rc.node(i).res;
    }
    EXPECT_NEAR(res_total, expected_res, 1e-4 * expected_res + 1e-9);
  }
}

TEST_F(IoFixture, SpefHeaderContents) {
  std::ostringstream os;
  write_spef(os, flow_.cts.tree, flow_.design, flow_.nets, parasitics_);
  const std::string text = os.str();
  EXPECT_NE(text.find("*SPEF \"IEEE 1481-1998\""), std::string::npos);
  EXPECT_NE(text.find("*C_UNIT 1 FF"), std::string::npos);
  EXPECT_NE(text.find("*P src:Z O"), std::string::npos);
  EXPECT_NE(text.find("sink_0:CK"), std::string::npos);
}

TEST_F(IoFixture, SpefFileIo) {
  const std::string path = "/tmp/sndr_io_test.spef";
  write_spef_file(path, flow_.cts.tree, flow_.design, flow_.nets,
                  parasitics_);
  const SpefFile spef = read_spef_file(path);
  EXPECT_EQ(static_cast<int>(spef.nets.size()), flow_.nets.size());
  std::remove(path.c_str());
  EXPECT_THROW(read_spef_file("/nonexistent/file.spef"),
               std::runtime_error);
  EXPECT_THROW(write_spef_file("/nonexistent_dir/file.spef", flow_.cts.tree,
                               flow_.design, flow_.nets, parasitics_),
               std::runtime_error);
}

TEST_F(IoFixture, SpefUnitScaling) {
  const char* text =
      "*DESIGN \"d\"\n"
      "*T_UNIT 1 NS\n*C_UNIT 1 PF\n*R_UNIT 1 KOHM\n"
      "*D_NET n1 2.0\n"
      "*CAP\n1 n1:1 1.5\n"
      "*RES\n1 n1:0 n1:1 0.25\n"
      "*END\n";
  std::istringstream is(text);
  const SpefFile spef = read_spef(is);
  ASSERT_EQ(spef.nets.size(), 1u);
  EXPECT_DOUBLE_EQ(spef.nets[0].total_cap, 2.0e-12);
  EXPECT_DOUBLE_EQ(spef.nets[0].caps[0].second, 1.5e-12);
  EXPECT_DOUBLE_EQ(spef.nets[0].resistors[0].ohm, 250.0);
}

TEST_F(IoFixture, SpefParseErrors) {
  std::istringstream bad_unit("*T_UNIT 1 PARSEC\n");
  EXPECT_THROW(read_spef(bad_unit), std::runtime_error);
  // A malformed multiplier is a ParseError with a source:line diagnostic,
  // not a stray std::invalid_argument out of std::stod.
  std::istringstream bad_mult("*T_UNIT abc PS\n");
  try {
    read_spef(bad_mult, "unit.spef");
    FAIL() << "expected ParseError";
  } catch (const common::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unit.spef:1:"), std::string::npos)
        << e.what();
  }
  std::istringstream bad_cap("*D_NET n 1\n*CAP\nnot_an_entry\n*END\n");
  EXPECT_THROW(read_spef(bad_cap), std::runtime_error);
  std::istringstream bad_res("*D_NET n 1\n*RES\n1 a b\n*END\n");
  EXPECT_THROW(read_spef(bad_res), std::runtime_error);
}

TEST_F(IoFixture, SpefSizeMismatchThrows) {
  parasitics_.pop_back();
  std::ostringstream os;
  EXPECT_THROW(write_spef(os, flow_.cts.tree, flow_.design, flow_.nets,
                          parasitics_),
               std::invalid_argument);
}

TEST_F(IoFixture, SvgWellFormed) {
  const std::string svg = render_svg(flow_.cts.tree, flow_.design,
                                     flow_.tech, flow_.nets, assignment_);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polyline per non-root edge.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, static_cast<std::size_t>(flow_.cts.tree.size() - 1));
  // Legend mentions every rule name.
  for (const tech::RoutingRule& r : flow_.tech.rules) {
    EXPECT_NE(svg.find(">" + r.name + "<"), std::string::npos) << r.name;
  }
  // Sinks and buffers drawn.
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("fill=\"#d62728\""), std::string::npos);
}

TEST_F(IoFixture, SvgOptionsRespected) {
  SvgOptions opt;
  opt.draw_sinks = false;
  opt.draw_buffers = false;
  opt.draw_congestion = false;
  opt.draw_legend = false;
  const std::string svg = render_svg(flow_.cts.tree, flow_.design,
                                     flow_.tech, flow_.nets, assignment_,
                                     opt);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("#d62728"), std::string::npos);
  EXPECT_EQ(svg.find("font-family"), std::string::npos);
}

TEST_F(IoFixture, SvgAssignmentMismatchThrows) {
  EXPECT_THROW(render_svg(flow_.cts.tree, flow_.design, flow_.tech,
                          flow_.nets, {0}),
               std::invalid_argument);
}

TEST_F(IoFixture, SvgFileIo) {
  const std::string path = "/tmp/sndr_io_test.svg";
  write_svg_file(path, flow_.cts.tree, flow_.design, flow_.tech, flow_.nets,
                 assignment_);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::remove(path.c_str());
}

// --- Streaming line input (DESIGN.md §10) ---------------------------------
// The design/SPEF readers see LineReader only through their round-trip
// tests above; these pin the chunking machinery directly, with chunk sizes
// tiny enough that every line crosses a read boundary.

std::string write_temp(const std::string& body) {
  const std::string path = "/tmp/sndr_line_reader_test.txt";
  std::ofstream os(path, std::ios::binary);
  os << body;
  return path;
}

std::vector<std::string> drain(LineSource& src) {
  std::vector<std::string> lines;
  std::string_view line;
  while (src.next(line)) lines.emplace_back(line);
  return lines;
}

TEST(LineReaderTest, TinyChunksCompactAcrossBoundaries) {
  const std::string path =
      write_temp("alpha\nbeta gamma\n\ndelta epsilon zeta\nx\n");
  const std::vector<std::string> want = {"alpha", "beta gamma", "",
                                         "delta epsilon zeta", "x"};
  // Chunk sizes straddling every line length: each forces the partial
  // line at the boundary through the memmove-compaction path.
  for (const std::size_t chunk : {1u, 2u, 3u, 7u, 16u}) {
    LineReader reader(path, chunk);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(drain(reader), want) << "chunk_bytes=" << chunk;
  }
  std::remove(path.c_str());
}

TEST(LineReaderTest, LongLineGrowsBufferAndCrLfIsStripped) {
  const std::string long_line(1000, 'q');
  const std::string path =
      write_temp("first\r\n" + long_line + "\r\nlast_no_newline");
  LineReader reader(path, 16);  // buffer must grow ~64x for the long line.
  ASSERT_TRUE(reader.ok());
  const std::vector<std::string> lines = drain(reader);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], long_line);
  // The final unterminated line is surfaced, not dropped.
  EXPECT_EQ(lines[2], "last_no_newline");
  std::remove(path.c_str());
}

TEST(LineReaderTest, MissingFileReportsNotOkAndEof) {
  LineReader reader("/nonexistent/sndr_line_reader.txt");
  EXPECT_FALSE(reader.ok());
  std::string_view line;
  EXPECT_FALSE(reader.next(line));
}

TEST(LineReaderTest, IstreamSourceMatchesFileReader) {
  const std::string body = "a b c\n1 2 3\ntail";
  const std::string path = write_temp(body);
  LineReader file_reader(path, 4);
  std::istringstream is(body);
  IstreamLineSource stream_reader(is);
  EXPECT_EQ(drain(file_reader), drain(stream_reader));
  std::remove(path.c_str());
}

TEST(TokenizerTest, SplitsOnAnyWhitespaceRun) {
  Tokenizer tok("  one\ttwo   three ");
  std::string_view t;
  ASSERT_TRUE(tok.next(t));
  EXPECT_EQ(t, "one");
  ASSERT_TRUE(tok.next(t));
  EXPECT_EQ(t, "two");
  EXPECT_FALSE(tok.exhausted());
  ASSERT_TRUE(tok.next(t));
  EXPECT_EQ(t, "three");
  EXPECT_TRUE(tok.exhausted());
  EXPECT_FALSE(tok.next(t));
}

TEST(TokenizerTest, NumericParsingConsumesWholeTokens) {
  Tokenizer tok("4 -2.5e3 +7 +0.25 1.5x nan_fallthrough");
  int i = 0;
  double d = 0.0;
  EXPECT_TRUE(tok.next_int(i));
  EXPECT_EQ(i, 4);
  EXPECT_TRUE(tok.next_double(d));
  EXPECT_EQ(d, -2.5e3);
  // Leading '+' is accepted even though bare from_chars rejects it.
  EXPECT_TRUE(tok.next_int(i));
  EXPECT_EQ(i, 7);
  EXPECT_TRUE(tok.next_double(d));
  EXPECT_EQ(d, 0.25);
  // "1.5x" must NOT parse as 1.5 — trailing junk is a typo, not a number.
  EXPECT_FALSE(tok.next_double(d));
  EXPECT_FALSE(tok.next_double(d));  // non-numeric word fails too.
  EXPECT_TRUE(tok.exhausted());
  // Exhausted lines report failure, not stale values.
  EXPECT_FALSE(tok.next_int(i));
  EXPECT_FALSE(tok.next_double(d));
}

TEST(TokenizerTest, RestReturnsUntrimmedRemainder) {
  Tokenizer tok("*DESIGN \"top level\"");
  std::string_view t;
  ASSERT_TRUE(tok.next(t));
  EXPECT_EQ(t, "*DESIGN");
  EXPECT_EQ(tok.rest(), " \"top level\"");
}

}  // namespace
}  // namespace sndr::io
