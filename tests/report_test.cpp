#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/table.hpp"

namespace sndr::report {
namespace {

TEST(Table, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_EQ(t.rows(), 1);
}

TEST(Table, PrintAligns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvEscaping) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "multi\nline"});
  const std::string path = "/tmp/sndr_report_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("a,b\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, CsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv("/nonexistent_dir_xyz/file.csv"),
               std::runtime_error);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Percent) {
  EXPECT_EQ(fmt_pct(0.234), "+23.4%");
  EXPECT_EQ(fmt_pct(-0.056), "-5.6%");
  EXPECT_EQ(fmt_pct(0.0), "+0.0%");
}

}  // namespace
}  // namespace sndr::report
