#include <gtest/gtest.h>

#include <cmath>

#include "ndr/smart_ndr.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr::ndr {
namespace {

using units::GHz;
using units::ps;

TEST(Assignments, AllAndLevelBased) {
  const test::Flow f = test::small_flow(32);
  const RuleAssignment all = assign_all(f.nets, 3);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(f.nets.size()));
  for (const int r : all) EXPECT_EQ(r, 3);

  const RuleAssignment lvl = assign_level_based(f.nets, 1, 4, 0);
  for (const auto& net : f.nets.nets) {
    EXPECT_EQ(lvl[net.id], net.depth < 1 ? 4 : 0);
  }
}

TEST(SolveSpd, Identity) {
  const auto x = solve_spd({1, 0, 0, 1}, {3, 4}, 2);
  EXPECT_DOUBLE_EQ(x[0], 3);
  EXPECT_DOUBLE_EQ(x[1], 4);
}

TEST(SolveSpd, KnownSystem) {
  // [[4,2],[2,3]] x = [10, 9] -> x = [1.5, 2].
  const auto x = solve_spd({4, 2, 2, 3}, {10, 9}, 2);
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RejectsIndefinite) {
  EXPECT_THROW(solve_spd({1, 2, 2, 1}, {1, 1}, 2), std::runtime_error);
}

TEST(Ridge, RecoversLinearFunction) {
  // y = 3 + 2 a - 5 b, noise-free.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double a = 0.1 * i;
    const double b = std::sin(i * 0.7);
    x.push_back({a, b});
    y.push_back(3 + 2 * a - 5 * b);
  }
  RidgeRegression m;
  m.fit(x, y, 1e-9);
  EXPECT_NEAR(m.predict({1.0, 0.5}), 3 + 2 - 2.5, 1e-5);
  EXPECT_NEAR(m.predict({0.0, 0.0}), 3.0, 1e-5);
}

TEST(Ridge, HandlesConstantFeature) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({1.0, static_cast<double>(i)});
    y.push_back(2.0 * i);
  }
  RidgeRegression m;
  EXPECT_NO_THROW(m.fit(x, y));
  EXPECT_NEAR(m.predict({1.0, 10.0}), 20.0, 0.5);
}

TEST(Ridge, ShapeErrors) {
  RidgeRegression m;
  EXPECT_THROW(m.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(m.fit({{1, 2}}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(m.fit({{1, 2}, {1}}, {1, 2}), std::invalid_argument);
  m.fit({{1, 2}, {2, 3}, {3, 5}}, {1, 2, 3});
  EXPECT_THROW(m.predict({1.0}), std::invalid_argument);
}

TEST(Metrics, MaeAndR2) {
  const std::vector<double> truth{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_abs_error(truth, truth), 0.0);
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
  const std::vector<double> off{2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_abs_error(truth, off), 1.0);
  EXPECT_LT(r_squared(truth, off), 1.0);
}

TEST(Metrics, SpearmanPerfectAndInverse) {
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1, 2, 3}, {10, 20, 30}), 1.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1, 2, 3}, {9, 5, 1}), -1.0);
  // Monotone transform invariant.
  EXPECT_DOUBLE_EQ(
      spearman_rank_correlation({1, 2, 3, 4}, {1, 100, 10000, 1e6}), 1.0);
  // Constant input: defined as 0.
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

class NetEvalFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(64, 13);
  timing::AnalysisOptions aopt;
};

// Analytic switched cap must match extraction for every rule and net.
class AnalyticCapSweep : public ::testing::TestWithParam<int> {};

TEST_P(AnalyticCapSweep, MatchesExtraction) {
  static test::Flow f = test::small_flow(48, 19);
  const int rule_idx = GetParam();
  const timing::AnalysisOptions aopt;
  const extract::Extractor ex(f.tech, f.design);
  for (int i = 0; i < f.nets.size(); i += 3) {
    const NetSummary s = summarize_net(f.cts.tree, f.design, f.tech,
                                       f.nets[i], aopt);
    const auto par =
        ex.extract_net(f.cts.tree, f.nets[i], f.tech.rules[rule_idx]);
    const double analytic =
        net_cap_under_rule(s, f.tech, f.tech.rules[rule_idx]);
    const double exact = par.switched_cap(f.tech.miller_power);
    // Analytic and extracted occupancy sampling quantize differently; the
    // optimizer only needs candidate ordering, so ~5% agreement suffices.
    EXPECT_NEAR(analytic, exact, 0.05 * exact + 0.5e-15) << "net " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rules, AnalyticCapSweep, ::testing::Range(0, 5));

TEST_F(NetEvalFixture, EmBoundIsConservative) {
  const double freq = 1 * GHz;
  for (int i = 0; i < f.nets.size(); i += 5) {
    const NetSummary s =
        summarize_net(f.cts.tree, f.design, f.tech, f.nets[i], aopt);
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      const NetExact exact = evaluate_net_exact(
          f.cts.tree, f.design, f.tech, f.nets[i], f.tech.rules[r],
          s.driver_res, freq);
      EXPECT_GE(net_em_bound(s, f.tech, f.tech.rules[r], freq) + 1e-12,
                exact.em_peak);
    }
  }
}

TEST_F(NetEvalFixture, SummaryFieldsSane) {
  for (const auto& net : f.nets.nets) {
    const NetSummary s =
        summarize_net(f.cts.tree, f.design, f.tech, net, aopt);
    EXPECT_GT(s.driver_res, 0.0);
    EXPECT_GE(s.wirelength, 0.0);
    EXPECT_LE(s.occ_length, s.wirelength + 1e-9);
    EXPECT_LE(s.max_path, s.wirelength + 1e-9);
    EXPECT_EQ(s.load_count, static_cast<int>(net.loads.size()));
    EXPECT_EQ(s.depth, net.depth);
  }
}

TEST_F(NetEvalFixture, ExactEvalConsistentWithRuleDirection) {
  // With a strong driver (wire-resistance-dominated regime), widening the
  // wires lowers worst step slew; spacing lowers crosstalk; width lowers the
  // EM density (more cross-section).
  const auto& net = f.nets[f.nets.size() - 1];
  const double driver_res = 30.0;  // strong driver isolates wire effects.
  const auto e_def = evaluate_net_exact(f.cts.tree, f.design, f.tech, net,
                                        f.tech.rules[0], driver_res, 1e9);
  const auto e_2w = evaluate_net_exact(f.cts.tree, f.design, f.tech, net,
                                       f.tech.rules[2], driver_res, 1e9);
  const auto e_2s = evaluate_net_exact(f.cts.tree, f.design, f.tech, net,
                                       f.tech.rules[1], driver_res, 1e9);
  EXPECT_LT(e_2w.step_slew_worst, e_def.step_slew_worst);
  EXPECT_LT(e_2s.xtalk_worst, e_def.xtalk_worst);
  EXPECT_LT(e_2w.em_peak, e_def.em_peak);
}

TEST(Predictor, HoldoutQualityIsHigh) {
  const test::Flow f = test::small_flow(512, 7);
  const timing::AnalysisOptions aopt;
  const RuleImpactPredictor pred = RuleImpactPredictor::train(
      f.cts.tree, f.design, f.tech, f.nets, aopt, 200);
  const TrainReport& rep = pred.report();
  EXPECT_GT(rep.train_samples, 50);
  EXPECT_GT(rep.holdout_samples, 10);
  ASSERT_EQ(rep.quality.size(),
            static_cast<std::size_t>(f.tech.rules.size()));
  for (const auto& per_rule : rep.quality) {
    for (const ModelQuality& q : per_rule) {
      // The optimizer needs ordering more than absolute accuracy.
      EXPECT_GT(q.rank_corr, 0.7);
      EXPECT_GT(q.r2, 0.5);
    }
  }
}

TEST(Predictor, PredictionsNonNegative) {
  const test::Flow f = test::small_flow(128, 3);
  const timing::AnalysisOptions aopt;
  const RuleImpactPredictor pred = RuleImpactPredictor::train(
      f.cts.tree, f.design, f.tech, f.nets, aopt, 100);
  for (const auto& net : f.nets.nets) {
    const NetSummary s =
        summarize_net(f.cts.tree, f.design, f.tech, net, aopt);
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      const NetImpact i = pred.predict(s, r);
      EXPECT_GE(i.step_slew, 0.0);
      EXPECT_GE(i.sigma, 0.0);
      EXPECT_GE(i.xtalk, 0.0);
      EXPECT_GE(i.delay, 0.0);
    }
  }
}

TEST(Evaluate, ValidatesAssignmentSize) {
  const test::Flow f = test::small_flow(16);
  EXPECT_THROW(evaluate(f.cts.tree, f.design, f.tech, f.nets, {0}),
               std::invalid_argument);
}

TEST(Evaluate, BlanketBeatsDefaultOnRobustness) {
  const test::Flow f = test::small_flow(256, 31);
  const auto def = evaluate(f.cts.tree, f.design, f.tech, f.nets,
                            assign_all(f.nets, 0));
  const auto blk = evaluate(f.cts.tree, f.design, f.tech, f.nets,
                            assign_all(f.nets, f.tech.rules.blanket_index()));
  EXPECT_LT(blk.timing.max_slew, def.timing.max_slew);
  EXPECT_LT(blk.variation.max_uncertainty, def.variation.max_uncertainty);
  EXPECT_LT(blk.timing.skew(), def.timing.skew());
}

class OptimizerFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(256, 31);
};

TEST_F(OptimizerFixture, FinalAssignmentIsFeasible) {
  const SmartNdrResult r = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  EXPECT_TRUE(r.final_eval.feasible());
  EXPECT_EQ(r.final_eval.slew_violations, 0);
  EXPECT_EQ(r.final_eval.em_violations, 0);
  EXPECT_EQ(r.final_eval.uncertainty_violations, 0);
  EXPECT_TRUE(r.final_eval.skew_ok);
  EXPECT_EQ(r.final_eval.overflow_cells, 0);
}

TEST_F(OptimizerFixture, PowerNeverAboveBlanket) {
  const auto blanket = evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      assign_all(f.nets, f.tech.rules.blanket_index()));
  const SmartNdrResult r = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  EXPECT_LE(r.final_eval.power.total_power, blanket.power.total_power);
  // And meaningfully below it for this design family.
  EXPECT_LT(r.final_eval.power.total_power,
            0.98 * blanket.power.total_power);
}

TEST_F(OptimizerFixture, Deterministic) {
  const SmartNdrResult a = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  const SmartNdrResult b = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.final_eval.power.total_power,
                   b.final_eval.power.total_power);
}

TEST_F(OptimizerFixture, HistogramMatchesAssignment) {
  const SmartNdrResult r = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  ASSERT_EQ(r.rule_histogram.size(),
            static_cast<std::size_t>(f.tech.rules.size()));
  std::vector<int> counted(f.tech.rules.size(), 0);
  for (const int rule : r.assignment) ++counted[rule];
  for (int i = 0; i < f.tech.rules.size(); ++i) {
    EXPECT_EQ(counted[i], r.rule_histogram[i]);
  }
}

TEST_F(OptimizerFixture, ExactModeMatchesModelModeClosely) {
  OptimizerOptions model_opt;
  OptimizerOptions exact_opt;
  exact_opt.use_models = false;
  const SmartNdrResult m = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets, model_opt);
  const SmartNdrResult e = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets, exact_opt);
  EXPECT_TRUE(e.final_eval.feasible());
  // Model-guided power within 3% of the exact-search power.
  EXPECT_NEAR(m.final_eval.power.total_power,
              e.final_eval.power.total_power,
              0.03 * e.final_eval.power.total_power);
  // Exact mode evaluates every candidate it scores; model mode only
  // validates predicted winners. (Not strictly greater on tiny designs:
  // exact scoring reuses its scoring evaluation for the commit, so both
  // modes can land on one evaluation per committed move.)
  EXPECT_GE(e.stats.exact_net_evals, m.stats.exact_net_evals);
  EXPECT_GE(e.stats.candidates_scored, m.stats.commits);
}

TEST_F(OptimizerFixture, FullStaScoringAgreesOnSmallDesign) {
  // The naive signoff-in-the-loop flow must land on a feasible assignment
  // with power close to the model-guided one (it is the oracle the models
  // approximate), at vastly higher full-evaluation counts.
  test::Flow g = test::small_flow(64, 31);
  OptimizerOptions model_opt;
  OptimizerOptions sta_opt;
  sta_opt.scoring = Scoring::kFullSta;
  const SmartNdrResult m =
      optimize_smart_ndr(g.cts.tree, g.design, g.tech, g.nets, model_opt);
  const SmartNdrResult e =
      optimize_smart_ndr(g.cts.tree, g.design, g.tech, g.nets, sta_opt);
  EXPECT_TRUE(e.final_eval.feasible());
  EXPECT_NEAR(m.final_eval.power.total_power,
              e.final_eval.power.total_power,
              0.05 * e.final_eval.power.total_power);
  EXPECT_GT(e.stats.full_evals, 5 * m.stats.full_evals);
}

TEST_F(OptimizerFixture, StatsPopulated) {
  const SmartNdrResult r = optimize_smart_ndr(f.cts.tree, f.design, f.tech,
                                              f.nets);
  EXPECT_GT(r.stats.commits, 0);
  EXPECT_GT(r.stats.candidates_scored, 0);
  EXPECT_GT(r.stats.full_evals, 0);
  EXPECT_GE(r.stats.passes, 1);
  EXPECT_GT(r.train_report.train_samples, 0);
}

TEST(Optimizer, HighFrequencyForcesWideRules) {
  // At 4 GHz EM dominates: the optimizer must keep (or upgrade to) wide
  // rules on heavy nets; result remains EM-clean.
  test::Flow f = test::small_flow(256, 31);
  f.design.constraints.clock_freq = 2.5 * GHz;
  const SmartNdrResult hi =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  EXPECT_EQ(hi.final_eval.em_violations, 0);

  test::Flow g = test::small_flow(256, 31);
  const SmartNdrResult lo =
      optimize_smart_ndr(g.cts.tree, g.design, g.tech, g.nets);
  // Narrow rules (width_mult 1) are rarer at 4 GHz.
  const int narrow_hi = hi.rule_histogram[0] + hi.rule_histogram[1];
  const int narrow_lo = lo.rule_histogram[0] + lo.rule_histogram[1];
  EXPECT_LT(narrow_hi, narrow_lo);
}

TEST(Optimizer, TightSlewLimitReducesSavings) {
  test::Flow f = test::small_flow(256, 31);
  const auto blanket = evaluate(
      f.cts.tree, f.design, f.tech, f.nets,
      assign_all(f.nets, f.tech.rules.blanket_index()));
  const SmartNdrResult loose =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);

  f.design.constraints.max_slew =
      1.05 * blanket.timing.max_slew;  // just above blanket's worst.
  const SmartNdrResult tight =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  EXPECT_GE(tight.final_eval.power.total_power,
            loose.final_eval.power.total_power - 1e-9);
  EXPECT_LE(tight.final_eval.timing.max_slew,
            f.design.constraints.max_slew);
  (void)blanket;
}

TEST(Optimizer, EcoWarmStartConvergesInstantly) {
  // Re-running from a converged assignment must find nothing to do.
  test::Flow f = test::small_flow(128, 31);
  const SmartNdrResult first =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  OptimizerOptions eco;
  eco.initial_assignment = first.assignment;
  const SmartNdrResult second =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, eco);
  EXPECT_EQ(second.assignment, first.assignment);
  EXPECT_EQ(second.stats.commits, 0);
  EXPECT_EQ(second.stats.passes, 1);
}

TEST(Optimizer, EcoFocusRestrictsSweep) {
  test::Flow f = test::small_flow(128, 31);
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  OptimizerOptions eco;
  eco.initial_assignment = blanket;
  // Only the two deepest nets may be revisited.
  eco.focus_nets = {f.nets.size() - 1, f.nets.size() - 2};
  const SmartNdrResult r =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, eco);
  EXPECT_TRUE(r.final_eval.feasible());
  for (int i = 0; i < f.nets.size() - 2; ++i) {
    EXPECT_EQ(r.assignment[i], blanket[i]) << "net " << i;
  }
  // The focus nets actually moved (they are cheap leaf nets).
  EXPECT_LE(r.final_eval.power.total_power,
            evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket)
                .power.total_power);
}

TEST(Optimizer, EcoValidatesInputs) {
  test::Flow f = test::small_flow(16);
  OptimizerOptions bad_size;
  bad_size.initial_assignment = {0};
  EXPECT_THROW(
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, bad_size),
      std::invalid_argument);
  OptimizerOptions bad_focus;
  bad_focus.focus_nets = {9999};
  EXPECT_THROW(
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, bad_focus),
      std::invalid_argument);
}

TEST(Optimizer, InfeasibleStartIsRepairedOrReported) {
  // Absurd frequency: even 3W3S trunks violate EM; the optimizer must not
  // crash and must report the residual violations honestly.
  test::Flow f = test::small_flow(64, 5);
  f.design.constraints.clock_freq = 20 * GHz;
  const SmartNdrResult r =
      optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
  EXPECT_GE(r.final_eval.em_violations, 0);  // completes without throwing.
}

}  // namespace
}  // namespace sndr::ndr
