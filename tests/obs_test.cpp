// Observability layer: spans, sharded metrics, and the guarantees the
// instrumented flow depends on (bit-identical counters at any thread
// count, zero allocation when disabled, hit rates that never divide by
// zero).
//
// Each TEST runs in its own process (gtest_discover_tests), so registry /
// sink resets here cannot leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/smart_ndr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tech/corners.hpp"
#include "test_util.hpp"

// --- Global allocation counter (DisabledModeMakesNoAllocations) -----------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

// Both operators are replaced as a matched malloc/free pair; GCC's
// heuristic cannot see that and flags the free.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace sndr {
namespace {

using obs::MetricsRegistry;
using obs::TraceSink;

TEST(Trace, SpanNestingAndTimingMonotonicity) {
  TraceSink::instance().reset();
  {
    SNDR_TRACE_SPAN("outer");
    {
      SNDR_TRACE_SPAN("inner");
      // Make the inner span measurably non-empty on the monotonic clock.
      volatile double sink = 0.0;
      for (int i = 0; i < 50000; ++i) sink = sink + std::sqrt(double(i));
    }
  }
  const std::vector<obs::SpanRecord> recs = TraceSink::instance().records();
  ASSERT_EQ(recs.size(), 2u);
  // records() orders by start time: outer opened first.
  EXPECT_STREQ(recs[0].name, "outer");
  EXPECT_STREQ(recs[1].name, "inner");
  EXPECT_EQ(recs[0].depth, 0);
  EXPECT_EQ(recs[1].depth, 1);
  EXPECT_GE(recs[1].start_ns, recs[0].start_ns);
  EXPECT_GE(recs[0].dur_ns, recs[1].dur_ns);
  EXPECT_GT(recs[1].dur_ns, 0);
  // The inner span finished before (or exactly when) the outer closed.
  EXPECT_LE(recs[1].start_ns + recs[1].dur_ns,
            recs[0].start_ns + recs[0].dur_ns);

  const auto agg = TraceSink::instance().aggregate();
  ASSERT_EQ(agg.size(), 2u);  // name-sorted: inner < outer.
  EXPECT_EQ(agg[0].name, "inner");
  EXPECT_EQ(agg[0].count, 1);
  EXPECT_EQ(agg[1].name, "outer");
  EXPECT_GE(agg[1].total_s, agg[0].total_s);
  EXPECT_EQ(TraceSink::instance().dropped(), 0);
}

TEST(Trace, DisabledRecordsNothing) {
  TraceSink::instance().reset();
  obs::set_tracing_enabled(false);
  {
    SNDR_TRACE_SPAN("invisible");
  }
  obs::set_tracing_enabled(true);
  EXPECT_TRUE(TraceSink::instance().records().empty());
}

TEST(Metrics, PerThreadShardsMergeExactly) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  const int id = reg.counter("test.shard_merge");
  const int hist = reg.histogram("test.shard_hist");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  // Threads join before the snapshot, so every shard lands in the retired
  // accumulator: the merge must lose nothing.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) {
        reg.add(id, 1);
        reg.observe(hist, 2.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // This thread contributes from a live (unretired) shard.
  reg.add(id, 5);
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.shard_merge"),
            std::int64_t(kThreads) * kAdds + 5);
  for (const auto& [name, h] : snap.histograms) {
    if (name != "test.shard_hist") continue;
    EXPECT_EQ(h.count, std::int64_t(kThreads) * kAdds);
    EXPECT_DOUBLE_EQ(h.sum, 2.0 * kThreads * kAdds);
    EXPECT_DOUBLE_EQ(h.min, 2.0);
    EXPECT_DOUBLE_EQ(h.max, 2.0);
  }
}

TEST(Metrics, HistogramBucketInvariants) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  const int id = reg.histogram("test.buckets");
  const std::vector<double> values = {0.0,  -3.5, 1e-40, 0.75,
                                      1.0,  2.5,  1e6,   1e20};
  double sum = 0.0;
  for (const double v : values) {
    reg.observe(id, v);
    sum += v;
  }
  const MetricsRegistry::Snapshot snap = reg.snapshot();
  const MetricsRegistry::HistogramSnapshot* found = nullptr;
  for (const auto& [name, hs] : snap.histograms) {
    if (name == "test.buckets") found = &hs;
  }
  ASSERT_NE(found, nullptr);
  const MetricsRegistry::HistogramSnapshot& h = *found;
  EXPECT_EQ(h.count, static_cast<std::int64_t>(values.size()));
  EXPECT_DOUBLE_EQ(h.sum, sum);
  EXPECT_DOUBLE_EQ(h.min, -3.5);
  EXPECT_DOUBLE_EQ(h.max, 1e20);
  // Bucket counts cover every observation; lower bounds strictly ascend.
  std::int64_t bucket_total = 0;
  double prev = -1.0;
  for (const auto& [lo, n] : h.buckets) {
    EXPECT_GT(n, 0);
    EXPECT_GT(lo, prev);
    prev = lo;
    bucket_total += n;
  }
  EXPECT_EQ(bucket_total, h.count);
  // Zero / negative / underflow all land in bucket 0.
  ASSERT_FALSE(h.buckets.empty());
  EXPECT_DOUBLE_EQ(h.buckets.front().first,
                   MetricsRegistry::bucket_lower_bound(0));
  EXPECT_EQ(h.buckets.front().second, 3);
  // 1.0 buckets at exactly 2^0.
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::bucket_lower_bound(MetricsRegistry::kBucketBias),
      1.0);
}

TEST(Metrics, NameBoundToOneType) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.counter("test.type_bound");
  EXPECT_THROW(reg.gauge("test.type_bound"), std::exception);
  EXPECT_THROW(reg.histogram("test.type_bound"), std::exception);
  EXPECT_EQ(reg.counter("test.type_bound"),
            reg.counter("test.type_bound"));  // idempotent lookup.
}

TEST(Metrics, SafeRatioNeverDividesByZero) {
  EXPECT_EQ(obs::safe_ratio(0, 0), 0.0);
  EXPECT_EQ(obs::safe_ratio(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs::safe_ratio(1, 4), 0.25);
  // The flow-facing hit-rate accessors route through safe_ratio: a flow
  // that made zero exact evals must report 0.0, not NaN.
  EXPECT_EQ(ndr::OptimizerStats{}.exact_cache_hit_rate(), 0.0);
  EXPECT_EQ(ndr::AnnealResult{}.exact_cache_hit_rate(), 0.0);
}

/// Runs the instrumented flow once and returns the counter snapshot.
MetricsRegistry::Snapshot run_flow_counters(int threads) {
  MetricsRegistry::instance().reset();
  common::set_thread_count(threads);
  test::Flow f = test::small_flow(64, 3);
  const ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  (void)ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
  (void)ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket);
  ndr::AnnealOptions aopt;
  aopt.iterations = 300;
  (void)ndr::anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket,
                          aopt);
  common::set_thread_count(-1);
  return MetricsRegistry::instance().snapshot();
}

TEST(Metrics, FlowCountersBitIdenticalAcrossThreadCounts) {
  // The evaluation engine promises bit-identical *results* at any thread
  // count; the obs layer extends that to every flow counter. Only pool.*
  // may differ (scheduling is genuinely thread-count-dependent).
  const MetricsRegistry::Snapshot one = run_flow_counters(1);
  const MetricsRegistry::Snapshot eight = run_flow_counters(8);
  ASSERT_FALSE(one.counters.empty());
  for (const auto& [name, value] : one.counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    EXPECT_EQ(value, eight.counter(name)) << "counter " << name;
  }
  for (const auto& [name, value] : eight.counters) {
    if (name.rfind("pool.", 0) == 0) continue;
    EXPECT_EQ(value, one.counter(name)) << "counter " << name;
  }
}

TEST(Metrics, EvaluateCornersBatchesExtractionAcrossCorners) {
  // A multi-corner signoff runs the per-corner analysis stack N times but
  // extraction only ONCE: the corners are lanes of one batched materialize
  // (extract.corner_batch.*), so none of the per-corner extract_all
  // counters fire. The rest of the stack still sums like per-corner runs.
  MetricsRegistry& reg = MetricsRegistry::instance();
  common::set_thread_count(1);
  test::Flow f = test::small_flow(64, 7);
  const ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  const std::vector<tech::Corner> corners = tech::standard_corners();
  const extract::GeometryCache geometry(f.cts.tree, f.design, f.nets);

  reg.reset();
  (void)ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket,
                              corners, timing::AnalysisOptions{}, &geometry);
  const MetricsRegistry::Snapshot grouped = reg.snapshot();

  reg.reset();
  for (const tech::Corner& c : corners) {
    const tech::Technology cornered = tech::apply_corner(f.tech, c);
    (void)ndr::evaluate(f.cts.tree, f.design, cornered, f.nets, blanket,
                        timing::AnalysisOptions{}, &geometry);
  }
  const MetricsRegistry::Snapshot summed = reg.snapshot();
  common::set_thread_count(-1);

  const std::int64_t n = static_cast<std::int64_t>(corners.size());
  EXPECT_EQ(grouped.counter("ndr.corner_signoffs"), 1);
  EXPECT_EQ(grouped.counter("ndr.corners_evaluated"), n);
  // The downstream analysis still runs once per corner...
  EXPECT_EQ(grouped.counter("ndr.evaluations"), summed.counter("ndr.evaluations"));
  EXPECT_EQ(grouped.counter("ndr.evaluations"), n);
  // ...but extraction happened once, as one batch over corner lanes,
  // instead of the n extract_all passes the per-corner loop runs.
  EXPECT_EQ(grouped.counter("extract.extract_all_calls"), 0);
  EXPECT_EQ(grouped.counter("extract.nets_extracted"), 0);
  EXPECT_EQ(grouped.counter("extract.corner_batch.nets"),
            static_cast<std::int64_t>(f.nets.size()));
  EXPECT_EQ(grouped.counter("extract.corner_batch.lanes"), n);
  EXPECT_EQ(summed.counter("extract.extract_all_calls"), n);
  EXPECT_EQ(summed.counter("extract.nets_materialized_from_cache"),
            n * static_cast<std::int64_t>(f.nets.size()));
}

TEST(Obs, DisabledModeMakesNoAllocations) {
  // The zero-overhead contract: with both switches off, the macros reduce
  // to a relaxed load + branch — no registration, no clock, no allocation.
  obs::set_metrics_enabled(false);
  obs::set_tracing_enabled(false);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    SNDR_TRACE_SPAN("disabled_span");
    SNDR_COUNTER_ADD("test.disabled_counter", 1);
    SNDR_GAUGE_SET("test.disabled_gauge", static_cast<double>(i));
    SNDR_HISTOGRAM_OBSERVE("test.disabled_hist", static_cast<double>(i));
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  const std::int64_t allocs = g_alloc_count.load(std::memory_order_relaxed);

  obs::set_metrics_enabled(true);
  obs::set_tracing_enabled(true);
  EXPECT_EQ(allocs, 0);
  // Nothing was registered either: the names must not exist afterwards.
  const MetricsRegistry::Snapshot snap =
      MetricsRegistry::instance().snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name, "test.disabled_counter");
  }
}

}  // namespace
}  // namespace sndr
