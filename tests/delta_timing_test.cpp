// Pins the delta-timing contract of PR 6: a single-net parasitic change
// replayed by timing::DeltaTimer — and a whole move applied by
// AssignmentState::apply_move — leaves every maintained array BITWISE
// identical to a fresh full analysis / rebuild() of the same assignment,
// and the result is independent of the worker thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/thread_pool.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"
#include "timing/delta_timing.hpp"
#include "workload/rng.hpp"

namespace sndr::ndr {
namespace {

TEST(DeltaTimer, SingleNetChangeMatchesFreshAnalysis) {
  test::Flow f = test::small_flow(96, 23);
  const timing::AnalysisOptions aopt;
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  RuleAssignment a = assign_all(f.nets, f.tech.rules.blanket_index());
  const FlowEvaluation ev =
      evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt, &cache);

  timing::DeltaTimer dt(f.cts.tree, f.design, f.tech, f.nets, aopt);
  dt.rebuild(ev.parasitics, ev.timing);
  ASSERT_TRUE(dt.synced());
  EXPECT_EQ(dt.sink_arrival(), ev.timing.sink_arrival);
  EXPECT_EQ(dt.node_slew(), ev.timing.node_slew);

  // Change a mid-tree net's rule and replay the subtree.
  const int net_id = f.nets.size() / 2;
  const int rule = 1;  // 1W2S.
  ASSERT_NE(rule, a[net_id]);
  extract::NetParasitics par;
  extract::materialize(cache.geometry(net_id), f.tech, f.tech.rules[rule],
                       par);
  dt.apply_net_change(net_id, par);

  a[net_id] = rule;
  const FlowEvaluation ev2 =
      evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt, &cache);
  EXPECT_EQ(dt.sink_arrival(), ev2.timing.sink_arrival);
  EXPECT_EQ(dt.sink_slew(), ev2.timing.sink_slew);
  EXPECT_EQ(dt.node_arrival(), ev2.timing.node_arrival);
  EXPECT_EQ(dt.node_slew(), ev2.timing.node_slew);

  // The touched set is the changed net plus descendants, parents first.
  const std::vector<int>& touched = dt.last_updated_nets();
  ASSERT_FALSE(touched.empty());
  EXPECT_EQ(touched.front(), net_id);
  EXPECT_TRUE(std::is_sorted(touched.begin(), touched.end()));
  EXPECT_LT(static_cast<int>(touched.size()), f.nets.size());
}

TEST(DeltaTimer, RootNetChangeReachesEverySink) {
  test::Flow f = test::small_flow(64, 3);
  const timing::AnalysisOptions aopt;
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  RuleAssignment a = assign_all(f.nets, f.tech.rules.blanket_index());
  const FlowEvaluation ev =
      evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt, &cache);
  timing::DeltaTimer dt(f.cts.tree, f.design, f.tech, f.nets, aopt);
  dt.rebuild(ev.parasitics, ev.timing);

  extract::NetParasitics par;
  extract::materialize(cache.geometry(0), f.tech, f.tech.rules[2], par);
  dt.apply_net_change(0, par);
  a[0] = 2;
  const FlowEvaluation ev2 =
      evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt, &cache);
  EXPECT_EQ(dt.sink_arrival(), ev2.timing.sink_arrival);
  EXPECT_EQ(dt.sink_slew(), ev2.timing.sink_slew);
  // The root drives everything: the whole net list is replayed.
  EXPECT_EQ(static_cast<int>(dt.last_updated_nets().size()), f.nets.size());
}

/// Every incremental accumulator AssignmentState maintains, snapshotted
/// for bitwise comparison (EXPECT_EQ on doubles is exact).
struct StateSnapshot {
  std::vector<double> sink_latency, sink_var, sink_xtalk;
  std::vector<double> net_cap, net_sigma, net_xtalk, net_wire_delay;
  double latency_sum = 0.0;
  double total_cap = 0.0;
};

StateSnapshot snapshot(const AssignmentState& st, int n_nets, int n_sinks) {
  StateSnapshot s;
  for (int i = 0; i < n_sinks; ++i) {
    s.sink_latency.push_back(st.sink_latency(i));
    s.sink_var.push_back(st.sink_var(i));
    s.sink_xtalk.push_back(st.sink_xtalk(i));
  }
  for (int n = 0; n < n_nets; ++n) {
    s.net_cap.push_back(st.net_cap(n));
    s.net_sigma.push_back(st.net_sigma(n));
    s.net_xtalk.push_back(st.net_xtalk_of(n));
    s.net_wire_delay.push_back(st.net_wire_delay(n));
  }
  s.latency_sum = st.latency_sum();
  s.total_cap = st.total_cap();
  return s;
}

void expect_bitwise_eq(const StateSnapshot& got, const StateSnapshot& want) {
  EXPECT_EQ(got.sink_latency, want.sink_latency);
  EXPECT_EQ(got.sink_var, want.sink_var);
  EXPECT_EQ(got.sink_xtalk, want.sink_xtalk);
  EXPECT_EQ(got.net_cap, want.net_cap);
  EXPECT_EQ(got.net_sigma, want.net_sigma);
  EXPECT_EQ(got.net_xtalk, want.net_xtalk);
  EXPECT_EQ(got.net_wire_delay, want.net_wire_delay);
  EXPECT_EQ(got.latency_sum, want.latency_sum);
  EXPECT_EQ(got.total_cap, want.total_cap);
}

TEST(DeltaTimingChurn, RandomMovesStayBitwiseIdenticalToRebuild) {
  test::Flow f = test::small_flow(96, 23);
  const timing::AnalysisOptions aopt;
  RuleAssignment a = assign_all(f.nets, f.tech.rules.blanket_index());
  AssignmentState state(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const FlowEvaluation ev = evaluate(f.cts.tree, f.design, f.tech, f.nets, a,
                                     aopt, &state.geometry_cache());
  state.rebuild(a, ev);

  // Reference state, re-synced from a full evaluation after every move.
  AssignmentState ref(f.cts.tree, f.design, f.tech, f.nets, aopt);

  const int n_nets = f.nets.size();
  const int n_rules = f.tech.rules.size();
  const int n_sinks = static_cast<int>(f.design.sinks.size());
  workload::Rng rng(20260809);
  for (int move = 0; move < 32; ++move) {
    SCOPED_TRACE("move " + std::to_string(move));
    const int net_id = static_cast<int>(rng.uniform_int(n_nets));
    int rule = static_cast<int>(rng.uniform_int(n_rules));
    if (rule == state.rule_of(net_id)) rule = (rule + 1) % n_rules;
    const NetExact exact = state.exact_eval(net_id, rule);
    state.apply_move(net_id, rule, exact);
    a[net_id] = rule;

    const FlowEvaluation fresh = evaluate(f.cts.tree, f.design, f.tech,
                                          f.nets, a, aopt,
                                          &state.geometry_cache());
    ref.rebuild(a, fresh);
    expect_bitwise_eq(snapshot(state, n_nets, n_sinks),
                      snapshot(ref, n_nets, n_sinks));
  }
}

TEST(DeltaTimingChurn, ChurnIsThreadCountInvariant) {
  test::Flow f = test::small_flow(96, 23);
  const timing::AnalysisOptions aopt;
  const RuleAssignment blanket =
      assign_all(f.nets, f.tech.rules.blanket_index());
  const int n_nets = f.nets.size();
  const int n_rules = f.tech.rules.size();
  const int n_sinks = static_cast<int>(f.design.sinks.size());

  // Prewarm (parallel batched kernels) + serial churn, at a given thread
  // count. Batch composition and memo contents must not depend on it.
  const auto churn = [&](int threads) {
    common::set_thread_count(threads);
    AssignmentState state(f.cts.tree, f.design, f.tech, f.nets, aopt);
    const FlowEvaluation ev = evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                       blanket, aopt,
                                       &state.geometry_cache());
    state.rebuild(blanket, ev);
    state.warm_all_rows();
    workload::Rng rng(99);
    for (int move = 0; move < 24; ++move) {
      const int net_id = static_cast<int>(rng.uniform_int(n_nets));
      int rule = static_cast<int>(rng.uniform_int(n_rules));
      if (rule == state.rule_of(net_id)) rule = (rule + 1) % n_rules;
      state.apply_move(net_id, rule, state.exact_eval(net_id, rule));
    }
    StateSnapshot s = snapshot(state, n_nets, n_sinks);
    common::set_thread_count(-1);
    return s;
  };

  const StateSnapshot one = churn(1);
  const StateSnapshot eight = churn(8);
  expect_bitwise_eq(eight, one);
}

}  // namespace
}  // namespace sndr::ndr
