#include <gtest/gtest.h>

#include "tech/units.hpp"
#include "workload/generator.hpp"
#include "workload/rng.hpp"

namespace sndr::workload {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    EXPECT_LT(rng.uniform_int(7), 7u);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Generator, Deterministic) {
  DesignSpec spec;
  spec.num_sinks = 77;
  spec.seed = 3;
  const netlist::Design a = make_design(spec);
  const netlist::Design b = make_design(spec);
  ASSERT_EQ(a.sinks.size(), b.sinks.size());
  for (std::size_t i = 0; i < a.sinks.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(a.sinks[i].loc, b.sinks[i].loc));
    EXPECT_DOUBLE_EQ(a.sinks[i].pin_cap, b.sinks[i].pin_cap);
  }
}

TEST(Generator, SeedChangesLayout) {
  DesignSpec spec;
  spec.num_sinks = 50;
  spec.seed = 1;
  const netlist::Design a = make_design(spec);
  spec.seed = 2;
  const netlist::Design b = make_design(spec);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.sinks.size(); ++i) {
    if (!geom::almost_equal(a.sinks[i].loc, b.sinks[i].loc)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, SinksInsideCore) {
  for (const auto dist : {SinkDistribution::kUniform,
                          SinkDistribution::kClustered,
                          SinkDistribution::kMixed}) {
    DesignSpec spec;
    spec.num_sinks = 200;
    spec.dist = dist;
    const netlist::Design d = make_design(spec);
    EXPECT_EQ(d.sinks.size(), 200u);
    for (const auto& s : d.sinks) {
      EXPECT_TRUE(d.core.contains(s.loc)) << to_string(dist);
      EXPECT_GE(s.pin_cap, spec.pin_cap_lo);
      EXPECT_LE(s.pin_cap, spec.pin_cap_hi);
    }
  }
}

TEST(Generator, AreaTracksDensity) {
  DesignSpec spec;
  spec.num_sinks = 2000;
  spec.sink_density = 2000.0;  // => 1 mm^2.
  const netlist::Design d = make_design(spec);
  EXPECT_NEAR(d.core.area(), 1e6, 1.0);  // um^2.
}

TEST(Generator, ClusteredIsMoreConcentratedThanUniform) {
  DesignSpec spec;
  spec.num_sinks = 500;
  spec.clusters = 4;
  spec.dist = SinkDistribution::kClustered;
  const netlist::Design c = make_design(spec);
  spec.dist = SinkDistribution::kUniform;
  const netlist::Design u = make_design(spec);
  // Mean nearest-cluster... cheap proxy: variance of x coordinate is lower
  // for clustered placements.
  const auto var_x = [](const netlist::Design& d) {
    double m = 0.0;
    for (const auto& s : d.sinks) m += s.loc.x;
    m /= d.sinks.size();
    double v = 0.0;
    for (const auto& s : d.sinks) v += (s.loc.x - m) * (s.loc.x - m);
    return v / d.sinks.size();
  };
  EXPECT_LT(var_x(c), var_x(u));
}

TEST(Generator, OccupancyWithinBounds) {
  DesignSpec spec;
  spec.num_sinks = 300;
  const netlist::Design d = make_design(spec);
  ASSERT_TRUE(d.congestion.valid());
  for (int i = 0; i < d.congestion.cell_count(); ++i) {
    EXPECT_GE(d.congestion.occupancy_cell(i), 0.05);
    EXPECT_LE(d.congestion.occupancy_cell(i), 0.95);
    EXPECT_GT(d.congestion.capacity_cell(i), 0.0);
  }
}

TEST(Generator, ConstraintScalingMonotone) {
  DesignSpec small;
  small.num_sinks = 512;
  DesignSpec big;
  big.num_sinks = 16384;
  const auto ds = make_design(small);
  const auto db = make_design(big);
  EXPECT_LT(ds.constraints.max_skew, db.constraints.max_skew);
  EXPECT_LT(ds.constraints.max_uncertainty, db.constraints.max_uncertainty);
}

TEST(Generator, ConstraintScalingCanBeDisabled) {
  DesignSpec spec;
  spec.num_sinks = 16384;
  spec.scale_constraints = false;
  const auto d = make_design(spec);
  EXPECT_DOUBLE_EQ(d.constraints.max_skew, spec.constraints.max_skew);
}

TEST(Generator, InvalidSinkCountThrows) {
  DesignSpec spec;
  spec.num_sinks = 0;
  EXPECT_THROW(make_design(spec), std::invalid_argument);
}

TEST(Generator, PaperBenchmarksWellFormed) {
  const auto specs = paper_benchmarks();
  ASSERT_EQ(specs.size(), 6u);
  int prev = 0;
  for (const auto& s : specs) {
    EXPECT_GT(s.num_sinks, prev);  // sorted by size.
    prev = s.num_sinks;
    EXPECT_FALSE(s.name.empty());
  }
}

TEST(Generator, ClockRootOnCoreBoundary) {
  const netlist::Design d = make_design(quickstart_spec());
  EXPECT_DOUBLE_EQ(d.clock_root.y, d.core.lo().y);
  EXPECT_NEAR(d.clock_root.x, d.core.center().x, 1e-9);
}

}  // namespace
}  // namespace sndr::workload
