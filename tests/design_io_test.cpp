#include <gtest/gtest.h>

#include <sstream>

#include "io/design_io.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"
#include "workload/generator.hpp"

namespace sndr::io {
namespace {

using units::ps;

TEST(DesignIo, RoundTripPreservesEverything) {
  netlist::Design d = test::small_design(40, 11);
  workload::attach_useful_skew(d, 0.4, 8.0, 25.0);
  std::ostringstream os;
  write_design(os, d);
  std::istringstream is(os.str());
  const netlist::Design e = read_design(is);

  EXPECT_EQ(e.name, d.name);
  EXPECT_NEAR(e.core.width(), d.core.width(), 1e-6);
  EXPECT_TRUE(geom::almost_equal(e.clock_root, d.clock_root, 1e-6));
  EXPECT_NEAR(e.constraints.clock_freq, d.constraints.clock_freq, 1.0);
  EXPECT_NEAR(e.constraints.max_slew, d.constraints.max_slew, 1e-15);
  EXPECT_NEAR(e.constraints.max_skew, d.constraints.max_skew, 1e-15);
  ASSERT_EQ(e.sinks.size(), d.sinks.size());
  for (std::size_t i = 0; i < d.sinks.size(); ++i) {
    EXPECT_EQ(e.sinks[i].name, d.sinks[i].name);
    EXPECT_TRUE(geom::almost_equal(e.sinks[i].loc, d.sinks[i].loc, 1e-6));
    EXPECT_NEAR(e.sinks[i].pin_cap, d.sinks[i].pin_cap, 1e-20);
  }
  ASSERT_TRUE(e.useful_skew.enabled());
  for (std::size_t i = 0; i < d.sinks.size(); ++i) {
    EXPECT_NEAR(e.useful_skew.lo[i], d.useful_skew.lo[i], 1e-16);
    EXPECT_NEAR(e.useful_skew.hi[i], d.useful_skew.hi[i], 1e-16);
  }
  // Congestion grid and occupancies survive.
  ASSERT_TRUE(e.congestion.valid());
  EXPECT_EQ(e.congestion.nx(), d.congestion.nx());
  for (int i = 0; i < d.congestion.cell_count(); ++i) {
    EXPECT_NEAR(e.congestion.occupancy_cell(i),
                d.congestion.occupancy_cell(i), 1e-9);
  }
}

TEST(DesignIo, MinimalDesignDerivesCore) {
  std::istringstream is(
      "design tiny\n"
      "clock_root 0 0\n"
      "sink a 10 10 2.0\n"
      "sink b 30 20 2.5\n");
  const netlist::Design d = read_design(is);
  EXPECT_EQ(d.sinks.size(), 2u);
  EXPECT_TRUE(d.core.contains({10, 10}));
  EXPECT_TRUE(d.core.contains({30, 20}));
  EXPECT_TRUE(d.core.contains({0, 0}));
  EXPECT_FALSE(d.useful_skew.enabled());
  EXPECT_DOUBLE_EQ(d.sinks[1].pin_cap, 2.5e-15);
}

TEST(DesignIo, CommentsAndBlanksIgnored) {
  std::istringstream is(
      "# header comment\n"
      "\n"
      "design x  # trailing\n"
      "clock_root 0 0\n"
      "sink a 1 1 2\n");
  EXPECT_NO_THROW(read_design(is));
}

TEST(DesignIo, ErrorsAreDiagnosed) {
  std::istringstream unknown("frobnicate 1 2\n");
  EXPECT_THROW(read_design(unknown), std::runtime_error);
  std::istringstream bad_sink("sink a 1\n");
  EXPECT_THROW(read_design(bad_sink), std::runtime_error);
  std::istringstream bad_window("sink a 1 1 2\nwindow 5 -1 1\n");
  EXPECT_THROW(read_design(bad_window), std::runtime_error);
  EXPECT_THROW(read_design_file("/no/such/file.txt"), std::runtime_error);
}

TEST(DesignIo, RoundTripRunsThroughFlow) {
  const netlist::Design d = test::small_design(24, 3);
  std::ostringstream os;
  write_design(os, d);
  std::istringstream is(os.str());
  netlist::Design e = read_design(is);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  const cts::CtsResult cts = cts::synthesize(e, tech);
  EXPECT_NO_THROW(cts.tree.validate(static_cast<int>(e.sinks.size())));
}

}  // namespace
}  // namespace sndr::io
