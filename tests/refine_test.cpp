#include <gtest/gtest.h>

#include "cts/refine.hpp"
#include "extract/extractor.hpp"
#include "ndr/evaluation.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"

namespace sndr::cts {
namespace {

using units::ps;

double measured_skew(const test::Flow& f, const netlist::ClockTree& tree) {
  const netlist::NetList nets = netlist::build_nets(tree);
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      tree, nets,
      std::vector<int>(nets.size(), f.tech.rules.blanket_index()));
  return timing::analyze(tree, f.design, f.tech, nets, par).skew();
}

TEST(RefineSkew, NeverDegradesBeyondBudgetAndUsuallyImproves) {
  for (const int sinks : {256, 1024}) {
    test::Flow f = test::small_flow(sinks, 29);
    const double before = measured_skew(f, f.cts.tree);
    const RefineResult r = refine_skew(f.cts.tree, f.design, f.tech);
    const double after = measured_skew(f, f.cts.tree);
    EXPECT_NEAR(r.final_skew, after, 1e-15);
    EXPECT_NEAR(r.initial_skew, before, 1e-15);
    EXPECT_LE(after, std::max(before, f.design.constraints.max_skew))
        << "sinks=" << sinks;
  }
}

TEST(RefineSkew, LargeTreeSkewHalvedOrBetter) {
  // The pass exists for big trees where planning error accumulates; on a
  // 2048-sink clustered design it should remove most of the skew or already
  // find the goal met.
  workload::DesignSpec spec;
  spec.num_sinks = 2048;
  spec.dist = workload::SinkDistribution::kClustered;
  spec.seed = 53;
  test::Flow f;
  f.design = workload::make_design(spec);
  f.tech = tech::Technology::make_default_45nm();
  f.cts = synthesize(f.design, f.tech);
  const RefineResult r = refine_skew(f.cts.tree, f.design, f.tech);
  const double goal = 0.6 * f.design.constraints.max_skew;
  EXPECT_TRUE(r.final_skew <= goal || r.final_skew <= 0.6 * r.initial_skew)
      << "initial=" << units::to_ps(r.initial_skew)
      << " final=" << units::to_ps(r.final_skew);
}

TEST(RefineSkew, PreservesTreeStructure) {
  test::Flow f = test::small_flow(512, 7);
  const int nodes_before = f.cts.tree.size();
  const double wl_before = f.cts.tree.total_wirelength();
  refine_skew(f.cts.tree, f.design, f.tech);
  EXPECT_EQ(f.cts.tree.size(), nodes_before);
  EXPECT_DOUBLE_EQ(f.cts.tree.total_wirelength(), wl_before);
  EXPECT_NO_THROW(
      f.cts.tree.validate(static_cast<int>(f.design.sinks.size())));
}

TEST(RefineSkew, RespectsSlewCeiling) {
  test::Flow f = test::small_flow(512, 7);
  RefineOptions opt;
  refine_skew(f.cts.tree, f.design, f.tech, opt);
  const netlist::NetList nets = netlist::build_nets(f.cts.tree);
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      f.cts.tree, nets,
      std::vector<int>(nets.size(), f.tech.rules.blanket_index()));
  const auto rep = timing::analyze(f.cts.tree, f.design, f.tech, nets, par);
  EXPECT_LE(rep.max_slew, f.design.constraints.max_slew);
}

TEST(RefineSkew, Deterministic) {
  test::Flow a = test::small_flow(512, 11);
  test::Flow b = test::small_flow(512, 11);
  refine_skew(a.cts.tree, a.design, a.tech);
  refine_skew(b.cts.tree, b.design, b.tech);
  for (int i = 0; i < a.cts.tree.size(); ++i) {
    EXPECT_EQ(a.cts.tree.node(i).cell, b.cts.tree.node(i).cell);
  }
}

TEST(RefineSkew, SingleSinkNoop) {
  test::Flow f = test::small_flow(1);
  const RefineResult r = refine_skew(f.cts.tree, f.design, f.tech);
  EXPECT_DOUBLE_EQ(r.final_skew, 0.0);
  EXPECT_EQ(r.resizes, 0);
}

}  // namespace
}  // namespace sndr::cts
