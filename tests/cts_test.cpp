#include <gtest/gtest.h>

#include <cmath>

#include "cts/embedding.hpp"
#include "cts/topology.hpp"
#include "extract/extractor.hpp"
#include "tech/units.hpp"
#include "test_util.hpp"
#include "timing/tree_timing.hpp"

namespace sndr::cts {
namespace {

using units::ps;

TEST(Topology, SingleSink) {
  const std::vector<netlist::Sink> sinks{{"s", {5, 5}, 2e-15}};
  const Topology topo = build_topology_mmm(sinks);
  EXPECT_EQ(topo.size(), 1);
  EXPECT_TRUE(topo[topo.root].is_leaf());
  EXPECT_EQ(topo.leaf_count(), 1);
}

TEST(Topology, EmptyThrows) {
  EXPECT_THROW(build_topology_mmm({}), std::invalid_argument);
}

TEST(Topology, LeavesMatchSinks) {
  const netlist::Design d = test::small_design(37);
  const Topology topo = build_topology_mmm(d.sinks);
  EXPECT_EQ(topo.leaf_count(), 37);
  // Binary: n leaves -> n-1 internal nodes.
  EXPECT_EQ(topo.size(), 2 * 37 - 1);
  // Every sink appears exactly once.
  std::vector<int> seen(37, 0);
  for (const TopoNode& n : topo.nodes) {
    if (n.is_leaf()) ++seen[n.sink];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(Topology, BalancedDepth) {
  const netlist::Design d = test::small_design(64);
  const Topology topo = build_topology_mmm(d.sinks);
  // Median splits: leaf depth within [log2 n, log2 n + 1].
  std::vector<int> depth(topo.size(), 0);
  int max_depth = 0;
  // Root-last construction: walk from root recursively.
  std::function<void(int, int)> walk = [&](int id, int dep) {
    max_depth = std::max(max_depth, dep);
    const TopoNode& n = topo[id];
    if (!n.is_leaf()) {
      walk(n.left, dep + 1);
      walk(n.right, dep + 1);
    }
  };
  walk(topo.root, 0);
  EXPECT_EQ(max_depth, 6);  // 64 = 2^6, exactly balanced.
}

TEST(Topology, CollinearAndDuplicateSinks) {
  std::vector<netlist::Sink> sinks;
  for (int i = 0; i < 9; ++i) {
    sinks.push_back({"s", {static_cast<double>(i % 3), 0.0}, 2e-15});
  }
  const Topology topo = build_topology_mmm(sinks);
  EXPECT_EQ(topo.leaf_count(), 9);
}

TEST(Synthesize, ProducesValidTree) {
  const test::Flow f = test::small_flow(50);
  EXPECT_NO_THROW(f.cts.tree.validate(50));
  EXPECT_GT(f.cts.buffers, 0);
  EXPECT_EQ(f.cts.merges, 49);
  EXPECT_GT(f.cts.wirelength, 0.0);
  EXPECT_GE(f.cts.elongation, 0.0);
  EXPECT_GT(f.cts.planned_latency, 0.0);
}

TEST(Synthesize, SingleSinkDesign) {
  const test::Flow f = test::small_flow(1);
  EXPECT_NO_THROW(f.cts.tree.validate(1));
  EXPECT_EQ(f.cts.tree.count(netlist::NodeKind::kSink), 1);
}

TEST(Synthesize, TwoSinks) {
  const test::Flow f = test::small_flow(2);
  EXPECT_NO_THROW(f.cts.tree.validate(2));
  EXPECT_EQ(f.nets.size(), f.cts.buffers + 1);
}

TEST(Synthesize, EmptyDesignThrows) {
  netlist::Design d;
  EXPECT_THROW(synthesize(d, tech::Technology::make_default_45nm()),
               std::invalid_argument);
}

TEST(Synthesize, Deterministic) {
  const test::Flow a = test::small_flow(40, 9);
  const test::Flow b = test::small_flow(40, 9);
  ASSERT_EQ(a.cts.tree.size(), b.cts.tree.size());
  EXPECT_DOUBLE_EQ(a.cts.wirelength, b.cts.wirelength);
  for (int i = 0; i < a.cts.tree.size(); ++i) {
    EXPECT_TRUE(geom::almost_equal(a.cts.tree.loc(i), b.cts.tree.loc(i)));
  }
}

TEST(Synthesize, ElongationIsBounded) {
  // Stage alignment keeps snaking modest (< 25% of total wire).
  const test::Flow f = test::small_flow(256, 17);
  EXPECT_LT(f.cts.elongation, 0.25 * f.cts.wirelength);
}

TEST(Synthesize, RespectsCapBudget) {
  const test::Flow f = test::small_flow(128, 5);
  const CtsOptions opt;  // defaults used by small_flow.
  const extract::Extractor ex(f.tech, f.design);
  for (const auto& net : f.nets.nets) {
    const auto par = ex.extract_net(f.cts.tree, net,
                                    f.tech.rules.blanket_rule());
    // Planned with the blanket rule: the threshold is checked per merge,
    // so a net can gain up to one more merge level of wire and sibling cap
    // before its buffer lands - bounded by ~2x the budget.
    EXPECT_LT(par.switched_cap(1.0), 2.0 * opt.max_unbuffered_cap);
  }
}

TEST(Synthesize, EveryBufferDepthEqualPerSink) {
  // Stage alignment: every source->sink path crosses the same number of
  // buffers (this is what keeps skew small under rule changes).
  const test::Flow f = test::small_flow(96, 11);
  int expected = -1;
  for (int id = 0; id < f.cts.tree.size(); ++id) {
    if (f.cts.tree.node(id).kind != netlist::NodeKind::kSink) continue;
    const int depth = f.cts.tree.buffer_depth(id);
    if (expected < 0) expected = depth;
    EXPECT_EQ(depth, expected);
  }
  EXPECT_GT(expected, 0);
}

class SkewAcrossSizes : public ::testing::TestWithParam<int> {};

TEST_P(SkewAcrossSizes, MeetsBudget) {
  const test::Flow f = test::small_flow(GetParam(), 29);
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), f.tech.rules.blanket_index()));
  const auto rep =
      timing::analyze(f.cts.tree, f.design, f.tech, f.nets, par);
  EXPECT_LE(rep.skew(), f.design.constraints.max_skew)
      << "sinks=" << GetParam();
  // Latency sane: under 2 ns for these sizes.
  EXPECT_LT(rep.max_latency, 2000 * ps);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SkewAcrossSizes,
                         ::testing::Values(8, 32, 128, 512, 1024));

TEST(HybridTopology, LeavesMatchSinks) {
  const netlist::Design d = test::small_design(100, 7);
  const Topology topo = build_topology_hybrid(d.sinks, d.core, 5);
  EXPECT_EQ(topo.leaf_count(), 100);
  EXPECT_EQ(topo.size(), 2 * 100 - 1);
  std::vector<int> seen(100, 0);
  for (const TopoNode& n : topo.nodes) {
    if (n.is_leaf()) ++seen[n.sink];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
}

TEST(HybridTopology, ZeroLevelsEqualsMmm) {
  const netlist::Design d = test::small_design(64, 9);
  const Topology a = build_topology_hybrid(d.sinks, d.core, 0);
  const Topology b = build_topology_mmm(d.sinks);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.leaf_count(), b.leaf_count());
}

TEST(HybridTopology, DegenerateClusterStillBalanced) {
  // Every sink in one corner: center cuts all degenerate, median fallback
  // must keep the recursion finite and the tree complete.
  std::vector<netlist::Sink> sinks;
  for (int i = 0; i < 33; ++i) {
    sinks.push_back({"s", {1.0 + 0.001 * i, 1.0}, 2e-15});
  }
  const Topology topo =
      build_topology_hybrid(sinks, geom::BBox(0, 0, 1000, 1000), 8);
  EXPECT_EQ(topo.leaf_count(), 33);
}

TEST(HybridTopology, EmptyThrows) {
  EXPECT_THROW(build_topology_hybrid({}, geom::BBox(0, 0, 1, 1), 4),
               std::invalid_argument);
}

TEST(HybridTopology, FullFlowFeasible) {
  const netlist::Design d = test::small_design(256, 17);
  const tech::Technology t = tech::Technology::make_default_45nm();
  CtsOptions opt;
  opt.topology = TopologyMode::kHybridHtree;
  const CtsResult r = synthesize(d, t, opt);
  EXPECT_NO_THROW(r.tree.validate(256));
  const auto nets = netlist::build_nets(r.tree);
  const extract::Extractor ex(t, d);
  const auto par = ex.extract_all(
      r.tree, nets, std::vector<int>(nets.size(), t.rules.blanket_index()));
  const auto rep = timing::analyze(r.tree, d, t, nets, par);
  EXPECT_LE(rep.skew(), d.constraints.max_skew);
}

TEST(Synthesize, PlanningRuleOverride) {
  const netlist::Design d = test::small_design(64);
  const tech::Technology t = tech::Technology::make_default_45nm();
  CtsOptions opt;
  opt.planning_rule = 0;  // plan at 1W1S instead of the blanket.
  const CtsResult r = synthesize(d, t, opt);
  EXPECT_NO_THROW(r.tree.validate(64));
}

TEST(Synthesize, NoRootBufferOption) {
  const netlist::Design d = test::small_design(4);
  const tech::Technology t = tech::Technology::make_default_45nm();
  CtsOptions opt;
  opt.buffer_root = false;
  const CtsResult r = synthesize(d, t, opt);
  EXPECT_NO_THROW(r.tree.validate(4));
}

}  // namespace
}  // namespace sndr::cts
