// Scale-ladder workload smoke tests.
//
// make_scale_workload is the bench ladder's tree source, so what matters
// here is (1) structural validity at a real rung size — 10k nets, the
// tier-1 smoke rung — (2) bit-exact determinism from the seed, since the
// ladder asserts bitwise-equal optimizer output between budgeted and
// unbounded runs, and (3) that the generated tree actually flows through
// extract -> evaluate under a tight memory budget with identical results.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "extract/net_geometry.hpp"
#include "ndr/smart_ndr.hpp"
#include "workload/scale.hpp"

namespace sndr {
namespace {

using workload::ScaleSpec;
using workload::ScaleWorkload;
using workload::make_scale_workload;

TEST(ScaleWorkload, TenThousandNetRungIsStructurallyValid) {
  ScaleSpec spec;
  spec.num_nets = 10000;
  const tech::Technology tech = tech::Technology::make_default_45nm();
  const ScaleWorkload w = make_scale_workload(spec, tech);

  EXPECT_EQ(static_cast<int>(w.nets.size()), spec.num_nets);
  EXPECT_FALSE(w.design.sinks.empty());
  // Every net drives something: validate() (already run by the generator)
  // requires leaves to be sinks, so no net may be loadless.
  for (const netlist::Net& net : w.nets.nets) {
    EXPECT_FALSE(net.loads.empty());
  }
  // Sinks live inside the core and carry the configured pin cap.
  for (const netlist::Sink& s : w.design.sinks) {
    EXPECT_TRUE(w.design.core.contains(s.loc));
    EXPECT_EQ(s.pin_cap, spec.pin_cap);
  }
}

TEST(ScaleWorkload, SameSeedIsBitIdenticalDifferentSeedIsNot) {
  ScaleSpec spec;
  spec.num_nets = 2000;
  const tech::Technology tech = tech::Technology::make_default_45nm();
  const ScaleWorkload a = make_scale_workload(spec, tech);
  const ScaleWorkload b = make_scale_workload(spec, tech);
  ASSERT_EQ(a.design.sinks.size(), b.design.sinks.size());
  for (std::size_t i = 0; i < a.design.sinks.size(); ++i) {
    EXPECT_EQ(a.design.sinks[i].loc.x, b.design.sinks[i].loc.x);
    EXPECT_EQ(a.design.sinks[i].loc.y, b.design.sinks[i].loc.y);
  }
  ASSERT_EQ(a.nets.size(), b.nets.size());

  spec.seed = 2;
  const ScaleWorkload c = make_scale_workload(spec, tech);
  ASSERT_EQ(a.design.sinks.size(), c.design.sinks.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < a.design.sinks.size() && !any_moved; ++i) {
    any_moved = a.design.sinks[i].loc.x != c.design.sinks[i].loc.x;
  }
  EXPECT_TRUE(any_moved);
}

TEST(ScaleWorkload, NetCountKnobIsExactAcrossRungShapes) {
  const tech::Technology tech = tech::Technology::make_default_45nm();
  for (const int n : {1, 2, 7, 100, 1537}) {
    ScaleSpec spec;
    spec.num_nets = n;
    const ScaleWorkload w = make_scale_workload(spec, tech);
    EXPECT_EQ(static_cast<int>(w.nets.size()), n) << "rung " << n;
  }
}

TEST(ScaleWorkload, RejectsDegenerateSpecs) {
  const tech::Technology tech = tech::Technology::make_default_45nm();
  ScaleSpec spec;
  spec.num_nets = 0;
  EXPECT_THROW(make_scale_workload(spec, tech), std::invalid_argument);
  spec.num_nets = 10;
  spec.branching = 0;
  EXPECT_THROW(make_scale_workload(spec, tech), std::invalid_argument);
  spec.branching = 4;
  spec.sinks_per_leaf = 0;
  EXPECT_THROW(make_scale_workload(spec, tech), std::invalid_argument);
}

TEST(ScaleWorkload, EvaluatesIdenticallyUnderTightBudget) {
  ScaleSpec spec;
  spec.num_nets = 2000;
  const tech::Technology tech = tech::Technology::make_default_45nm();
  const ScaleWorkload w = make_scale_workload(spec, tech);
  const ndr::RuleAssignment blanket = ndr::assign_all(w.nets, 0);

  const extract::GeometryCache unbounded(w.tree, w.design, w.nets);
  const extract::GeometryCache budgeted(
      w.tree, w.design, w.nets, unbounded.resident_bytes() / 8 + 1024, {});
  const ndr::FlowEvaluation ref = ndr::evaluate(
      w.tree, w.design, tech, w.nets, blanket, {}, &unbounded);
  const ndr::FlowEvaluation got = ndr::evaluate(
      w.tree, w.design, tech, w.nets, blanket, {}, &budgeted);
  EXPECT_GT(budgeted.evictions(), 0);
  EXPECT_EQ(ref.power.switched_cap, got.power.switched_cap);
  EXPECT_EQ(ref.power.net_switched_cap, got.power.net_switched_cap);
  EXPECT_EQ(ref.timing.sink_arrival, got.timing.sink_arrival);
  EXPECT_EQ(ref.timing.sink_slew, got.timing.sink_slew);
  EXPECT_EQ(ref.variation.sink_uncertainty, got.variation.sink_uncertainty);
  EXPECT_EQ(ref.em.worst_density, got.em.worst_density);
  EXPECT_EQ(ref.max_track_util, got.max_track_util);
}

}  // namespace
}  // namespace sndr
