#include <gtest/gtest.h>

#include <stdexcept>

#include "tech/buffer_lib.hpp"
#include "tech/routing_rule.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"
#include "tech/wire_model.hpp"

namespace sndr::tech {
namespace {

TEST(RuleSet, StandardContents) {
  const RuleSet rules = RuleSet::standard();
  EXPECT_EQ(rules.size(), 5);
  EXPECT_EQ(rules.default_rule().name, "1W1S");
  EXPECT_EQ(rules.blanket_rule().name, "2W2S");
  EXPECT_EQ(rules.default_index(), 0);
  EXPECT_EQ(rules.find("3W3S"), 4);
  EXPECT_EQ(rules.find("9W9S"), -1);
}

TEST(RuleSet, RequiresDefaultFirst) {
  EXPECT_THROW(RuleSet({{"2W2S", 2, 2}}), std::invalid_argument);
  EXPECT_THROW(RuleSet(std::vector<RoutingRule>{}), std::invalid_argument);
}

TEST(RuleSet, AutoBlanketIsWidest) {
  const RuleSet rules({{"1W1S", 1, 1}, {"4W1S", 4, 1}, {"2W8S", 2, 8}});
  EXPECT_EQ(rules.blanket_rule().name, "4W1S");
}

TEST(RuleSet, BlanketIndexValidated) {
  EXPECT_THROW(RuleSet({{"1W1S", 1, 1}}, 5), std::invalid_argument);
}

TEST(RoutingRule, PitchMult) {
  const RoutingRule def{"1W1S", 1, 1};
  const RoutingRule wide{"2W2S", 2, 2};
  const RoutingRule space{"1W2S", 1, 2};
  EXPECT_DOUBLE_EQ(def.pitch_mult(0.5), 1.0);
  EXPECT_DOUBLE_EQ(wide.pitch_mult(0.5), 2.0);
  EXPECT_DOUBLE_EQ(space.pitch_mult(0.5), 1.5);
  // Asymmetric width fraction.
  EXPECT_DOUBLE_EQ(space.pitch_mult(0.25), 0.25 + 2 * 0.75);
}

TEST(WireModel, ResistanceInverseInWidth) {
  const MetalLayer m;
  const double r1 = wire_res_per_um(m, {"1W1S", 1, 1});
  const double r2 = wire_res_per_um(m, {"2W2S", 2, 2});
  const double r3 = wire_res_per_um(m, {"3W3S", 3, 3});
  EXPECT_NEAR(r1 / r2, 2.0, 1e-12);
  EXPECT_NEAR(r1 / r3, 3.0, 1e-12);
}

TEST(WireModel, GroundCapGrowsWithWidth) {
  const MetalLayer m;
  const double c1 = wire_cap_gnd_per_um(m, {"1W1S", 1, 1});
  const double c2 = wire_cap_gnd_per_um(m, {"2W1S", 2, 1});
  EXPECT_GT(c2, c1);
  // Fringe does not scale: doubling width less than doubles ground cap.
  EXPECT_LT(c2, 2.0 * c1);
}

TEST(WireModel, CouplingFallsWithSpacing) {
  const MetalLayer m;
  const double cc1 = wire_cap_couple_per_um(m, {"1W1S", 1, 1});
  const double cc2 = wire_cap_couple_per_um(m, {"1W2S", 1, 2});
  const double cc3 = wire_cap_couple_per_um(m, {"1W3S", 1, 3});
  EXPECT_GT(cc1, cc2);
  EXPECT_GT(cc2, cc3);
  EXPECT_GT(cc3, 0.0);
}

TEST(WireModel, OccupancyScalesCoupling) {
  const MetalLayer m;
  const RoutingRule rule{"1W1S", 1, 1};
  const WireRc none = wire_rc_per_um(m, rule, 0.0);
  const WireRc half = wire_rc_per_um(m, rule, 0.5);
  const WireRc full = wire_rc_per_um(m, rule, 1.0);
  EXPECT_DOUBLE_EQ(none.cap_cpl_per_um, 0.0);
  EXPECT_NEAR(full.cap_cpl_per_um, 2.0 * half.cap_cpl_per_um, 1e-25);
  // Ground cap unaffected by occupancy.
  EXPECT_DOUBLE_EQ(none.cap_gnd_per_um, full.cap_gnd_per_um);
  // Occupancy clamped.
  EXPECT_DOUBLE_EQ(wire_rc_per_um(m, rule, 2.0).cap_cpl_per_um,
                   full.cap_cpl_per_um);
}

TEST(WireModel, Pitch) {
  const MetalLayer m;
  EXPECT_DOUBLE_EQ(wire_pitch(m, {"1W1S", 1, 1}), m.default_pitch());
  EXPECT_DOUBLE_EQ(wire_pitch(m, {"2W2S", 2, 2}), 2.0 * m.default_pitch());
}

// Property sweep: total cap of the calibrated stack must be ~0.15-0.25 fF/um
// at realistic occupancy — the regime where the paper's numbers live.
class WireRcSweep : public ::testing::TestWithParam<int> {};

TEST_P(WireRcSweep, TotalCapInPlausibleRange) {
  const Technology t = Technology::make_default_45nm();
  const RoutingRule& rule = t.rules[GetParam()];
  const WireRc rc = wire_rc_per_um(t.clock_layer, rule, 0.3);
  EXPECT_GT(rc.cap_total_per_um(), 0.05e-15);
  EXPECT_LT(rc.cap_total_per_um(), 0.40e-15);
  EXPECT_GT(rc.res_per_um, 0.3);
  EXPECT_LT(rc.res_per_um, 3.0);
}

INSTANTIATE_TEST_SUITE_P(AllRules, WireRcSweep, ::testing::Range(0, 5));

TEST(WireModel, BlanketCostsCapVsDefault) {
  // The paper's core premise: at moderate occupancy the blanket NDR *burns*
  // capacitance relative to default routing.
  const Technology t = Technology::make_default_45nm();
  const WireRc def = wire_rc_per_um(t.clock_layer, t.rules.default_rule(), 0.3);
  const WireRc ndr = wire_rc_per_um(t.clock_layer, t.rules.blanket_rule(), 0.3);
  EXPECT_GT(ndr.cap_total_per_um(), def.cap_total_per_um());
  // ...while halving resistance.
  EXPECT_NEAR(def.res_per_um / ndr.res_per_um, 2.0, 1e-12);
}

TEST(BufferLibrary, StandardSortedByStrength) {
  const BufferLibrary lib = BufferLibrary::standard();
  EXPECT_EQ(lib.size(), 9);
  for (int i = 1; i < lib.size(); ++i) {
    EXPECT_GT(lib[i - 1].drive_res, lib[i].drive_res);
    EXPECT_LT(lib[i - 1].input_cap, lib[i].input_cap);
  }
  EXPECT_EQ(lib.smallest().name, "CLKBUF_X2");
  EXPECT_EQ(lib.largest().name, "CLKBUF_X32");
}

TEST(BufferLibrary, Find) {
  const BufferLibrary lib = BufferLibrary::standard();
  EXPECT_EQ(lib.find("CLKBUF_X8"), 4);
  EXPECT_EQ(lib.find("nope"), -1);
}

TEST(BufferLibrary, BestForLoadPicksSmallestAdequate) {
  const BufferLibrary lib = BufferLibrary::standard();
  const int small = lib.best_for_load(10 * units::fF, 80 * units::ps);
  const int big = lib.best_for_load(200 * units::fF, 80 * units::ps);
  EXPECT_LE(small, big);
  EXPECT_LE(lib[big].output_slew(200 * units::fF), 80 * units::ps);
  // Impossible load: falls back to the largest cell.
  EXPECT_EQ(lib.best_for_load(10'000 * units::fF, 1 * units::ps),
            lib.size() - 1);
}

TEST(BufferLibrary, EmptyThrows) {
  EXPECT_THROW(BufferLibrary(std::vector<BufferCell>{}), std::invalid_argument);
}

TEST(BufferCell, DelayModel) {
  BufferCell c;
  c.drive_res = 300;
  c.intrinsic_delay = 20e-12;
  c.slew_sensitivity = 0.1;
  EXPECT_DOUBLE_EQ(c.delay(0.0, 0.0), 20e-12);
  EXPECT_DOUBLE_EQ(c.delay(100e-15, 0.0), 20e-12 + 300 * 100e-15);
  EXPECT_DOUBLE_EQ(c.delay(0.0, 50e-12), 20e-12 + 5e-12);
  EXPECT_GT(c.output_slew(100e-15), c.output_slew(10e-15));
}

TEST(Technology, TextRoundTrip) {
  Technology t = Technology::make_default_45nm();
  t.vdd = 0.9;
  t.clock_layer.r_sheet = 0.5;
  t.aggressor_activity = 0.42;
  const Technology u = Technology::from_text(t.to_text());
  EXPECT_EQ(u.name, t.name);
  EXPECT_DOUBLE_EQ(u.vdd, 0.9);
  EXPECT_DOUBLE_EQ(u.clock_layer.r_sheet, 0.5);
  EXPECT_DOUBLE_EQ(u.aggressor_activity, 0.42);
  EXPECT_EQ(u.rules.size(), t.rules.size());
  EXPECT_EQ(u.rules.blanket_rule().name, t.rules.blanket_rule().name);
  EXPECT_EQ(u.buffers.size(), t.buffers.size());
  EXPECT_DOUBLE_EQ(u.buffers[0].drive_res, t.buffers[0].drive_res);
}

TEST(Technology, ParseComments) {
  const Technology t = Technology::from_text(
      "# a comment\n"
      "vdd = 1.0  # trailing comment\n"
      "\n");
  EXPECT_DOUBLE_EQ(t.vdd, 1.0);
}

TEST(Technology, ParseErrorsAreDiagnosed) {
  EXPECT_THROW(Technology::from_text("vdd 1.0\n"), std::runtime_error);
  EXPECT_THROW(Technology::from_text("unknown_key = 3\n"),
               std::runtime_error);
  EXPECT_THROW(Technology::from_text("vdd = abc\n"), std::runtime_error);
  EXPECT_THROW(Technology::from_text("rule = 2W2S 2\n"), std::runtime_error);
  EXPECT_THROW(
      Technology::from_text("rule = 1W1S 1 1\nblanket_rule = nope\n"),
      std::runtime_error);
}

TEST(Technology, ParseCustomRules) {
  const Technology t = Technology::from_text(
      "rule = 1W1S 1 1\n"
      "rule = 1W3S 1 3\n"
      "blanket_rule = 1W3S\n");
  EXPECT_EQ(t.rules.size(), 2);
  EXPECT_EQ(t.rules.blanket_rule().name, "1W3S");
}

}  // namespace
}  // namespace sndr::tech
