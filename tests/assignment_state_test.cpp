#include <gtest/gtest.h>

#include "ndr/assignment_state.hpp"
#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"

namespace sndr::ndr {
namespace {

class StateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    f = test::small_flow(96, 23);
    blanket = assign_all(f.nets, f.tech.rules.blanket_index());
    state = std::make_unique<AssignmentState>(f.cts.tree, f.design, f.tech,
                                              f.nets, aopt);
    ev = evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket, aopt);
    state->rebuild(blanket, ev);
  }

  test::Flow f;
  timing::AnalysisOptions aopt;
  RuleAssignment blanket;
  std::unique_ptr<AssignmentState> state;
  FlowEvaluation ev;
};

TEST_F(StateFixture, RebuildMatchesEvaluation) {
  EXPECT_EQ(state->assignment(), blanket);
  double cap = 0.0;
  for (int i = 0; i < f.nets.size(); ++i) {
    EXPECT_DOUBLE_EQ(state->net_cap(i), ev.power.net_switched_cap[i]);
    cap += state->net_cap(i);
  }
  EXPECT_NEAR(state->total_cap(), cap, 1e-18);
  EXPECT_NEAR(state->total_cap(), ev.power.switched_cap, 1e-18);
}

TEST_F(StateFixture, SinkNetMappingsAreConsistent) {
  // Every sink's path nets contain it in their sinks_under set, and the
  // root net covers every sink.
  for (int s = 0; s < static_cast<int>(f.design.sinks.size()); ++s) {
    for (const int net : state->nets_on_path(s)) {
      const auto& under = state->sinks_under(net);
      EXPECT_NE(std::find(under.begin(), under.end(), s), under.end());
    }
  }
  EXPECT_EQ(state->sinks_under(0).size(), f.design.sinks.size());
}

TEST_F(StateFixture, ApplyMoveTracksIncrementalCap) {
  const int net_id = f.nets.size() - 1;
  const int rule = 1;  // 1W2S.
  const NetExact exact = state->exact_eval(net_id, rule);
  const double before = state->total_cap();
  state->apply_move(net_id, rule, exact);
  EXPECT_EQ(state->rule_of(net_id), rule);
  EXPECT_NEAR(state->total_cap(),
              before + exact.cap_switched - ev.power.net_switched_cap[net_id],
              1e-20);
}

TEST_F(StateFixture, IncrementalStateMatchesFreshRebuildAfterMoves) {
  // Apply a handful of moves incrementally, then compare against a full
  // evaluation of the same assignment: since PR 6 apply_move is exact (a
  // delta-timing replay plus accumulator re-sums in rebuild()'s FP order),
  // so the agreement is BITWISE, not approximate.
  RuleAssignment a = blanket;
  for (const int net_id :
       {1, f.nets.size() / 2, f.nets.size() - 2, f.nets.size() - 1}) {
    const NetExact exact = state->exact_eval(net_id, 1);
    state->apply_move(net_id, 1, exact);
    a[net_id] = 1;
  }
  const FlowEvaluation ev2 = evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                      a, aopt, &state->geometry_cache());
  double cap = 0.0;
  for (int i = 0; i < f.nets.size(); ++i) {
    EXPECT_EQ(state->net_cap(i), ev2.power.net_switched_cap[i]);
    cap += state->net_cap(i);
  }
  EXPECT_EQ(state->total_cap(), cap);
  for (std::size_t s = 0; s < ev2.timing.sink_arrival.size(); ++s) {
    EXPECT_EQ(state->sink_latency(static_cast<int>(s)),
              ev2.timing.sink_arrival[s]);
  }
}

TEST_F(StateFixture, CheckMoveRejectsObviousViolations) {
  const int net_id = f.nets.size() - 1;
  NetImpact impossible;
  impossible.step_slew = 1.0;  // one second of slew.
  EXPECT_FALSE(state->check_move(net_id, 0, impossible, {}));

  NetImpact benign;  // zero impact: strictly better everywhere.
  EXPECT_TRUE(state->check_move(net_id, 1, benign, {}));

  NetImpact huge_delay;
  huge_delay.delay = 1.0;  // shifts sinks out of any window.
  EXPECT_FALSE(state->check_move(net_id, 1, huge_delay, {}));
}

TEST_F(StateFixture, MarginsTightenChecks) {
  const int net_id = f.nets.size() - 1;
  const NetExact exact = state->exact_eval(net_id, 0);  // 1W1S.
  NetImpact impact;
  impact.step_slew = exact.step_slew_worst;
  impact.sigma = exact.sigma_worst;
  impact.xtalk = exact.xtalk_worst;
  impact.delay = exact.wire_delay_worst;
  // With absurd margins nothing passes.
  MoveMargins crushing;
  crushing.slew = 0.999;
  EXPECT_FALSE(state->check_move(net_id, 0, impact, crushing));
}

TEST_F(StateFixture, ExactEvalUsesDriverModel) {
  // The root (source-driven) net and a buffer-driven net get different
  // driver resistances; both evaluations must be self-consistent.
  const NetExact root = state->exact_eval(0, 0);
  EXPECT_GT(root.cap_switched, 0.0);
  EXPECT_GT(root.step_slew_worst, 0.0);
  const NetExact leaf = state->exact_eval(f.nets.size() - 1, 0);
  EXPECT_GT(leaf.cap_switched, 0.0);
}

}  // namespace
}  // namespace sndr::ndr
