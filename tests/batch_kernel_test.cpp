// Bit-identity contract of the batched rule-sweep kernels (extract/batch.hpp,
// ndr/net_eval.hpp): every lane of the batched materialize / moments / exact
// evaluation must equal the scalar reference path bit for bit — across every
// rule, every process corner, at 1 and 8 threads — with all scratch carved
// from a common::Arena that is reused (reset, not reallocated) across nets.
// This is what lets the optimizer's memo warm whole rule rows and the corner
// signoff share one extraction batch without any tolerance-based checking.
#include <gtest/gtest.h>

#include <vector>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "extract/batch.hpp"
#include "extract/net_geometry.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/corner_eval.hpp"
#include "ndr/net_eval.hpp"
#include "tech/corners.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

/// Restores the global thread budget on scope exit so tests stay isolated.
struct ThreadGuard {
  ~ThreadGuard() { common::set_thread_count(-1); }
};

/// Bitwise comparison of complete parasitics (every node field included).
void expect_parasitics_identical(const extract::NetParasitics& a,
                                 const extract::NetParasitics& b) {
  ASSERT_EQ(a.rc.size(), b.rc.size());
  for (int i = 0; i < a.rc.size(); ++i) {
    const extract::RcNode& na = a.rc.node(i);
    const extract::RcNode& nb = b.rc.node(i);
    EXPECT_EQ(na.parent, nb.parent);
    EXPECT_EQ(na.res, nb.res);
    EXPECT_EQ(na.cap_gnd, nb.cap_gnd);
    EXPECT_EQ(na.cap_cpl, nb.cap_cpl);
    EXPECT_EQ(na.tree_node, nb.tree_node);
    EXPECT_EQ(na.wire_len, nb.wire_len);
    EXPECT_EQ(na.occupancy, nb.occupancy);
  }
  EXPECT_EQ(a.load_rc_index, b.load_rc_index);
  EXPECT_EQ(a.wirelength, b.wirelength);
  EXPECT_EQ(a.wire_cap_gnd, b.wire_cap_gnd);
  EXPECT_EQ(a.wire_cap_cpl, b.wire_cap_cpl);
  EXPECT_EQ(a.load_cap, b.load_cap);
}

/// Bitwise comparison of the scalar NetExact metrics (par is not filled by
/// the batched path and is excluded by contract).
void expect_exact_identical(const ndr::NetExact& a, const ndr::NetExact& b) {
  EXPECT_EQ(a.cap_switched, b.cap_switched);
  EXPECT_EQ(a.step_slew_worst, b.step_slew_worst);
  EXPECT_EQ(a.sigma_worst, b.sigma_worst);
  EXPECT_EQ(a.xtalk_worst, b.xtalk_worst);
  EXPECT_EQ(a.em_peak, b.em_peak);
  EXPECT_EQ(a.wire_delay_mean, b.wire_delay_mean);
  EXPECT_EQ(a.wire_delay_worst, b.wire_delay_worst);
}

class BatchKernelFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(48, 7);
  extract::GeometryCache cache{f.cts.tree, f.design, f.nets};
  ThreadGuard guard;
};

TEST_F(BatchKernelFixture, MaterializeLanesBitIdenticalToScalarPerRule) {
  // One arena for ALL nets: reset-and-reuse is the production lifetime, so
  // any cross-net contamination through kept blocks would surface here.
  common::Arena arena;
  extract::NetParasitics scalar;
  extract::NetParasitics scattered;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetGeometry& geom = cache.geometry(net.id);
    arena.reset();
    extract::BatchParasitics bp;
    extract::materialize_batch(geom, f.tech, f.tech.rules, arena, bp);
    ASSERT_EQ(bp.lanes, f.tech.rules.size());
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      extract::materialize(geom, f.tech, f.tech.rules[r], scalar);
      extract::scatter_lane(geom, bp, r, scattered);
      expect_parasitics_identical(scattered, scalar);
    }
  }
}

TEST_F(BatchKernelFixture, MomentsLanesBitIdenticalToScalarFusedKernel) {
  common::Arena arena;
  extract::NetParasitics scalar;
  extract::RcMoments scalar_moments;
  const double driver_res = 140.0;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetGeometry& geom = cache.geometry(net.id);
    const int L = f.tech.rules.size();
    arena.reset();
    extract::EvalLane* lanes =
        arena.alloc<extract::EvalLane>(static_cast<std::size_t>(L));
    double* dres = arena.alloc<double>(static_cast<std::size_t>(L));
    double* miller = arena.alloc<double>(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
      lanes[l] = {&f.tech, &f.tech.rules[l]};
      dres[l] = driver_res;
      miller[l] = 1.0;
    }
    extract::BatchParasitics bp;
    extract::BatchMoments bm;
    extract::moments_batch(geom, lanes, L, dres, miller, arena, bp, bm);
    for (int r = 0; r < L; ++r) {
      extract::materialize(geom, f.tech, f.tech.rules[r], scalar);
      scalar.rc.moments(driver_res, 1.0, scalar_moments);
      for (int i = 0; i < bm.nodes; ++i) {
        EXPECT_EQ(bm.m1[bm.at(i, r)], scalar_moments.m1[i]);
        EXPECT_EQ(bm.m2[bm.at(i, r)], scalar_moments.m2[i]);
      }
    }
  }
}

TEST_F(BatchKernelFixture, ExactAllRulesBitIdenticalToScalarSweep) {
  common::Arena arena;
  std::vector<ndr::NetExact> row(static_cast<std::size_t>(
      f.tech.rules.size()));
  ndr::NetEvalScratch scratch;
  const double driver_res = 150.0;
  const double freq = f.design.constraints.clock_freq;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetGeometry& geom = cache.geometry(net.id);
    ndr::evaluate_net_exact_all_rules(geom, f.tech, driver_res, freq, arena,
                                      row.data());
    for (int r = 0; r < f.tech.rules.size(); ++r) {
      const ndr::NetExact scalar = ndr::evaluate_net_exact(
          geom, f.tech, f.tech.rules[r], driver_res, freq, scratch);
      expect_exact_identical(row[static_cast<std::size_t>(r)], scalar);
    }
  }
}

TEST_F(BatchKernelFixture, ArenaReuseLeavesEarlierResultsReproducible) {
  // Evaluate the first net, churn the arena with every other net (growing
  // and rewinding it arbitrarily), then re-evaluate the first net in the
  // same arena: bitwise-equal results prove reset() gives a clean slate
  // and capacity reuse never leaks state between nets.
  common::Arena arena;
  const double driver_res = 150.0;
  const double freq = f.design.constraints.clock_freq;
  const int n_rules = f.tech.rules.size();
  std::vector<ndr::NetExact> first(static_cast<std::size_t>(n_rules));
  std::vector<ndr::NetExact> again(static_cast<std::size_t>(n_rules));
  const extract::NetGeometry& geom0 = cache.geometry(f.nets[0].id);
  ndr::evaluate_net_exact_all_rules(geom0, f.tech, driver_res, freq, arena,
                                    first.data());
  const std::size_t grown = arena.capacity();
  std::vector<ndr::NetExact> scratch_row(static_cast<std::size_t>(n_rules));
  for (const netlist::Net& net : f.nets.nets) {
    ndr::evaluate_net_exact_all_rules(cache.geometry(net.id), f.tech,
                                      driver_res, freq, arena,
                                      scratch_row.data());
  }
  EXPECT_GE(arena.capacity(), grown);
  ndr::evaluate_net_exact_all_rules(geom0, f.tech, driver_res, freq, arena,
                                    again.data());
  for (int r = 0; r < n_rules; ++r) {
    expect_exact_identical(again[static_cast<std::size_t>(r)],
                           first[static_cast<std::size_t>(r)]);
  }
}

TEST_F(BatchKernelFixture, CornerLanesBitIdenticalToPerCornerExtraction) {
  // The corner-signoff batch: lanes are derated technology clones with the
  // net's assigned rule. Each scattered lane must equal the parasitics the
  // per-corner extract_all used to produce.
  const auto corners = tech::standard_corners();
  const auto assignment =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  std::vector<tech::Technology> cornered;
  for (const tech::Corner& c : corners) {
    cornered.push_back(tech::apply_corner(f.tech, c));
  }
  common::Arena arena;
  extract::NetParasitics scattered;
  extract::NetParasitics scalar;
  for (const netlist::Net& net : f.nets.nets) {
    const extract::NetGeometry& geom = cache.geometry(net.id);
    arena.reset();
    const int C = static_cast<int>(corners.size());
    extract::EvalLane* lanes =
        arena.alloc<extract::EvalLane>(static_cast<std::size_t>(C));
    for (int c = 0; c < C; ++c) {
      lanes[c] = {&cornered[c], &cornered[c].rules[assignment[net.id]]};
    }
    extract::BatchParasitics bp;
    extract::materialize_batch(geom, lanes, C, arena, bp);
    for (int c = 0; c < C; ++c) {
      extract::materialize(geom, cornered[c],
                           cornered[c].rules[assignment[net.id]], scalar);
      extract::scatter_lane(geom, bp, c, scattered);
      expect_parasitics_identical(scattered, scalar);
    }
  }
}

TEST_F(BatchKernelFixture, CornerSignoffBitIdenticalAtOneAndEightThreads) {
  const auto assignment =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  common::set_thread_count(1);
  const ndr::MultiCornerReport serial = ndr::evaluate_corners(
      f.cts.tree, f.design, f.tech, f.nets, assignment);
  common::set_thread_count(8);
  const ndr::MultiCornerReport parallel = ndr::evaluate_corners(
      f.cts.tree, f.design, f.tech, f.nets, assignment);
  ASSERT_EQ(serial.corners.size(), parallel.corners.size());
  for (std::size_t c = 0; c < serial.corners.size(); ++c) {
    const ndr::FlowEvaluation& a = serial.corners[c].eval;
    const ndr::FlowEvaluation& b = parallel.corners[c].eval;
    ASSERT_EQ(a.parasitics.size(), b.parasitics.size());
    for (std::size_t i = 0; i < a.parasitics.size(); ++i) {
      expect_parasitics_identical(a.parasitics[i], b.parasitics[i]);
    }
    EXPECT_EQ(a.timing.max_slew, b.timing.max_slew);
    EXPECT_EQ(a.variation.max_uncertainty, b.variation.max_uncertainty);
    EXPECT_EQ(a.power.total_power, b.power.total_power);
    EXPECT_EQ(a.em.worst_density, b.em.worst_density);
  }
}

TEST_F(BatchKernelFixture, MemoRowWarmFillMatchesScalarAtBothThreadCounts) {
  // AssignmentState's first miss on a (net, rule) warms the whole rule row
  // via the batched sweep: exactly one miss per net, and every returned
  // entry equals the scalar reference evaluation.
  const timing::AnalysisOptions aopt;
  const auto blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  const double freq = f.design.constraints.clock_freq;
  for (const int threads : {1, 8}) {
    common::set_thread_count(threads);
    ndr::AssignmentState state(f.cts.tree, f.design, f.tech, f.nets, aopt);
    state.rebuild(blanket, ndr::evaluate(f.cts.tree, f.design, f.tech,
                                         f.nets, blanket, aopt));
    for (int net = 0; net < f.nets.size(); net += 5) {
      const auto misses_before = state.exact_cache_misses();
      const ndr::NetExact head = state.exact_eval(net, 1);
      EXPECT_EQ(state.exact_cache_misses(), misses_before + 1);
      // The rest of the row is warm: no further misses for ANY rule.
      for (int r = 0; r < f.tech.rules.size(); ++r) {
        const ndr::NetExact cached = state.exact_eval(net, r);
        EXPECT_EQ(state.exact_cache_misses(), misses_before + 1);
        const ndr::NetExact fresh = ndr::evaluate_net_exact(
            f.cts.tree, f.design, f.tech, f.nets[net], f.tech.rules[r],
            state.summary(net).driver_res, freq);
        expect_exact_identical(cached, fresh);
        if (r == 1) expect_exact_identical(cached, head);
      }
    }
  }
}

}  // namespace
}  // namespace sndr
