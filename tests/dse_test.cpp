// DSE subsystem tests (DESIGN.md §13): the warm-start equivalence suite.
//
// The sweep's whole reuse stack (shared World, shared GeometryCache, memo
// transplant, warm-start seeds) is contractually value-neutral-or-in-config,
// so the pinned property is: every sweep point — frontier points above all
// — reproduces bitwise when its emitted config is run standalone, at 1 and
// 8 threads, under a 32 KiB geometry budget, and when the sweep itself was
// resumed from a mid-sweep checkpoint. Plus the satellite coverage: the
// list-valued config keys (comma parsing, did-you-mean), the assignment
// seed file format, dominance/front rules, and the serve integration (dse
// job type, per-job cache-hit-rate histograms).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dse/explorer.hpp"
#include "flow/checkpoint.hpp"
#include "flow/config.hpp"
#include "io/design_io.hpp"
#include "serve/server.hpp"
#include "serve/submit.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using common::StatusCode;

std::string temp_dir(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

/// A design written to disk (the explorer consumes configs, not objects).
std::string design_file(const std::string& dir, int sinks,
                        std::uint64_t seed) {
  const std::string path = dir + "/design.txt";
  io::write_design_file(path, test::small_design(sinks, seed));
  return path;
}

/// A small but non-degenerate sweep base: annealing on, so the
/// power_weight axis actually changes the accept/reject trajectory.
flow::FlowConfig sweep_base(const std::string& dir) {
  flow::FlowConfig c;
  c.design_path = design_file(dir, 48, 11);
  c.results_dir = dir + "/results";
  c.seed = 3;
  c.threads = 1;
  c.training_samples = 40;
  c.anneal_iterations = 60;
  c.dse = true;
  c.dse_power_weight = {0.5, 2.0};
  c.dse_uncertainty_margin = {0.03, 0.08};
  return c;
}

void expect_points_bitwise(const dse::SweepResult& a,
                           const dse::SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_TRUE(a.points[i].settings == b.points[i].settings);
    EXPECT_EQ(a.points[i].assignment, b.points[i].assignment);
    EXPECT_EQ(a.points[i].total_power, b.points[i].total_power);
    EXPECT_EQ(a.points[i].switched_cap, b.points[i].switched_cap);
    EXPECT_EQ(a.points[i].skew, b.points[i].skew);
    EXPECT_EQ(a.points[i].sink_arrival, b.points[i].sink_arrival);
    EXPECT_EQ(a.points[i].feasible, b.points[i].feasible);
    EXPECT_EQ(a.points[i].warm_from, b.points[i].warm_from);
  }
  EXPECT_EQ(a.front, b.front);
}

// ---- list-valued config keys (satellite: set_list) ------------------------

TEST(DseConfig, CommaListsParseAndTrim) {
  flow::FlowConfig c;
  ASSERT_TRUE(c.set("dse_power_weight", "0.5,1.0,2.0").ok());
  EXPECT_EQ(c.dse_power_weight, (std::vector<double>{0.5, 1.0, 2.0}));
  // Spaces around items are cosmetic; hyphenated spelling is the same key.
  ASSERT_TRUE(c.set("dse-max-skew", " 10 , 25.5 ").ok());
  EXPECT_EQ(c.dse_max_skew, (std::vector<double>{10.0, 25.5}));
  ASSERT_TRUE(c.set("dse_uncertainty_margin", "0.05").ok());
  EXPECT_EQ(c.dse_uncertainty_margin, (std::vector<double>{0.05}));
}

TEST(DseConfig, ListValidationMatchesScalarKeys) {
  flow::FlowConfig c;
  // power weights must be > 0, skews >= 0 — same rules as the scalars.
  EXPECT_EQ(c.set("dse_power_weight", "0.5,0,2.0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.set("dse_max_skew", "-1").code(), StatusCode::kInvalidArgument);
  // Empty items (trailing comma) and empty lists are rejected.
  EXPECT_EQ(c.set("dse_power_weight", "1.0,").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.set("dse_power_weight", "").code(),
            StatusCode::kInvalidArgument);
}

TEST(DseConfig, ListKeysKeepDidYouMean) {
  flow::FlowConfig c;
  common::Status s = c.set("dse_power_wieght", "1.0");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("did you mean 'dse_power_weight'"),
            std::string::npos)
      << s.message();
  // set_list refuses scalar keys by name rather than silently coercing.
  s = c.set_list("power_weight", {"1.0"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("not list-valued"), std::string::npos)
      << s.message();
}

TEST(DseConfig, ScalarDseKeysValidate) {
  flow::FlowConfig c;
  EXPECT_TRUE(c.set("dse", "true").ok());
  EXPECT_TRUE(c.set("dse_mode", "refine").ok());
  EXPECT_EQ(c.set("dse_mode", "bogus").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.set("dse_points", "12").ok());
  EXPECT_EQ(c.set("dse_points", "-1").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.set("power_weight", "0").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(c.set("max_skew", "25").ok());
  EXPECT_DOUBLE_EQ(c.max_skew_ps, 25.0);
}

// ---- assignment seed files ------------------------------------------------

TEST(AssignmentSeed, RoundTripsBitwise) {
  const std::string dir = temp_dir("sndr_dse_seed");
  const std::string path = dir + "/a.seed";
  const std::vector<int> assignment{0, 2, 1, 4, 0, 3};
  const std::uint64_t fp = flow::assignment_seed_fingerprint(6, 5);
  ASSERT_TRUE(flow::save_assignment_seed(path, assignment, fp).ok());
  const auto loaded = flow::load_assignment_seed(path, fp);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), assignment);
}

TEST(AssignmentSeed, FingerprintAndFormatGuards) {
  const std::string dir = temp_dir("sndr_dse_seed_bad");
  const std::string path = dir + "/a.seed";
  EXPECT_EQ(flow::load_assignment_seed(path, 1).status().code(),
            StatusCode::kNotFound);
  const std::uint64_t fp = flow::assignment_seed_fingerprint(4, 5);
  ASSERT_TRUE(flow::save_assignment_seed(path, {1, 2, 3, 4}, fp).ok());
  // A seed for a different search shape is well-formed but unusable.
  const auto wrong =
      flow::load_assignment_seed(path, flow::assignment_seed_fingerprint(5, 5));
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(wrong.status().message().find("delete it to start over"),
            std::string::npos);
  // Malformed content is a parse error with a path:line diagnostic.
  std::ofstream(path, std::ios::trunc) << "not a seed file\n";
  const auto bad = flow::load_assignment_seed(path, fp);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find(path + ":1"), std::string::npos);
}

// ---- dominance / front ----------------------------------------------------

dse::PointResult make_point(int id, double power, double skew, double margin,
                            bool feasible = true) {
  dse::PointResult p;
  p.id = id;
  p.total_power = power;
  p.skew = skew;
  p.settings.uncertainty_margin = margin;
  p.feasible = feasible;
  return p;
}

TEST(DseDominance, RequiresNoWorseEverywhereStrictlyBetterSomewhere) {
  const dse::PointResult a = make_point(0, 1.0, 2.0, 0.05);
  const dse::PointResult b = make_point(1, 2.0, 2.0, 0.05);
  EXPECT_TRUE(dse::dominates(a, b));   // strictly less power.
  EXPECT_FALSE(dse::dominates(b, a));
  EXPECT_FALSE(dse::dominates(a, a));  // equal everywhere: no domination.
  // More guardband at equal power/skew dominates (bigger is better).
  const dse::PointResult c = make_point(2, 1.0, 2.0, 0.10);
  EXPECT_TRUE(dse::dominates(c, a));
  EXPECT_FALSE(dse::dominates(a, c));
  // Trade-offs (better on one axis, worse on another) never dominate.
  const dse::PointResult d = make_point(3, 0.5, 3.0, 0.05);
  EXPECT_FALSE(dse::dominates(d, a));
  EXPECT_FALSE(dse::dominates(a, d));
}

TEST(DseDominance, FrontExcludesDominatedAndInfeasible) {
  std::vector<dse::PointResult> pts;
  pts.push_back(make_point(0, 2.0, 2.0, 0.05));          // dominated by 1.
  pts.push_back(make_point(1, 1.0, 2.0, 0.05));
  pts.push_back(make_point(2, 0.5, 5.0, 0.05));          // trade-off: stays.
  pts.push_back(make_point(3, 0.1, 0.1, 0.99, false));   // infeasible.
  const std::vector<int> front = dse::pareto_front(pts);
  EXPECT_EQ(front, (std::vector<int>{2, 1}));  // sorted by power.
}

// ---- the sweep ------------------------------------------------------------

TEST(DseSweep, GridCoversAxesAndEmitsArtifacts) {
  const std::string dir = temp_dir("sndr_dse_grid");
  const flow::FlowConfig base = sweep_base(dir);
  const auto sweep = dse::explore(base);
  ASSERT_TRUE(sweep.ok()) << sweep.status().to_string();
  EXPECT_EQ(sweep->points.size(), 4u);  // 2 power x 1 skew x 2 margin.
  EXPECT_EQ(sweep->solved_points, 4);
  EXPECT_EQ(sweep->warm_started, 3);  // every point after the first.
  EXPECT_FALSE(sweep->front.empty());
  ASSERT_NE(sweep->trained_predictor, nullptr);
  for (const int id : sweep->front) {
    EXPECT_TRUE(sweep->points[static_cast<std::size_t>(id)].on_front);
  }
  const std::string dse_dir = base.output_path(base.dse_out);
  EXPECT_TRUE(std::filesystem::exists(dse_dir + "/pareto.csv"));
  EXPECT_TRUE(std::filesystem::exists(dse_dir + "/front.json"));
  EXPECT_TRUE(std::filesystem::exists(dse_dir + "/sweep.ck"));
  for (const dse::PointResult& p : sweep->points) {
    EXPECT_TRUE(std::filesystem::exists(
        dse_dir + "/point_" + std::to_string(p.id) + ".manifest.json"));
    if (p.warm_from >= 0) {
      EXPECT_TRUE(std::filesystem::exists(
          dse_dir + "/point_" + std::to_string(p.id) + ".seed"));
    }
  }
  // Sweep-level metrics: reuse is visible, not just asserted.
  EXPECT_EQ(sweep->metrics.counter("dse.points_total"), 4);
  EXPECT_EQ(sweep->metrics.counter("dse.warm_starts"), 3);
  EXPECT_GT(sweep->metrics.counter("ndr.exact_cache.transplants"), 0);
}

// The headline contract: every frontier point's emitted config, run
// standalone through the same execute_job entry the CLI uses — no sweep,
// no shared cache, cold session — reproduces the sweep's numbers bitwise.
TEST(DseSweep, FrontierPointsReproduceStandaloneBitwise) {
  const std::string dir = temp_dir("sndr_dse_standalone");
  const auto sweep = dse::explore(sweep_base(dir));
  ASSERT_TRUE(sweep.ok()) << sweep.status().to_string();
  ASSERT_FALSE(sweep->front.empty());
  for (const int id : sweep->front) {
    SCOPED_TRACE("front point " + std::to_string(id));
    const dse::PointResult& p = sweep->points[static_cast<std::size_t>(id)];
    const serve::JobOutcome solo = serve::execute_job(p.config, nullptr);
    ASSERT_TRUE(solo.ok()) << solo.status.to_string();
    ASSERT_TRUE(solo.result.has_value());
    EXPECT_EQ(*solo.result->final_assignment(), p.assignment);
    EXPECT_EQ(solo.result->final_eval().power.total_power, p.total_power);
    EXPECT_EQ(solo.result->final_eval().power.switched_cap, p.switched_cap);
    EXPECT_EQ(solo.result->final_eval().timing.skew(), p.skew);
    EXPECT_EQ(solo.result->final_eval().timing.sink_arrival, p.sink_arrival);
    EXPECT_EQ(solo.result->feasible, p.feasible);
  }
}

TEST(DseSweep, EightThreadSweepMatchesOneThread) {
  const std::string dir1 = temp_dir("sndr_dse_t1");
  const std::string dir8 = temp_dir("sndr_dse_t8");
  const auto serial = dse::explore(sweep_base(dir1));
  ASSERT_TRUE(serial.ok()) << serial.status().to_string();
  flow::FlowConfig threaded = sweep_base(dir8);
  threaded.threads = 8;
  const auto parallel = dse::explore(threaded);
  ASSERT_TRUE(parallel.ok()) << parallel.status().to_string();
  expect_points_bitwise(serial.value(), parallel.value());
}

TEST(DseSweep, GeometryBudget32KiBMatchesUnbounded) {
  const std::string dir_a = temp_dir("sndr_dse_nobudget");
  const std::string dir_b = temp_dir("sndr_dse_budget");
  const auto unbounded = dse::explore(sweep_base(dir_a));
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().to_string();
  flow::FlowConfig budgeted = sweep_base(dir_b);
  budgeted.memory_budget_bytes = 32 * 1024;  // forces LRU eviction.
  const auto bounded = dse::explore(budgeted);
  ASSERT_TRUE(bounded.ok()) << bounded.status().to_string();
  expect_points_bitwise(unbounded.value(), bounded.value());
}

// Kill the sweep after two points (simulated by rewriting the checkpoint
// to its first two point blocks), resume, and require bitwise identity
// with the uninterrupted sweep — point granularity preemption survival.
TEST(DseSweep, ResumesFromMidSweepCheckpointBitwise) {
  const std::string dir = temp_dir("sndr_dse_resume");
  const flow::FlowConfig base = sweep_base(dir);
  const auto whole = dse::explore(base);
  ASSERT_TRUE(whole.ok()) << whole.status().to_string();
  ASSERT_EQ(whole->points.size(), 4u);

  // Truncate sweep.ck to its first 2 points (text surgery on the real
  // file — exactly what a mid-sweep kill leaves behind).
  const std::string ck_path = base.output_path(base.dse_out) + "/sweep.ck";
  std::vector<std::string> lines;
  {
    std::ifstream f(ck_path);
    std::string l;
    while (std::getline(f, l)) lines.push_back(l);
  }
  std::vector<std::string> kept;
  int points_seen = 0;
  for (const std::string& l : lines) {
    if (l.rfind("point ", 0) == 0 && ++points_seen > 2) break;
    kept.push_back(l);
  }
  {
    std::ofstream f(ck_path, std::ios::trunc);
    for (const std::string& l : kept) f << l << "\n";
  }

  const auto resumed = dse::explore(base);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed->resumed_points, 2);
  EXPECT_EQ(resumed->solved_points, 2);
  expect_points_bitwise(whole.value(), resumed.value());
  // And the resumed sweep's frontier points still reproduce standalone.
  ASSERT_FALSE(resumed->front.empty());
  const dse::PointResult& p =
      resumed->points[static_cast<std::size_t>(resumed->front.front())];
  const serve::JobOutcome solo = serve::execute_job(p.config, nullptr);
  ASSERT_TRUE(solo.ok()) << solo.status.to_string();
  EXPECT_EQ(solo.result->final_eval().timing.sink_arrival, p.sink_arrival);
  EXPECT_EQ(*solo.result->final_assignment(), p.assignment);
}

TEST(DseSweep, PartialTrailingCheckpointBlockIsDroppedAndCompacted) {
  const std::string dir = temp_dir("sndr_dse_partial");
  const flow::FlowConfig base = sweep_base(dir);
  const auto whole = dse::explore(base);
  ASSERT_TRUE(whole.ok()) << whole.status().to_string();
  ASSERT_EQ(whole->points.size(), 4u);

  // Cut the append-only log mid-block — what a crash (or full disk)
  // during the 3rd point's append leaves behind. The readable prefix (2
  // complete blocks) must survive; the partial tail must be dropped.
  const std::string ck_path = base.output_path(base.dse_out) + "/sweep.ck";
  std::vector<std::string> lines;
  {
    std::ifstream f(ck_path);
    std::string l;
    while (std::getline(f, l)) lines.push_back(l);
  }
  std::vector<std::string> kept;
  int points_seen = 0, into_third = 0;
  for (const std::string& l : lines) {
    if (l.rfind("point ", 0) == 0) ++points_seen;
    if (points_seen > 2 && ++into_third > 3) break;  // half a block.
    kept.push_back(l);
  }
  {
    std::ofstream f(ck_path, std::ios::trunc);
    for (const std::string& l : kept) f << l << "\n";
  }

  const auto resumed = dse::explore(base);
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed->resumed_points, 2);
  EXPECT_EQ(resumed->solved_points, 2);
  expect_points_bitwise(whole.value(), resumed.value());

  // The resume compacted the log: a third pass restores every point from
  // a clean file without solving anything.
  const auto again = dse::explore(base);
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  EXPECT_EQ(again->resumed_points, 4);
  EXPECT_EQ(again->solved_points, 0);
  expect_points_bitwise(whole.value(), again.value());
}

TEST(DseSweep, CheckpointForDifferentSweepIsRejected) {
  const std::string dir = temp_dir("sndr_dse_mismatch");
  flow::FlowConfig base = sweep_base(dir);
  ASSERT_TRUE(dse::explore(base).ok());
  base.dse_power_weight = {0.5, 3.0};  // different axis, same dse_out.
  const auto again = dse::explore(base);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(again.status().message().find("delete it to start over"),
            std::string::npos)
      << again.status().to_string();
}

TEST(DseSweep, RefineModeBisectsOnlyNonDominatedGaps) {
  const std::string dir = temp_dir("sndr_dse_refine");
  flow::FlowConfig base = sweep_base(dir);
  base.dse_mode = "refine";
  base.dse_points = 6;
  const auto sweep = dse::explore(base);
  ASSERT_TRUE(sweep.ok()) << sweep.status().to_string();
  // Corners first (2 axes with 2 extremes each = 4), then bisections up
  // to the budget; converged-early sweeps may stop under it.
  ASSERT_GE(sweep->points.size(), 4u);
  EXPECT_LE(sweep->points.size(), 6u);
  // Every bisection landed between two FRONT points of its moment: its
  // settings are a componentwise midpoint, inside the axis ranges.
  for (std::size_t i = 4; i < sweep->points.size(); ++i) {
    const dse::PointSettings& s = sweep->points[i].settings;
    EXPECT_GE(s.power_weight, 0.5);
    EXPECT_LE(s.power_weight, 2.0);
    EXPECT_GE(s.uncertainty_margin, 0.03);
    EXPECT_LE(s.uncertainty_margin, 0.08);
  }
  // No two points share settings (duplicate bisections are skipped).
  for (std::size_t i = 0; i < sweep->points.size(); ++i) {
    for (std::size_t j = i + 1; j < sweep->points.size(); ++j) {
      EXPECT_FALSE(sweep->points[i].settings == sweep->points[j].settings)
          << i << " vs " << j;
    }
  }
  // The emitted front never contains a dominated point.
  for (const int fid : sweep->front) {
    const dse::PointResult& p = sweep->points[static_cast<std::size_t>(fid)];
    for (const dse::PointResult& q : sweep->points) {
      EXPECT_FALSE(q.feasible && q.id != p.id && dse::dominates(q, p))
          << "front point " << p.id << " dominated by " << q.id;
    }
  }
}

// ---- serve integration ----------------------------------------------------

// A `dse` job type rides the same queue as flow jobs; the server's
// per-job cache-effectiveness histograms (the gauge-overwrite fix) carry
// one observation per job instead of last-writer-wins.
TEST(DseServe, DseJobRunsThroughServerWithPerJobHistograms) {
  const std::string dir = temp_dir("sndr_dse_serve");
  serve::ServerOptions options;
  options.workers = 2;
  serve::Server server(options);

  flow::FlowConfig sweep_job = sweep_base(dir);
  flow::FlowConfig flow_job;
  flow_job.design_path = sweep_job.design_path;
  flow_job.results_dir = dir + "/results_flow";
  flow_job.training_samples = 40;
  flow_job.anneal_iterations = 60;

  const auto id_sweep = server.submit(sweep_job);
  const auto id_flow = server.submit(flow_job);
  ASSERT_TRUE(id_sweep.ok());
  ASSERT_TRUE(id_flow.ok());
  const std::vector<serve::JobRecord> records = server.drain();
  ASSERT_EQ(records.size(), 2u);

  for (const serve::JobRecord& r : records) {
    ASSERT_TRUE(r.outcome.ok()) << r.outcome.status.to_string();
    EXPECT_TRUE(r.outcome.feasible());
    if (r.id == id_sweep.value()) {
      ASSERT_TRUE(r.outcome.dse.has_value());
      EXPECT_EQ(r.outcome.dse->points.size(), 4u);
      EXPECT_FALSE(r.outcome.dse->front.empty());
      EXPECT_FALSE(r.outcome.result.has_value());
    } else {
      EXPECT_TRUE(r.outcome.result.has_value());
    }
  }

  const auto snap = server.metrics_snapshot();
  const auto* exact = snap.histogram("serve.job_exact_cache_hit_rate");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->count, 2);  // one observation PER JOB, none overwritten.
  EXPECT_GE(exact->min, 0.0);
  EXPECT_LE(exact->max, 1.0);
  const auto* geo = snap.histogram("serve.job_geometry_cache_hit_rate");
  ASSERT_NE(geo, nullptr);
  EXPECT_EQ(geo->count, 2);
  EXPECT_GE(geo->min, 0.0);
  EXPECT_GT(geo->max, 0.0);  // at least the sweep's cache reuse shows up.
}

}  // namespace
}  // namespace sndr
