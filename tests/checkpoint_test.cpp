// Anneal checkpoint/resume tests (DESIGN.md "Memory budget" / checkpoint
// contract).
//
// The load-bearing property: a run resumed from a checkpoint taken at
// iteration k reproduces the uninterrupted run bit for bit — same final
// assignment, same counters, same energies. That holds through the
// in-memory snapshot AND through the text file (hexfloats round-trip
// doubles exactly), and the flow-level wiring (checkpoint_path config)
// picks an on-disk snapshot up across Session lifetimes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flow/checkpoint.hpp"
#include "flow/config.hpp"
#include "flow/flow.hpp"
#include "flow/session.hpp"
#include "ndr/smart_ndr.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using common::StatusCode;
using flow::checkpoint_fingerprint;
using flow::load_checkpoint;
using flow::save_checkpoint;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void expect_anneal_eq(const ndr::AnnealResult& a, const ndr::AnnealResult& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.end_cap, b.end_cap);
  EXPECT_EQ(a.final_eval.power.switched_cap, b.final_eval.power.switched_cap);
  EXPECT_EQ(a.final_eval.timing.sink_arrival, b.final_eval.timing.sink_arrival);
  EXPECT_EQ(a.uphill_accepted, b.uphill_accepted);
}

// ---- file format ----------------------------------------------------------

ndr::AnnealCheckpoint awkward_checkpoint() {
  ndr::AnnealCheckpoint ck;
  ck.iteration = 1234;
  // Values chosen to break any decimal round-trip: %a must carry them.
  ck.temperature = 0.1 * 3.0e-15;
  ck.cooling = 0.99973210431532987;
  ck.rng_state = 0xdeadbeefcafef00dULL;
  ck.accepted_since_refresh = 17;
  ck.proposed = 1234;
  ck.accepted = 600;
  ck.rejected = 634;
  ck.uphill_accepted = 41;
  ck.delta_updates = 555;
  ck.full_rebuilds = 2;
  ck.start_cap = 4.6366462191032524e-12;
  ck.start_feasible = true;
  ck.assignment = {0, 3, 1, 2, 0, 1};
  ck.best = {0, 2, 1, 2, 0, 1};
  ck.best_cap = 4.0366462191032524e-12;
  return ck;
}

TEST(CheckpointFile, SaveLoadRoundTripsEveryFieldExactly) {
  const std::string path = temp_path("ck_roundtrip.txt");
  const ndr::AnnealCheckpoint ck = awkward_checkpoint();
  const std::uint64_t fp = checkpoint_fingerprint(6, 4, 7, 2000);
  ASSERT_TRUE(save_checkpoint(path, ck, fp).ok());

  common::Result<ndr::AnnealCheckpoint> r = load_checkpoint(path, fp);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const ndr::AnnealCheckpoint& got = r.value();
  EXPECT_EQ(got.iteration, ck.iteration);
  EXPECT_EQ(got.temperature, ck.temperature);  // exact, not near.
  EXPECT_EQ(got.cooling, ck.cooling);
  EXPECT_EQ(got.rng_state, ck.rng_state);
  EXPECT_EQ(got.accepted_since_refresh, ck.accepted_since_refresh);
  EXPECT_EQ(got.proposed, ck.proposed);
  EXPECT_EQ(got.accepted, ck.accepted);
  EXPECT_EQ(got.rejected, ck.rejected);
  EXPECT_EQ(got.uphill_accepted, ck.uphill_accepted);
  EXPECT_EQ(got.delta_updates, ck.delta_updates);
  EXPECT_EQ(got.full_rebuilds, ck.full_rebuilds);
  EXPECT_EQ(got.start_cap, ck.start_cap);
  EXPECT_EQ(got.start_feasible, ck.start_feasible);
  EXPECT_EQ(got.assignment, ck.assignment);
  EXPECT_EQ(got.best, ck.best);
  EXPECT_EQ(got.best_cap, ck.best_cap);
  std::remove(path.c_str());
}

TEST(CheckpointFile, FingerprintMismatchIsRejectedWithDiagnostic) {
  const std::string path = temp_path("ck_fingerprint.txt");
  const std::uint64_t fp = checkpoint_fingerprint(6, 4, 7, 2000);
  ASSERT_TRUE(save_checkpoint(path, awkward_checkpoint(), fp).ok());
  common::Result<ndr::AnnealCheckpoint> r =
      load_checkpoint(path, checkpoint_fingerprint(6, 4, 8, 2000));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("different inputs"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileIsNotFound) {
  common::Result<ndr::AnnealCheckpoint> r =
      load_checkpoint(temp_path("ck_does_not_exist.txt"), 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFile, MalformedFilesAreRejected) {
  const std::uint64_t fp = 99;
  const auto write = [](const std::string& name, const std::string& text) {
    const std::string path = temp_path(name);
    std::ofstream(path) << text;
    return path;
  };
  // Wrong magic.
  std::string p = write("ck_bad_magic.txt", "not a checkpoint\n");
  EXPECT_EQ(load_checkpoint(p, fp).status().code(),
            StatusCode::kParseError);
  std::remove(p.c_str());
  // Unknown key.
  p = write("ck_bad_key.txt",
            "sndr.anneal_checkpoint/1\nfingerprint 99\nbogus 1\n");
  EXPECT_EQ(load_checkpoint(p, fp).status().code(),
            StatusCode::kParseError);
  std::remove(p.c_str());
  // Non-numeric value.
  p = write("ck_bad_value.txt",
            "sndr.anneal_checkpoint/1\nfingerprint 99\ntemperature oops\n");
  EXPECT_EQ(load_checkpoint(p, fp).status().code(),
            StatusCode::kParseError);
  std::remove(p.c_str());
  // Fingerprint present but assignment vectors missing.
  p = write("ck_no_assignment.txt",
            "sndr.anneal_checkpoint/1\nfingerprint 99\niteration 5\n");
  EXPECT_EQ(load_checkpoint(p, fp).status().code(),
            StatusCode::kParseError);
  std::remove(p.c_str());
}

// Corruption classes a crash mid-write (or a flaky disk) actually
// produces. All must reject as kParseError with a path:line diagnostic —
// never load half a checkpoint.
TEST(CheckpointFile, TruncatedMidFieldIsAParseError) {
  const std::string path = temp_path("ck_truncated.txt");
  const std::uint64_t fp = checkpoint_fingerprint(6, 4, 7, 2000);
  ASSERT_TRUE(save_checkpoint(path, awkward_checkpoint(), fp).ok());
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  // Cut in the middle of the "start_cap 0x1...." line (mid-field).
  const std::size_t cut = text.find("start_cap");
  ASSERT_NE(cut, std::string::npos);
  std::ofstream(path, std::ios::trunc) << text.substr(0, cut + 12);
  const common::Result<ndr::AnnealCheckpoint> r = load_checkpoint(path, fp);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(path + ":"), std::string::npos)
      << r.status().to_string();
  std::remove(path.c_str());
}

TEST(CheckpointFile, DuplicatedKeyIsAParseError) {
  const std::string path = temp_path("ck_dup_key.txt");
  std::ofstream(path) << "sndr.anneal_checkpoint/1\n"
                         "fingerprint 99\n"
                         "iteration 5\n"
                         "iteration 6\n";
  const common::Result<ndr::AnnealCheckpoint> r = load_checkpoint(path, 99);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(":4:"), std::string::npos)
      << r.status().to_string();
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointFile, HexfloatTrailingJunkIsAParseError) {
  // Junk fused to the token ("0x1.8p+1junk") and junk after it
  // ("0x1.8p+1 junk") are both rejected, with the line number named.
  const auto check = [](const std::string& name, const std::string& line) {
    const std::string path = temp_path(name);
    std::ofstream(path) << "sndr.anneal_checkpoint/1\n"
                           "fingerprint 99\n" +
                               line + "\n";
    const common::Result<ndr::AnnealCheckpoint> r = load_checkpoint(path, 99);
    ASSERT_FALSE(r.ok()) << line;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << line;
    EXPECT_NE(r.status().message().find(":3:"), std::string::npos)
        << r.status().to_string();
    std::remove(path.c_str());
  };
  check("ck_hex_fused.txt", "temperature 0x1.8p+1junk");
  check("ck_hex_extra.txt", "temperature 0x1.8p+1 junk");
  check("ck_int_extra.txt", "iteration 5 5");
}

TEST(CheckpointFile, FingerprintMismatchStaysInvalidArgument) {
  // A well-formed checkpoint for OTHER inputs is not a parse error: the
  // caller can act on the distinction (re-anneal vs report corruption).
  const std::string path = temp_path("ck_other_inputs.txt");
  const std::uint64_t fp = checkpoint_fingerprint(6, 4, 7, 2000);
  ASSERT_TRUE(save_checkpoint(path, awkward_checkpoint(), fp).ok());
  const common::Result<ndr::AnnealCheckpoint> r =
      load_checkpoint(path, fp + 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---- bitwise resume -------------------------------------------------------

class CheckpointResumeFixture : public ::testing::Test {
 protected:
  test::Flow f = test::small_flow(128, 31);

  ndr::AnnealOptions base_options() const {
    ndr::AnnealOptions opt;
    opt.iterations = 900;
    opt.seed = 7;
    return opt;
  }
};

TEST_F(CheckpointResumeFixture, ResumeReproducesUninterruptedRunBitwise) {
  const ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());

  // Reference run, snapshotting every 300 iterations along the way.
  ndr::AnnealOptions opt = base_options();
  std::vector<ndr::AnnealCheckpoint> snaps;
  opt.checkpoint_interval = 300;
  opt.checkpoint_sink = [&snaps](const ndr::AnnealCheckpoint& ck) {
    snaps.push_back(ck);
  };
  const ndr::AnnealResult ref =
      ndr::anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  ASSERT_EQ(snaps.size(), 3u);  // 300, 600, 900.
  EXPECT_EQ(snaps.back().iteration, opt.iterations);

  // Resuming from every mid-run snapshot converges to the same bits.
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    ndr::AnnealOptions resume_opt = base_options();
    resume_opt.resume = snaps[i];
    const ndr::AnnealResult got = ndr::anneal_rules(
        f.cts.tree, f.design, f.tech, f.nets, blanket, resume_opt);
    expect_anneal_eq(ref, got);
    EXPECT_EQ(ref.proposed, got.proposed);
    EXPECT_EQ(ref.accepted, got.accepted);
    EXPECT_EQ(ref.rejected, got.rejected);
    EXPECT_EQ(ref.delta_updates, got.delta_updates);
    EXPECT_EQ(ref.start_cap, got.start_cap);
  }

  // And a geometry budget on the resumed run still changes nothing.
  ndr::AnnealOptions budget_opt = base_options();
  budget_opt.resume = snaps[0];
  budget_opt.geometry_budget_bytes = 64 * 1024;
  const ndr::AnnealResult budgeted = ndr::anneal_rules(
      f.cts.tree, f.design, f.tech, f.nets, blanket, budget_opt);
  expect_anneal_eq(ref, budgeted);
}

TEST_F(CheckpointResumeFixture, ResumeThroughFileIsStillBitwise) {
  const ndr::RuleAssignment blanket =
      ndr::assign_all(f.nets, f.tech.rules.blanket_index());

  ndr::AnnealOptions opt = base_options();
  std::vector<ndr::AnnealCheckpoint> snaps;
  opt.checkpoint_interval = 450;
  opt.checkpoint_sink = [&snaps](const ndr::AnnealCheckpoint& ck) {
    snaps.push_back(ck);
  };
  const ndr::AnnealResult ref =
      ndr::anneal_rules(f.cts.tree, f.design, f.tech, f.nets, blanket, opt);
  ASSERT_EQ(snaps.size(), 2u);

  // Round-trip the mid-run snapshot through the text format: the resumed
  // trajectory depends on temperature/rng bits surviving serialization.
  const std::string path = temp_path("ck_resume_file.txt");
  const std::uint64_t fp = checkpoint_fingerprint(
      static_cast<int>(f.nets.size()),
      static_cast<int>(f.tech.rules.size()), opt.seed, opt.iterations);
  ASSERT_TRUE(save_checkpoint(path, snaps[0], fp).ok());
  common::Result<ndr::AnnealCheckpoint> loaded = load_checkpoint(path, fp);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();

  ndr::AnnealOptions resume_opt = base_options();
  resume_opt.resume = std::move(loaded).value();
  const ndr::AnnealResult got = ndr::anneal_rules(f.cts.tree, f.design, f.tech,
                                             f.nets, blanket, resume_opt);
  expect_anneal_eq(ref, got);
  std::remove(path.c_str());
}

// ---- flow-level wiring ----------------------------------------------------

TEST(FlowCheckpoint, ResumesAcrossSessionsFromCheckpointPath) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sndr_ck_flow").string();
  std::filesystem::remove_all(dir);

  flow::FlowConfig config;
  config.smart = true;
  config.training_samples = 60;
  config.anneal_iterations = 200;
  config.checkpoint_interval = 80;
  config.checkpoint_path = "anneal.ck";
  config.results_dir = dir;

  const auto run = [&config](flow::FlowResult& out) {
    flow::Session session(config);
    session.set_design(test::small_design(48, 1));
    flow::Flow fl(session);
    common::Result<flow::FlowResult> r = fl.run();
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    out = std::move(r).value();
  };

  flow::FlowResult first;
  run(first);
  ASSERT_TRUE(first.anneal.has_value());
  EXPECT_EQ(first.resumed_from_iteration, 0);
  EXPECT_TRUE(std::filesystem::exists(config.output_path("anneal.ck")));

  // Second session finds the completed run's checkpoint: it resumes at
  // the final iteration (no annealing left) and lands on the same bits.
  flow::FlowResult second;
  run(second);
  ASSERT_TRUE(second.anneal.has_value());
  EXPECT_EQ(second.resumed_from_iteration, config.anneal_iterations);
  expect_anneal_eq(*first.anneal, *second.anneal);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sndr
