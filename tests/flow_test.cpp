// Session/Flow architecture tests (DESIGN.md §9): unified FlowConfig
// precedence (CLI > file > defaults), typed error boundaries at the file
// loaders, the staged runner's stage records, and — the load-bearing one —
// two Sessions running full flows on two threads producing bit-identical
// results vs. serial runs with fully disjoint metrics snapshots. The
// concurrent test also runs under TSan in scripts/tier1.sh.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "flow/config.hpp"
#include "flow/flow.hpp"
#include "flow/session.hpp"
#include "io/design_io.hpp"
#include "io/spef.hpp"
#include "ndr/optimizer.hpp"
#include "obs/scope.hpp"
#include "tech/buffer_lib.hpp"
#include "tech/technology.hpp"
#include "test_util.hpp"

namespace sndr {
namespace {

using common::Status;
using common::StatusCode;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream(path) << text;
  return path;
}

// ---- FlowConfig -----------------------------------------------------------

TEST(FlowConfig, PrecedenceIsCliOverFileOverDefaults) {
  const std::string conf = write_file("flow_test_prec.conf",
                                      "# comment\n"
                                      "threads = 2\n"
                                      "seed = 9\n"
                                      "smart = false\n"
                                      "\n"
                                      "results_dir = out\n");
  flow::FlowConfig config;
  ASSERT_TRUE(config.from_file(conf).ok());
  // File overrides defaults...
  EXPECT_EQ(config.threads, 2);
  EXPECT_EQ(config.seed, 9u);
  EXPECT_FALSE(config.smart);
  EXPECT_EQ(config.results_dir, "out");
  // ...untouched keys keep their defaults...
  EXPECT_EQ(config.max_passes, 4);
  EXPECT_EQ(config.scoring, "models");
  // ...and a later set() (the CLI path) overrides the file.
  ASSERT_TRUE(config.set("threads", "4").ok());
  ASSERT_TRUE(config.set("smart", "true").ok());
  EXPECT_EQ(config.threads, 4);
  EXPECT_TRUE(config.smart);
  EXPECT_EQ(config.seed, 9u);  // file value survives unrelated overrides.
}

TEST(FlowConfig, RejectsUnknownKeysAndBadValues) {
  flow::FlowConfig config;
  Status s = config.set("bogus", "1");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("bogus"), std::string::npos);
  EXPECT_EQ(config.set("threads", "abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(config.set("scoring", "psychic").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(config.set("smart", "maybe").code(),
            StatusCode::kInvalidArgument);
}

TEST(FlowConfig, UnknownKeySuggestsNearestKnownKey) {
  flow::FlowConfig config;
  // One edit away: typo'd key names get a did-you-mean pointer.
  Status s = config.set("thread", "4");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("did you mean 'threads'?"), std::string::npos)
      << s.message();
  s = config.set("trainng_samples", "10");
  EXPECT_NE(s.message().find("did you mean 'training_samples'?"),
            std::string::npos)
      << s.message();
  // Hyphen spelling normalizes before matching, same as a valid flag.
  s = config.set("metrics-outt", "m.json");
  EXPECT_NE(s.message().find("did you mean 'metrics_out'?"),
            std::string::npos)
      << s.message();
  // Nothing close: no far-fetched suggestion.
  s = config.set("zzzzqqqq", "1");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message().find("did you mean"), std::string::npos)
      << s.message();
}

TEST(FlowConfig, FromFileDiagnosticsCarryPathAndLine) {
  flow::FlowConfig config;
  EXPECT_EQ(config.from_file(temp_path("flow_test_missing.conf")).code(),
            StatusCode::kNotFound);

  const std::string conf =
      write_file("flow_test_bad.conf", "threads = 2\nbogus = 1\n");
  Status s = config.from_file(conf);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find(conf + ":2:"), std::string::npos) << s.message();
}

TEST(FlowConfig, KnownKeysRoundTripThroughSet) {
  // Every advertised key must be settable — keeps usage text honest.
  flow::FlowConfig config;
  for (const std::string& key : flow::FlowConfig::known_keys()) {
    // Values that parse for every key type (paths accept anything).
    Status s = config.set(key, "1");
    if (!s.ok()) s = config.set(key, "models");  // enum: scoring.
    if (!s.ok()) s = config.set(key, "grid");    // enum: dse_mode.
    EXPECT_TRUE(s.ok()) << key << ": " << s.to_string();
  }
}

TEST(FlowConfig, OutputPathResolvesUnderResultsDir) {
  flow::FlowConfig config;
  config.results_dir = "results";
  EXPECT_EQ(config.output_path("run.csv"), "results/run.csv");
  EXPECT_EQ(config.output_path("/abs/run.csv"), "/abs/run.csv");
  config.results_dir = "";
  EXPECT_EQ(config.output_path("run.csv"), "run.csv");
}

TEST(FlowConfig, MapsToOptimizerAndAnnealOptions) {
  flow::FlowConfig config;
  config.scoring = "exact_net";
  config.training_samples = 123;
  config.slew_margin = 0.07;
  config.threads = 1;
  ndr::OptimizerOptions opt = config.optimizer_options();
  EXPECT_EQ(opt.scoring, ndr::Scoring::kExactNet);
  EXPECT_FALSE(opt.use_models);
  EXPECT_EQ(opt.training_samples, 123);
  EXPECT_DOUBLE_EQ(opt.slew_margin, 0.07);

  config.scoring = "full_sta";
  opt = config.optimizer_options();
  EXPECT_EQ(opt.scoring, ndr::Scoring::kFullSta);
  // The optimizer maps use_models==false to kExactNet regardless of
  // `scoring`, so full_sta must keep use_models set.
  EXPECT_TRUE(opt.use_models);

  config.anneal_iterations = 500;
  config.anneal_t_start_frac = 0.25;
  ndr::AnnealOptions ann = config.anneal_options();
  EXPECT_EQ(ann.iterations, 500);
  EXPECT_DOUBLE_EQ(ann.t_start_frac, 0.25);
  EXPECT_DOUBLE_EQ(ann.slew_margin, 0.07);  // shared margin flows through.
}

TEST(FlowConfig, PrewarmKeyWiresToAnnealOptions) {
  flow::FlowConfig config;
  EXPECT_TRUE(config.prewarm);  // batched prewarm is the default.
  EXPECT_TRUE(config.anneal_options().prewarm);
  ASSERT_TRUE(config.set("prewarm", "false").ok());
  EXPECT_FALSE(config.anneal_options().prewarm);
  // Same key via the flag spelling and a config file.
  ASSERT_TRUE(config.set("prewarm", "true").ok());
  EXPECT_TRUE(config.anneal_options().prewarm);
  const std::string conf =
      write_file("flow_test_prewarm.conf", "prewarm = false\n");
  ASSERT_TRUE(config.from_file(conf).ok());
  EXPECT_FALSE(config.anneal_options().prewarm);
}

TEST(FlowConfig, PrewarmRejectsBadValues) {
  flow::FlowConfig config;
  const Status s = config.set("prewarm", "maybe");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("prewarm"), std::string::npos);
  EXPECT_TRUE(config.prewarm);  // a rejected value must not half-apply.
}

// ---- Typed loader boundaries ----------------------------------------------

TEST(TypedBoundaries, DesignLoader) {
  const std::string missing = temp_path("flow_test_no_such_design.txt");
  auto r = io::load_design_file(missing);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_NE(r.status().message().find(missing), std::string::npos);

  const std::string bad = write_file("flow_test_bad_design.txt", "garbage\n");
  r = io::load_design_file(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(bad + ":1:"), std::string::npos)
      << r.status().message();

  const std::string good = temp_path("flow_test_good_design.txt");
  io::write_design_file(good, test::small_design(32, 5));
  auto ok = io::load_design_file(good);
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(ok->sinks.size(), 32u);
}

TEST(TypedBoundaries, TechnologyLoader) {
  auto r = tech::load_technology_file(temp_path("flow_test_no_tech.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  const std::string bad =
      write_file("flow_test_bad_tech.txt", "no equals sign here\n");
  r = tech::load_technology_file(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(bad + ":1:"), std::string::npos)
      << r.status().message();
}

TEST(TypedBoundaries, SpefLoader) {
  auto r = io::load_spef_file(temp_path("flow_test_no_spef.spef"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  const std::string bad = write_file("flow_test_bad.spef", "*D_NET\n");
  r = io::load_spef_file(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(bad + ":1:"), std::string::npos)
      << r.status().message();
}

TEST(TypedBoundaries, BufferLibraryLoader) {
  auto r =
      tech::load_buffer_library_file(temp_path("flow_test_no_bufs.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  const std::string bad = write_file("flow_test_bad_bufs.txt",
                                     "# kit\nbuffer = BUFX2 not numbers\n");
  r = tech::load_buffer_library_file(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find(bad + ":2:"), std::string::npos)
      << r.status().message();

  const std::string empty = write_file("flow_test_empty_bufs.txt", "# kit\n");
  r = tech::load_buffer_library_file(empty);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  const std::string good = write_file(
      "flow_test_good_bufs.txt",
      "buffer = BUFX2 1200 4e-15 20e-12 1.2e-15 80e-15 0.6\n"
      "buffer = BUFX8 400 9e-15 14e-12 2.8e-15 200e-15 0.5\n");
  auto ok = tech::load_buffer_library_file(good);
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  const tech::BufferLibrary& lib = ok.value();
  ASSERT_EQ(lib.size(), 2);
  // Sorted weakest-first (descending drive resistance).
  EXPECT_GE(lib[0].drive_res, lib[1].drive_res);
}

// ---- Session / Flow -------------------------------------------------------

TEST(Session, LoadRequiresADesign) {
  flow::Session session((flow::FlowConfig()));
  Status s = session.load();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Session, LoadsDesignAndTechFromFilesIdempotently) {
  flow::FlowConfig config;
  config.design_path = temp_path("flow_test_session_design.txt");
  io::write_design_file(config.design_path, test::small_design(48, 7));
  flow::Session session(config);
  ASSERT_TRUE(session.load().ok());
  EXPECT_TRUE(session.loaded());
  EXPECT_EQ(session.design().sinks.size(), 48u);
  EXPECT_TRUE(session.load().ok());  // idempotent.
}

TEST(Flow, LoadFailureSurfacesAsTypedStatus) {
  flow::FlowConfig config;
  config.design_path = temp_path("flow_test_absent_design.txt");
  flow::Session session(config);
  flow::Flow f(session);
  common::Result<flow::FlowResult> r = f.run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  ASSERT_FALSE(f.stages().empty());
  EXPECT_EQ(f.stages()[0].name, "load");
  EXPECT_NE(f.stages()[0].status.find("not_found"), std::string::npos);
}

flow::FlowConfig small_run_config() {
  flow::FlowConfig config;
  config.smart = true;
  config.training_samples = 60;  // keep the optimizer quick.
  return config;
}

std::unique_ptr<flow::Session> run_small_flow(int sinks, std::uint64_t seed,
                                              flow::FlowResult& out) {
  auto session = std::make_unique<flow::Session>(small_run_config());
  session->set_design(test::small_design(sinks, seed));
  flow::Flow f(*session);
  common::Result<flow::FlowResult> r = f.run();
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  if (r.ok()) out = std::move(r.value());
  return session;
}

void expect_bit_identical(const ndr::FlowEvaluation& a,
                          const ndr::FlowEvaluation& b) {
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.power.total_power, b.power.total_power);
  EXPECT_EQ(a.power.switched_cap, b.power.switched_cap);
  EXPECT_EQ(a.timing.sink_arrival, b.timing.sink_arrival);
  EXPECT_EQ(a.timing.sink_slew, b.timing.sink_slew);
  EXPECT_EQ(a.slew_violations, b.slew_violations);
  EXPECT_EQ(a.uncertainty_violations, b.uncertainty_violations);
  EXPECT_EQ(a.em_violations, b.em_violations);
  EXPECT_EQ(a.feasible(), b.feasible());
}

TEST(Flow, RunsAllStagesInOrder) {
  flow::FlowResult result;
  auto session = run_small_flow(48, 1, result);
  const std::vector<std::string> expected = {
      "load", "cts",      "route",  "nets",    "extract",
      "optimize", "anneal", "corners", "report"};
  ASSERT_EQ(result.stages.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.stages[i].name, expected[i]);
  }
  // anneal/corners are off by default -> recorded as skipped, not absent.
  EXPECT_EQ(result.stages[5].status, "ok");
  EXPECT_EQ(result.stages[6].status, "skipped");
  EXPECT_EQ(result.stages[7].status, "skipped");
  EXPECT_EQ(result.stages[8].status, "ok");
  ASSERT_TRUE(result.smart.has_value());
  EXPECT_EQ(result.final_assignment(), &result.smart->assignment);
}

TEST(Flow, CancelledSessionReturnsTypedCancelledStatus) {
  flow::Session session(small_run_config());
  session.set_design(test::small_design(48, 1));
  session.cancel_token().cancel();
  flow::Flow f(session);
  common::Result<flow::FlowResult> r = f.run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // The stage table records where the run stopped, not a partial "ok".
  ASSERT_FALSE(f.stages().empty());
  EXPECT_EQ(f.stages().back().status, "cancelled");
}

// The headline isolation property: two sessions on two threads produce
// bit-identical results to the same two sessions run serially, and their
// metrics snapshots are fully disjoint (each scope saw only its own run).
TEST(Flow, ConcurrentSessionsMatchSerialWithDisjointMetrics) {
  // Serial reference runs.
  flow::FlowResult serial_a, serial_b;
  auto ref_a = run_small_flow(48, 1, serial_a);
  auto ref_b = run_small_flow(64, 3, serial_b);
  const auto ref_snap_a = ref_a->obs_scope().metrics().snapshot();
  const auto ref_snap_b = ref_b->obs_scope().metrics().snapshot();

  const auto default_before =
      obs::ObsScope::default_scope().metrics().snapshot();

  // The same two runs, concurrently.
  flow::FlowResult par_a, par_b;
  std::unique_ptr<flow::Session> sess_a, sess_b;
  std::thread ta([&] { sess_a = run_small_flow(48, 1, par_a); });
  std::thread tb([&] { sess_b = run_small_flow(64, 3, par_b); });
  ta.join();
  tb.join();

  expect_bit_identical(serial_a.default_eval, par_a.default_eval);
  expect_bit_identical(serial_a.blanket_eval, par_a.blanket_eval);
  expect_bit_identical(serial_a.final_eval(), par_a.final_eval());
  expect_bit_identical(serial_b.default_eval, par_b.default_eval);
  expect_bit_identical(serial_b.blanket_eval, par_b.blanket_eval);
  expect_bit_identical(serial_b.final_eval(), par_b.final_eval());

  // Disjoint observation: each concurrent session's snapshot equals its
  // serial twin's snapshot — nothing leaked across sessions in either
  // direction (a leak would inflate one and deflate the other).
  const auto snap_a = sess_a->obs_scope().metrics().snapshot();
  const auto snap_b = sess_b->obs_scope().metrics().snapshot();
  EXPECT_GT(snap_a.counter("ndr.evaluations"), 0);
  EXPECT_GT(snap_b.counter("ndr.evaluations"), 0);
  ASSERT_EQ(snap_a.counters.size(), ref_snap_a.counters.size());
  for (std::size_t i = 0; i < snap_a.counters.size(); ++i) {
    EXPECT_EQ(snap_a.counters[i].first, ref_snap_a.counters[i].first);
    EXPECT_EQ(snap_a.counters[i].second, ref_snap_a.counters[i].second)
        << snap_a.counters[i].first;
  }
  ASSERT_EQ(snap_b.counters.size(), ref_snap_b.counters.size());
  for (std::size_t i = 0; i < snap_b.counters.size(); ++i) {
    EXPECT_EQ(snap_b.counters[i].first, ref_snap_b.counters[i].first);
    EXPECT_EQ(snap_b.counters[i].second, ref_snap_b.counters[i].second)
        << snap_b.counters[i].first;
  }

  // And none of it went to the process default scope.
  const auto default_after =
      obs::ObsScope::default_scope().metrics().snapshot();
  EXPECT_EQ(default_after.counter("ndr.evaluations"),
            default_before.counter("ndr.evaluations"));
}

}  // namespace
}  // namespace sndr
