# Empty compiler generated dependencies file for sndr_cli.
# This may be replaced when dependencies are built.
