file(REMOVE_RECURSE
  "CMakeFiles/sndr_cli.dir/sndr_cli.cpp.o"
  "CMakeFiles/sndr_cli.dir/sndr_cli.cpp.o.d"
  "sndr"
  "sndr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
