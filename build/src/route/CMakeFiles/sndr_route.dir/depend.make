# Empty dependencies file for sndr_route.
# This may be replaced when dependencies are built.
