file(REMOVE_RECURSE
  "CMakeFiles/sndr_route.dir/congestion_route.cpp.o"
  "CMakeFiles/sndr_route.dir/congestion_route.cpp.o.d"
  "CMakeFiles/sndr_route.dir/steiner.cpp.o"
  "CMakeFiles/sndr_route.dir/steiner.cpp.o.d"
  "libsndr_route.a"
  "libsndr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
