file(REMOVE_RECURSE
  "libsndr_route.a"
)
