# Empty dependencies file for sndr_netlist.
# This may be replaced when dependencies are built.
