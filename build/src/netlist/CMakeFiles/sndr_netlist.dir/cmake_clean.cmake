file(REMOVE_RECURSE
  "CMakeFiles/sndr_netlist.dir/clock_nets.cpp.o"
  "CMakeFiles/sndr_netlist.dir/clock_nets.cpp.o.d"
  "CMakeFiles/sndr_netlist.dir/clock_tree.cpp.o"
  "CMakeFiles/sndr_netlist.dir/clock_tree.cpp.o.d"
  "CMakeFiles/sndr_netlist.dir/congestion.cpp.o"
  "CMakeFiles/sndr_netlist.dir/congestion.cpp.o.d"
  "libsndr_netlist.a"
  "libsndr_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
