
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/clock_nets.cpp" "src/netlist/CMakeFiles/sndr_netlist.dir/clock_nets.cpp.o" "gcc" "src/netlist/CMakeFiles/sndr_netlist.dir/clock_nets.cpp.o.d"
  "/root/repo/src/netlist/clock_tree.cpp" "src/netlist/CMakeFiles/sndr_netlist.dir/clock_tree.cpp.o" "gcc" "src/netlist/CMakeFiles/sndr_netlist.dir/clock_tree.cpp.o.d"
  "/root/repo/src/netlist/congestion.cpp" "src/netlist/CMakeFiles/sndr_netlist.dir/congestion.cpp.o" "gcc" "src/netlist/CMakeFiles/sndr_netlist.dir/congestion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sndr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sndr_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
