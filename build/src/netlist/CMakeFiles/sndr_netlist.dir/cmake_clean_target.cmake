file(REMOVE_RECURSE
  "libsndr_netlist.a"
)
