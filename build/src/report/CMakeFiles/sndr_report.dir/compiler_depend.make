# Empty compiler generated dependencies file for sndr_report.
# This may be replaced when dependencies are built.
