file(REMOVE_RECURSE
  "CMakeFiles/sndr_report.dir/table.cpp.o"
  "CMakeFiles/sndr_report.dir/table.cpp.o.d"
  "libsndr_report.a"
  "libsndr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
