file(REMOVE_RECURSE
  "libsndr_report.a"
)
