file(REMOVE_RECURSE
  "libsndr_power.a"
)
