# Empty compiler generated dependencies file for sndr_power.
# This may be replaced when dependencies are built.
