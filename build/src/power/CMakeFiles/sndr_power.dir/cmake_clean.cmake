file(REMOVE_RECURSE
  "CMakeFiles/sndr_power.dir/clock_power.cpp.o"
  "CMakeFiles/sndr_power.dir/clock_power.cpp.o.d"
  "CMakeFiles/sndr_power.dir/em.cpp.o"
  "CMakeFiles/sndr_power.dir/em.cpp.o.d"
  "libsndr_power.a"
  "libsndr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
