file(REMOVE_RECURSE
  "libsndr_cts.a"
)
