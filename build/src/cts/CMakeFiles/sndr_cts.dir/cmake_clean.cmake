file(REMOVE_RECURSE
  "CMakeFiles/sndr_cts.dir/embedding.cpp.o"
  "CMakeFiles/sndr_cts.dir/embedding.cpp.o.d"
  "CMakeFiles/sndr_cts.dir/refine.cpp.o"
  "CMakeFiles/sndr_cts.dir/refine.cpp.o.d"
  "CMakeFiles/sndr_cts.dir/topology.cpp.o"
  "CMakeFiles/sndr_cts.dir/topology.cpp.o.d"
  "libsndr_cts.a"
  "libsndr_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
