# Empty dependencies file for sndr_cts.
# This may be replaced when dependencies are built.
