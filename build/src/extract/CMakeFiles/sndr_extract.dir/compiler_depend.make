# Empty compiler generated dependencies file for sndr_extract.
# This may be replaced when dependencies are built.
