file(REMOVE_RECURSE
  "libsndr_extract.a"
)
