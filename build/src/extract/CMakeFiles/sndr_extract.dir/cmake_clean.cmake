file(REMOVE_RECURSE
  "CMakeFiles/sndr_extract.dir/extractor.cpp.o"
  "CMakeFiles/sndr_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/sndr_extract.dir/rc_tree.cpp.o"
  "CMakeFiles/sndr_extract.dir/rc_tree.cpp.o.d"
  "libsndr_extract.a"
  "libsndr_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
