file(REMOVE_RECURSE
  "libsndr_geom.a"
)
