file(REMOVE_RECURSE
  "CMakeFiles/sndr_geom.dir/segment.cpp.o"
  "CMakeFiles/sndr_geom.dir/segment.cpp.o.d"
  "libsndr_geom.a"
  "libsndr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
