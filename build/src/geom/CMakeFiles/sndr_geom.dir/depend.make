# Empty dependencies file for sndr_geom.
# This may be replaced when dependencies are built.
