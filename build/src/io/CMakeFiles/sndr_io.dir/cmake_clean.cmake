file(REMOVE_RECURSE
  "CMakeFiles/sndr_io.dir/design_io.cpp.o"
  "CMakeFiles/sndr_io.dir/design_io.cpp.o.d"
  "CMakeFiles/sndr_io.dir/spef.cpp.o"
  "CMakeFiles/sndr_io.dir/spef.cpp.o.d"
  "CMakeFiles/sndr_io.dir/svg.cpp.o"
  "CMakeFiles/sndr_io.dir/svg.cpp.o.d"
  "libsndr_io.a"
  "libsndr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
