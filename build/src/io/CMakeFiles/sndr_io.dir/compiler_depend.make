# Empty compiler generated dependencies file for sndr_io.
# This may be replaced when dependencies are built.
