file(REMOVE_RECURSE
  "libsndr_io.a"
)
