file(REMOVE_RECURSE
  "libsndr_workload.a"
)
