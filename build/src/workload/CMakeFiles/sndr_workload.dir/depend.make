# Empty dependencies file for sndr_workload.
# This may be replaced when dependencies are built.
