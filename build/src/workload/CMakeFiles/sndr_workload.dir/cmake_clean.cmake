file(REMOVE_RECURSE
  "CMakeFiles/sndr_workload.dir/generator.cpp.o"
  "CMakeFiles/sndr_workload.dir/generator.cpp.o.d"
  "libsndr_workload.a"
  "libsndr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
