# Empty compiler generated dependencies file for sndr_timing.
# This may be replaced when dependencies are built.
