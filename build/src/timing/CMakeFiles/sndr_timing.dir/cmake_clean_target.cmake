file(REMOVE_RECURSE
  "libsndr_timing.a"
)
