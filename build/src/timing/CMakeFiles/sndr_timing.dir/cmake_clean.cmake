file(REMOVE_RECURSE
  "CMakeFiles/sndr_timing.dir/tree_timing.cpp.o"
  "CMakeFiles/sndr_timing.dir/tree_timing.cpp.o.d"
  "CMakeFiles/sndr_timing.dir/variation.cpp.o"
  "CMakeFiles/sndr_timing.dir/variation.cpp.o.d"
  "libsndr_timing.a"
  "libsndr_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
