
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ndr/annealer.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/annealer.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/annealer.cpp.o.d"
  "/root/repo/src/ndr/assignment_state.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/assignment_state.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/assignment_state.cpp.o.d"
  "/root/repo/src/ndr/corner_eval.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/corner_eval.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/corner_eval.cpp.o.d"
  "/root/repo/src/ndr/evaluation.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/evaluation.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/evaluation.cpp.o.d"
  "/root/repo/src/ndr/linear_model.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/linear_model.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/linear_model.cpp.o.d"
  "/root/repo/src/ndr/net_eval.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/net_eval.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/net_eval.cpp.o.d"
  "/root/repo/src/ndr/optimizer.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/optimizer.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/optimizer.cpp.o.d"
  "/root/repo/src/ndr/predictor.cpp" "src/ndr/CMakeFiles/sndr_ndr.dir/predictor.cpp.o" "gcc" "src/ndr/CMakeFiles/sndr_ndr.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/sndr_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sndr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sndr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/sndr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sndr_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sndr_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sndr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sndr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
