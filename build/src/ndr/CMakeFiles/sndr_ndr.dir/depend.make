# Empty dependencies file for sndr_ndr.
# This may be replaced when dependencies are built.
