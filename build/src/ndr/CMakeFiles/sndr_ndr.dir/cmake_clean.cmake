file(REMOVE_RECURSE
  "CMakeFiles/sndr_ndr.dir/annealer.cpp.o"
  "CMakeFiles/sndr_ndr.dir/annealer.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/assignment_state.cpp.o"
  "CMakeFiles/sndr_ndr.dir/assignment_state.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/corner_eval.cpp.o"
  "CMakeFiles/sndr_ndr.dir/corner_eval.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/evaluation.cpp.o"
  "CMakeFiles/sndr_ndr.dir/evaluation.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/linear_model.cpp.o"
  "CMakeFiles/sndr_ndr.dir/linear_model.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/net_eval.cpp.o"
  "CMakeFiles/sndr_ndr.dir/net_eval.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/optimizer.cpp.o"
  "CMakeFiles/sndr_ndr.dir/optimizer.cpp.o.d"
  "CMakeFiles/sndr_ndr.dir/predictor.cpp.o"
  "CMakeFiles/sndr_ndr.dir/predictor.cpp.o.d"
  "libsndr_ndr.a"
  "libsndr_ndr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_ndr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
