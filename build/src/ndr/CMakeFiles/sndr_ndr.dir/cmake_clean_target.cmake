file(REMOVE_RECURSE
  "libsndr_ndr.a"
)
