
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/buffer_lib.cpp" "src/tech/CMakeFiles/sndr_tech.dir/buffer_lib.cpp.o" "gcc" "src/tech/CMakeFiles/sndr_tech.dir/buffer_lib.cpp.o.d"
  "/root/repo/src/tech/corners.cpp" "src/tech/CMakeFiles/sndr_tech.dir/corners.cpp.o" "gcc" "src/tech/CMakeFiles/sndr_tech.dir/corners.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/tech/CMakeFiles/sndr_tech.dir/technology.cpp.o" "gcc" "src/tech/CMakeFiles/sndr_tech.dir/technology.cpp.o.d"
  "/root/repo/src/tech/wire_model.cpp" "src/tech/CMakeFiles/sndr_tech.dir/wire_model.cpp.o" "gcc" "src/tech/CMakeFiles/sndr_tech.dir/wire_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sndr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
