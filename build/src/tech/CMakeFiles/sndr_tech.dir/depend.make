# Empty dependencies file for sndr_tech.
# This may be replaced when dependencies are built.
