file(REMOVE_RECURSE
  "libsndr_tech.a"
)
