file(REMOVE_RECURSE
  "CMakeFiles/sndr_tech.dir/buffer_lib.cpp.o"
  "CMakeFiles/sndr_tech.dir/buffer_lib.cpp.o.d"
  "CMakeFiles/sndr_tech.dir/corners.cpp.o"
  "CMakeFiles/sndr_tech.dir/corners.cpp.o.d"
  "CMakeFiles/sndr_tech.dir/technology.cpp.o"
  "CMakeFiles/sndr_tech.dir/technology.cpp.o.d"
  "CMakeFiles/sndr_tech.dir/wire_model.cpp.o"
  "CMakeFiles/sndr_tech.dir/wire_model.cpp.o.d"
  "libsndr_tech.a"
  "libsndr_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sndr_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
