file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_capacity.dir/bench_abl_capacity.cpp.o"
  "CMakeFiles/bench_abl_capacity.dir/bench_abl_capacity.cpp.o.d"
  "bench_abl_capacity"
  "bench_abl_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
