# Empty dependencies file for bench_fig6_variation.
# This may be replaced when dependencies are built.
