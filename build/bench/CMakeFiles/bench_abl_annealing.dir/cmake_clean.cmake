file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_annealing.dir/bench_abl_annealing.cpp.o"
  "CMakeFiles/bench_abl_annealing.dir/bench_abl_annealing.cpp.o.d"
  "bench_abl_annealing"
  "bench_abl_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
