# Empty dependencies file for bench_abl_annealing.
# This may be replaced when dependencies are built.
