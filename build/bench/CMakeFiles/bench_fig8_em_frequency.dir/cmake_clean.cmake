file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_em_frequency.dir/bench_fig8_em_frequency.cpp.o"
  "CMakeFiles/bench_fig8_em_frequency.dir/bench_fig8_em_frequency.cpp.o.d"
  "bench_fig8_em_frequency"
  "bench_fig8_em_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_em_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
