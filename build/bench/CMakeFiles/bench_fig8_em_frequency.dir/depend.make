# Empty dependencies file for bench_fig8_em_frequency.
# This may be replaced when dependencies are built.
