file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_topology.dir/bench_abl_topology.cpp.o"
  "CMakeFiles/bench_abl_topology.dir/bench_abl_topology.cpp.o.d"
  "bench_abl_topology"
  "bench_abl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
