file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_corners.dir/bench_table5_corners.cpp.o"
  "CMakeFiles/bench_table5_corners.dir/bench_table5_corners.cpp.o.d"
  "bench_table5_corners"
  "bench_table5_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
