# Empty dependencies file for bench_fig4_skew_tradeoff.
# This may be replaced when dependencies are built.
