# Empty dependencies file for bench_fig3_slew_sweep.
# This may be replaced when dependencies are built.
