# Empty dependencies file for bench_fig5_rule_distribution.
# This may be replaced when dependencies are built.
