file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rule_distribution.dir/bench_fig5_rule_distribution.cpp.o"
  "CMakeFiles/bench_fig5_rule_distribution.dir/bench_fig5_rule_distribution.cpp.o.d"
  "bench_fig5_rule_distribution"
  "bench_fig5_rule_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rule_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
