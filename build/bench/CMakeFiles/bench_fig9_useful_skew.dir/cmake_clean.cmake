file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_useful_skew.dir/bench_fig9_useful_skew.cpp.o"
  "CMakeFiles/bench_fig9_useful_skew.dir/bench_fig9_useful_skew.cpp.o.d"
  "bench_fig9_useful_skew"
  "bench_fig9_useful_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_useful_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
