# Empty compiler generated dependencies file for bench_fig9_useful_skew.
# This may be replaced when dependencies are built.
