file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_guardbands.dir/bench_abl_guardbands.cpp.o"
  "CMakeFiles/bench_abl_guardbands.dir/bench_abl_guardbands.cpp.o.d"
  "bench_abl_guardbands"
  "bench_abl_guardbands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_guardbands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
