# Empty compiler generated dependencies file for bench_abl_guardbands.
# This may be replaced when dependencies are built.
