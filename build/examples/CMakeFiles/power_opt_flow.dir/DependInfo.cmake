
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/power_opt_flow.cpp" "examples/CMakeFiles/power_opt_flow.dir/power_opt_flow.cpp.o" "gcc" "examples/CMakeFiles/power_opt_flow.dir/power_opt_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cts/CMakeFiles/sndr_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sndr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ndr/CMakeFiles/sndr_ndr.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/sndr_route.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sndr_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/sndr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/sndr_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sndr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sndr_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/sndr_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sndr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/sndr_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
