file(REMOVE_RECURSE
  "CMakeFiles/power_opt_flow.dir/power_opt_flow.cpp.o"
  "CMakeFiles/power_opt_flow.dir/power_opt_flow.cpp.o.d"
  "power_opt_flow"
  "power_opt_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_opt_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
