# Empty dependencies file for power_opt_flow.
# This may be replaced when dependencies are built.
