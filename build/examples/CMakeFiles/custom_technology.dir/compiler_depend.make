# Empty compiler generated dependencies file for custom_technology.
# This may be replaced when dependencies are built.
