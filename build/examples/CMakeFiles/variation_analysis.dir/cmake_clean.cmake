file(REMOVE_RECURSE
  "CMakeFiles/variation_analysis.dir/variation_analysis.cpp.o"
  "CMakeFiles/variation_analysis.dir/variation_analysis.cpp.o.d"
  "variation_analysis"
  "variation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
