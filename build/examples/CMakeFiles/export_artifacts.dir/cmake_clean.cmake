file(REMOVE_RECURSE
  "CMakeFiles/export_artifacts.dir/export_artifacts.cpp.o"
  "CMakeFiles/export_artifacts.dir/export_artifacts.cpp.o.d"
  "export_artifacts"
  "export_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
