file(REMOVE_RECURSE
  "CMakeFiles/assignment_state_test.dir/assignment_state_test.cpp.o"
  "CMakeFiles/assignment_state_test.dir/assignment_state_test.cpp.o.d"
  "assignment_state_test"
  "assignment_state_test.pdb"
  "assignment_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
