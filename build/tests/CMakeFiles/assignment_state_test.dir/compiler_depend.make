# Empty compiler generated dependencies file for assignment_state_test.
# This may be replaced when dependencies are built.
