file(REMOVE_RECURSE
  "CMakeFiles/design_io_test.dir/design_io_test.cpp.o"
  "CMakeFiles/design_io_test.dir/design_io_test.cpp.o.d"
  "design_io_test"
  "design_io_test.pdb"
  "design_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
