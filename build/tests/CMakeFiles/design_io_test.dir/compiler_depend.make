# Empty compiler generated dependencies file for design_io_test.
# This may be replaced when dependencies are built.
