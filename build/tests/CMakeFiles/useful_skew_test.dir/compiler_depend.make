# Empty compiler generated dependencies file for useful_skew_test.
# This may be replaced when dependencies are built.
