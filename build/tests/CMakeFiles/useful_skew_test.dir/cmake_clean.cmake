file(REMOVE_RECURSE
  "CMakeFiles/useful_skew_test.dir/useful_skew_test.cpp.o"
  "CMakeFiles/useful_skew_test.dir/useful_skew_test.cpp.o.d"
  "useful_skew_test"
  "useful_skew_test.pdb"
  "useful_skew_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/useful_skew_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
