# Empty compiler generated dependencies file for corners_test.
# This may be replaced when dependencies are built.
