file(REMOVE_RECURSE
  "CMakeFiles/ndr_test.dir/ndr_test.cpp.o"
  "CMakeFiles/ndr_test.dir/ndr_test.cpp.o.d"
  "ndr_test"
  "ndr_test.pdb"
  "ndr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
