# Empty compiler generated dependencies file for ndr_test.
# This may be replaced when dependencies are built.
