# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/tech_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/cts_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/ndr_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/corners_test[1]_include.cmake")
include("/root/repo/build/tests/useful_skew_test[1]_include.cmake")
include("/root/repo/build/tests/annealer_test[1]_include.cmake")
include("/root/repo/build/tests/design_io_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_state_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
