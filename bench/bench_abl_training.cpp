// Ablation C — training-set size for the learned models.
//
// Sweeps the number of nets labeled for model training. Expected shape:
// holdout rank correlation and end power are already good at modest sample
// counts (the feature space is low-dimensional and the physics smooth);
// labeling cost grows linearly. This is why the paper's approach is cheap:
// a few hundred exact labels buy model-quality candidate ordering.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  workload::DesignSpec spec = workload::paper_benchmarks()[3];  // ethmac.
  const Flow f = build_flow(spec);
  const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
  const timing::AnalysisOptions aopt;

  report::Table t({"train samples", "slew rho", "delay rho", "P (mW)",
                   "saving", "train (s)"});
  for (const int samples : {25, 50, 100, 200, 400, 800}) {
    ndr::OptimizerOptions opt;
    opt.training_samples = samples;
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
    double slew_rho = 0.0;
    double delay_rho = 0.0;
    for (const auto& q : smart.train_report.quality) {
      slew_rho += q[0].rank_corr;
      delay_rho += q[3].rank_corr;
    }
    const double n =
        std::max<std::size_t>(1, smart.train_report.quality.size());
    t.add_row({std::to_string(samples), report::fmt(slew_rho / n, 3),
               report::fmt(delay_rho / n, 3),
               report::fmt(units::to_mW(smart.final_eval.power.total_power),
                           2),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               report::fmt(smart.stats.train_seconds, 3)});
  }
  finish(t, "Ablation C: model quality & savings vs training size "
            "(ethmac_like)",
         "abl_training.csv");
  return 0;
}
