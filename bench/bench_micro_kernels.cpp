// Microbenchmarks of the library's hot kernels (google-benchmark).
//
// Not a paper table — this guards the computational costs that the Fig. 7
// scalability claims rest on: per-net extraction, Elmore/moment evaluation,
// full-tree timing, and whole-flow building blocks.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common.hpp"
#include "workload/rng.hpp"
#include "common/arena.hpp"
#include "extract/net_geometry.hpp"
#include "obs/trace.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/net_eval.hpp"
#include "ndr/predictor.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace {

using namespace sndr;

// ---------------------------------------------------------------------------
// Pre-fusion kernel baseline, reproduced verbatim from the original
// RcTree entry points. The library versions are now thin wrappers over the
// fused rc_moments kernel, so keeping honest before/after records in
// BENCH_runtime.json requires the historical algorithms here: three separate
// entry points whose internal recomputation costs five full tree passes and
// five vector allocations per exact evaluation.
// ---------------------------------------------------------------------------

std::vector<double> legacy_downstream(const extract::RcTree& rc,
                                      double miller) {
  std::vector<double> down(rc.size(), 0.0);
  for (int i = rc.size() - 1; i >= 0; --i) {
    down[i] += rc.node(i).cap_total(miller);
    if (rc.node(i).parent >= 0) down[rc.node(i).parent] += down[i];
  }
  return down;
}

std::vector<double> legacy_elmore(const extract::RcTree& rc,
                                  double driver_res, double miller) {
  const std::vector<double> down = legacy_downstream(rc, miller);
  std::vector<double> delay(rc.size(), 0.0);
  delay[0] = driver_res * down[0];
  for (int i = 1; i < rc.size(); ++i) {
    delay[i] = delay[rc.node(i).parent] + rc.node(i).res * down[i];
  }
  return delay;
}

std::vector<double> legacy_second_moment(const extract::RcTree& rc,
                                         double driver_res, double miller) {
  const std::vector<double> m1 = legacy_elmore(rc, driver_res, miller);
  std::vector<double> weighted(rc.size(), 0.0);
  for (int i = rc.size() - 1; i >= 0; --i) {
    weighted[i] += rc.node(i).cap_total(miller) * m1[i];
    if (rc.node(i).parent >= 0) weighted[rc.node(i).parent] += weighted[i];
  }
  std::vector<double> m2(rc.size(), 0.0);
  m2[0] = driver_res * weighted[0];
  for (int i = 1; i < rc.size(); ++i) {
    m2[i] = m2[rc.node(i).parent] + rc.node(i).res * weighted[i];
  }
  return m2;
}

const bench::Flow& flow_1k() {
  static bench::Flow f = [] {
    workload::DesignSpec spec;
    spec.name = "micro";
    spec.num_sinks = 1024;
    spec.seed = 5;
    return bench::build_flow(spec);
  }();
  return f;
}

void BM_ExtractNet(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto& net = f.nets[f.nets.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.extract_net(f.cts.tree, net, f.tech.rules.blanket_rule()));
  }
}
BENCHMARK(BM_ExtractNet);

void BM_ExtractAll(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.extract_all(f.cts.tree, f.nets, rules));
  }
}
BENCHMARK(BM_ExtractAll);

void BM_ElmoreAndMoments(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_net(f.cts.tree, f.nets[0],
                                  f.tech.rules.blanket_rule());
  for (auto _ : state) {
    benchmark::DoNotOptimize(par.rc.elmore_delay(100.0, 1.0));
    benchmark::DoNotOptimize(par.rc.second_moment(100.0, 1.0));
  }
}
BENCHMARK(BM_ElmoreAndMoments);

void BM_MaterializeNet(benchmark::State& state) {
  // Per-(net, rule) cost of the cached two-phase path: electrical fill of a
  // pre-built NetGeometry into a warm parasitics buffer.
  const bench::Flow& f = flow_1k();
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  const auto& net = f.nets[f.nets.size() / 2];
  extract::NetParasitics par;
  for (auto _ : state) {
    extract::materialize(cache.geometry(net.id), f.tech,
                         f.tech.rules.blanket_rule(), par);
    benchmark::DoNotOptimize(par);
  }
}
BENCHMARK(BM_MaterializeNet);

void BM_MomentsFused(benchmark::State& state) {
  // Fused down-cap + m1 + m2 in two passes into caller scratch; compare
  // against BM_ElmoreAndMoments (the legacy multi-entry-point equivalent).
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_net(f.cts.tree, f.nets[0],
                                  f.tech.rules.blanket_rule());
  extract::RcMoments scratch;
  for (auto _ : state) {
    par.rc.moments(100.0, 1.0, scratch);
    benchmark::DoNotOptimize(scratch);
  }
}
BENCHMARK(BM_MomentsFused);

void BM_FullTreeTiming(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), f.tech.rules.blanket_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::analyze(f.cts.tree, f.design, f.tech, f.nets, par));
  }
}
BENCHMARK(BM_FullTreeTiming);

void BM_VariationAnalysis(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  const auto par = ex.extract_all(f.cts.tree, f.nets, rules);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::analyze_variation(
        f.cts.tree, f.design, f.tech, f.nets, par, rules));
  }
}
BENCHMARK(BM_VariationAnalysis);

void BM_CtsSynthesis(benchmark::State& state) {
  workload::DesignSpec spec;
  spec.num_sinks = static_cast<int>(state.range(0));
  spec.seed = 5;
  const netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::synthesize(design, tech));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CtsSynthesis)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_SmartNdrEndToEnd(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets));
  }
}
BENCHMARK(BM_SmartNdrEndToEnd);

void BM_ExactEvalCached(benchmark::State& state) {
  // Steady-state cost of a memoized exact_eval (all hits after the first
  // sweep) — the path greedy/annealing re-score moves through.
  const bench::Flow& f = flow_1k();
  const timing::AnalysisOptions aopt;
  ndr::AssignmentState st(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const auto blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  st.rebuild(blanket, ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                    blanket, aopt));
  int net = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.exact_eval(net, 1));
    net = (net + 1) % f.nets.size();
  }
}
BENCHMARK(BM_ExactEvalCached);

/// Before/after records for the two-phase extraction refactor: the legacy
/// per-(net, rule) path (fresh extraction + the three separate moment entry
/// points) against the cached path (materialize from shared geometry + the
/// fused moments kernel into warm scratch), swept over every (net, rule)
/// pair single-threaded. Also records the geometry build cost and the
/// exact-eval memo hit rate so cache effectiveness lands in the JSON.
void record_two_phase_kernels(std::vector<bench::RuntimeRecord>& records) {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  common::set_thread_count(1);
  const extract::Extractor ex(f.tech, f.design);
  const double driver_res = 120.0;
  const double miller = f.tech.miller_delay;

  const auto best_of_3 = [](auto&& fn) {
    fn();  // warm-up
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  // Geometry build: the one-time rule-independent phase.
  const auto t0 = Clock::now();
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  const double build_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  records.push_back({"geometry_build_all", 1, build_s, -1.0});

  const double old_s = best_of_3([&] {
    for (const netlist::Net& net : f.nets.nets) {
      for (const tech::RoutingRule& rule : f.tech.rules) {
        const extract::NetParasitics par =
            ex.extract_net(f.cts.tree, net, rule);
        benchmark::DoNotOptimize(legacy_downstream(par.rc, miller));
        benchmark::DoNotOptimize(legacy_elmore(par.rc, driver_res, miller));
        benchmark::DoNotOptimize(
            legacy_second_moment(par.rc, driver_res, miller));
      }
    }
  });
  records.push_back({"extract_3pass_per_net_rule_old", 1, old_s, -1.0});

  extract::NetParasitics warm;
  extract::RcMoments scratch;
  const double new_s = best_of_3([&] {
    for (const netlist::Net& net : f.nets.nets) {
      for (const tech::RoutingRule& rule : f.tech.rules) {
        extract::materialize(cache.geometry(net.id), f.tech, rule, warm);
        warm.rc.moments(driver_res, miller, scratch);
        benchmark::DoNotOptimize(scratch);
      }
    }
  });
  records.push_back({"materialize_moments_per_net_rule_new", 1, new_s, -1.0});

  // Kernel-only pair on one representative parasitics (largest trunk net).
  const extract::NetParasitics par =
      ex.extract_net(f.cts.tree, f.nets[0], f.tech.rules.blanket_rule());
  const int reps = 2000;
  const double m_old = best_of_3([&] {
    for (int r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(legacy_downstream(par.rc, miller));
      benchmark::DoNotOptimize(legacy_elmore(par.rc, driver_res, miller));
      benchmark::DoNotOptimize(
          legacy_second_moment(par.rc, driver_res, miller));
    }
  });
  records.push_back({"moments_3pass_old", 1, m_old, -1.0});
  const double m_new = best_of_3([&] {
    for (int r = 0; r < reps; ++r) {
      par.rc.moments(driver_res, miller, scratch);
      benchmark::DoNotOptimize(scratch);
    }
  });
  records.push_back({"moments_fused_new", 1, m_new, -1.0});

  // Cache counters: geometry builds per net (exactly 1.0 when no churn
  // happened) and the exact-eval memo hit rate over a double sweep.
  records.push_back({"geometry_builds_per_net", 1,
                     static_cast<double>(cache.builds()) /
                         static_cast<double>(cache.net_count()),
                     -1.0});
  {
    const timing::AnalysisOptions aopt;
    ndr::AssignmentState st(f.cts.tree, f.design, f.tech, f.nets, aopt);
    const auto blanket =
        ndr::assign_all(f.nets, f.tech.rules.blanket_index());
    st.rebuild(blanket, ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                      blanket, aopt,
                                      &st.geometry_cache()));
    const auto s0 = Clock::now();
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (int n = 0; n < f.nets.size(); ++n) {
        for (int r = 0; r < f.tech.rules.size(); ++r) {
          benchmark::DoNotOptimize(st.exact_eval(n, r));
        }
      }
    }
    const double sweep_s =
        std::chrono::duration<double>(Clock::now() - s0).count();
    records.push_back({"exact_eval_double_sweep", 1, sweep_s,
                       st.exact_cache_hit_rate()});
  }

  std::printf("two-phase extraction: %.2fx per-(net,rule) "
              "(old %.4fs -> new %.4fs), moments kernel %.2fx\n",
              old_s / new_s, old_s, new_s, m_old / m_new);
  common::set_thread_count(-1);
}

/// PR acceptance pair for the batched rule-sweep kernels: per-net cost of
/// scoring EVERY rule of an extended 8-rule set, scalar (one materialize +
/// one fused kernel stack per rule, in warm scratch — the pre-batch memo
/// miss path) against the batched sweep (one SoA materialize + multi-lane
/// fused kernels, scratch carved from an arena). Results are bit-identical
/// by contract (tests/batch_kernel_test.cpp); only the cost differs.
void record_rule_sweep(std::vector<bench::RuntimeRecord>& records) {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  common::set_thread_count(1);

  // The standard five production rules plus three intermediate points:
  // 8 lanes, the sweep width the batched path is sized for.
  tech::Technology wide = f.tech;
  wide.rules = tech::RuleSet(
      {
          {"1W1S", 1, 1},
          {"1W2S", 1, 2},
          {"2W1S", 2, 1},
          {"2W2S", 2, 2},
          {"3W3S", 3, 3},
          {"1.5W1.5S", 1.5, 1.5},
          {"2W3S", 2, 3},
          {"3W2S", 3, 2},
      },
      /*blanket_index=*/3);
  const int n_rules = wide.rules.size();
  const double driver_res = 120.0;
  const double freq = f.design.constraints.clock_freq;
  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);

  // Best-of-5 (one more than the other records): this pair feeds a hard
  // >=2x gate in scripts/bench_check.sh, so it gets extra noise margin.
  const auto best_of_5 = [](auto&& fn) {
    fn();  // warm-up
    double best = 1e30;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return best;
  };

  ndr::NetEvalScratch scratch;
  const double scalar_s = best_of_5([&] {
    for (const netlist::Net& net : f.nets.nets) {
      for (int r = 0; r < n_rules; ++r) {
        benchmark::DoNotOptimize(
            ndr::evaluate_net_exact(cache.geometry(net.id), wide,
                                    wide.rules[r], driver_res, freq,
                                    scratch));
      }
    }
  });
  records.push_back({"rule_sweep_scalar", 1, scalar_s, -1.0});

  common::Arena arena;
  std::vector<ndr::NetExact> row(static_cast<std::size_t>(n_rules));
  const double batch_s = best_of_5([&] {
    for (const netlist::Net& net : f.nets.nets) {
      ndr::evaluate_net_exact_all_rules(cache.geometry(net.id), wide,
                                        driver_res, freq, arena, row.data());
      benchmark::DoNotOptimize(row);
    }
  });
  records.push_back({"rule_sweep_batched", 1, batch_s, -1.0});
  records.push_back({"rule_sweep_batch_speedup", 1, scalar_s / batch_s,
                     -1.0});

  std::printf("rule sweep (8 rules x %d nets): scalar %.4fs -> batched "
              "%.4fs (%.2fx per net)\n",
              f.nets.size(), scalar_s, batch_s, scalar_s / batch_s);
  common::set_thread_count(-1);
}

/// Observability overhead on the hot kernels: the cached materialize +
/// fused-moments sweep and the memoized exact_eval sweep, timed with the
/// obs layer enabled vs fully disabled. Both paths are deliberately free
/// of per-call registry traffic (counters batch at boundaries, DESIGN.md
/// §7), so the recorded fractions pin the <=2% instrumentation budget.
void record_obs_overhead(std::vector<bench::RuntimeRecord>& records) {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  common::set_thread_count(1);
  const double driver_res = 120.0;
  const double miller = f.tech.miller_delay;
  // Both sides of each comparison are best-of-kObsTrials minima, so the
  // raw fraction can legitimately land slightly below zero when the
  // overhead is under the timer noise floor (the off-side minimum drew
  // the luckier sample). The headline `_frac` records are floored at
  // zero — "indistinguishable from free" — and the signed minima are
  // kept in `_frac_raw` alongside the trial count so the measurement
  // remains auditable.
  constexpr int kObsTrials = 9;

  // One sweep is sub-millisecond, far below timer noise on a shared
  // machine: repeat it until a single measurement is tens of
  // milliseconds, and alternate enabled/disabled trials so clock drift
  // hits both sides equally. Best-of keeps scheduler hiccups out.
  const auto timed_both = [&](auto&& fn) {
    fn();  // warm-up
    const auto t0 = Clock::now();
    fn();
    const double once =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const int reps =
        std::max(1, static_cast<int>(0.1 / std::max(once, 1e-6)));
    const auto measure = [&] {
      const auto s = Clock::now();
      for (int r = 0; r < reps; ++r) fn();
      return std::chrono::duration<double>(Clock::now() - s).count() / reps;
    };
    double on = 1e30;
    double off = 1e30;
    const auto measure_mode = [&](bool enabled) {
      obs::set_metrics_enabled(enabled);
      obs::set_tracing_enabled(enabled);
      double& best = enabled ? on : off;
      best = std::min(best, measure());
    };
    for (int trial = 0; trial < kObsTrials; ++trial) {
      // Alternate which mode runs first: within a trial the first
      // measurement is systematically colder, and a fixed order would
      // book that position bias as "overhead".
      const bool first = (trial % 2) == 0;
      measure_mode(first);
      measure_mode(!first);
    }
    obs::set_metrics_enabled(true);
    obs::set_tracing_enabled(true);
    return std::pair<double, double>{on, off};
  };

  const extract::GeometryCache cache(f.cts.tree, f.design, f.nets);
  extract::NetParasitics warm;
  extract::RcMoments scratch;
  const auto [mat_on, mat_off] = timed_both([&] {
    for (const netlist::Net& net : f.nets.nets) {
      for (const tech::RoutingRule& rule : f.tech.rules) {
        extract::materialize(cache.geometry(net.id), f.tech, rule, warm);
        warm.rc.moments(driver_res, miller, scratch);
        benchmark::DoNotOptimize(scratch);
      }
    }
  });
  const double mat_raw = (mat_on - mat_off) / mat_off;
  records.push_back({"materialize_moments_obs_on", 1, mat_on, -1.0});
  records.push_back({"materialize_moments_obs_off", 1, mat_off, -1.0});
  records.push_back({"obs_overhead_materialize_frac_raw", 1, mat_raw, -1.0});
  records.push_back({"obs_overhead_materialize_frac", 1,
                     std::max(0.0, mat_raw), -1.0});

  const timing::AnalysisOptions aopt;
  ndr::AssignmentState st(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const auto blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  st.rebuild(blanket, ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                    blanket, aopt, &st.geometry_cache()));
  const auto [ee_on, ee_off] = timed_both([&] {
    for (int n = 0; n < f.nets.size(); ++n) {
      for (int r = 0; r < f.tech.rules.size(); ++r) {
        benchmark::DoNotOptimize(st.exact_eval(n, r));
      }
    }
  });
  const double ee_raw = (ee_on - ee_off) / ee_off;
  records.push_back({"exact_eval_sweep_obs_on", 1, ee_on, -1.0});
  records.push_back({"exact_eval_sweep_obs_off", 1, ee_off, -1.0});
  records.push_back({"obs_overhead_exact_eval_frac_raw", 1, ee_raw, -1.0});
  records.push_back({"obs_overhead_exact_eval_frac", 1,
                     std::max(0.0, ee_raw), -1.0});
  records.push_back({"obs_overhead_trials", 1,
                     static_cast<double>(kObsTrials), -1.0});

  std::printf("obs overhead (best of %d trials): materialize+moments "
              "%.2f%% (raw %+.2f%%), exact_eval %.2f%% (raw %+.2f%%)\n",
              kObsTrials, 100.0 * std::max(0.0, mat_raw), 100.0 * mat_raw,
              100.0 * std::max(0.0, ee_raw), 100.0 * ee_raw);
  common::set_thread_count(-1);
}

/// PR acceptance pair for incremental delta-timing: annealing-style move
/// throughput with the state kept exact by full re-evaluation + rebuild
/// after every accepted move (the pre-delta way to stay exact) vs the
/// apply_move delta replay (O(depth + subtree fanout) per move). Both legs
/// replay the SAME fixed proposal stream from the same start, so they end
/// in the same assignment — checked bitwise on total cap at the end.
void record_move_throughput(std::vector<bench::RuntimeRecord>& records) {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  common::set_thread_count(1);
  const timing::AnalysisOptions aopt;
  const auto blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  const int n_rules = f.tech.rules.size();

  // Fixed proposal stream: (net, rule != current-at-that-point), replayed
  // from the blanket start by both legs.
  struct Proposal {
    int net;
    int rule;
  };
  constexpr int kMoves = 150;
  std::vector<Proposal> stream;
  {
    workload::Rng rng(12345);
    ndr::RuleAssignment cur = blanket;
    for (int i = 0; i < kMoves; ++i) {
      const int net = static_cast<int>(rng.uniform_int(f.nets.size()));
      int rule = static_cast<int>(rng.uniform_int(n_rules));
      if (rule == cur[net]) rule = (rule + 1) % n_rules;
      cur[net] = rule;
      stream.push_back({net, rule});
    }
  }

  ndr::AssignmentState state(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const ndr::FlowEvaluation ev0 =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket, aopt,
                    &state.geometry_cache());

  // Full-rebuild leg: score the move, then re-evaluate the whole flow and
  // rebuild to keep the state exact. One warm-up pass, then best-of-2 (each
  // rep already averages kMoves full evaluations).
  double full_s = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    state.rebuild(blanket, ev0);
    ndr::RuleAssignment a = blanket;
    const auto t0 = Clock::now();
    for (const Proposal& p : stream) {
      benchmark::DoNotOptimize(state.exact_eval(p.net, p.rule));
      a[p.net] = p.rule;
      const ndr::FlowEvaluation ev =
          ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, a, aopt,
                        &state.geometry_cache());
      state.rebuild(a, ev);
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (rep > 0) full_s = std::min(full_s, s);
  }
  const double full_cap = state.total_cap();

  // Delta leg: same stream through apply_move. Rows are prewarmed, as in
  // the annealer, so the timed loop is the steady-state move cost. One
  // stream pass is sub-millisecond — far below timer noise — so each timed
  // rep replays the stream kDeltaPasses times (re-applying an already-held
  // rule costs exactly the same mechanics) and normalizes, keeping the
  // recorded seconds comparable with the full-rebuild leg's single pass.
  state.rebuild(blanket, ev0);
  state.warm_all_rows();
  constexpr int kDeltaPasses = 20;
  double delta_s = 1e30;
  for (int rep = 0; rep < 4; ++rep) {
    state.rebuild(blanket, ev0);
    const auto t0 = Clock::now();
    for (int pass = 0; pass < kDeltaPasses; ++pass) {
      for (const Proposal& p : stream) {
        state.apply_move(p.net, p.rule, state.exact_eval(p.net, p.rule));
      }
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        kDeltaPasses;
    if (rep > 0) delta_s = std::min(delta_s, s);
  }

  // Same stream, same start: both legs must land on the same state.
  if (state.total_cap() != full_cap) {
    std::fprintf(stderr,
                 "move-throughput self-check FAILED: delta cap %.17g != "
                 "full-rebuild cap %.17g\n",
                 state.total_cap(), full_cap);
    std::exit(1);
  }

  records.push_back({"anneal_moves_full_rebuild", 1, full_s, -1.0});
  records.push_back({"anneal_moves_delta", 1, delta_s, -1.0});
  records.push_back({"anneal_move_speedup", 1, full_s / delta_s, -1.0});
  std::printf("anneal move throughput (%d moves): full rebuild %.1f "
              "moves/s -> delta %.1f moves/s (%.1fx)\n",
              kMoves, kMoves / full_s, kMoves / delta_s, full_s / delta_s);
  common::set_thread_count(-1);
}

/// Wall time of the parallelized kernels at each rung of the thread ladder,
/// recorded into BENCH_runtime.json before the google-benchmark run.
void record_thread_ladder() {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  const auto par = ex.extract_all(f.cts.tree, f.nets, rules);

  std::vector<bench::RuntimeRecord> records;
  record_two_phase_kernels(records);
  record_rule_sweep(records);
  record_obs_overhead(records);
  record_move_throughput(records);
  // Make the host size explicit next to the thread-ladder points: rungs
  // above it are recorded as skipped, never timed oversubscribed.
  records.push_back({"host_cpus", 1,
                     static_cast<double>(bench::host_cpus()), -1.0});
  const auto time_stage = [&](const char* stage, int threads, auto&& fn) {
    // One warm-up, then best-of-3 to keep single-shot noise out of the JSON.
    fn();
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    records.push_back({stage, threads, best, -1.0});
  };
  for (const int threads : bench::thread_ladder()) {
    if (bench::ladder_skipped(threads)) {
      records.push_back(bench::skipped_record("extract_all", threads));
      records.push_back(bench::skipped_record("analyze_variation", threads));
      records.push_back(bench::skipped_record("predictor_train", threads));
      continue;
    }
    common::set_thread_count(threads);
    time_stage("extract_all", threads,
               [&] { ex.extract_all(f.cts.tree, f.nets, rules); });
    time_stage("analyze_variation", threads, [&] {
      timing::analyze_variation(f.cts.tree, f.design, f.tech, f.nets, par,
                                rules);
    });
    time_stage("predictor_train", threads, [&] {
      ndr::RuleImpactPredictor::train(f.cts.tree, f.design, f.tech, f.nets,
                                      timing::AnalysisOptions{});
    });
  }
  common::set_thread_count(-1);
  bench::publish_runtime("micro_kernels", records);
}

}  // namespace

int main(int argc, char** argv) {
  record_thread_ladder();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
