// Microbenchmarks of the library's hot kernels (google-benchmark).
//
// Not a paper table — this guards the computational costs that the Fig. 7
// scalability claims rest on: per-net extraction, Elmore/moment evaluation,
// full-tree timing, and whole-flow building blocks.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common.hpp"
#include "ndr/assignment_state.hpp"
#include "ndr/predictor.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace {

using namespace sndr;

const bench::Flow& flow_1k() {
  static bench::Flow f = [] {
    workload::DesignSpec spec;
    spec.name = "micro";
    spec.num_sinks = 1024;
    spec.seed = 5;
    return bench::build_flow(spec);
  }();
  return f;
}

void BM_ExtractNet(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto& net = f.nets[f.nets.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.extract_net(f.cts.tree, net, f.tech.rules.blanket_rule()));
  }
}
BENCHMARK(BM_ExtractNet);

void BM_ExtractAll(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.extract_all(f.cts.tree, f.nets, rules));
  }
}
BENCHMARK(BM_ExtractAll);

void BM_ElmoreAndMoments(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_net(f.cts.tree, f.nets[0],
                                  f.tech.rules.blanket_rule());
  for (auto _ : state) {
    benchmark::DoNotOptimize(par.rc.elmore_delay(100.0, 1.0));
    benchmark::DoNotOptimize(par.rc.second_moment(100.0, 1.0));
  }
}
BENCHMARK(BM_ElmoreAndMoments);

void BM_FullTreeTiming(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), f.tech.rules.blanket_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::analyze(f.cts.tree, f.design, f.tech, f.nets, par));
  }
}
BENCHMARK(BM_FullTreeTiming);

void BM_VariationAnalysis(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  const auto par = ex.extract_all(f.cts.tree, f.nets, rules);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::analyze_variation(
        f.cts.tree, f.design, f.tech, f.nets, par, rules));
  }
}
BENCHMARK(BM_VariationAnalysis);

void BM_CtsSynthesis(benchmark::State& state) {
  workload::DesignSpec spec;
  spec.num_sinks = static_cast<int>(state.range(0));
  spec.seed = 5;
  const netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::synthesize(design, tech));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CtsSynthesis)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_SmartNdrEndToEnd(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets));
  }
}
BENCHMARK(BM_SmartNdrEndToEnd);

void BM_ExactEvalCached(benchmark::State& state) {
  // Steady-state cost of a memoized exact_eval (all hits after the first
  // sweep) — the path greedy/annealing re-score moves through.
  const bench::Flow& f = flow_1k();
  const timing::AnalysisOptions aopt;
  ndr::AssignmentState st(f.cts.tree, f.design, f.tech, f.nets, aopt);
  const auto blanket = ndr::assign_all(f.nets, f.tech.rules.blanket_index());
  st.rebuild(blanket, ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                    blanket, aopt));
  int net = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.exact_eval(net, 1));
    net = (net + 1) % f.nets.size();
  }
}
BENCHMARK(BM_ExactEvalCached);

/// Wall time of the parallelized kernels at each rung of the thread ladder,
/// recorded into BENCH_runtime.json before the google-benchmark run.
void record_thread_ladder() {
  using Clock = std::chrono::steady_clock;
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  const auto par = ex.extract_all(f.cts.tree, f.nets, rules);

  std::vector<bench::RuntimeRecord> records;
  const auto time_stage = [&](const char* stage, int threads, auto&& fn) {
    // One warm-up, then best-of-3 to keep single-shot noise out of the JSON.
    fn();
    double best = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(Clock::now() - t0).count());
    }
    records.push_back({stage, threads, best, -1.0});
  };
  for (const int threads : bench::thread_ladder()) {
    common::set_thread_count(threads);
    time_stage("extract_all", threads,
               [&] { ex.extract_all(f.cts.tree, f.nets, rules); });
    time_stage("analyze_variation", threads, [&] {
      timing::analyze_variation(f.cts.tree, f.design, f.tech, f.nets, par,
                                rules);
    });
    time_stage("predictor_train", threads, [&] {
      ndr::RuleImpactPredictor::train(f.cts.tree, f.design, f.tech, f.nets,
                                      timing::AnalysisOptions{});
    });
  }
  common::set_thread_count(-1);
  bench::write_runtime_json("micro_kernels", records);
}

}  // namespace

int main(int argc, char** argv) {
  record_thread_ladder();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
