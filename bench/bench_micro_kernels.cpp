// Microbenchmarks of the library's hot kernels (google-benchmark).
//
// Not a paper table — this guards the computational costs that the Fig. 7
// scalability claims rest on: per-net extraction, Elmore/moment evaluation,
// full-tree timing, and whole-flow building blocks.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace {

using namespace sndr;

const bench::Flow& flow_1k() {
  static bench::Flow f = [] {
    workload::DesignSpec spec;
    spec.name = "micro";
    spec.num_sinks = 1024;
    spec.seed = 5;
    return bench::build_flow(spec);
  }();
  return f;
}

void BM_ExtractNet(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto& net = f.nets[f.nets.size() / 2];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.extract_net(f.cts.tree, net, f.tech.rules.blanket_rule()));
  }
}
BENCHMARK(BM_ExtractNet);

void BM_ExtractAll(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.extract_all(f.cts.tree, f.nets, rules));
  }
}
BENCHMARK(BM_ExtractAll);

void BM_ElmoreAndMoments(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_net(f.cts.tree, f.nets[0],
                                  f.tech.rules.blanket_rule());
  for (auto _ : state) {
    benchmark::DoNotOptimize(par.rc.elmore_delay(100.0, 1.0));
    benchmark::DoNotOptimize(par.rc.second_moment(100.0, 1.0));
  }
}
BENCHMARK(BM_ElmoreAndMoments);

void BM_FullTreeTiming(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const auto par = ex.extract_all(
      f.cts.tree, f.nets,
      std::vector<int>(f.nets.size(), f.tech.rules.blanket_index()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timing::analyze(f.cts.tree, f.design, f.tech, f.nets, par));
  }
}
BENCHMARK(BM_FullTreeTiming);

void BM_VariationAnalysis(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  const extract::Extractor ex(f.tech, f.design);
  const std::vector<int> rules(f.nets.size(), f.tech.rules.blanket_index());
  const auto par = ex.extract_all(f.cts.tree, f.nets, rules);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::analyze_variation(
        f.cts.tree, f.design, f.tech, f.nets, par, rules));
  }
}
BENCHMARK(BM_VariationAnalysis);

void BM_CtsSynthesis(benchmark::State& state) {
  workload::DesignSpec spec;
  spec.num_sinks = static_cast<int>(state.range(0));
  spec.seed = 5;
  const netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cts::synthesize(design, tech));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CtsSynthesis)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_SmartNdrEndToEnd(benchmark::State& state) {
  const bench::Flow& f = flow_1k();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets));
  }
}
BENCHMARK(BM_SmartNdrEndToEnd);

}  // namespace

BENCHMARK_MAIN();
