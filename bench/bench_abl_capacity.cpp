// Ablation A — routing-resource pressure.
//
// Sweeps the share of routing tracks available to the clock network. The
// congestion model is what keeps "route everything at maximum spacing" from
// being free: spacing-heavy rules consume pitch. Expected shape: with
// generous capacity the optimizer freely picks spacing-rich rules; as
// capacity tightens, blanket NDR itself starts overflowing and the smart
// flow must retreat to narrower rules (1W1S shows up), trading coupling for
// track pitch.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  std::vector<std::string> cols{"clock track frac", "blanket overflow",
                                "blanket util", "smart P (mW)", "saving"};
  const auto rules = tech::Technology::make_default_45nm().rules;
  for (const tech::RoutingRule& r : rules) cols.push_back(r.name);
  cols.push_back("feasible");
  report::Table t(cols);

  for (const double frac : {0.08, 0.10, 0.12, 0.15, 0.20, 0.30}) {
    workload::DesignSpec spec = workload::paper_benchmarks()[1];  // jpeg.
    spec.clock_track_fraction = frac;
    const Flow f = build_flow(spec);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    std::vector<std::string> row{
        report::fmt(frac, 2), std::to_string(blanket.overflow_cells),
        report::fmt(blanket.max_track_util, 2),
        report::fmt(units::to_mW(smart.final_eval.power.total_power), 2),
        report::fmt_pct(smart.final_eval.power.total_power /
                            blanket.power.total_power -
                        1.0)};
    for (const int c : smart.rule_histogram) row.push_back(std::to_string(c));
    row.push_back(smart.final_eval.feasible() ? "yes" : "NO");
    t.add_row(std::move(row));
  }
  finish(t, "Ablation A: savings vs clock routing capacity (jpeg_like)",
         "abl_capacity.csv");
  return 0;
}
