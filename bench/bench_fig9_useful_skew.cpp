// Fig. 9 (extension) — useful-skew windows vs. a global skew bound.
//
// Replaces the single skew budget with per-sink latency windows (the
// direction the authors pursued in their later useful-skew work) and sweeps
// the fraction of timing-critical (tight-window) sinks. Expected shape:
// with few critical sinks the optimizer exploits the loose windows for
// slightly deeper savings than the global bound permits; as the critical
// fraction grows the windows bind like (or tighter than) the global bound
// and savings converge back.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  workload::DesignSpec spec = workload::paper_benchmarks()[2];  // vga_like
  const Flow base = build_flow(spec);
  const auto blanket = eval_uniform(base, base.tech.rules.blanket_index());

  // Reference: global skew bound.
  const ndr::SmartNdrResult global_ref =
      ndr::optimize_smart_ndr(base.cts.tree, base.design, base.tech,
                              base.nets);

  report::Table t({"mode", "tight frac", "P (mW)", "saving", "window viol",
                   "feasible"});
  t.add_row({"global-skew", "-",
             report::fmt(units::to_mW(
                             global_ref.final_eval.power.total_power), 3),
             report::fmt_pct(global_ref.final_eval.power.total_power /
                                 blanket.power.total_power -
                             1.0),
             "-", global_ref.final_eval.feasible() ? "yes" : "NO"});

  // Window centers: each sink's latency offset in the blanket reference
  // (critical sinks must stay where the CTS balanced them).
  std::vector<double> offsets = blanket.timing.sink_arrival;
  double mean = 0.0;
  for (const double a : offsets) mean += a;
  mean /= static_cast<double>(offsets.size());
  for (double& a : offsets) a -= mean;

  for (const double tight_frac : {0.05, 0.2, 0.5, 0.8, 1.0}) {
    Flow f = base;
    // Tight windows well inside the global budget; loose windows beyond it.
    const double skew_ps = units::to_ps(f.design.constraints.max_skew);
    workload::attach_useful_skew(f.design, tight_frac, 0.12 * skew_ps,
                                 1.2 * skew_ps, offsets);
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    t.add_row({"useful-skew", report::fmt(tight_frac, 2),
               report::fmt(units::to_mW(
                               smart.final_eval.power.total_power), 3),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               std::to_string(smart.final_eval.window_violations),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  finish(t, "Fig. 9 (extension): useful-skew windows vs global bound "
            "(vga_like)",
         "fig9_useful_skew.csv");
  return 0;
}
