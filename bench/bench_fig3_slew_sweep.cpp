// Fig. 3 — clock power vs. the slew constraint.
//
// Sweeps the max-transition limit on one mid-size design and reports the
// optimized smart-NDR power against the (constraint-independent) blanket
// power. Expected shape: smart-NDR power falls as the limit loosens (more
// nets can drop to narrow rules) and saturates at the routing-resource/
// variation-limited floor; below some limit the optimizer can no longer
// beat blanket (the crossover where blanket NDR is actually the right
// answer).
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::ps;

  workload::DesignSpec spec = workload::paper_benchmarks()[2];  // vga_like
  const Flow base = build_flow(spec);
  const auto blanket = eval_uniform(base, base.tech.rules.blanket_index());

  report::Table t({"slew limit (ps)", "smart P (mW)", "blanket P (mW)",
                   "saving", "commits", "feasible"});
  for (const double limit_ps :
       {70.0, 80.0, 90.0, 100.0, 120.0, 140.0, 170.0, 200.0}) {
    Flow f = base;  // copy; constraints are per-run.
    f.design.constraints.max_slew = limit_ps * ps;
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    t.add_row({report::fmt(limit_ps, 0),
               report::fmt(units::to_mW(smart.final_eval.power.total_power),
                           3),
               report::fmt(units::to_mW(blanket.power.total_power), 3),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               std::to_string(smart.stats.commits),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  finish(t, "Fig. 3: smart-NDR power vs slew constraint (vga_like)",
         "fig3_slew_sweep.csv");
  return 0;
}
