// Table II — the paper's main result.
//
// For every benchmark: clock power / switched capacitance / skew / worst
// slew under the four rule-assignment strategies, and the smart-NDR power
// saving relative to the conventional blanket NDR. Expected shape: smart
// NDR is the only strategy that is simultaneously feasible and close to the
// all-default power floor, saving ~5-15% of total clock power (more of the
// wire capacitance) versus blanket 2W2S.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::to_mW;
  using units::to_ps;

  report::Table t({"design", "flow", "P (mW)", "dP vs blanket", "skew (ps)",
                   "slew (ps)", "viol s/e/u", "feasible"});
  for (const workload::DesignSpec& spec : workload::paper_benchmarks()) {
    const Flow f = build_flow(spec);
    const int blk = f.tech.rules.blanket_index();
    const auto blanket = eval_uniform(f, blk);

    const auto row = [&](const std::string& flow,
                         const ndr::FlowEvaluation& ev) {
      t.add_row({spec.name, flow, report::fmt(to_mW(ev.power.total_power), 2),
                 report::fmt_pct(ev.power.total_power /
                                     blanket.power.total_power -
                                 1.0),
                 report::fmt(to_ps(ev.timing.skew()), 1),
                 report::fmt(to_ps(ev.timing.max_slew), 1),
                 std::to_string(ev.slew_violations) + "/" +
                     std::to_string(ev.em_violations) + "/" +
                     std::to_string(ev.uncertainty_violations),
                 ev.feasible() ? "yes" : "NO"});
    };

    row("all-default", eval_uniform(f, 0));
    row("blanket-2W2S", blanket);
    row("level-2", ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                 ndr::assign_level_based(f.nets, 2, blk, 0)));
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    row("smart-NDR", smart.final_eval);
  }
  finish(t, "Table II: clock power under rule-assignment strategies",
         "table2_main.csv");
  return 0;
}
