// Ablation E — clock topology: MMM/DME vs hybrid H-tree.
//
// Synthesizes each design with both connectivity generators and runs the
// full smart-NDR flow on each. Expected shape: the hybrid H-tree trades
// some wirelength regularity for (usually) comparable totals on uniform
// designs and worse totals on clustered ones (geometric cuts ignore the
// sink distribution); smart-NDR savings are robust to the topology choice
// — the method optimizes whatever tree it is given.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  report::Table t({"design", "topology", "WL (mm)", "buffers", "skew (ps)",
                   "blanket P (mW)", "smart P (mW)", "saving", "feasible"});
  for (int idx : {0, 1}) {  // aes (uniform), jpeg (clustered).
    const workload::DesignSpec spec = workload::paper_benchmarks()[idx];
    for (const auto mode :
         {cts::TopologyMode::kMmm, cts::TopologyMode::kHybridHtree}) {
      cts::CtsOptions copt;
      copt.topology = mode;
      const Flow f = build_flow(spec, copt);
      const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
      const ndr::SmartNdrResult smart =
          ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
      t.add_row({spec.name,
                 mode == cts::TopologyMode::kMmm ? "MMM" : "hybrid-H",
                 report::fmt(units::to_mm(f.cts.wirelength), 1),
                 std::to_string(f.cts.buffers),
                 report::fmt(units::to_ps(blanket.timing.skew()), 1),
                 report::fmt(units::to_mW(blanket.power.total_power), 2),
                 report::fmt(units::to_mW(
                                 smart.final_eval.power.total_power), 2),
                 report::fmt_pct(smart.final_eval.power.total_power /
                                     blanket.power.total_power -
                                 1.0),
                 smart.final_eval.feasible() ? "yes" : "NO"});
    }
  }
  finish(t, "Ablation E: topology generator under smart NDR",
         "abl_topology.csv");
  return 0;
}
