// DSE sweep reuse vs N cold runs — the PR's two gated claims in one run:
//
//   1. Speedup: one dse::explore() sweep over an N-point grid must beat N
//      independent cold runs of the same configs by >= 3x (the reuse
//      stack: technology parsed once, predictor trained once, one shared
//      geometry cache, memo transplant, warm starts).
//   2. Identity: every sweep point — and therefore every frontier point —
//      must be bitwise identical to its own emitted config run standalone
//      through serve::execute_job (the `sndr run` path, no cache, cold
//      session): same assignment, same power/cap/arrival words.
//
// The manifest (BENCH_manifest.dse.json) gets the gauges
// scripts/bench_check.sh gates:
//   bench.dse.dse_cold_s         sum of the N standalone runs
//   bench.dse.dse_reuse_s        the one sweep
//   bench.dse.dse_reuse_speedup  cold / reuse   (gated >= BENCH_MIN_DSE_SPEEDUP)
//   bench.dse.points             grid size (context for the speedup)
//   bench.dse.front_size         emitted Pareto front size
//   bench.dse.identical          1 when every point matched standalone (gated)
#include <chrono>
#include <filesystem>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "dse/explorer.hpp"
#include "io/design_io.hpp"
#include "serve/submit.hpp"

namespace {

using namespace sndr;
using Clock = std::chrono::steady_clock;

void set_gauge(const std::string& name, double value) {
  obs::MetricsRegistry::instance().set(
      obs::MetricsRegistry::instance().gauge(name), value);
}

/// Bitwise identity of a sweep point and its standalone rerun: the
/// settled assignment and the exact final power/timing words.
bool identical(const dse::PointResult& p, const serve::JobOutcome& solo) {
  if (!solo.ok() || !solo.result.has_value()) return false;
  const flow::FlowResult& r = *solo.result;
  return *r.final_assignment() == p.assignment &&
         r.final_eval().power.total_power == p.total_power &&
         r.final_eval().power.switched_cap == p.switched_cap &&
         r.final_eval().timing.sink_arrival == p.sink_arrival &&
         r.feasible == p.feasible;
}

}  // namespace

int main() {
  using namespace sndr::bench;

  // One mid-size design; the sweep cost is dominated by per-point
  // predictor training + search, which is exactly what reuse amortizes.
  workload::DesignSpec spec;
  spec.name = "dse_bench";
  spec.num_sinks = 6000;
  spec.seed = 17;
  const std::string design_path = results_path(spec.name + ".txt");
  io::write_design_file(design_path, workload::make_design(spec));

  flow::FlowConfig base;
  base.design_path = design_path;
  base.results_dir = results_path("dse_bench_out");
  base.seed = 5;
  base.training_samples = 100000;  // capped at n_nets; trained once vs N times.
  base.anneal_iterations = 0;  // greedy-only: the reuse channels cover it all.
  base.dse = true;
  base.dse_power_weight = {0.5, 0.75, 1.0, 1.5, 2.0};
  base.dse_uncertainty_margin = {0.02, 0.04, 0.06, 0.08, 0.10};

  // A fresh sweep every run: a leftover sweep.ck would turn the timed
  // sweep into a zero-work resume and fake the speedup.
  std::filesystem::remove_all(base.output_path(base.dse_out));

  auto t0 = Clock::now();
  const common::Result<dse::SweepResult> sweep = dse::explore(base);
  const double reuse_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (!sweep.ok()) {
    std::cerr << "bench_dse: sweep failed: " << sweep.status().to_string()
              << "\n";
    return 1;
  }
  const int points = static_cast<int>(sweep->points.size());

  // Cold reference: the N runs a user without DSE would do — each point's
  // settings standalone, from scratch. No warm-start seed (without the
  // sweep there is none to read) and its own results dir.
  t0 = Clock::now();
  for (const dse::PointResult& p : sweep->points) {
    flow::FlowConfig cold = p.config;
    cold.warm_start.clear();
    cold.results_dir = results_path("dse_bench_cold");
    const serve::JobOutcome solo = serve::execute_job(cold, nullptr);
    if (!solo.ok()) {
      std::cerr << "bench_dse: cold run of point " << p.id << " failed\n";
      return 1;
    }
  }
  const double cold_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Identity sweep (untimed): every point — not just the front — must be
  // bitwise identical to its own emitted config run standalone through
  // serve::execute_job (the `sndr run` path, warm-start seed and all).
  int mismatches = 0;
  for (const dse::PointResult& p : sweep->points) {
    const serve::JobOutcome solo = serve::execute_job(p.config, nullptr);
    if (!identical(p, solo)) {
      std::cerr << "bench_dse: point " << p.id
                << " DIVERGED from its standalone run\n";
      ++mismatches;
    }
  }
  const double speedup = reuse_s > 0.0 ? cold_s / reuse_s : 0.0;

  report::Table t({"metric", "value"});
  t.add_row({"grid points", std::to_string(points)});
  t.add_row({"warm-started", std::to_string(sweep->warm_started)});
  t.add_row({"front size", std::to_string(sweep->front.size())});
  t.add_row({"cold: N standalone runs (s)", report::fmt(cold_s, 2)});
  t.add_row({"reuse: one sweep (s)", report::fmt(reuse_s, 2)});
  t.add_row({"speedup", report::fmt(speedup, 2) + "x"});
  t.add_row({"exact-cache transplants",
             std::to_string(
                 sweep->metrics.counter("ndr.exact_cache.transplants"))});
  t.add_row({"identical to standalone", mismatches == 0 ? "yes" : "NO"});
  finish(t, "DSE sweep: cross-point reuse vs cold runs", "dse_reuse.csv");

  set_gauge("bench.dse.points", points);
  set_gauge("bench.dse.front_size", static_cast<double>(sweep->front.size()));
  set_gauge("bench.dse.dse_cold_s", cold_s);
  set_gauge("bench.dse.dse_reuse_s", reuse_s);
  set_gauge("bench.dse.dse_reuse_speedup", speedup);
  set_gauge("bench.dse.identical", mismatches == 0 ? 1.0 : 0.0);

  std::vector<RuntimeRecord> runtime;
  runtime.push_back({"cold", common::thread_count(), cold_s});
  runtime.push_back({"reuse", common::thread_count(), reuse_s});
  publish_runtime("dse", runtime);

  if (mismatches != 0) {
    std::cerr << "bench_dse: " << mismatches
              << " point(s) diverged from their standalone configs\n";
    return 1;
  }
  return 0;
}
