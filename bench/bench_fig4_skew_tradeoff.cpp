// Fig. 4 — the power/skew trade-off frontier.
//
// Sweeps the skew budget on one mid-size design. Expected shape: tighter
// skew budgets shrink the latency window the optimizer may move sinks
// within, freezing more nets at the blanket rule and reducing savings;
// generous budgets saturate at the variation/slew-limited floor.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::ps;

  workload::DesignSpec spec = workload::paper_benchmarks()[1];  // jpeg_like
  const Flow base = build_flow(spec);
  const auto blanket = eval_uniform(base, base.tech.rules.blanket_index());
  const double base_skew_ps = units::to_ps(blanket.timing.skew());

  report::Table t({"skew limit (ps)", "smart P (mW)", "saving",
                   "final skew (ps)", "commits", "feasible"});
  for (const double limit_ps :
       {22.0, 25.0, 28.0, 32.0, 40.0, 60.0, 100.0, 150.0}) {
    if (limit_ps < base_skew_ps) continue;  // infeasible even for blanket.
    Flow f = base;
    f.design.constraints.max_skew = limit_ps * ps;
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    t.add_row({report::fmt(limit_ps, 0),
               report::fmt(units::to_mW(smart.final_eval.power.total_power),
                           3),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               report::fmt(units::to_ps(smart.final_eval.timing.skew()), 1),
               std::to_string(smart.stats.commits),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  std::cout << "(blanket skew: " << report::fmt(base_skew_ps, 1) << " ps)\n";
  finish(t, "Fig. 4: power vs skew budget (jpeg_like)",
         "fig4_skew_tradeoff.csv");
  return 0;
}
