// Shared flow driver for the paper-reproduction bench binaries.
//
// Every bench binary prints the table/series it reproduces to stdout and
// writes the same rows as CSV under results/ (relative to where the binary
// is invoked; override with SNDR_RESULTS_DIR), so results can be
// re-plotted without littering the repository root.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "cts/embedding.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"
#include "workload/generator.hpp"

namespace sndr::bench {

struct Flow {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
};

inline Flow build_flow(const workload::DesignSpec& spec,
                       const cts::CtsOptions& copt = {}) {
  Flow f;
  f.design = workload::make_design(spec);
  f.tech = tech::Technology::make_default_45nm();
  f.cts = cts::synthesize(f.design, f.tech, copt);
  route::reroute_for_congestion(f.cts.tree, f.design.congestion);
  cts::refine_skew(f.cts.tree, f.design, f.tech);
  f.nets = netlist::build_nets(f.cts.tree);
  return f;
}

inline ndr::FlowEvaluation eval_uniform(const Flow& f, int rule) {
  return ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                       ndr::assign_all(f.nets, rule));
}

/// Where result CSVs go: $SNDR_RESULTS_DIR or ./results (created on use).
inline std::string results_path(const std::string& name) {
  const char* env = std::getenv("SNDR_RESULTS_DIR");
  const std::string dir = env != nullptr && env[0] != '\0' ? env : "results";
  std::filesystem::create_directories(dir);
  return dir + "/" + name;
}

inline void finish(report::Table& table, const std::string& title,
                   const std::string& csv_name) {
  std::cout << "== " << title << " ==\n\n";
  table.print(std::cout);
  const std::string path = results_path(csv_name);
  table.write_csv(path);
  std::cout << "\n[csv: " << path << "]\n";
}

// --- Machine-readable runtime tracking (BENCH_runtime.json) ---------------
//
// Perf-sensitive benches record wall time per stage at several thread
// counts (plus cache hit-rates where applicable) into one shared JSON file,
// so the perf trajectory is diffable across PRs. The file is a JSON array
// with one record object per line; merging replaces the records of the
// bench being rerun and keeps everything else.

struct RuntimeRecord {
  std::string stage;
  int threads = 0;
  double seconds = 0.0;
  double cache_hit_rate = -1.0;  ///< < 0 = not applicable (emitted null).
  /// Rung not run on this host (threads > host_cpus): recorded so the
  /// ladder keeps the same rows everywhere, but with no fake timing.
  bool skipped = false;
};

/// Hardware concurrency with the zero-means-unknown quirk folded away.
inline int host_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

inline void write_runtime_json(const std::string& bench,
                               const std::vector<RuntimeRecord>& records,
                               const std::string& path = "BENCH_runtime.json") {
  // Keep other benches' records (one object per line, see format above).
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    const std::string mine = "\"bench\":\"" + bench + "\"";
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("{", 0) == 0 &&
          line.find(mine) == std::string::npos) {
        if (line.back() == ',') line.pop_back();
        kept.push_back(line);
      }
    }
  }
  std::ostringstream out;
  for (const RuntimeRecord& r : records) {
    std::ostringstream rec;
    rec << "{\"bench\":\"" << bench << "\",\"stage\":\"" << r.stage
        << "\",\"threads\":" << r.threads << ",\"seconds\":" << r.seconds
        << ",\"cache_hit_rate\":";
    if (r.cache_hit_rate < 0.0) {
      rec << "null";
    } else {
      rec << r.cache_hit_rate;
    }
    if (r.skipped) rec << ",\"skipped\":true";
    rec << "}";
    kept.push_back(rec.str());
  }
  std::ofstream f(path);
  f << "[\n";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    f << kept[i] << (i + 1 < kept.size() ? ",\n" : "\n");
  }
  f << "]\n";
  std::cout << "[json: " << path << "]\n";
}

/// Publishes bench timings through the observability layer: every record
/// becomes a registry gauge `bench.<bench>.<stage>.t<threads>` (plus
/// `.hit_rate` when applicable), then a run manifest for this bench goes
/// to `BENCH_manifest.<bench>.json` — the file scripts/bench_check.sh
/// reads — and the legacy merged BENCH_runtime.json is refreshed too so
/// the cross-PR perf trajectory keeps one home.
inline void publish_runtime(const std::string& bench,
                            const std::vector<RuntimeRecord>& records) {
  for (const RuntimeRecord& r : records) {
    if (r.skipped) continue;  // no gauge: absent beats a fabricated zero.
    const std::string base =
        "bench." + bench + "." + r.stage + ".t" + std::to_string(r.threads);
    obs::MetricsRegistry::instance().set(
        obs::MetricsRegistry::instance().gauge(base + ".seconds"), r.seconds);
    if (r.cache_hit_rate >= 0.0) {
      obs::MetricsRegistry::instance().set(
          obs::MetricsRegistry::instance().gauge(base + ".hit_rate"),
          r.cache_hit_rate);
    }
  }
  obs::RunInfo info;
  info.tool = "bench_" + bench;
  info.command = bench;
  info.threads = common::thread_count();
  obs::write_run_manifest("BENCH_manifest." + bench + ".json", info);
  std::cout << "[manifest: BENCH_manifest." << bench << ".json]\n";
  write_runtime_json(bench, records);
}

/// The 1/2/4/N thread ladder (deduplicated, N = hardware concurrency).
/// Rungs above host_cpus() stay in the ladder (same rows on every host)
/// but callers must skip them via ladder_skipped() — oversubscribed
/// timings are noise, not speedups.
inline std::vector<int> thread_ladder() {
  std::vector<int> ladder = {1, 2, 4};
  const int hw = host_cpus();
  if (hw > 4) ladder.push_back(hw);
  std::vector<int> out;
  for (const int t : ladder) {
    if (t <= hw || t <= 8) out.push_back(t);  // keep the ladder comparable
  }                                           // even on small machines.
  return out;
}

/// True when a ladder rung would oversubscribe this host; pair with a
/// skipped RuntimeRecord so BENCH_runtime.json says why the row is absent.
inline bool ladder_skipped(int threads) { return threads > host_cpus(); }

inline RuntimeRecord skipped_record(const std::string& stage, int threads) {
  RuntimeRecord r;
  r.stage = stage;
  r.threads = threads;
  r.skipped = true;
  return r;
}

}  // namespace sndr::bench
