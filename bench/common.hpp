// Shared flow driver for the paper-reproduction bench binaries.
//
// Every bench binary prints the table/series it reproduces to stdout and
// writes the same rows as CSV into the working directory (next to where the
// binary is invoked), so results can be re-plotted.
#pragma once

#include <iostream>
#include <string>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"
#include "workload/generator.hpp"

namespace sndr::bench {

struct Flow {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
};

inline Flow build_flow(const workload::DesignSpec& spec,
                       const cts::CtsOptions& copt = {}) {
  Flow f;
  f.design = workload::make_design(spec);
  f.tech = tech::Technology::make_default_45nm();
  f.cts = cts::synthesize(f.design, f.tech, copt);
  route::reroute_for_congestion(f.cts.tree, f.design.congestion);
  cts::refine_skew(f.cts.tree, f.design, f.tech);
  f.nets = netlist::build_nets(f.cts.tree);
  return f;
}

inline ndr::FlowEvaluation eval_uniform(const Flow& f, int rule) {
  return ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                       ndr::assign_all(f.nets, rule));
}

inline void finish(report::Table& table, const std::string& title,
                   const std::string& csv_name) {
  std::cout << "== " << title << " ==\n\n";
  table.print(std::cout);
  table.write_csv(csv_name);
  std::cout << "\n[csv: " << csv_name << "]\n";
}

}  // namespace sndr::bench
