// Ablation D — greedy vs. greedy + simulated annealing.
//
// Quantifies how much assignment quality the greedy pass leaves on the
// table. Expected shape: per-net moves interact only weakly, so annealing
// recovers at most a fraction of a percent of additional power at a large
// runtime multiple — evidence that the paper's greedy formulation is the
// right engineering point.
#include <chrono>

#include "common.hpp"
#include "ndr/annealer.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using Clock = std::chrono::steady_clock;

  report::Table t({"design", "flow", "P (mW)", "saving", "accepted",
                   "uphill", "cache hit", "time (s)", "feasible"});
  for (int idx : {0, 1, 2}) {
    const workload::DesignSpec spec = workload::paper_benchmarks()[idx];
    const Flow f = build_flow(spec);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
    const auto pct = [&](const ndr::FlowEvaluation& ev) {
      return report::fmt_pct(ev.power.total_power /
                                 blanket.power.total_power -
                             1.0);
    };

    auto t0 = Clock::now();
    const ndr::SmartNdrResult greedy =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    const double greedy_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    t.add_row({spec.name, "greedy",
               report::fmt(units::to_mW(greedy.final_eval.power.total_power),
                           3),
               pct(greedy.final_eval), std::to_string(greedy.stats.commits),
               "-", report::fmt_pct(greedy.stats.exact_cache_hit_rate()),
               report::fmt(greedy_s, 2),
               greedy.final_eval.feasible() ? "yes" : "NO"});

    t0 = Clock::now();
    const ndr::AnnealResult sa = ndr::anneal_rules(
        f.cts.tree, f.design, f.tech, f.nets, greedy.assignment);
    const double sa_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    t.add_row({spec.name, "greedy+SA",
               report::fmt(units::to_mW(sa.final_eval.power.total_power), 3),
               pct(sa.final_eval), std::to_string(sa.accepted),
               std::to_string(sa.uphill_accepted),
               report::fmt_pct(sa.exact_cache_hit_rate()),
               report::fmt(sa_s, 2),
               sa.final_eval.feasible() ? "yes" : "NO"});
  }
  finish(t, "Ablation D: greedy vs greedy+annealing",
         "abl_annealing.csv");
  return 0;
}
