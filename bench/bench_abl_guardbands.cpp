// Ablation B — optimizer guard bands.
//
// The estimate-driven loop holds a slice of each constraint in reserve and
// validates commits exactly; the final signoff uses the raw limits. Sweep
// the guard-band width. Expected shape: zero margin leans fully on the
// exact commit validation (still feasible, slightly better power, more
// rejected-at-validation candidates); oversized margins freeze nets early
// and give up savings.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  workload::DesignSpec spec = workload::paper_benchmarks()[2];  // vga_like
  const Flow f = build_flow(spec);
  const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());

  report::Table t({"margin", "P (mW)", "saving", "commits", "scored",
                   "exact evals", "feasible"});
  for (const double margin : {0.0, 0.02, 0.05, 0.10, 0.20, 0.35}) {
    ndr::OptimizerOptions opt;
    opt.slew_margin = margin;
    opt.uncertainty_margin = margin;
    opt.em_margin = margin;
    opt.skew_margin = margin;
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
    t.add_row({report::fmt(margin, 2),
               report::fmt(units::to_mW(smart.final_eval.power.total_power),
                           3),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               std::to_string(smart.stats.commits),
               std::to_string(smart.stats.candidates_scored),
               std::to_string(smart.stats.exact_net_evals),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  finish(t, "Ablation B: savings vs optimizer guard bands (vga_like)",
         "abl_guardbands.csv");
  return 0;
}
