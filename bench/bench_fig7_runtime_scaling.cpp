// Fig. 7 — optimizer scalability and the value of the learned models.
//
// Runs smart NDR across design sizes in three candidate-scoring modes:
//   models    — learned per-rule impact models (the paper's method),
//   exact-net — exact per-net re-extraction per candidate,
//   full-STA  — complete extraction + timing + variation + EM per candidate
//               (the naive signoff-in-the-loop flow the paper's runtime
//               argument targets; only run on the smaller designs).
// Expected shape: all three land on (nearly) the same power; full-STA
// runtime explodes quadratically and is orders of magnitude slower than the
// model-guided flow, whose cost is dominated by the one-time training.
//
// A second section measures the parallel evaluation engine: wall time of
// evaluate() and 5-corner evaluate_corners() at 1/2/4/N threads (results
// are bit-identical at every point of the ladder), plus the exact-eval
// cache hit-rate of the optimizer. Everything lands in BENCH_runtime.json.
#include <chrono>

#include "common.hpp"
#include "tech/corners.hpp"

namespace {

using namespace sndr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Five-corner signoff set: the standard three plus two derate extremes.
std::vector<tech::Corner> five_corners() {
  std::vector<tech::Corner> corners = tech::standard_corners();
  corners.push_back({"slow_hot", 1.25, 1.12, 0.88, 1.30});
  corners.push_back({"fast_cold", 0.80, 0.92, 1.10, 0.78});
  return corners;
}

}  // namespace

int main() {
  using namespace sndr::bench;

  report::Table t({"sinks", "mode", "P (mW)", "saving", "net evals",
                   "full evals", "train (s)", "total (s)"});
  for (const int sinks : {1024, 4096, 16384, 32768}) {
    workload::DesignSpec spec;
    spec.name = "scale_" + std::to_string(sinks);
    spec.num_sinks = sinks;
    spec.dist = workload::SinkDistribution::kMixed;
    spec.seed = 77;
    const Flow f = build_flow(spec);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());

    for (const ndr::Scoring mode :
         {ndr::Scoring::kModels, ndr::Scoring::kExactNet,
          ndr::Scoring::kFullSta}) {
      if (mode == ndr::Scoring::kFullSta && sinks > 4096) {
        t.add_row({std::to_string(sinks), "full-STA", "-", "-", "-", "-",
                   "-", "(skipped: ~minutes+)"});
        continue;
      }
      ndr::OptimizerOptions opt;
      opt.scoring = mode;
      const auto t0 = Clock::now();
      const ndr::SmartNdrResult smart =
          ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
      const double total = seconds_since(t0);
      const char* name = mode == ndr::Scoring::kModels ? "models"
                         : mode == ndr::Scoring::kExactNet ? "exact-net"
                                                           : "full-STA";
      t.add_row({std::to_string(sinks), name,
                 report::fmt(units::to_mW(smart.final_eval.power.total_power),
                             2),
                 report::fmt_pct(smart.final_eval.power.total_power /
                                     blanket.power.total_power -
                                 1.0),
                 std::to_string(smart.stats.exact_net_evals),
                 std::to_string(smart.stats.full_evals),
                 report::fmt(smart.stats.train_seconds, 2),
                 report::fmt(total, 2)});
    }
  }
  finish(t, "Fig. 7: scaling and scoring-mode runtime comparison",
         "fig7_runtime_scaling.csv");

  // --- Parallel evaluation engine: thread-scaling + cache hit-rate ------
  std::vector<RuntimeRecord> records;
  {
    workload::DesignSpec spec;
    spec.name = "threads_4096";
    spec.num_sinks = 4096;
    spec.dist = workload::SinkDistribution::kMixed;
    spec.seed = 77;
    const Flow f = build_flow(spec);
    const ndr::RuleAssignment blanket =
        ndr::assign_all(f.nets, f.tech.rules.blanket_index());
    const std::vector<tech::Corner> corners = five_corners();

    report::Table ts({"stage", "threads", "time (s)", "speedup"});
    double eval_serial = 0.0;
    double corners_serial = 0.0;
    for (const int threads : thread_ladder()) {
      if (ladder_skipped(threads)) {
        records.push_back(skipped_record("evaluate", threads));
        records.push_back(skipped_record("evaluate_corners_x5", threads));
        ts.add_row({"evaluate", std::to_string(threads), "skipped", "-"});
        ts.add_row({"evaluate_corners_x5", std::to_string(threads),
                    "skipped", "-"});
        continue;
      }
      common::set_thread_count(threads);
      auto t0 = Clock::now();
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets, blanket);
      const double eval_s = seconds_since(t0);
      t0 = Clock::now();
      ndr::evaluate_corners(f.cts.tree, f.design, f.tech, f.nets, blanket,
                            corners);
      const double corners_s = seconds_since(t0);
      if (threads == 1) {
        eval_serial = eval_s;
        corners_serial = corners_s;
      }
      ts.add_row({"evaluate", std::to_string(threads),
                  report::fmt(eval_s, 3),
                  report::fmt(eval_serial / eval_s, 2) + "x"});
      ts.add_row({"evaluate_corners_x5", std::to_string(threads),
                  report::fmt(corners_s, 3),
                  report::fmt(corners_serial / corners_s, 2) + "x"});
      records.push_back({"evaluate", threads, eval_s, -1.0});
      records.push_back({"evaluate_corners_x5", threads, corners_s, -1.0});
    }
    common::set_thread_count(-1);

    // Exact-eval cache hit-rate of the exact-scoring optimizer (the memo
    // cache's prime consumer together with the annealer).
    ndr::OptimizerOptions opt;
    opt.scoring = ndr::Scoring::kExactNet;
    const auto t0 = Clock::now();
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
    records.push_back({"optimize_exact_net", smart.stats.threads_used,
                       seconds_since(t0),
                       smart.stats.exact_cache_hit_rate()});
    ts.add_row({"optimize_exact_net (cache " +
                    report::fmt_pct(smart.stats.exact_cache_hit_rate()) +
                    " hit)",
                std::to_string(smart.stats.threads_used),
                report::fmt(seconds_since(t0), 3), "-"});
    std::cout << "\n";
    finish(ts, "Fig. 7b: evaluation-engine thread scaling (4096 sinks)",
           "fig7_thread_scaling.csv");
  }
  publish_runtime("fig7_runtime_scaling", records);
  return 0;
}
