// Fig. 7 — optimizer scalability and the value of the learned models.
//
// Runs smart NDR across design sizes in three candidate-scoring modes:
//   models    — learned per-rule impact models (the paper's method),
//   exact-net — exact per-net re-extraction per candidate,
//   full-STA  — complete extraction + timing + variation + EM per candidate
//               (the naive signoff-in-the-loop flow the paper's runtime
//               argument targets; only run on the smaller designs).
// Expected shape: all three land on (nearly) the same power; full-STA
// runtime explodes quadratically and is orders of magnitude slower than the
// model-guided flow, whose cost is dominated by the one-time training.
#include <chrono>

#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using Clock = std::chrono::steady_clock;

  report::Table t({"sinks", "mode", "P (mW)", "saving", "net evals",
                   "full evals", "train (s)", "total (s)"});
  for (const int sinks : {1024, 4096, 16384, 32768}) {
    workload::DesignSpec spec;
    spec.name = "scale_" + std::to_string(sinks);
    spec.num_sinks = sinks;
    spec.dist = workload::SinkDistribution::kMixed;
    spec.seed = 77;
    const Flow f = build_flow(spec);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());

    for (const ndr::Scoring mode :
         {ndr::Scoring::kModels, ndr::Scoring::kExactNet,
          ndr::Scoring::kFullSta}) {
      if (mode == ndr::Scoring::kFullSta && sinks > 4096) {
        t.add_row({std::to_string(sinks), "full-STA", "-", "-", "-", "-",
                   "-", "(skipped: ~minutes+)"});
        continue;
      }
      ndr::OptimizerOptions opt;
      opt.scoring = mode;
      const auto t0 = Clock::now();
      const ndr::SmartNdrResult smart =
          ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets, opt);
      const double total =
          std::chrono::duration<double>(Clock::now() - t0).count();
      const char* name = mode == ndr::Scoring::kModels ? "models"
                         : mode == ndr::Scoring::kExactNet ? "exact-net"
                                                           : "full-STA";
      t.add_row({std::to_string(sinks), name,
                 report::fmt(units::to_mW(smart.final_eval.power.total_power),
                             2),
                 report::fmt_pct(smart.final_eval.power.total_power /
                                     blanket.power.total_power -
                                 1.0),
                 std::to_string(smart.stats.exact_net_evals),
                 std::to_string(smart.stats.full_evals),
                 report::fmt(smart.stats.train_seconds, 2),
                 report::fmt(total, 2)});
    }
  }
  finish(t, "Fig. 7: scaling and scoring-mode runtime comparison",
         "fig7_runtime_scaling.csv");
  return 0;
}
