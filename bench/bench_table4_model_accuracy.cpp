// Table IV — learned-model accuracy.
//
// Holdout quality of the per-rule impact models (the machine-learning
// component that makes per-net rule search affordable): mean absolute
// error, R^2, and Spearman rank correlation per predicted metric, averaged
// over rules, per benchmark. Expected shape: rank correlations near 1.0 —
// the optimizer needs correct candidate ordering far more than absolute
// accuracy.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  const char* metric_names[4] = {"step_slew", "sigma", "xtalk", "delay"};

  report::Table t({"design", "metric", "MAE (ps)", "R^2", "rank corr",
                   "train", "holdout"});
  for (const workload::DesignSpec& spec : workload::paper_benchmarks()) {
    if (spec.num_sinks > 10000) continue;  // larger designs add no new info.
    const Flow f = build_flow(spec);
    const timing::AnalysisOptions aopt;
    const ndr::RuleImpactPredictor pred = ndr::RuleImpactPredictor::train(
        f.cts.tree, f.design, f.tech, f.nets, aopt, 400);
    const ndr::TrainReport& rep = pred.report();
    for (int m = 0; m < 4; ++m) {
      double mae = 0.0;
      double r2 = 0.0;
      double rho = 0.0;
      for (const auto& per_rule : rep.quality) {
        mae += per_rule[m].mae;
        r2 += per_rule[m].r2;
        rho += per_rule[m].rank_corr;
      }
      const double n = static_cast<double>(rep.quality.size());
      t.add_row({spec.name, metric_names[m],
                 report::fmt(units::to_ps(mae / n), 2),
                 report::fmt(r2 / n, 3), report::fmt(rho / n, 3),
                 std::to_string(rep.train_samples),
                 std::to_string(rep.holdout_samples)});
    }
  }
  finish(t, "Table IV: learned rule-impact model accuracy (holdout)",
         "table4_model_accuracy.csv");
  return 0;
}
