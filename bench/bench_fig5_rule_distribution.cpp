// Fig. 5 — rule distribution vs. tree depth.
//
// Histogram of the smart-NDR rule choice per buffer-hierarchy level.
// Expected shape: trunk levels (low depth, long spans, every sink's
// uncertainty at stake) keep wide/spaced rules; leaf levels (bulk of the
// wirelength, local impact only) migrate to the cheap 1W2S/1W1S rules —
// which is where the power saving comes from.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  workload::DesignSpec spec = workload::paper_benchmarks()[3];  // ethmac
  const Flow f = build_flow(spec);
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);

  int max_depth = 0;
  for (const auto& net : f.nets.nets) {
    max_depth = std::max(max_depth, net.depth);
  }

  std::vector<std::string> cols{"depth", "nets", "WL (mm)"};
  for (const tech::RoutingRule& r : f.tech.rules) cols.push_back(r.name);
  cols.push_back("wide frac");
  report::Table t(cols);

  for (int d = 0; d <= max_depth; ++d) {
    std::vector<int> count(f.tech.rules.size(), 0);
    int nets_at_depth = 0;
    double wl = 0.0;
    int wide = 0;
    for (const auto& net : f.nets.nets) {
      if (net.depth != d) continue;
      ++nets_at_depth;
      ++count[smart.assignment[net.id]];
      wl += netlist::net_wirelength(f.cts.tree, net);
      if (f.tech.rules[smart.assignment[net.id]].width_mult > 1) ++wide;
    }
    if (nets_at_depth == 0) continue;
    std::vector<std::string> row{std::to_string(d),
                                 std::to_string(nets_at_depth),
                                 report::fmt(units::to_mm(wl), 2)};
    for (const int c : count) row.push_back(std::to_string(c));
    row.push_back(report::fmt_pct(static_cast<double>(wide) / nets_at_depth));
    t.add_row(std::move(row));
  }
  finish(t, "Fig. 5: smart-NDR rule mix by tree depth (ethmac_like)",
         "fig5_rule_distribution.csv");
  return 0;
}
