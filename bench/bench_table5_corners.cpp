// Table V (extension) — multi-corner signoff of the smart assignment.
//
// The paper evaluates at one corner; a production flow must hold slew/skew
// at the slow corner and EM/power at the fast corner. This experiment
// optimizes twice — against the typical corner (the paper's setting) and
// against the slow corner (conservative practice) — and signs both off at
// all three corners. Expected shape: the typ-optimized assignment may leak
// slew violations at the slow corner; the slow-optimized assignment holds
// everywhere at a small extra power cost.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::to_ps;

  workload::DesignSpec spec = workload::paper_benchmarks()[1];  // jpeg_like
  const Flow f = build_flow(spec);
  const auto corners = tech::standard_corners();

  report::Table t({"optimized at", "corner", "P (mW)", "skew (ps)",
                   "slew (ps)", "viol s/e/u", "feasible"});
  for (const char* opt_corner : {"typ", "slow"}) {
    const tech::Technology opt_tech =
        std::string(opt_corner) == "typ"
            ? f.tech
            : tech::apply_corner(f.tech, corners[0]);
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, opt_tech, f.nets);
    const ndr::MultiCornerReport rep = ndr::evaluate_corners(
        f.cts.tree, f.design, f.tech, f.nets, smart.assignment, corners);
    for (const auto& c : rep.corners) {
      t.add_row({opt_corner, c.corner.name,
                 report::fmt(units::to_mW(c.eval.power.total_power), 2),
                 report::fmt(to_ps(c.eval.timing.skew()), 1),
                 report::fmt(to_ps(c.eval.timing.max_slew), 1),
                 std::to_string(c.eval.slew_violations) + "/" +
                     std::to_string(c.eval.em_violations) + "/" +
                     std::to_string(c.eval.uncertainty_violations),
                 c.eval.feasible() ? "yes" : "NO"});
    }
  }
  finish(t, "Table V (extension): multi-corner signoff (jpeg_like)",
         "table5_corners.csv");
  return 0;
}
