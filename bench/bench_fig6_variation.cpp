// Fig. 6 — delay uncertainty vs. aggressor density.
//
// Sweeps the signal-congestion occupancy of the design (how often a clock
// wire has a toggling neighbor) and reports the worst per-sink uncertainty
// (3*sigma + crosstalk) of all-default, blanket, and smart-NDR, plus the
// smart saving. Expected shape: all-default uncertainty grows steeply with
// occupancy and crosses the budget; blanket stays flat-ish; smart tracks
// the budget from below, trading less saving at high occupancy.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::to_ps;

  report::Table t({"occupancy", "default unc (ps)", "blanket unc (ps)",
                   "smart unc (ps)", "budget (ps)", "smart saving",
                   "smart feasible"});
  for (const double occ : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    workload::DesignSpec spec = workload::paper_benchmarks()[1];  // jpeg.
    spec.occupancy_base = occ;
    spec.occupancy_noise = 0.0;
    spec.hotspots = 0;
    const Flow f = build_flow(spec);
    const auto def = eval_uniform(f, 0);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    t.add_row({report::fmt(occ, 1),
               report::fmt(to_ps(def.variation.max_uncertainty), 1),
               report::fmt(to_ps(blanket.variation.max_uncertainty), 1),
               report::fmt(to_ps(smart.final_eval.variation.max_uncertainty),
                           1),
               report::fmt(to_ps(f.design.constraints.max_uncertainty), 0),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  finish(t, "Fig. 6: uncertainty vs aggressor occupancy (jpeg_like)",
         "fig6_variation.csv");
  return 0;
}
