// Table III — why blanket NDR exists.
//
// Constraint violations of the all-default (1W1S everywhere) implementation
// per benchmark: slew misses, EM current-density misses, per-sink
// uncertainty misses, and the skew overshoot. Expected shape: violations
// grow with design size (deeper trees accumulate crosstalk, larger cores
// have longer unbuffered runs), and the blanket column is clean everywhere.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::to_ps;

  report::Table t({"design", "flow", "slew viol", "EM viol", "unc viol",
                   "skew (ps)", "skew limit", "worst slew (ps)",
                   "worst unc (ps)"});
  for (const workload::DesignSpec& spec : workload::paper_benchmarks()) {
    const Flow f = build_flow(spec);
    const auto row = [&](const std::string& name,
                         const ndr::FlowEvaluation& ev) {
      t.add_row({spec.name, name, std::to_string(ev.slew_violations),
                 std::to_string(ev.em_violations),
                 std::to_string(ev.uncertainty_violations),
                 report::fmt(to_ps(ev.timing.skew()), 1),
                 report::fmt(to_ps(f.design.constraints.max_skew), 0),
                 report::fmt(to_ps(ev.timing.max_slew), 1),
                 report::fmt(to_ps(ev.variation.max_uncertainty), 1)});
    };
    row("all-default", eval_uniform(f, 0));
    row("blanket-2W2S", eval_uniform(f, f.tech.rules.blanket_index()));
  }
  finish(t, "Table III: constraint violations without NDR",
         "table3_violations.csv");
  return 0;
}
