// Table I — benchmark statistics.
//
// Reproduces the testcase-summary table of the evaluation section: per
// design, the sink count, spatial distribution, core size, synthesized tree
// statistics (buffers, nets, wirelength), and the clock power of the
// conventional blanket-NDR implementation that all later experiments
// normalize against.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;

  report::Table t({"design", "sinks", "dist", "core (mm)", "buffers", "nets",
                   "WL (mm)", "skew (ps)", "blanket P (mW)"});
  for (const workload::DesignSpec& spec : workload::paper_benchmarks()) {
    const Flow f = build_flow(spec);
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
    t.add_row({spec.name, std::to_string(spec.num_sinks),
               workload::to_string(spec.dist),
               report::fmt(units::to_mm(f.design.core.width()), 2),
               std::to_string(f.cts.buffers),
               std::to_string(f.nets.size()),
               report::fmt(units::to_mm(f.cts.wirelength), 1),
               report::fmt(units::to_ps(blanket.timing.skew()), 1),
               report::fmt(units::to_mW(blanket.power.total_power), 2)});
  }
  finish(t, "Table I: benchmark statistics (blanket-NDR reference)",
         "table1_benchmarks.csv");
  return 0;
}
