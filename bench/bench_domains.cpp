// Gated-domain bench — activity-weighted power and inter-clock signoff
// metrics on mux/ICG/divider clock architectures (DESIGN.md §11).
//
// Two rungs, both committed to BENCH_manifest.domains.json and gated by
// scripts/bench_check.sh:
//
//   g96   the acceptance pin as a bench: a gated+divided 96-net workload
//         swept up a deterministic frequency ladder until EM pressure
//         splits the rule assignment between the domain-aware objective
//         and the capacitance-only one. Gauges:
//           bench.domains.g96.activity_changes_assignment   (must stay 1)
//           bench.domains.g96.freq_mult            (ladder rung that split)
//           bench.domains.g96.gated_cap_ratio      (gated/plain, < 1)
//
//   g512  a richer domain graph (2 ICGs, divider, mux) at base frequency:
//         activity-weighted vs raw switched capacitance, the inter-clock
//         pair report, and pipeline throughput. Gauges:
//           bench.domains.g512.nets / .nets_per_s
//           bench.domains.g512.raw_switched_cap / .weighted_switched_cap
//           bench.domains.g512.weighted_over_raw            (must stay < 1)
//           bench.domains.g512.inter_clock_pairs / .inter_clock_worst_skew
//           bench.domains.g512.inter_clock_violations       (must stay 0)
//           bench.domains.g512.feasible                     (must stay 1)
//
// plus the usual per-stage RuntimeRecords in BENCH_runtime.json.
#include <chrono>

#include "common.hpp"
#include "ndr/smart_ndr.hpp"
#include "workload/domains.hpp"

namespace {

using namespace sndr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void set_gauge(const std::string& name, double value) {
  obs::MetricsRegistry::instance().set(
      obs::MetricsRegistry::instance().gauge(name), value);
}

}  // namespace

int main() {
  using namespace sndr::bench;

  const tech::Technology tech = tech::Technology::make_default_45nm();
  std::vector<RuntimeRecord> records;
  const int threads = common::thread_count();
  const auto record = [&records, threads](const std::string& stage,
                                          double seconds) {
    records.push_back({stage, threads, seconds});
  };
  report::Table t({"rung", "nets", "raw cap (fF)", "weighted (fF)",
                   "pairs", "worst skew (ps)", "split", "nets/s"});
  bool gates_ok = true;

  ndr::OptimizerOptions exact;
  exact.use_models = false;

  // --- g96: does the activity-weighted objective move the assignment? ---
  {
    workload::DomainSpec spec;
    spec.base.name = "g96";
    spec.base.num_nets = 96;
    spec.base.branching = 2;
    spec.base.sinks_per_leaf = 2;
    spec.gates = 1;
    spec.dividers = 1;
    spec.muxes = 0;
    spec.inverters = 0;
    spec.duty_min = spec.duty_max = 0.5;
    auto t0 = Clock::now();
    const workload::DomainWorkload w = make_domain_workload(spec, tech);
    record("g96.generate", seconds_since(t0));

    netlist::Design plain = w.design;
    plain.clock_domains = netlist::ClockDomainMap();
    double split_mult = 0.0;
    double gated_cap_ratio = 0.0;
    t0 = Clock::now();
    // Same deterministic ladder the acceptance test pins: the exact
    // multiple where EM pressure forces the split depends on the library.
    for (const double mult : {10.0, 11.0, 12.0, 14.0}) {
      netlist::Design gated_d = w.design;
      gated_d.constraints.clock_freq *= mult;
      netlist::Design plain_d = plain;
      plain_d.constraints.clock_freq *= mult;
      const ndr::SmartNdrResult gated =
          ndr::optimize_smart_ndr(w.tree, gated_d, tech, w.nets, exact);
      const ndr::SmartNdrResult cap_only =
          ndr::optimize_smart_ndr(w.tree, plain_d, tech, w.nets, exact);
      if (gated.assignment == cap_only.assignment) continue;
      double gated_cap = 0.0;
      double plain_cap = 0.0;
      for (const netlist::Net& net : w.nets.nets) {
        if (w.design.clock_domains.node_toggle_weight(net.driver) < 1.0) {
          gated_cap += gated.final_eval.power.net_switched_cap[net.id];
          plain_cap += cap_only.final_eval.power.net_switched_cap[net.id];
        }
      }
      split_mult = mult;
      gated_cap_ratio = gated_cap / plain_cap;
      break;
    }
    record("g96.ladder", seconds_since(t0));
    const bool split = split_mult > 0.0 && gated_cap_ratio < 1.0;
    gates_ok = gates_ok && split;
    set_gauge("bench.domains.g96.activity_changes_assignment",
              split ? 1.0 : 0.0);
    set_gauge("bench.domains.g96.freq_mult", split_mult);
    set_gauge("bench.domains.g96.gated_cap_ratio", gated_cap_ratio);
    t.add_row({"g96", "96", "-", "-", "-", "-", split ? "yes" : "NO", "-"});
  }

  // --- g512: weighted power + inter-clock signoff on a mixed graph -------
  {
    workload::DomainSpec spec;
    spec.base.name = "g512";
    spec.base.num_nets = 512;
    spec.gates = 2;
    spec.dividers = 1;
    spec.muxes = 1;
    spec.inverters = 1;
    auto t0 = Clock::now();
    const workload::DomainWorkload w = make_domain_workload(spec, tech);
    const double gen_s = seconds_since(t0);
    record("g512.generate", gen_s);

    t0 = Clock::now();
    const ndr::SmartNdrResult opt =
        ndr::optimize_smart_ndr(w.tree, w.design, tech, w.nets, exact);
    const double opt_s = seconds_since(t0);
    record("g512.optimize", opt_s);
    const ndr::FlowEvaluation& ev = opt.final_eval;
    const double nets_per_s = spec.base.num_nets / opt_s;

    const bool weighted_below =
        ev.power.weighted_switched_cap < ev.power.switched_cap;
    gates_ok = gates_ok && weighted_below && ev.inter_clock.enabled &&
               ev.inter_clock_violations == 0 && ev.feasible();
    const std::string g = "bench.domains.g512.";
    set_gauge(g + "nets", spec.base.num_nets);
    set_gauge(g + "nets_per_s", nets_per_s);
    set_gauge(g + "raw_switched_cap", ev.power.switched_cap);
    set_gauge(g + "weighted_switched_cap", ev.power.weighted_switched_cap);
    set_gauge(g + "weighted_over_raw",
              ev.power.weighted_switched_cap / ev.power.switched_cap);
    set_gauge(g + "inter_clock_pairs",
              static_cast<double>(ev.inter_clock.pairs.size()));
    set_gauge(g + "inter_clock_worst_skew", ev.inter_clock.worst_skew);
    set_gauge(g + "inter_clock_violations",
              static_cast<double>(ev.inter_clock_violations));
    set_gauge(g + "feasible", ev.feasible() ? 1.0 : 0.0);
    t.add_row({"g512", "512",
               report::fmt(ev.power.switched_cap * 1e15, 2),
               report::fmt(ev.power.weighted_switched_cap * 1e15, 2),
               std::to_string(ev.inter_clock.pairs.size()),
               report::fmt(ev.inter_clock.worst_skew * 1e12, 2),
               "-", report::fmt(nets_per_s, 0)});
  }

  finish(t, "Gated domains: activity-weighted power and inter-clock signoff",
         "domains.csv");
  publish_runtime("domains", records);

  if (!gates_ok) {
    std::cerr << "bench_domains: a domain invariant failed (split missing, "
                 "weighted cap not below raw, or inter-clock violation)\n";
    return 1;
  }
  return 0;
}
