// Service soak — ~200 queued jobs of mixed sizes through serve::Server,
// every result asserted bitwise identical to the same config run serially
// through the CLI's execute_job path.
//
// Designs come from the scale and domain workload generators (small /
// medium / large single-clock trees plus one multi-domain tree), written
// to disk so each job exercises the full file-loading flow. Jobs cycle
// through the designs with a per-job seed; the server runs them with
// several workers over the shared cache (technology parsed once,
// predictors trained once per distinct design/samples pair), so the soak
// covers concurrent submits, cache sharing, and admission accounting.
//
// The manifest (BENCH_manifest.serve.json) gets the gauges
// scripts/bench_check.sh gates:
//   bench.serve.serve_jobs_per_s   drain throughput over the whole queue
//   bench.serve.serve_p99_s        p99 submit->done latency
//   bench.serve.jobs               queue size (for rate context)
//   bench.serve.identical          1 when every job matched serial (gated)
//
// Job count: SNDR_SERVE_JOBS (default 200; tier-1 smoke uses a small
// count, the default is the committed soak).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "common.hpp"
#include "io/design_io.hpp"
#include "serve/server.hpp"
#include "workload/domains.hpp"
#include "workload/scale.hpp"

namespace {

using namespace sndr;
using Clock = std::chrono::steady_clock;

int job_count() {
  if (const char* env = std::getenv("SNDR_SERVE_JOBS");
      env != nullptr && env[0] != '\0') {
    return std::max(1, std::atoi(env));
  }
  return 200;
}

void set_gauge(const std::string& name, double value) {
  obs::MetricsRegistry::instance().set(
      obs::MetricsRegistry::instance().gauge(name), value);
}

/// True when the two runs of one config are the same bits: the settled
/// assignment and the exact final power/timing words.
bool identical(const serve::JobOutcome& a, const serve::JobOutcome& b) {
  if (!a.ok() || !b.ok()) return a.status.code() == b.status.code();
  const flow::FlowResult& ra = *a.result;
  const flow::FlowResult& rb = *b.result;
  return *ra.final_assignment() == *rb.final_assignment() &&
         ra.final_eval().power.total_power ==
             rb.final_eval().power.total_power &&
         ra.final_eval().power.switched_cap ==
             rb.final_eval().power.switched_cap &&
         ra.final_eval().timing.sink_arrival ==
             rb.final_eval().timing.sink_arrival &&
         ra.feasible == rb.feasible;
}

}  // namespace

int main() {
  using namespace sndr::bench;

  const tech::Technology tech = tech::Technology::make_default_45nm();

  // Mixed-size design pool: three scale rungs plus one multi-domain tree.
  std::vector<std::string> designs;
  for (const int nets : {25, 100, 400}) {
    workload::ScaleSpec spec;
    spec.name = "serve_s" + std::to_string(nets);
    spec.num_nets = nets;
    spec.seed = 11 + nets;
    const workload::ScaleWorkload w = workload::make_scale_workload(spec, tech);
    const std::string path = results_path(spec.name + ".txt");
    io::write_design_file(path, w.design);
    designs.push_back(path);
  }
  {
    workload::DomainSpec spec;
    spec.base.name = "serve_domains";
    spec.base.num_nets = 100;
    spec.base.seed = 23;
    const workload::DomainWorkload w =
        workload::make_domain_workload(spec, tech);
    const std::string path = results_path(spec.base.name + ".txt");
    io::write_design_file(path, w.design);
    designs.push_back(path);
  }

  // One config per job: cycle the designs, vary the seed, keep training
  // small (the shared cache makes per-design training a one-time cost).
  const int jobs = job_count();
  std::vector<flow::FlowConfig> configs;
  configs.reserve(jobs);
  for (int i = 0; i < jobs; ++i) {
    flow::FlowConfig c;
    c.design_path = designs[i % designs.size()];
    c.seed = 1000 + i;
    c.training_samples = 60;
    c.memory_budget_bytes = 32u << 20;  // declared for admission control.
    if (i % 7 == 0) c.anneal_iterations = 100;  // a slow-job sprinkle.
    configs.push_back(std::move(c));
  }

  // Serial reference: the CLI path (execute_job, no cache, no server).
  std::vector<serve::JobOutcome> serial;
  serial.reserve(jobs);
  auto t0 = Clock::now();
  for (const flow::FlowConfig& c : configs) {
    serial.push_back(serve::execute_job(c, nullptr));
  }
  const double serial_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Soak: queue everything, then drain.
  serve::ServerOptions options;
  options.workers = std::min(4, host_cpus() * 2);
  options.memory_budget_bytes = 256u << 20;
  serve::Server server(options);
  t0 = Clock::now();
  std::vector<int> ids;
  ids.reserve(jobs);
  for (const flow::FlowConfig& c : configs) {
    common::Result<int> id = server.submit(c);
    if (!id.ok()) {
      std::cerr << "bench_serve: submit rejected: "
                << id.status().to_string() << "\n";
      return 1;
    }
    ids.push_back(id.value());
  }
  const std::vector<serve::JobRecord> records = server.drain();
  const double serve_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  if (static_cast<int>(records.size()) != jobs) {
    std::cerr << "bench_serve: " << records.size() << " records for "
              << jobs << " jobs\n";
    return 1;
  }

  // Identity sweep + latency distribution (submit -> done).
  int mismatches = 0;
  std::vector<double> latency;
  latency.reserve(jobs);
  for (int i = 0; i < jobs; ++i) {
    const serve::JobRecord& r = records[i];
    if (r.id != ids[i]) {
      std::cerr << "bench_serve: record order mismatch at " << i << "\n";
      return 1;
    }
    if (!identical(serial[i], r.outcome)) ++mismatches;
    latency.push_back(r.queue_seconds + r.outcome.wall_seconds);
  }
  std::sort(latency.begin(), latency.end());
  const double p50 = latency[latency.size() / 2];
  const double p99 =
      latency[std::min(latency.size() - 1,
                       static_cast<std::size_t>(latency.size() * 99 / 100))];
  const double jobs_per_s = jobs / serve_s;

  const auto snap = server.metrics_snapshot();
  report::Table t({"metric", "value"});
  t.add_row({"jobs", std::to_string(jobs)});
  t.add_row({"workers", std::to_string(options.workers)});
  t.add_row({"serial (s)", report::fmt(serial_s, 2)});
  t.add_row({"serve (s)", report::fmt(serve_s, 2)});
  t.add_row({"jobs/s", report::fmt(jobs_per_s, 1)});
  t.add_row({"p50 latency (s)", report::fmt(p50, 4)});
  t.add_row({"p99 latency (s)", report::fmt(p99, 4)});
  t.add_row({"tech cache hits",
             std::to_string(server.cache().stats().tech_hits)});
  t.add_row({"predictor cache hits",
             std::to_string(server.cache().stats().predictor_hits)});
  t.add_row({"completed",
             std::to_string(snap.counter("serve.jobs_completed"))});
  t.add_row({"identical to serial", mismatches == 0 ? "yes" : "NO"});
  finish(t, "Service soak: queued jobs vs serial CLI", "serve_soak.csv");

  set_gauge("bench.serve.jobs", jobs);
  set_gauge("bench.serve.serve_jobs_per_s", jobs_per_s);
  set_gauge("bench.serve.serve_p50_s", p50);
  set_gauge("bench.serve.serve_p99_s", p99);
  set_gauge("bench.serve.identical", mismatches == 0 ? 1.0 : 0.0);

  std::vector<RuntimeRecord> runtime;
  runtime.push_back({"serial", common::thread_count(), serial_s});
  runtime.push_back({"serve", common::thread_count(), serve_s});
  publish_runtime("serve", runtime);

  if (mismatches != 0) {
    std::cerr << "bench_serve: " << mismatches
              << " job(s) DIVERGED from the serial CLI run\n";
    return 1;
  }
  return 0;
}
