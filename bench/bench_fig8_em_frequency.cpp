// Fig. 8 — the EM-imposed rule floor vs. clock frequency.
//
// Sweeps the clock frequency on one design and reports the smart-NDR rule
// mix and saving. Expected shape: RMS current density scales linearly with
// frequency, so the minimum feasible wire width ratchets up - narrow rules
// disappear from the mix, savings compress, and beyond the technology's
// capability (~4 GHz for this stack) even the widest rule leaves residual
// EM violations.
#include "common.hpp"

int main() {
  using namespace sndr;
  using namespace sndr::bench;
  using units::GHz;

  workload::DesignSpec spec = workload::paper_benchmarks()[1];  // jpeg_like
  const Flow base = build_flow(spec);

  std::vector<std::string> cols{"freq (GHz)", "smart P (mW)", "saving"};
  for (const tech::RoutingRule& r : base.tech.rules) cols.push_back(r.name);
  cols.push_back("EM viol");
  report::Table t(cols);

  for (const double ghz : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}) {
    Flow f = base;
    f.design.constraints.clock_freq = ghz * GHz;
    const auto blanket = eval_uniform(f, f.tech.rules.blanket_index());
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    std::vector<std::string> row{
        report::fmt(ghz, 1),
        report::fmt(units::to_mW(smart.final_eval.power.total_power), 2),
        report::fmt_pct(smart.final_eval.power.total_power /
                            blanket.power.total_power -
                        1.0)};
    for (const int c : smart.rule_histogram) row.push_back(std::to_string(c));
    row.push_back(std::to_string(smart.final_eval.em_violations));
    t.add_row(std::move(row));
  }
  finish(t, "Fig. 8: rule mix and saving vs clock frequency (jpeg_like)",
         "fig8_em_frequency.csv");
  return 0;
}
