// Scale ladder — throughput and peak memory at 10k / 100k / 1M nets.
//
// Each rung builds a synthetic pre-buffered clock tree (workload/scale.hpp;
// no CTS, so rung cost is the pipeline under test, not synthesis), then
// times the pipeline stages — extract (eager GeometryCache build),
// evaluate, optimize — and reruns the optimizer with a geometry budget of
// 1/4 the unbounded cache footprint, asserting the assignment is bitwise
// identical (the budget contract: eviction changes WHEN geometry is built,
// never WHAT).
//
// Per rung the manifest gets stable gauges (no thread suffix, so
// scripts/bench_check.sh can gate them across runs):
//   bench.scale_ladder.<rung>.nets_per_s            extract+eval+optimize
//   bench.scale_ladder.<rung>.geometry_unbounded_bytes
//   bench.scale_ladder.<rung>.geometry_budget_bytes       (= unbounded/4)
//   bench.scale_ladder.<rung>.geometry_budget_highwater_bytes
//   bench.scale_ladder.<rung>.geometry_budget_evictions
//   bench.scale_ladder.<rung>.arena_peak_bytes
//   bench.scale_ladder.<rung>.peak_rss_bytes
//   bench.scale_ladder.<rung>.budget_identical            (must stay 1)
// plus the usual per-stage RuntimeRecords in BENCH_runtime.json.
//
// Rungs: 10k and 100k by default; the 1M rung is opt-in via
// SNDR_SCALE_LADDER_1M=1 (minutes of runtime and ~GBs of RSS). Override
// the whole ladder with SNDR_SCALE_RUNGS=<n1,n2,...>.
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>

#include "common.hpp"
#include "extract/net_geometry.hpp"
#include "workload/scale.hpp"

namespace {

using namespace sndr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;  // KiB on Linux.
}

/// "r10k" / "r100k" / "r1m" — stable gauge-name fragments per rung.
std::string rung_name(int nets) {
  if (nets % 1000000 == 0) return "r" + std::to_string(nets / 1000000) + "m";
  if (nets % 1000 == 0) return "r" + std::to_string(nets / 1000) + "k";
  return "r" + std::to_string(nets);
}

std::vector<int> ladder_rungs() {
  if (const char* env = std::getenv("SNDR_SCALE_RUNGS");
      env != nullptr && env[0] != '\0') {
    std::vector<int> rungs;
    std::istringstream is(env);
    std::string tok;
    while (std::getline(is, tok, ',')) rungs.push_back(std::stoi(tok));
    return rungs;
  }
  std::vector<int> rungs = {10000, 100000};
  if (const char* one_m = std::getenv("SNDR_SCALE_LADDER_1M");
      one_m != nullptr && one_m[0] != '\0') {
    rungs.push_back(1000000);
  }
  return rungs;
}

void set_gauge(const std::string& name, double value) {
  obs::MetricsRegistry::instance().set(
      obs::MetricsRegistry::instance().gauge(name), value);
}

}  // namespace

int main() {
  using namespace sndr::bench;

  const tech::Technology tech = tech::Technology::make_default_45nm();
  report::Table t({"rung", "nets", "gen (s)", "extract (s)", "eval (s)",
                   "opt (s)", "nets/s", "geom (MB)", "budget (MB)",
                   "opt+budget (s)", "identical"});
  std::vector<RuntimeRecord> records;
  const int threads = common::thread_count();
  const auto record = [&records, threads](const std::string& stage,
                                          double seconds) {
    records.push_back({stage, threads, seconds});
  };

  bool all_identical = true;
  for (const int nets : ladder_rungs()) {
    const std::string rung = rung_name(nets);
    common::reset_arena_highwater();

    workload::ScaleSpec spec;
    spec.name = rung;
    spec.num_nets = nets;
    auto t0 = Clock::now();
    const workload::ScaleWorkload w = make_scale_workload(spec, tech);
    const double gen_s = seconds_since(t0);
    record(rung + ".generate", gen_s);

    // Unbounded pipeline: eager extract, evaluate, optimize.
    t0 = Clock::now();
    const extract::GeometryCache unbounded(w.tree, w.design, w.nets);
    const double extract_s = seconds_since(t0);
    record(rung + ".extract", extract_s);

    const ndr::RuleAssignment blanket =
        ndr::assign_all(w.nets, tech.rules.blanket_index());
    t0 = Clock::now();
    const ndr::FlowEvaluation base_eval = ndr::evaluate(
        w.tree, w.design, tech, w.nets, blanket, {}, &unbounded);
    const double eval_s = seconds_since(t0);
    record(rung + ".evaluate", eval_s);

    ndr::OptimizerOptions opt;
    t0 = Clock::now();
    const ndr::SmartNdrResult ref =
        ndr::optimize_smart_ndr(w.tree, w.design, tech, w.nets, opt);
    const double opt_s = seconds_since(t0);
    record(rung + ".optimize", opt_s);

    const double pipeline_s = extract_s + eval_s + opt_s;
    const double nets_per_s = nets / pipeline_s;
    const std::size_t unbounded_bytes = unbounded.resident_bytes();
    const std::size_t budget = unbounded_bytes / 4;

    // Budgeted rerun: 1/4 of the unbounded geometry footprint, bitwise
    // identical output or the rung fails.
    opt.geometry_budget_bytes = budget;
    t0 = Clock::now();
    const ndr::SmartNdrResult budgeted =
        ndr::optimize_smart_ndr(w.tree, w.design, tech, w.nets, opt);
    const double opt_budget_s = seconds_since(t0);
    record(rung + ".optimize_budgeted", opt_budget_s);
    const bool identical =
        ref.assignment == budgeted.assignment &&
        ref.final_eval.power.switched_cap ==
            budgeted.final_eval.power.switched_cap &&
        ref.final_eval.timing.sink_arrival ==
            budgeted.final_eval.timing.sink_arrival;
    all_identical = all_identical && identical;

    // Cache behaviour under the budget, measured on an evaluate pass with
    // an explicitly budgeted cache (the optimizer's internal cache is not
    // exposed): the high-water mark may exceed the budget only by the
    // entries pinned at the peak.
    const extract::GeometryCache capped(w.tree, w.design, w.nets, budget,
                                        {});
    const ndr::FlowEvaluation capped_eval = ndr::evaluate(
        w.tree, w.design, tech, w.nets, blanket, {}, &capped);
    const bool eval_identical =
        base_eval.power.switched_cap == capped_eval.power.switched_cap &&
        base_eval.timing.sink_arrival == capped_eval.timing.sink_arrival;
    all_identical = all_identical && eval_identical;

    const std::string g = "bench.scale_ladder." + rung + ".";
    set_gauge(g + "nets", nets);
    set_gauge(g + "nets_per_s", nets_per_s);
    set_gauge(g + "geometry_unbounded_bytes",
              static_cast<double>(unbounded_bytes));
    set_gauge(g + "geometry_budget_bytes", static_cast<double>(budget));
    set_gauge(g + "geometry_budget_highwater_bytes",
              static_cast<double>(capped.highwater_bytes()));
    set_gauge(g + "geometry_budget_evictions",
              static_cast<double>(capped.evictions()));
    set_gauge(g + "arena_peak_bytes",
              static_cast<double>(common::arena_used_highwater()));
    set_gauge(g + "peak_rss_bytes", peak_rss_bytes());
    set_gauge(g + "budget_identical",
              identical && eval_identical ? 1.0 : 0.0);

    t.add_row({rung, std::to_string(nets), report::fmt(gen_s, 2),
               report::fmt(extract_s, 2), report::fmt(eval_s, 2),
               report::fmt(opt_s, 2), report::fmt(nets_per_s, 0),
               report::fmt(unbounded_bytes / (1024.0 * 1024.0), 1),
               report::fmt(budget / (1024.0 * 1024.0), 1),
               report::fmt(opt_budget_s, 2),
               identical && eval_identical ? "yes" : "NO"});
  }

  finish(t, "Scale ladder: throughput and peak memory per rung",
         "scale_ladder.csv");
  publish_runtime("scale_ladder", records);

  if (!all_identical) {
    std::cerr << "bench_scale_ladder: budgeted output DIVERGED from the "
                 "unbounded run\n";
    return 1;
  }
  return 0;
}
