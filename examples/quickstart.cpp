// Quickstart: the whole smart-NDR flow on a 200-sink design in ~40 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "tech/technology.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace sndr;
  using units::to_fF;
  using units::to_ps;
  using units::to_uW;

  // 1. A design: 200 sinks, uniform spread (swap in your own Design here).
  const netlist::Design design =
      workload::make_design(workload::quickstart_spec());
  const tech::Technology tech = tech::Technology::make_default_45nm();

  // 2. Clock tree synthesis (topology + balanced embedding + buffering).
  cts::CtsResult cts = cts::synthesize(design, tech);
  route::reroute_for_congestion(cts.tree, design.congestion);
  cts::refine_skew(cts.tree, design, tech);
  const netlist::NetList nets = netlist::build_nets(cts.tree);
  std::cout << "CTS: " << cts.buffers << " buffers, " << nets.size()
            << " nets, " << units::to_mm(cts.wirelength) << " mm wire\n\n";

  // 3. Baselines: every net on the default rule / on the blanket NDR.
  const auto all_default =
      ndr::evaluate(cts.tree, design, tech, nets,
                    ndr::assign_all(nets, tech.rules.default_index()));
  const auto blanket =
      ndr::evaluate(cts.tree, design, tech, nets,
                    ndr::assign_all(nets, tech.rules.blanket_index()));

  // 4. Smart NDR.
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(cts.tree, design, tech, nets);

  // 5. Compare.
  report::Table t({"flow", "clk power (uW)", "switched cap (fF)",
                   "skew (ps)", "max slew (ps)", "slew viol", "EM viol",
                   "unc viol", "feasible"});
  const auto row = [&](const char* name, const ndr::FlowEvaluation& ev) {
    t.add_row({name, report::fmt(to_uW(ev.power.total_power)),
               report::fmt(to_fF(ev.power.switched_cap)),
               report::fmt(to_ps(ev.timing.skew())),
               report::fmt(to_ps(ev.timing.max_slew)),
               std::to_string(ev.slew_violations),
               std::to_string(ev.em_violations),
               std::to_string(ev.uncertainty_violations),
               ev.feasible() ? "yes" : "NO"});
  };
  row("all-default", all_default);
  row("blanket-NDR", blanket);
  row("smart-NDR", smart.final_eval);
  t.print(std::cout);

  const double save = 1.0 - smart.final_eval.power.total_power /
                                blanket.power.total_power;
  std::cout << "\nSmart NDR saves " << report::fmt_pct(save)
            << " clock power vs blanket NDR ("
            << smart.stats.commits << " rule changes, "
            << smart.stats.exact_net_evals << " exact net evals)\n";
  std::cout << "Rule mix:";
  for (int r = 0; r < tech.rules.size(); ++r) {
    std::cout << ' ' << tech.rules[r].name << '='
              << smart.rule_histogram[r];
  }
  std::cout << '\n';
  return 0;
}
