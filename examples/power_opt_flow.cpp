// Full clock-power optimization flow on a mid-size design, comparing all
// four rule-assignment strategies the paper discusses:
//
//   all-default  — every net at 1W1S (the power floor, but violates
//                  variation/slew/EM constraints),
//   blanket-NDR  — every net at 2W2S (industry default practice),
//   level-based  — wide rules on the top tree levels only (the common
//                  hand-tuned compromise),
//   smart-NDR    — the paper's per-net optimized assignment.
//
// Usage: power_opt_flow [sinks] [seed]
#include <cstdlib>
#include <iostream>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sndr;
  using units::to_fF;
  using units::to_mW;
  using units::to_ps;

  workload::DesignSpec spec;
  spec.name = "power_opt_flow";
  spec.num_sinks = argc > 1 ? std::atoi(argv[1]) : 2048;
  spec.dist = workload::SinkDistribution::kMixed;
  spec.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 23;
  const netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();

  cts::CtsResult cts = cts::synthesize(design, tech);
  route::reroute_for_congestion(cts.tree, design.congestion);
  cts::refine_skew(cts.tree, design, tech);
  const netlist::NetList nets = netlist::build_nets(cts.tree);
  std::cout << "design: " << spec.num_sinks << " sinks, core "
            << units::to_mm(design.core.width()) << " mm, " << cts.buffers
            << " buffers, " << nets.size() << " nets, "
            << units::to_mm(cts.wirelength) << " mm clock wire\n\n";

  const int def = tech.rules.default_index();
  const int blk = tech.rules.blanket_index();

  report::Table t({"flow", "power (mW)", "wire cap (fF)", "sw cap (fF)",
                   "skew (ps)", "slew (ps)", "unc (ps)", "viol s/e/u",
                   "util", "feasible"});
  const auto row = [&](const std::string& name,
                       const ndr::FlowEvaluation& ev) {
    t.add_row({name, report::fmt(to_mW(ev.power.total_power), 3),
               report::fmt(to_fF(ev.power.wire_cap_gnd +
                                 ev.power.wire_cap_cpl), 0),
               report::fmt(to_fF(ev.power.switched_cap), 0),
               report::fmt(to_ps(ev.timing.skew()), 1),
               report::fmt(to_ps(ev.timing.max_slew), 1),
               report::fmt(to_ps(ev.variation.max_uncertainty), 1),
               std::to_string(ev.slew_violations) + "/" +
                   std::to_string(ev.em_violations) + "/" +
                   std::to_string(ev.uncertainty_violations),
               report::fmt(ev.max_track_util, 2),
               ev.feasible() ? "yes" : "NO"});
  };

  row("all-default",
      ndr::evaluate(cts.tree, design, tech, nets, ndr::assign_all(nets, def)));
  const auto blanket = ndr::evaluate(cts.tree, design, tech, nets,
                                     ndr::assign_all(nets, blk));
  row("blanket-NDR", blanket);
  row("level-2",
      ndr::evaluate(cts.tree, design, tech, nets,
                    ndr::assign_level_based(nets, 2, blk, def)));
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(cts.tree, design, tech, nets);
  row("smart-NDR", smart.final_eval);
  t.print(std::cout);

  std::cout << "\nsmart vs blanket: power "
            << report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0)
            << ", commits " << smart.stats.commits << ", passes "
            << smart.stats.passes << ", exact evals "
            << smart.stats.exact_net_evals << ", train "
            << report::fmt(smart.stats.train_seconds, 2) << "s, optimize "
            << report::fmt(smart.stats.optimize_seconds, 2) << "s\n";
  std::cout << "rule mix:";
  for (int r = 0; r < tech.rules.size(); ++r) {
    std::cout << ' ' << tech.rules[r].name << '='
              << smart.rule_histogram[r];
  }
  std::cout << '\n';
  return 0;
}
