// Exploring smart NDR in a user-defined technology.
//
// Shows how to (1) describe a custom metal stack / rule set / buffer kit in
// the text format, (2) round-trip it through files, and (3) compare how the
// optimizer exploits a richer vs poorer rule set — the ablation a CAD team
// would run before committing NDR definitions into their flow kit.
//
// Usage: custom_technology [sinks]
#include <cstdlib>
#include <iostream>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "workload/generator.hpp"

namespace {

// A 28nm-flavored stack: tighter pitch, higher sheet resistance, nastier
// coupling, and a rule menu to be ablated below.
const char* kCustomStack = R"(
name = custom28
vdd = 0.9
aggressor_activity = 0.35
layer.name = M6
layer.min_width = 0.10
layer.min_space = 0.10
layer.r_sheet = 0.35
layer.c_area = 0.35e-15
layer.c_fringe = 0.040e-15
layer.k_couple = 14.0e-18
layer.s_offset = 0.03
layer.em_jmax = 2.2e-3
layer.sigma_width = 0.004
layer.sigma_thickness = 0.05
)";

const char* kRichRules = R"(
rule = 1W1S 1 1
rule = 1W2S 1 2
rule = 1.5W1.5S 1.5 1.5
rule = 2W1S 2 1
rule = 2W2S 2 2
rule = 2W3S 2 3
rule = 3W3S 3 3
blanket_rule = 2W2S
)";

const char* kPoorRules = R"(
rule = 1W1S 1 1
rule = 2W2S 2 2
blanket_rule = 2W2S
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sndr;

  workload::DesignSpec spec;
  spec.name = "custom_technology";
  spec.num_sinks = argc > 1 ? std::atoi(argv[1]) : 1024;
  spec.seed = 3;
  const netlist::Design design = workload::make_design(spec);

  report::Table t({"rule set", "rules", "blanket P (mW)", "smart P (mW)",
                   "saving", "commits", "feasible"});
  for (const auto& [label, rules] :
       {std::pair{"rich", kRichRules}, std::pair{"poor", kPoorRules}}) {
    const tech::Technology tech = tech::Technology::from_text(
        std::string(kCustomStack) + rules);

    cts::CtsResult cts = cts::synthesize(design, tech);
    route::reroute_for_congestion(cts.tree, design.congestion);
    cts::refine_skew(cts.tree, design, tech);
    const netlist::NetList nets = netlist::build_nets(cts.tree);

    const auto blanket =
        ndr::evaluate(cts.tree, design, tech, nets,
                      ndr::assign_all(nets, tech.rules.blanket_index()));
    const ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(cts.tree, design, tech, nets);

    t.add_row({label, std::to_string(tech.rules.size()),
               report::fmt(units::to_mW(blanket.power.total_power), 2),
               report::fmt(units::to_mW(smart.final_eval.power.total_power),
                           2),
               report::fmt_pct(smart.final_eval.power.total_power /
                                   blanket.power.total_power -
                               1.0),
               std::to_string(smart.stats.commits),
               smart.final_eval.feasible() ? "yes" : "NO"});
  }
  std::cout << "Rule-set ablation on a custom 28nm-flavored stack\n\n";
  t.print(std::cout);

  // Round-trip demonstration: serialize and re-parse.
  const tech::Technology base = tech::Technology::from_text(
      std::string(kCustomStack) + kRichRules);
  const tech::Technology reparsed =
      tech::Technology::from_text(base.to_text());
  std::cout << "\ntext round-trip: "
            << (reparsed.rules.size() == base.rules.size() &&
                        reparsed.vdd == base.vdd
                    ? "ok"
                    : "MISMATCH")
            << " (" << reparsed.name << ", " << reparsed.rules.size()
            << " rules)\n";
  return 0;
}
