// Exporting the flow's artifacts: SPEF parasitics for a downstream signoff
// tool, and SVG renderings of the blanket vs smart rule assignments.
//
// Usage: export_artifacts [sinks] [out_prefix]
// Writes <prefix>.spef, <prefix>_blanket.svg, <prefix>_smart.svg.
#include <cstdlib>
#include <iostream>
#include <string>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "io/spef.hpp"
#include "io/svg.hpp"
#include "ndr/smart_ndr.hpp"
#include "route/congestion_route.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sndr;

  workload::DesignSpec spec;
  spec.name = "export_artifacts";
  spec.num_sinks = argc > 1 ? std::atoi(argv[1]) : 512;
  spec.dist = workload::SinkDistribution::kClustered;
  spec.seed = 19;
  const std::string prefix = argc > 2 ? argv[2] : "clock_tree";

  const netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();
  cts::CtsResult cts = cts::synthesize(design, tech);
  route::reroute_for_congestion(cts.tree, design.congestion);
  cts::refine_skew(cts.tree, design, tech);
  const netlist::NetList nets = netlist::build_nets(cts.tree);

  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(cts.tree, design, tech, nets);

  // SPEF of the final (smart) parasitics — ready for an external STA.
  io::write_spef_file(prefix + ".spef", cts.tree, design, nets,
                      smart.final_eval.parasitics);
  std::cout << "wrote " << prefix << ".spef (" << nets.size() << " nets)\n";

  // Round-trip sanity so the example doubles as a self-check.
  const io::SpefFile back = io::read_spef_file(prefix + ".spef");
  double written = 0.0;
  for (const auto& par : smart.final_eval.parasitics) {
    written += par.switched_cap(1.0);
  }
  double reread = 0.0;
  for (const auto& n : back.nets) reread += n.cap_sum();
  std::cout << "round-trip cap: written " << units::to_fF(written)
            << " fF, re-read " << units::to_fF(reread) << " fF\n";

  // SVGs: same tree, blanket vs smart coloring.
  io::write_svg_file(prefix + "_blanket.svg", cts.tree, design, tech, nets,
                     ndr::assign_all(nets, tech.rules.blanket_index()));
  io::write_svg_file(prefix + "_smart.svg", cts.tree, design, tech, nets,
                     smart.assignment);
  std::cout << "wrote " << prefix << "_blanket.svg and " << prefix
            << "_smart.svg (open in a browser)\n";

  std::cout << "smart rule mix:";
  for (int r = 0; r < tech.rules.size(); ++r) {
    std::cout << ' ' << tech.rules[r].name << '=' << smart.rule_histogram[r];
  }
  std::cout << '\n';
  return 0;
}
