// Variation & signoff deep-dive: what the robustness constraints actually
// look like on a design, and how each rule attacks them.
//
// Walks one design through:
//   1. per-net variation anatomy (process sigma vs crosstalk) at each rule,
//   2. the per-sink uncertainty distribution under default/blanket/smart,
//   3. EM current-density margins per rule on the heaviest nets.
//
// Usage: variation_analysis [sinks] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace sndr;
  using units::to_ps;

  workload::DesignSpec spec;
  spec.name = "variation_analysis";
  spec.num_sinks = argc > 1 ? std::atoi(argv[1]) : 1024;
  spec.dist = workload::SinkDistribution::kClustered;
  spec.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 19;
  netlist::Design design = workload::make_design(spec);
  const tech::Technology tech = tech::Technology::make_default_45nm();

  cts::CtsResult cts = cts::synthesize(design, tech);
  route::reroute_for_congestion(cts.tree, design.congestion);
  cts::refine_skew(cts.tree, design, tech);
  const netlist::NetList nets = netlist::build_nets(cts.tree);
  const timing::AnalysisOptions aopt;

  // --- 1. Variation anatomy of a trunk net and a leaf net, per rule.
  std::cout << "1. Per-net variation anatomy (sigma / xtalk / EM, per rule)\n\n";
  report::Table anatomy({"net", "rule", "cap (fF)", "sigma (ps)",
                         "xtalk (ps)", "EM (mA/um)", "step slew (ps)"});
  const int trunk = 1;
  const int leaf = nets.size() - 1;
  for (const int net_id : {trunk, leaf}) {
    const ndr::NetSummary s =
        ndr::summarize_net(cts.tree, design, tech, nets[net_id], aopt);
    for (int r = 0; r < tech.rules.size(); ++r) {
      const ndr::NetExact e = ndr::evaluate_net_exact(
          cts.tree, design, tech, nets[net_id], tech.rules[r], s.driver_res,
          design.constraints.clock_freq);
      anatomy.add_row({(net_id == trunk ? "trunk#" : "leaf#") +
                           std::to_string(net_id),
                       tech.rules[r].name,
                       report::fmt(units::to_fF(e.cap_switched), 1),
                       report::fmt(to_ps(e.sigma_worst), 2),
                       report::fmt(to_ps(e.xtalk_worst), 2),
                       report::fmt(units::to_mA(e.em_peak), 2),
                       report::fmt(to_ps(e.step_slew_worst), 1)});
    }
  }
  anatomy.print(std::cout);

  // --- 2. Uncertainty distribution across sinks.
  std::cout << "\n2. Per-sink uncertainty (3*sigma + crosstalk) distribution\n\n";
  report::Table dist({"flow", "p50 (ps)", "p90 (ps)", "max (ps)",
                      "budget (ps)", "violations"});
  const auto add_dist = [&](const char* name,
                            const ndr::FlowEvaluation& ev) {
    std::vector<double> u = ev.variation.sink_uncertainty;
    std::sort(u.begin(), u.end());
    const auto pct = [&](double p) {
      return u[static_cast<std::size_t>(p * (u.size() - 1))];
    };
    dist.add_row({name, report::fmt(to_ps(pct(0.5)), 1),
                  report::fmt(to_ps(pct(0.9)), 1),
                  report::fmt(to_ps(u.back()), 1),
                  report::fmt(to_ps(design.constraints.max_uncertainty), 0),
                  std::to_string(ev.uncertainty_violations)});
  };
  add_dist("all-default", ndr::evaluate(cts.tree, design, tech, nets,
                                        ndr::assign_all(nets, 0)));
  add_dist("blanket-NDR",
           ndr::evaluate(cts.tree, design, tech, nets,
                         ndr::assign_all(nets, tech.rules.blanket_index())));
  const ndr::SmartNdrResult smart =
      ndr::optimize_smart_ndr(cts.tree, design, tech, nets);
  add_dist("smart-NDR", smart.final_eval);
  dist.print(std::cout);

  // --- 3. EM margins on the heaviest nets under the smart assignment.
  std::cout << "\n3. EM signoff: tightest current-density margins (smart)\n\n";
  std::vector<int> order(nets.size());
  for (int i = 0; i < nets.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return smart.final_eval.em.net_slack[a] < smart.final_eval.em.net_slack[b];
  });
  report::Table em({"net", "rule", "peak J (mA/um)", "limit", "margin"});
  for (int k = 0; k < std::min(5, nets.size()); ++k) {
    const int id = order[k];
    em.add_row({std::to_string(id),
                tech.rules[smart.assignment[id]].name,
                report::fmt(units::to_mA(
                                smart.final_eval.em.net_peak_density[id]), 2),
                report::fmt(units::to_mA(tech.clock_layer.em_jmax), 2),
                report::fmt_pct(smart.final_eval.em.net_slack[id] /
                                tech.clock_layer.em_jmax)});
  }
  em.print(std::cout);
  std::cout << "\nsmart NDR is " << (smart.final_eval.feasible() ? "" : "NOT ")
            << "feasible on all robustness constraints\n";
  return 0;
}
