// sndr — command-line driver for the smart-NDR clock power flow.
//
//   sndr generate --sinks N [--dist uniform|clustered|mixed] [--seed S]
//                 --out design.txt
//       Emit a synthetic design file.
//
//   sndr run --design design.txt [--tech tech.txt] [--spef out.spef]
//            [--svg out.svg] [--csv out.csv] [--no-smart]
//       Full flow: CTS + refinement + baselines + smart NDR + signoff
//       report; optional artifact exports.
//
//   sndr eval --design design.txt --rule 2W2S [--tech tech.txt]
//       Evaluate one uniform rule assignment (no optimization).
//
// Exit code 0 on success (and a feasible smart result for `run`), 1 on
// infeasible results, 2 on usage/input errors.
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/thread_pool.hpp"
#include "obs/manifest.hpp"
#include "cts/embedding.hpp"
#include "cts/refine.hpp"
#include "io/design_io.hpp"
#include "io/spef.hpp"
#include "io/svg.hpp"
#include "ndr/smart_ndr.hpp"
#include "report/table.hpp"
#include "route/congestion_route.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sndr;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const {
    return options.count(name) > 0;
  }
  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument '" + a + "'");
    }
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[a] = argv[++i];
    } else {
      args.options[a] = "";
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  sndr generate --sinks N [--dist uniform|clustered|mixed]\n"
      "                [--seed S] --out design.txt\n"
      "  sndr run  --design design.txt [--tech tech.txt] [--spef f]\n"
      "            [--svg f] [--csv f] [--no-smart] [--anneal N]\n"
      "            [--seed S] [--threads N]\n"
      "  sndr eval --design design.txt --rule NAME [--tech tech.txt]\n"
      "            [--threads N]\n"
      "\n"
      "  --anneal N:  refine the smart-NDR assignment with N iterations of\n"
      "               simulated annealing (--seed S seeds it; default off).\n"
      "  --threads N: evaluation-engine parallelism (default: hardware\n"
      "               concurrency; 0 = serial). Results are identical at\n"
      "               any thread count.\n"
      "  --metrics-out f: write a run manifest (sndr.run_manifest/1 JSON:\n"
      "               per-stage spans, all counters/gauges/histograms,\n"
      "               derived rates) after the command finishes.\n"
      "  --trace-out f: write the stage spans as Chrome trace JSON\n"
      "               (load in chrome://tracing or Perfetto).\n";
  return 2;
}

tech::Technology load_tech(const Args& args) {
  const std::string path = args.get("tech");
  if (path.empty()) return tech::Technology::make_default_45nm();
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open tech file " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return tech::Technology::from_text(ss.str());
}

int cmd_generate(const Args& args) {
  workload::DesignSpec spec;
  spec.num_sinks = std::stoi(args.get("sinks", "1024"));
  spec.seed = std::stoull(args.get("seed", "1"));
  const std::string dist = args.get("dist", "uniform");
  if (dist == "clustered") {
    spec.dist = workload::SinkDistribution::kClustered;
  } else if (dist == "mixed") {
    spec.dist = workload::SinkDistribution::kMixed;
  } else if (dist != "uniform") {
    throw std::runtime_error("unknown --dist '" + dist + "'");
  }
  spec.name = args.get("name", "generated");
  const std::string out = args.get("out");
  if (out.empty()) throw std::runtime_error("generate needs --out");
  io::write_design_file(out, workload::make_design(spec));
  std::cout << "wrote " << out << " (" << spec.num_sinks << " sinks, "
            << dist << ")\n";
  return 0;
}

struct BuiltFlow {
  netlist::Design design;
  tech::Technology tech;
  cts::CtsResult cts;
  netlist::NetList nets;
};

BuiltFlow build(const Args& args) {
  BuiltFlow f;
  const std::string path = args.get("design");
  if (path.empty()) throw std::runtime_error("missing --design");
  f.design = io::read_design_file(path);
  if (f.design.sinks.empty()) {
    throw std::runtime_error("design has no sinks");
  }
  f.tech = load_tech(args);
  f.cts = cts::synthesize(f.design, f.tech);
  route::reroute_for_congestion(f.cts.tree, f.design.congestion);
  cts::refine_skew(f.cts.tree, f.design, f.tech);
  f.nets = netlist::build_nets(f.cts.tree);
  return f;
}

void add_eval_row(report::Table& t, const std::string& name,
                  const ndr::FlowEvaluation& ev) {
  t.add_row({name, report::fmt(units::to_mW(ev.power.total_power), 3),
             report::fmt(units::to_fF(ev.power.switched_cap), 0),
             report::fmt(units::to_ps(ev.timing.skew()), 1),
             report::fmt(units::to_ps(ev.timing.max_slew), 1),
             std::to_string(ev.slew_violations) + "/" +
                 std::to_string(ev.em_violations) + "/" +
                 std::to_string(ev.uncertainty_violations),
             ev.feasible() ? "yes" : "NO"});
}

int cmd_run(const Args& args) {
  BuiltFlow f = build(args);
  std::cout << f.design.name << ": " << f.design.sinks.size() << " sinks, "
            << f.cts.buffers << " buffers, " << f.nets.size() << " nets, "
            << units::to_mm(f.cts.wirelength) << " mm clock wire\n\n";

  report::Table t({"flow", "P (mW)", "sw cap (fF)", "skew (ps)",
                   "slew (ps)", "viol s/e/u", "feasible"});
  add_eval_row(t, "all-default",
               ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                             ndr::assign_all(f.nets, 0)));
  const auto blanket =
      ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                    ndr::assign_all(f.nets, f.tech.rules.blanket_index()));
  add_eval_row(t, "blanket-NDR", blanket);

  bool ok = true;
  if (!args.flag("no-smart")) {
    ndr::SmartNdrResult smart =
        ndr::optimize_smart_ndr(f.cts.tree, f.design, f.tech, f.nets);
    add_eval_row(t, "smart-NDR", smart.final_eval);
    const int anneal_iters = std::stoi(args.get("anneal", "0"));
    if (anneal_iters > 0) {
      ndr::AnnealOptions aopt;
      aopt.iterations = anneal_iters;
      aopt.seed = std::stoull(args.get("seed", "1"));
      const ndr::AnnealResult sa = ndr::anneal_rules(
          f.cts.tree, f.design, f.tech, f.nets, smart.assignment, aopt);
      smart.assignment = sa.assignment;
      smart.final_eval = sa.final_eval;
      add_eval_row(t, "smart+anneal", smart.final_eval);
    }
    ok = smart.final_eval.feasible();
    t.print(std::cout);
    std::cout << "\nsmart vs blanket: "
              << report::fmt_pct(smart.final_eval.power.total_power /
                                     blanket.power.total_power -
                                 1.0)
              << " power, " << smart.stats.commits << " rule changes\n";

    if (!args.get("spef").empty()) {
      io::write_spef_file(args.get("spef"), f.cts.tree, f.design, f.nets,
                          smart.final_eval.parasitics);
      std::cout << "wrote " << args.get("spef") << "\n";
    }
    if (!args.get("svg").empty()) {
      io::write_svg_file(args.get("svg"), f.cts.tree, f.design, f.tech,
                         f.nets, smart.assignment);
      std::cout << "wrote " << args.get("svg") << "\n";
    }
    if (!args.get("csv").empty()) {
      t.write_csv(args.get("csv"));
      std::cout << "wrote " << args.get("csv") << "\n";
    }
  } else {
    t.print(std::cout);
  }
  return ok ? 0 : 1;
}

int cmd_eval(const Args& args) {
  BuiltFlow f = build(args);
  const std::string rule_name = args.get("rule");
  const int rule = f.tech.rules.find(rule_name);
  if (rule < 0) {
    throw std::runtime_error("unknown rule '" + rule_name + "'");
  }
  const auto ev = ndr::evaluate(f.cts.tree, f.design, f.tech, f.nets,
                                ndr::assign_all(f.nets, rule));
  report::Table t({"flow", "P (mW)", "sw cap (fF)", "skew (ps)",
                   "slew (ps)", "viol s/e/u", "feasible"});
  add_eval_row(t, rule_name, ev);
  t.print(std::cout);
  return ev.feasible() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Args args = parse_args(argc, argv);
    const std::string threads = args.get("threads", "-1");
    try {
      common::set_thread_count(std::stoi(threads));
    } catch (const std::exception&) {
      throw std::runtime_error("--threads expects an integer, got '" +
                               threads + "'");
    }

    int rc;
    if (args.command == "generate") {
      rc = cmd_generate(args);
    } else if (args.command == "run") {
      rc = cmd_run(args);
    } else if (args.command == "eval") {
      rc = cmd_eval(args);
    } else {
      return usage();
    }

    const std::string metrics_out = args.get("metrics-out");
    const std::string trace_out = args.get("trace-out");
    if (!metrics_out.empty()) {
      obs::RunInfo info;
      info.tool = "sndr_cli";
      info.command = args.command;
      for (int i = 2; i < argc; ++i) info.args.emplace_back(argv[i]);
      info.threads = common::thread_count();
      info.seed = std::stoull(args.get("seed", "0"));
      info.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      obs::write_run_manifest(metrics_out, info);
      std::cout << "wrote " << metrics_out << "\n";
    }
    if (!trace_out.empty()) {
      obs::write_chrome_trace_file(trace_out);
      std::cout << "wrote " << trace_out << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
