// sndr — command-line driver for the smart-NDR clock power flow.
//
//   sndr generate --sinks N [--dist uniform|clustered|mixed] [--seed S]
//                 --out design.txt
//       Emit a synthetic design file.
//
//   sndr run [--config flow.conf] --design design.txt [--tech tech.txt]
//            [--spef f] [--svg f] [--csv f] [--no-smart] [--anneal N]
//            [--corners] [--seed S] [--threads N] [--results-dir d]
//            [--memory-budget BYTES] [--checkpoint f]
//       Full staged flow (load, cts, route, nets, extract, optimize,
//       anneal?, corners?, report) on a flow::Session; optional artifact
//       exports land under --results-dir (default: results/).
//       --memory-budget caps the geometry caches (bit-identical results,
//       bounded peak memory); --checkpoint makes the anneal stage
//       resumable across runs.
//
//   sndr eval [--config flow.conf] --design design.txt --rule 2W2S
//             [--tech tech.txt] [--threads N]
//       Evaluate one uniform rule assignment (no optimization).
//
//   sndr dse [--config flow.conf] --design design.txt
//            [--dse-mode grid|refine] [--points N] [--dse-out d]
//            [--dse-power-weight L] [--dse-max-skew L]
//            [--dse-uncertainty-margin L]
//       Sweep the (power x skew x guardband) space and emit the Pareto
//       front (src/dse/explorer.hpp): pareto.csv, front.json, and one
//       manifest + warm-start seed per point under results/<dse-out>/.
//       Each axis L is a comma-separated value list; every sweep point is
//       bitwise-reproducible standalone via its emitted config.
//
//   sndr help   (also --help / -h, or --help after any command)
//       Print the flag reference to stdout and exit 0.
//
//   sndr version   (also --version)
//       Print the build's git describe plus the manifest and checkpoint
//       schema versions; exit 0.
//
// `run` executes through serve::execute_job — the same entry point the
// sndr_serve service uses — so a config run standalone here is bitwise
// identical to the same config run through the service.
//
// Every flow option is a config key: `--key value` on the command line and
// `key = value` lines in the --config file set the same FlowConfig, with
// CLI flags overriding file values overriding defaults.
//
// Exit codes map the typed error layer (common/status.hpp):
//   0  success (and a feasible result for run/eval)
//   1  infeasible result
//   2  usage error / invalid argument
//   3  missing file (design, tech, config)
//   4  malformed input (parse error, with a path:line diagnostic)
//   5  I/O failure writing an artifact
//   6  internal error
//   7  cancelled (cooperative cancellation, service context)
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "flow/checkpoint.hpp"
#include "flow/flow.hpp"
#include "flow/session.hpp"
#include "io/design_io.hpp"
#include "obs/manifest.hpp"
#include "report/table.hpp"
#include "serve/submit.hpp"
#include "tech/units.hpp"
#include "workload/generator.hpp"

namespace {

using namespace sndr;

struct Args {
  std::string command;
  std::vector<std::pair<std::string, std::string>> options;  ///< argv order.
  bool flag(const std::string& name) const {
    for (const auto& [k, v] : options) {
      if (k == name) return true;
    }
    return false;
  }
  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    for (const auto& [k, v] : options) {
      if (k == name) return v;
    }
    return fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument '" + a + "'");
    }
    a = a.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options.emplace_back(a, argv[++i]);
    } else {
      args.options.emplace_back(a, "");
    }
  }
  return args;
}

/// The full flag reference. `sndr help` prints it to stdout (exit 0);
/// a usage error prints it to stderr (exit 2). Every FlowConfig key must
/// appear below — cli_test cross-checks this text against
/// FlowConfig::known_keys() so the help can never drift from set().
void print_usage(std::ostream& os) {
  os <<
      "usage:\n"
      "  sndr help       (or --help on any command): this text, exit 0.\n"
      "  sndr version    (or --version): git describe + manifest and\n"
      "                  checkpoint schema versions, exit 0.\n"
      "  sndr generate --sinks N [--dist uniform|clustered|mixed]\n"
      "                [--seed S] [--name NAME] --out design.txt\n"
      "  sndr run  [--config f] --design design.txt [--tech tech.txt]\n"
      "            [--spef f] [--svg f] [--csv f] [--no-smart]\n"
      "            [--anneal N] [--corners] [--seed S] [--threads N]\n"
      "            [--results-dir d] [--memory-budget BYTES]\n"
      "            [--checkpoint f] [--checkpoint-interval N]\n"
      "  sndr eval [--config f] --design design.txt --rule NAME\n"
      "            [--tech tech.txt] [--threads N]\n"
      "  sndr dse  [--config f] --design design.txt [--dse-mode grid|refine]\n"
      "            [--points N] [--dse-out d] [--dse-power-weight L]\n"
      "            [--dse-max-skew L] [--dse-uncertainty-margin L]\n"
      "\n"
      "  --config f:  read `key = value` flow options from f; command-line\n"
      "               flags override file values (file overrides defaults).\n"
      "               Every key below is settable both ways (--skew-margin\n"
      "               and `skew_margin = ...` are the same key).\n"
      "  --smart BOOL / --no-smart: run (or skip) the smart-NDR optimizer\n"
      "               stage (default on).\n"
      "  --anneal N:  refine the smart-NDR assignment with N iterations of\n"
      "               simulated annealing (--seed S seeds it; default off).\n"
      "  --corners:   add multi-corner signoff of the final assignment.\n"
      "  --threads N: evaluation-engine parallelism (default: hardware\n"
      "               concurrency; 0 = serial). Results are identical at\n"
      "               any thread count.\n"
      "  --memory-budget B: byte budget for the geometry caches (k/M/G\n"
      "               suffixes accepted, e.g. 256M; 0 = unbounded). Under\n"
      "               a budget cold per-net geometry is LRU-evicted and\n"
      "               rebuilt on demand — results stay bit-identical, only\n"
      "               peak memory changes. See DESIGN.md `Memory budget`.\n"
      "  --checkpoint f: snapshot anneal progress to f every\n"
      "               --checkpoint-interval iterations (default 5000); a\n"
      "               rerun with the same inputs resumes from the snapshot\n"
      "               bit-identically. Relative f lands in --results-dir.\n"
      "  --results-dir d: directory for generated artifacts (default\n"
      "               `results`); relative --spef/--svg/--csv/--metrics-out\n"
      "               /--trace-out paths resolve under it.\n"
      "  --metrics-out f: write a run manifest (sndr.run_manifest/2 JSON:\n"
      "               per-stage records and spans, all counters/gauges/\n"
      "               histograms, derived rates).\n"
      "  --trace-out f: write the stage spans as Chrome trace JSON\n"
      "               (load in chrome://tracing or Perfetto).\n"
      "\n"
      "optimizer keys (same --flag / config-key duality):\n"
      "  --scoring models|exact_net|full_sta, --training-samples N,\n"
      "  --slew-margin F, --uncertainty-margin F, --em-margin F,\n"
      "  --skew-margin F, --max-passes N, --full-refresh-interval N,\n"
      "  --max-repair-rounds N.\n"
      "anneal keys:\n"
      "  --anneal-t-start-frac F, --anneal-t-end-frac F,\n"
      "  --anneal-full-refresh-interval N, --prewarm BOOL (batched\n"
      "  exact-eval prewarm of the anneal memo, default true; results are\n"
      "  bitwise identical either way — false measures the lazy path).\n"
      "sweep keys (sndr dse; also usable on run for a single point):\n"
      "  --power-weight F: objective weight on switched cap (> 0; 1.0 is\n"
      "               the bitwise-neutral default). The DSE power axis.\n"
      "  --max-skew PS: override the design's max-skew constraint, in\n"
      "               picoseconds (0 = keep the design's). The skew axis.\n"
      "  --warm-start f: seed the optimizer from an sndr.assignment_seed/1\n"
      "               file (resolved under --results-dir); DSE writes one\n"
      "               per point, making warm-started points reproducible.\n"
      "  --dse BOOL:  turn the run into a sweep (sndr dse sets this).\n"
      "  --dse-mode grid|refine: full Cartesian grid, or adaptive\n"
      "               refinement that bisects the largest front gap.\n"
      "  --dse-points N (= --points): refine-mode point budget\n"
      "               (default: 2x the corner count).\n"
      "  --dse-out d: sweep artifact directory under --results-dir\n"
      "               (default `dse`): pareto.csv, front.json, sweep.ck,\n"
      "               per-point manifests and seeds.\n"
      "  --dse-power-weight L, --dse-max-skew L,\n"
      "  --dse-uncertainty-margin L: comma-separated axis value lists\n"
      "               (e.g. 0.5,1.0,2.0); an empty axis uses the matching\n"
      "               scalar key as a single grid line.\n"
      "\n"
      "exit codes: 0 ok, 1 infeasible, 2 usage, 3 missing file,\n"
      "            4 parse error, 5 io error, 6 internal, 7 cancelled\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

int exit_code(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kOk: return 0;
    case common::StatusCode::kInvalidArgument: return 2;
    case common::StatusCode::kNotFound: return 3;
    case common::StatusCode::kParseError: return 4;
    case common::StatusCode::kIoError: return 5;
    case common::StatusCode::kInternal: return 6;
    case common::StatusCode::kCancelled: return 7;
  }
  return 6;
}

int fail(const common::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return exit_code(status);
}

/// Flags every command accepts on top of its own set.
const std::vector<std::string>& common_flags() {
  static const std::vector<std::string> flags = {
      "config", "metrics-out", "trace-out", "seed", "threads"};
  return flags;
}

common::Status check_known_flags(const Args& args,
                                 std::vector<std::string> allowed) {
  for (const std::string& f : common_flags()) allowed.push_back(f);
  // Flags and config keys share spellings up to hyphen/underscore
  // (FlowConfig::set normalizes the same way).
  for (std::string& a : allowed) std::replace(a.begin(), a.end(), '-', '_');
  for (const auto& [raw_key, value] : args.options) {
    std::string key = raw_key;
    std::replace(key.begin(), key.end(), '-', '_');
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return common::Status::InvalidArgument("unknown flag '--" + raw_key +
                                             "' for '" + args.command + "'");
    }
  }
  return common::Status::Ok();
}

/// FlowConfig from --config file (if any) then CLI flags, in that order —
/// CLI wins. `extra_passthrough` names flags handled outside FlowConfig.
common::Status build_config(const Args& args, int argc, char** argv,
                            const std::vector<std::string>& passthrough,
                            flow::FlowConfig& config) {
  const std::string config_path = args.get("config");
  if (!config_path.empty()) {
    if (common::Status s = config.from_file(config_path); !s.ok()) return s;
  }
  for (const auto& [key, value] : args.options) {
    if (key == "config") continue;
    if (std::find(passthrough.begin(), passthrough.end(), key) !=
        passthrough.end()) {
      continue;
    }
    if (key == "no-smart") {
      if (common::Status s = config.set("smart", "false"); !s.ok()) return s;
      continue;
    }
    if (common::Status s = config.set(key, value); !s.ok()) return s;
  }
  config.tool = "sndr_cli";
  config.command = args.command;
  for (int i = 2; i < argc; ++i) config.raw_args.emplace_back(argv[i]);
  return common::Status::Ok();
}

void ensure_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
}

int cmd_generate(const Args& args) {
  workload::DesignSpec spec;
  spec.num_sinks = std::stoi(args.get("sinks", "1024"));
  spec.seed = std::stoull(args.get("seed", "1"));
  const std::string dist = args.get("dist", "uniform");
  if (dist == "clustered") {
    spec.dist = workload::SinkDistribution::kClustered;
  } else if (dist == "mixed") {
    spec.dist = workload::SinkDistribution::kMixed;
  } else if (dist != "uniform") {
    return fail(common::Status::InvalidArgument("unknown --dist '" + dist +
                                                "'"));
  }
  spec.name = args.get("name", "generated");
  const std::string out = args.get("out");
  if (out.empty()) {
    return fail(common::Status::InvalidArgument("generate needs --out"));
  }
  try {
    io::write_design_file(out, workload::make_design(spec));
  } catch (...) {
    return fail(common::classify_exception(common::StatusCode::kIoError));
  }
  std::cout << "wrote " << out << " (" << spec.num_sinks << " sinks, "
            << dist << ")\n";
  return 0;
}

void print_loaded(const serve::JobOutcome& outcome) {
  std::cout << outcome.design_name << ": " << outcome.sinks << " sinks, "
            << outcome.buffers << " buffers, " << outcome.nets << " nets, "
            << units::to_mm(outcome.wirelength) << " mm clock wire\n\n";
}

int cmd_run(const Args& args, int argc, char** argv) {
  // No passthrough flags: --no-smart is translated inside build_config
  // (it must not be listed here, or the passthrough skip would swallow it
  // before the translation runs).
  flow::FlowConfig config;
  if (common::Status s = build_config(args, argc, argv, {}, config);
      !s.ok()) {
    return fail(s);
  }

  // The standalone CLI is a thin client over the same execute_job entry
  // point the service dispatches through (no shared cache here: one run,
  // nothing to share).
  const flow::FlowConfig cfg = config;  // kept for artifact path echoes.
  const serve::JobOutcome outcome =
      serve::execute_job(std::move(config), nullptr);
  if (!outcome.status.ok() || !outcome.result) return fail(outcome.status);
  const flow::FlowResult& result = *outcome.result;

  print_loaded(outcome);
  result.table.print(std::cout);
  if (result.smart) {
    std::cout << "\nsmart vs blanket: "
              << report::fmt_pct(result.final_eval().power.total_power /
                                     result.blanket_eval.power.total_power -
                                 1.0)
              << " power, " << result.smart->stats.commits
              << " rule changes\n";
  }
  if (result.corners) {
    std::cout << (result.corners->feasible()
                      ? "corners: feasible at every corner\n"
                      : "corners: INFEASIBLE at some corner\n");
  }
  for (const std::string& out :
       {cfg.spef_out, cfg.svg_out, cfg.csv_out, cfg.metrics_out,
        cfg.trace_out}) {
    if (!out.empty()) std::cout << "wrote " << cfg.output_path(out) << "\n";
  }
  return result.feasible ? 0 : 1;
}

int cmd_dse(const Args& args, int argc, char** argv) {
  flow::FlowConfig config;
  if (common::Status s = build_config(args, argc, argv, {"points"}, config);
      !s.ok()) {
    return fail(s);
  }
  if (args.flag("points")) {
    if (common::Status s = config.set("dse_points", args.get("points"));
        !s.ok()) {
      return fail(s);
    }
  }
  if (common::Status s = config.set("dse", "true"); !s.ok()) return fail(s);

  // Same entry point the service's `dse` job type dispatches through.
  const std::string dse_dir = config.output_path(config.dse_out);
  const serve::JobOutcome outcome =
      serve::execute_job(std::move(config), nullptr);
  if (!outcome.status.ok() || !outcome.dse) return fail(outcome.status);
  const dse::SweepResult& sweep = *outcome.dse;

  std::cout << sweep.points.size() << " points (" << sweep.solved_points
            << " solved, " << sweep.resumed_points << " resumed, "
            << sweep.warm_started << " warm-started), front of "
            << sweep.front.size() << ":\n\n";
  report::Table t({"id", "pw", "max skew (ps)", "guardband", "P (mW)",
                   "skew (ps)", "warm from"});
  for (const int id : sweep.front) {
    const dse::PointResult& p = sweep.points[static_cast<std::size_t>(id)];
    t.add_row({std::to_string(p.id),
               report::fmt(p.settings.power_weight, 3),
               report::fmt(p.settings.max_skew_ps, 1),
               report::fmt(p.settings.uncertainty_margin, 3),
               report::fmt(units::to_mW(p.total_power), 3),
               report::fmt(units::to_ps(p.skew), 1),
               p.warm_from < 0 ? "-" : std::to_string(p.warm_from)});
  }
  t.print(std::cout);
  std::cout << "\nwrote " << dse_dir << "/pareto.csv\n"
            << "wrote " << dse_dir << "/front.json\n";
  return sweep.front.empty() ? 1 : 0;
}

int cmd_version() {
  std::cout << "sndr " << obs::git_describe() << "\n"
            << "manifest schema:   " << obs::kManifestSchema << "\n"
            << "checkpoint schema: " << flow::kCheckpointSchema << "\n";
  return 0;
}

int cmd_eval(const Args& args, int argc, char** argv) {
  flow::FlowConfig config;
  if (common::Status s = build_config(args, argc, argv, {"rule"}, config);
      !s.ok()) {
    return fail(s);
  }
  const std::string rule_name = args.get("rule");
  if (rule_name.empty()) {
    return fail(common::Status::InvalidArgument("eval needs --rule"));
  }

  flow::Session session(std::move(config));
  flow::Flow f(session);
  if (common::Status s = f.prepare(); !s.ok()) return fail(s);

  const int rule = session.technology().rules.find(rule_name);
  if (rule < 0) {
    return fail(common::Status::InvalidArgument("unknown rule '" +
                                                rule_name + "'"));
  }
  obs::ScopeBinding binding(session.obs_scope());
  const auto ev = ndr::evaluate(
      session.cts().tree, session.design(), session.technology(),
      session.nets(), ndr::assign_all(session.nets(), rule), {},
      session.geometry());
  report::Table t = flow::make_eval_table();
  flow::add_eval_row(t, rule_name, ev);
  t.print(std::cout);

  // Written here, inside the session's scope binding, so the manifest
  // snapshots this session's registry.
  const flow::FlowConfig& cfg = session.config();
  try {
    if (!cfg.metrics_out.empty()) {
      obs::RunInfo info;
      info.tool = cfg.tool;
      info.command = cfg.command;
      info.args = cfg.raw_args;
      info.threads = common::thread_count();
      info.seed = cfg.seed;
      info.stages = f.stages();
      const std::string path = cfg.output_path(cfg.metrics_out);
      ensure_parent_dir(path);
      obs::write_run_manifest(path, info);
      std::cout << "wrote " << path << "\n";
    }
    if (!cfg.trace_out.empty()) {
      const std::string path = cfg.output_path(cfg.trace_out);
      ensure_parent_dir(path);
      obs::write_chrome_trace_file(path);
      std::cout << "wrote " << path << "\n";
    }
  } catch (...) {
    return fail(common::classify_exception(common::StatusCode::kIoError));
  }
  return ev.feasible() ? 0 : 1;
}

/// Tool-level manifest for `generate` (no session, default obs scope);
/// `run` and `eval` write theirs inside the session's scope.
void write_tool_manifest(const Args& args, int argc, char** argv,
                         double wall_seconds) {
  const std::string metrics_out = args.get("metrics-out");
  const std::string trace_out = args.get("trace-out");
  if (!metrics_out.empty()) {
    obs::RunInfo info;
    info.tool = "sndr_cli";
    info.command = args.command;
    for (int i = 2; i < argc; ++i) info.args.emplace_back(argv[i]);
    info.threads = common::thread_count();
    info.seed = std::stoull(args.get("seed", "0"));
    info.wall_seconds = wall_seconds;
    obs::write_run_manifest(metrics_out, info);
    std::cout << "wrote " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace_file(trace_out);
    std::cout << "wrote " << trace_out << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Args args = parse_args(argc, argv);

    // `sndr help`, `sndr --help`, `sndr -h`, or --help after any command:
    // requested help is not an error, so stdout and exit 0 (a *wrong*
    // invocation still gets the same text on stderr with exit 2).
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h" || args.flag("help")) {
      print_usage(std::cout);
      return 0;
    }

    if (args.command == "version" || args.command == "--version") {
      return cmd_version();
    }

    if (args.command == "generate") {
      if (common::Status s = check_known_flags(
              args, {"sinks", "dist", "name", "out"});
          !s.ok()) {
        return fail(s);
      }
      const int rc = cmd_generate(args);
      write_tool_manifest(
          args, argc, argv,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count());
      return rc;
    }
    if (args.command == "run") {
      std::vector<std::string> allowed = flow::FlowConfig::known_keys();
      allowed.push_back("no-smart");
      if (common::Status s = check_known_flags(args, std::move(allowed));
          !s.ok()) {
        return fail(s);
      }
      return cmd_run(args, argc, argv);
    }
    if (args.command == "dse") {
      std::vector<std::string> allowed = flow::FlowConfig::known_keys();
      allowed.push_back("points");
      if (common::Status s = check_known_flags(args, std::move(allowed));
          !s.ok()) {
        return fail(s);
      }
      return cmd_dse(args, argc, argv);
    }
    if (args.command == "eval") {
      if (common::Status s =
              check_known_flags(args, {"design", "tech", "rule"});
          !s.ok()) {
        return fail(s);
      }
      return cmd_eval(args, argc, argv);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
