// sndr_serve — persistent multi-tenant optimization service (no network:
// jobs arrive as config files in a spool directory or as lines on stdin).
//
//   sndr_serve --spool DIR [--workers N] [--memory-budget B] [--threads N]
//              [--metrics-out f] [--trace-out f]
//       Submit every `*.job` file in DIR (lexicographic order; each file
//       is a `key = value` FlowConfig, same syntax as `sndr run
//       --config`), drain, and print one result line per job.
//
//   sndr_serve --stdin [--workers N] [--memory-budget B] [--threads N]
//              [--metrics-out f] [--trace-out f]
//       Line protocol on stdin, one command per line:
//         submit key=value [key=value ...]   enqueue a job, print its id
//         submit-file PATH                   enqueue a .job config file
//         cancel ID                          fire the job's cancel token
//         wait ID                            block, print the result line
//         status                             queue depth + counters
//         drain                              finish queued jobs, exit
//         shutdown                           cancel everything, exit
//       EOF acts like `drain`.
//
// Admission control: with --memory-budget set, every job must declare its
// own memory_budget (rejected otherwise), and dispatch blocks until the
// declared sum fits. --workers is the number of concurrent jobs;
// --threads is the process-global evaluation lane count the jobs inherit
// (per-job `threads` keys are overridden by the server).
//
// --metrics-out writes the server-level manifest after shutdown: serve.*
// admission counters, queue-depth gauge, per-job wall-time histogram, and
// the accumulated core metrics of every job it ran.
//
// Exit codes: 0 when every job completed with an ok status (feasible or
// not — see each result line), 1 when any job failed, was cancelled, or
// was rejected at admission (a rejected spool must not read as success),
// 2 for a usage error.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "flow/config.hpp"
#include "obs/manifest.hpp"
#include "serve/server.hpp"

namespace {

using namespace sndr;

void print_usage(std::ostream& os) {
  os << "usage:\n"
        "  sndr_serve --spool DIR  [--workers N] [--memory-budget B]\n"
        "             [--threads N] [--metrics-out f] [--trace-out f]\n"
        "  sndr_serve --stdin      [same flags]\n"
        "\n"
        "  --spool DIR: submit every *.job file in DIR (each a\n"
        "               `key = value` FlowConfig file), drain, report.\n"
        "  --stdin:     line protocol (submit/submit-file/cancel/wait/\n"
        "               status/drain/shutdown; EOF = drain).\n"
        "  --workers N: concurrent jobs (default 1).\n"
        "  --memory-budget B: server admission budget (k/M/G suffixes);\n"
        "               jobs must then declare memory_budget or be\n"
        "               rejected, and dispatch never oversubscribes.\n"
        "  --threads N: process-global evaluation lanes the jobs inherit.\n"
        "  --metrics-out f: server-level manifest (written at shutdown).\n"
        "  --trace-out f:   server-level Chrome trace.\n";
}

struct ServeArgs {
  std::string spool;
  bool use_stdin = false;
  serve::ServerOptions options;
  std::string metrics_out;
  std::string trace_out;
  std::vector<std::string> raw;
};

/// Parse --memory-budget through the same k/M/G-suffixed parser config
/// files use, by way of a scratch FlowConfig.
common::Status parse_budget(const std::string& v, std::size_t& out) {
  flow::FlowConfig scratch;
  if (common::Status s = scratch.set("memory_budget", v); !s.ok()) return s;
  out = scratch.memory_budget_bytes;
  return common::Status::Ok();
}

common::Status parse_serve_args(int argc, char** argv, ServeArgs& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    args.raw.push_back(a);
    auto value = [&](const char* flag) -> common::Result<std::string> {
      if (i + 1 >= argc) {
        return common::Status::InvalidArgument(std::string(flag) +
                                               " needs a value");
      }
      args.raw.emplace_back(argv[i + 1]);
      return std::string(argv[++i]);
    };
    if (a == "--spool") {
      auto v = value("--spool");
      if (!v.ok()) return v.status();
      args.spool = v.value();
    } else if (a == "--stdin") {
      args.use_stdin = true;
    } else if (a == "--workers") {
      auto v = value("--workers");
      if (!v.ok()) return v.status();
      args.options.workers = std::stoi(v.value());
    } else if (a == "--memory-budget") {
      auto v = value("--memory-budget");
      if (!v.ok()) return v.status();
      if (common::Status s =
              parse_budget(v.value(), args.options.memory_budget_bytes);
          !s.ok()) {
        return s;
      }
    } else if (a == "--threads") {
      auto v = value("--threads");
      if (!v.ok()) return v.status();
      args.options.thread_budget = common::ThreadBudget(std::stoi(v.value()));
    } else if (a == "--metrics-out") {
      auto v = value("--metrics-out");
      if (!v.ok()) return v.status();
      args.metrics_out = v.value();
    } else if (a == "--trace-out") {
      auto v = value("--trace-out");
      if (!v.ok()) return v.status();
      args.trace_out = v.value();
    } else if (a == "--help" || a == "-h" || a == "help") {
      print_usage(std::cout);
      std::exit(0);
    } else {
      return common::Status::InvalidArgument("unknown flag '" + a + "'");
    }
  }
  if (args.spool.empty() == !args.use_stdin) {
    return common::Status::InvalidArgument(
        "exactly one of --spool DIR or --stdin is required");
  }
  return common::Status::Ok();
}

void print_record(const serve::JobRecord& r, std::ostream& os) {
  os << "job " << r.id << " " << r.design_path << ": ";
  if (!r.outcome.ok()) {
    os << r.outcome.status.to_string();
  } else if (r.outcome.dse) {
    // DSE jobs have no single result — summarize the sweep.
    os << "dse points=" << r.outcome.dse->points.size()
       << " front=" << r.outcome.dse->front.size()
       << " warm=" << r.outcome.dse->warm_started
       << " wall=" << r.outcome.wall_seconds << "s";
  } else if (r.outcome.result) {
    os << (r.outcome.feasible() ? "feasible" : "infeasible") << " power="
       << r.outcome.result->final_eval().power.total_power
       << " wall=" << r.outcome.wall_seconds << "s";
  } else {
    os << "ok";
  }
  os << "\n";
}

bool all_ok(const std::vector<serve::JobRecord>& records) {
  return std::all_of(records.begin(), records.end(),
                     [](const serve::JobRecord& r) { return r.outcome.ok(); });
}

/// One `submit key=value ...` line -> FlowConfig. Values may not contain
/// spaces (the protocol is line- and space-delimited by design).
common::Status config_from_tokens(const std::vector<std::string>& tokens,
                                  flow::FlowConfig& config) {
  for (const std::string& t : tokens) {
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument("expected key=value, got '" + t +
                                             "'");
    }
    if (common::Status s = config.set(t.substr(0, eq), t.substr(eq + 1));
        !s.ok()) {
      return s;
    }
  }
  return common::Status::Ok();
}

int run_spool(serve::Server& server, const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".job") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::cerr << "error: cannot read spool dir " << dir << ": "
              << ec.message() << "\n";
    return 2;
  }
  std::sort(files.begin(), files.end());
  int rejected = 0;
  for (const std::string& file : files) {
    flow::FlowConfig config;
    config.tool = "sndr_serve";
    config.command = "spool";
    if (common::Status s = config.from_file(file); !s.ok()) {
      std::cerr << "error: " << file << ": " << s.to_string() << "\n";
      ++rejected;  // a malformed job file must not sink the whole spool…
      continue;    // …but it must surface in the exit code.
    }
    common::Result<int> id = server.submit(std::move(config));
    if (id.ok()) {
      std::cout << "submitted " << id.value() << " " << file << "\n";
    } else {
      std::cerr << "rejected " << file << ": " << id.status().to_string()
                << "\n";
      ++rejected;
    }
  }
  const std::vector<serve::JobRecord> records = server.drain();
  for (const serve::JobRecord& r : records) print_record(r, std::cout);
  return (all_ok(records) && rejected == 0) ? 0 : 1;
}

void print_status(serve::Server& server) {
  const auto snap = server.metrics_snapshot();
  std::cout << "queue=" << server.queue_depth()
            << " submitted=" << snap.counter("serve.jobs_submitted")
            << " admitted=" << snap.counter("serve.jobs_admitted")
            << " rejected=" << snap.counter("serve.jobs_rejected")
            << " completed=" << snap.counter("serve.jobs_completed")
            << " failed=" << snap.counter("serve.jobs_failed")
            << " cancelled=" << snap.counter("serve.jobs_cancelled") << "\n";
}

int run_stdin(serve::Server& server) {
  std::string line;
  bool cancelled_shutdown = false;
  int rejected = 0;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "submit" || cmd == "submit-file") {
      flow::FlowConfig config;
      config.tool = "sndr_serve";
      config.command = cmd;
      common::Status parsed = common::Status::Ok();
      if (cmd == "submit") {
        std::vector<std::string> tokens;
        for (std::string t; iss >> t;) tokens.push_back(t);
        parsed = config_from_tokens(tokens, config);
      } else {
        std::string path;
        iss >> path;
        parsed = path.empty() ? common::Status::InvalidArgument(
                                    "submit-file needs a path")
                              : config.from_file(path);
      }
      if (!parsed.ok()) {
        std::cout << "error: " << parsed.to_string() << "\n";
        continue;
      }
      common::Result<int> id = server.submit(std::move(config));
      if (id.ok()) {
        std::cout << "submitted " << id.value() << "\n";
      } else {
        std::cout << "rejected: " << id.status().to_string() << "\n";
        ++rejected;
      }
    } else if (cmd == "cancel") {
      int id = -1;
      iss >> id;
      std::cout << (server.cancel(id) ? "cancelling " : "unknown job ") << id
                << "\n";
    } else if (cmd == "wait") {
      int id = -1;
      iss >> id;
      common::Result<serve::JobRecord> rec = server.wait(id);
      if (rec.ok()) {
        print_record(rec.value(), std::cout);
      } else {
        std::cout << "error: " << rec.status().to_string() << "\n";
      }
    } else if (cmd == "status") {
      print_status(server);
    } else if (cmd == "drain") {
      break;
    } else if (cmd == "shutdown") {
      cancelled_shutdown = true;
      break;
    } else {
      std::cout << "error: unknown command '" << cmd << "'\n";
    }
  }
  if (cancelled_shutdown) {
    server.shutdown(serve::Server::Shutdown::kCancel);
  }
  const std::vector<serve::JobRecord> records = server.drain();
  for (const serve::JobRecord& r : records) print_record(r, std::cout);
  return (all_ok(records) && rejected == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  ServeArgs args;
  if (common::Status s = parse_serve_args(argc, argv, args); !s.ok()) {
    std::cerr << "error: " << s.to_string() << "\n";
    print_usage(std::cerr);
    return 2;
  }

  int rc = 0;
  serve::Server server(args.options);
  try {
    rc = args.use_stdin ? run_stdin(server) : run_spool(server, args.spool);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 2;
  }

  // Server-level manifest: serve.* counters/gauges/histogram plus the
  // accumulated per-job metrics, snapshotted from the server's own scope.
  try {
    server.metrics_snapshot();  // refresh the queue/running gauges.
    obs::ScopeBinding binding(server.obs_scope());
    if (!args.metrics_out.empty()) {
      obs::RunInfo info;
      info.tool = "sndr_serve";
      info.command = args.use_stdin ? "stdin" : "spool";
      info.args = args.raw;
      info.threads = common::thread_count();
      info.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      obs::write_run_manifest(args.metrics_out, info);
      std::cout << "wrote " << args.metrics_out << "\n";
    }
    if (!args.trace_out.empty()) {
      obs::write_chrome_trace_file(args.trace_out);
      std::cout << "wrote " << args.trace_out << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (rc == 0) rc = 5;
  }
  return rc;
}
