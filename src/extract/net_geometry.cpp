#include "extract/net_geometry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "geom/segment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::extract {

using netlist::ClockTree;
using netlist::Net;
using netlist::NodeKind;

NetGeometry build_net_geometry(const ClockTree& tree,
                               const netlist::Design& design, const Net& net,
                               const ExtractOptions& options) {
  NetGeometry g;
  g.node_rc.reserve(net.wires.size() + 1);
  g.node_rc.push_back({net.driver, 0});
  g.node_tree_node.push_back(-1);  // driver node, tagged like RcNode{}.

  const netlist::CongestionMap& cong = design.congestion;
  geom::Path fallback(2);  // reused buffer for pathless (direct) wires.

  // net.wires is root-first, so a wire's parent tree node is already mapped.
  for (const int v : net.wires) {
    const netlist::TreeNode& n = tree.node(v);
    const int parent_rc = g.rc_index_of(n.parent);
    if (parent_rc < 0) {
      throw std::logic_error("extract: net wires not in root-first order");
    }
    const geom::Path* path = &n.path;
    if (n.path.size() < 2) {
      fallback[0] = tree.loc(n.parent);
      fallback[1] = n.loc;
      path = &fallback;
    }

    int cur = parent_rc;
    // Walk consecutive point pairs with path_segments() semantics (skip
    // degenerate links, decompose diagonals into an L, horizontal first)
    // without materializing the segment vector.
    for (std::size_t pi = 1; pi < path->size(); ++pi) {
      const geom::Point a = (*path)[pi - 1];
      const geom::Point b = (*path)[pi];
      if (a == b) continue;
      geom::Segment halves[2];
      int n_halves = 1;
      if (a.x == b.x || a.y == b.y) {
        halves[0] = {a, b};
      } else {
        const geom::Point corner{b.x, a.y};
        halves[0] = {a, corner};
        halves[1] = {corner, b};
        n_halves = 2;
      }
      for (int h = 0; h < n_halves; ++h) {
        const geom::Segment& seg = halves[h];
        const double len = seg.length();
        if (len <= 0.0) continue;
        const int pieces = std::max(
            1, static_cast<int>(std::ceil(len / options.max_seg_um)));
        const double piece_len = len / pieces;
        for (int i = 0; i < pieces; ++i) {
          const geom::Point mid = geom::lerp(seg.a, seg.b, (i + 0.5) / pieces);
          const double occ = cong.valid() ? cong.occupancy_at(mid) : 0.0;
          g.piece_parent.push_back(cur);
          g.piece_len.push_back(piece_len);
          g.piece_occ.push_back(occ);
          cur = static_cast<int>(g.piece_len.size());  // new node = piece+1.
          g.node_tree_node.push_back(-1);
          g.wirelength += piece_len;
        }
      }
    }
    g.node_tree_node[cur] = v;
    g.node_rc.push_back({v, cur});
  }

  g.loads.reserve(net.loads.size());
  for (const int load : net.loads) {
    const int rc_idx = g.rc_index_of(load);
    if (rc_idx < 0) {
      throw std::logic_error("extract: load not reached by net wires");
    }
    NetGeometry::Load l;
    l.rc_index = rc_idx;
    const netlist::TreeNode& ln = tree.node(load);
    switch (ln.kind) {
      case NodeKind::kBuffer:
        l.buffer_cell = ln.cell;
        break;
      case NodeKind::kSink:
        l.sink_cap = design.sinks.at(ln.sink).pin_cap;
        break;
      default:
        break;  // zero pin cap, like load_pin_cap().
    }
    g.loads.push_back(l);
  }

  g.postorder.resize(g.rc_size());
  for (int i = 0; i < g.rc_size(); ++i) {
    g.postorder[i] = g.rc_size() - 1 - i;  // parent-first build order.
  }
  return g;
}

void materialize(const NetGeometry& geom, const tech::Technology& tech,
                 const tech::RoutingRule& rule, NetParasitics& out) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double res_per_um = tech::wire_res_per_um(layer, rule);
  const double cgnd_per_um = tech::wire_cap_gnd_per_um(layer, rule);
  const double ccpl_side_per_um = tech::wire_cap_couple_per_um(layer, rule);

  const int n = geom.rc_size();
  out.rc.reset(n);
  RcNode* nodes = out.rc.data();
  out.wirelength = 0.0;
  out.wire_cap_gnd = 0.0;
  out.wire_cap_cpl = 0.0;
  out.load_cap = 0.0;

  // Replay of extract_net's piece loop: same operations, same order, so the
  // result is bit-identical to a fresh extraction.
  for (int i = 0; i < geom.pieces(); ++i) {
    const double piece_len = geom.piece_len[i];
    const double occ = geom.piece_occ[i];
    const double cg = cgnd_per_um * piece_len;
    const double cc = 2.0 * occ * ccpl_side_per_um * piece_len;
    const int parent = geom.piece_parent[i];
    // Pi split: half the piece cap at the near node, half at the far.
    nodes[parent].cap_gnd += 0.5 * cg;
    nodes[parent].cap_cpl += 0.5 * cc;
    RcNode& added = nodes[i + 1];
    added.parent = parent;
    added.res = res_per_um * piece_len;
    added.cap_gnd += 0.5 * cg;
    added.cap_cpl += 0.5 * cc;
    added.wire_len = piece_len;
    added.occupancy = occ;
    out.wirelength += piece_len;
    out.wire_cap_gnd += cg;
    out.wire_cap_cpl += cc;
  }
  for (int i = 0; i < n; ++i) nodes[i].tree_node = geom.node_tree_node[i];

  out.load_rc_index.resize(geom.loads.size());
  for (std::size_t li = 0; li < geom.loads.size(); ++li) {
    const NetGeometry::Load& l = geom.loads[li];
    const double cap = l.buffer_cell >= 0
                           ? tech.buffers[l.buffer_cell].input_cap
                           : l.sink_cap;
    nodes[l.rc_index].cap_gnd += cap;
    out.load_cap += cap;
    out.load_rc_index[li] = l.rc_index;
  }
}

std::size_t geometry_bytes(const NetGeometry& geom) {
  return geom.piece_parent.capacity() * sizeof(std::int32_t) +
         geom.piece_len.capacity() * sizeof(double) +
         geom.piece_occ.capacity() * sizeof(double) +
         geom.node_tree_node.capacity() * sizeof(std::int32_t) +
         geom.postorder.capacity() * sizeof(std::int32_t) +
         geom.loads.capacity() * sizeof(NetGeometry::Load) +
         geom.node_rc.capacity() * sizeof(NetGeometry::NodeRc);
}

GeometryCache::GeometryCache(const ClockTree& tree,
                             const netlist::Design& design,
                             const netlist::NetList& nets,
                             ExtractOptions options)
    : GeometryCache(tree, design, nets, /*budget_bytes=*/0, options) {}

GeometryCache::GeometryCache(const ClockTree& tree,
                             const netlist::Design& design,
                             const netlist::NetList& nets,
                             std::size_t budget_bytes, ExtractOptions options)
    : tree_(&tree),
      design_(&design),
      nets_(&nets),
      options_(options),
      budget_bytes_(budget_bytes) {
  if (budgeted()) {
    slots_.resize(static_cast<std::size_t>(nets.size()));
  } else {
    build_all();
  }
}

void GeometryCache::invalidate() {
  SNDR_COUNTER_ADD("extract.geometry.invalidations", 1);
  if (!budgeted()) {
    build_all();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.pins > 0 || s.building) {
      throw std::logic_error(
          "GeometryCache::invalidate: entry pinned or building");
    }
    s = Slot{};
  }
  lru_head_ = lru_tail_ = -1;
  resident_bytes_ = 0;
}

void GeometryCache::build_all() {
  SNDR_TRACE_SPAN("geometry_build_all");
  geoms_.resize(nets_->size());
  // Same deterministic chunking as extract_all: per-slot writes only.
  common::parallel_for(nets_->size(), /*grain=*/16, /*est_us_per_item=*/3.0,
                       [&](std::int64_t i) {
    geoms_[i] = build_net_geometry(*tree_, *design_,
                                   nets_->nets[static_cast<std::size_t>(i)],
                                   options_);
  });
  builds_.fetch_add(nets_->size(), std::memory_order_relaxed);
  SNDR_COUNTER_ADD("extract.geometry.builds",
                   static_cast<std::int64_t>(nets_->size()));
  std::size_t total = 0;
  for (const NetGeometry& g : geoms_) total += geometry_bytes(g);
  resident_bytes_ = total;
  if (total > highwater_bytes_) highwater_bytes_ = total;
  if (obs::metrics_enabled()) {
    for (const NetGeometry& g : geoms_) {
      SNDR_HISTOGRAM_OBSERVE("extract.net_pieces",
                             static_cast<double>(g.pieces()));
    }
  }
}

const NetGeometry& GeometryCache::geometry(int net_id) const {
  if (budgeted()) {
    throw std::logic_error(
        "GeometryCache::geometry: budgeted cache needs pinned() access");
  }
  return geoms_.at(net_id);
}

void GeometryCache::lru_push_back(int id) const {
  Slot& s = slots_[static_cast<std::size_t>(id)];
  s.lru_prev = lru_tail_;
  s.lru_next = -1;
  if (lru_tail_ >= 0) {
    slots_[static_cast<std::size_t>(lru_tail_)].lru_next = id;
  } else {
    lru_head_ = id;
  }
  lru_tail_ = id;
}

void GeometryCache::lru_unlink(int id) const {
  Slot& s = slots_[static_cast<std::size_t>(id)];
  if (s.lru_prev >= 0) {
    slots_[static_cast<std::size_t>(s.lru_prev)].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next >= 0) {
    slots_[static_cast<std::size_t>(s.lru_next)].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = s.lru_next = -1;
}

void GeometryCache::evict_to_budget_locked() const {
  // The LRU list holds exactly the resident, unpinned entries, so eviction
  // is O(1) per drop. Pinned entries never appear here; the budget bounds
  // retained bytes, not a caller's pinned working set.
  while (resident_bytes_ > budget_bytes_ && lru_head_ >= 0) {
    const int id = lru_head_;
    lru_unlink(id);
    Slot& s = slots_[static_cast<std::size_t>(id)];
    resident_bytes_ -= s.bytes;
    s.geom = NetGeometry{};  // frees the arrays.
    s.bytes = 0;
    s.resident = false;
    ++evictions_;
  }
}

GeometryCache::Pinned GeometryCache::pinned(int net_id) const {
  if (!budgeted()) {
    // Unbounded entries are immutable for the cache's lifetime; the handle
    // carries no cache pointer, so destruction is free.
    return Pinned(nullptr, &geoms_.at(net_id), net_id);
  }
  std::unique_lock<std::mutex> lock(mu_);
  Slot& s = slots_.at(static_cast<std::size_t>(net_id));
  for (;;) {
    if (s.resident) {
      if (s.pins++ == 0) lru_unlink(net_id);
      return Pinned(this, &s.geom, net_id);
    }
    if (!s.building) break;
    // Another thread is walking this net; wait for its result instead of
    // duplicating the build.
    built_cv_.wait(lock);
  }
  s.building = true;
  lock.unlock();
  // The walk is a pure function of (tree, design, net, options), all fixed
  // while the cache lives, so a rebuilt entry is bitwise identical to the
  // evicted one — and to the unbounded mode's eager build.
  NetGeometry geom = build_net_geometry(
      *tree_, *design_, nets_->nets[static_cast<std::size_t>(net_id)],
      options_);
  builds_.fetch_add(1, std::memory_order_relaxed);
  SNDR_COUNTER_ADD("extract.geometry.builds", 1);
  lock.lock();
  s.geom = std::move(geom);
  s.bytes = geometry_bytes(s.geom);
  s.resident = true;
  s.building = false;
  s.pins = 1;
  resident_bytes_ += s.bytes;
  if (resident_bytes_ > highwater_bytes_) highwater_bytes_ = resident_bytes_;
  evict_to_budget_locked();
  built_cv_.notify_all();
  return Pinned(this, &s.geom, net_id);
}

void GeometryCache::unpin(int net_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slots_[static_cast<std::size_t>(net_id)];
  if (--s.pins == 0) {
    lru_push_back(net_id);
    evict_to_budget_locked();
  }
}

void GeometryCache::Pinned::release() {
  if (cache_ != nullptr) cache_->unpin(net_id_);
  cache_ = nullptr;
  geom_ = nullptr;
}

std::size_t GeometryCache::resident_bytes() const {
  if (!budgeted()) return resident_bytes_;
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t GeometryCache::highwater_bytes() const {
  if (!budgeted()) return highwater_bytes_;
  std::lock_guard<std::mutex> lock(mu_);
  return highwater_bytes_;
}

std::int64_t GeometryCache::evictions() const {
  if (!budgeted()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace sndr::extract
