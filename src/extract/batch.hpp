// Rule-batched electrical phase of two-phase extraction.
//
// The optimizer's candidate sweep, the annealer's memo warm-up, and corner
// analysis all evaluate the SAME NetGeometry under several electrical
// contexts (rules, or derated technology clones). The scalar path walks the
// piece arrays once per context; the batched path here walks them once
// TOTAL, with the context loop innermost over contiguous lanes — the planes
// are laid out node-major × lane-minor (plane[node * lanes + lane]), so the
// inner loop is a unit-stride streak the compiler auto-vectorizes.
//
// Determinism contract (non-negotiable, inherited from PR 1/2): for every
// lane, the sequence of floating-point operations applied to that lane's
// values is EXACTLY the scalar kernel's sequence — the batch only
// interleaves independent lanes, it never reassociates within one. Batched
// results are therefore bit-identical to running materialize() /
// rc_moments() per rule, which remain the reference implementation (and
// the path used for single-context evaluation, where batching buys
// nothing). tests/batch_kernel_test.cpp pins this per (rule, corner).
//
// All scratch comes from a caller-provided common::Arena: plane pointers
// returned here are valid until the arena is reset (typically once per
// net), so a warm per-thread arena makes the whole batched evaluation
// allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "extract/net_geometry.hpp"

namespace sndr::extract {

/// One lane of a batched evaluation: an electrical context to score the
/// shared geometry under. The rule sweep uses one technology × R rules;
/// corner analysis uses C derated technology clones × the assigned rule.
struct EvalLane {
  const tech::Technology* tech = nullptr;
  const tech::RoutingRule* rule = nullptr;
};

/// Per-lane R/C planes of one net, node-major × lane-minor. Node 0 is the
/// driver (res row zero), node i+1 corresponds to geometry piece i — the
/// same indexing as the scalar RcTree. Plane storage lives in the arena
/// passed to materialize_batch; the struct itself is just the view.
struct BatchParasitics {
  int nodes = 0;
  int lanes = 0;

  // [nodes × lanes] planes.
  double* res = nullptr;
  double* cap_gnd = nullptr;
  double* cap_cpl = nullptr;

  // [nodes] lane-independent topology/provenance (arena copies so kernels
  // never touch the NetGeometry vectors).
  const std::int32_t* parent = nullptr;  ///< parent node, -1 for node 0.
  const double* wire_len = nullptr;      ///< um of the parent edge, 0 at 0.

  /// [nodes × lanes] per-lane edge lengths, set only by the cross-net
  /// materialize (materialize_nets_batch), where lanes are different nets
  /// and piece lengths differ per lane; `wire_len` is null there. Exactly
  /// one of wire_len / wire_len_lane is non-null after a materialize.
  const double* wire_len_lane = nullptr;

  // [lanes] totals, same accumulation order as the scalar materialize.
  double* wire_cap_gnd = nullptr;
  double* wire_cap_cpl = nullptr;
  double* load_cap = nullptr;

  double wirelength = 0.0;  ///< um, lane-independent.

  std::int64_t at(int node, int lane) const {
    return static_cast<std::int64_t>(node) * lanes + lane;
  }
};

/// Electrical phase for all lanes in one pass over the pieces (inner loop
/// over lanes). Per lane bit-identical to materialize(geom, lane.tech,
/// lane.rule, out). Plane storage is carved from `arena` (which must
/// outlive the use of `out`; nothing is reset here).
void materialize_batch(const NetGeometry& geom, const EvalLane* lanes,
                       int n_lanes, common::Arena& arena,
                       BatchParasitics& out);

/// Rule-sweep convenience: one lane per rule of `rules` under `tech`.
void materialize_batch(const NetGeometry& geom, const tech::Technology& tech,
                       const tech::RuleSet& rules, common::Arena& arena,
                       BatchParasitics& out);

/// Copies one lane out into scalar NetParasitics (bit-identical to a scalar
/// materialize of that lane's context). Used by corner analysis to feed the
/// per-corner whole-tree evaluators from the shared batch planes.
void scatter_lane(const NetGeometry& geom, const BatchParasitics& batch,
                  int lane, NetParasitics& out);

/// One lane of a CROSS-NET batched evaluation: a (net geometry, electrical
/// context) pair. All lanes of one call must share the same geometry SHAPE —
/// identical piece_parent arrays and identical load rc_index arrays (see
/// bucket_nets_by_shape) — so the RC kernels can run off one shared parent
/// array while piece lengths, occupancies, and load caps stay per lane.
/// This is how single-rule sweeps over many nets fill the SIMD lanes that
/// the per-net rule sweep fills with rules.
struct NetLane {
  const NetGeometry* geom = nullptr;
  const tech::Technology* tech = nullptr;
  const tech::RoutingRule* rule = nullptr;
};

/// Cross-net electrical phase: one pass over the shared piece topology with
/// the lane loop innermost, per lane bit-identical to materialize(
/// *lanes[l].geom, *lanes[l].tech, *lanes[l].rule, out). Because piece
/// lengths differ per lane, `out.wire_len` stays null and the per-lane
/// lengths land in `out.wire_len_lane` ([nodes × lanes]). All lanes must be
/// shape-compatible (asserted in debug builds).
void materialize_nets_batch(const NetLane* lanes, int n_lanes,
                            common::Arena& arena, BatchParasitics& out);

/// Partition of a net list into same-shape groups: `groups[g]` lists the
/// net ids whose geometries share piece topology and load attach indices
/// (first-seen order, both across and within groups), `group_of[net]` is
/// the owning group. Nets in one group can ride one cross-net batch.
struct NetShapeBuckets {
  std::vector<std::vector<int>> groups;
  std::vector<int> group_of;
};

/// Buckets every net of `cache` by geometry shape signature (piece count,
/// piece_parent array, loads' rc_index array — exact equality). Symmetric
/// clock trees collapse into a handful of buckets; degenerate shapes fall
/// into singleton groups and simply run with one lane.
NetShapeBuckets bucket_nets_by_shape(const GeometryCache& cache);

/// Per-lane moment planes ([nodes × lanes] each), arena-backed.
struct BatchMoments {
  int nodes = 0;
  int lanes = 0;
  double* down = nullptr;     ///< downstream cap (Miller-weighted).
  double* m1 = nullptr;       ///< Elmore delay per node.
  double* m2 = nullptr;       ///< circuit second moment per node.
  double* subtree = nullptr;  ///< fused-kernel accumulator (see rc_tree.hpp).

  std::int64_t at(int node, int lane) const {
    return static_cast<std::int64_t>(node) * lanes + lane;
  }
};

// Low-level plane kernels. `parent` is the per-node parent array
// (parent[0] == -1) and all planes are node-major × lane-minor with the
// given lane count. `miller` and `driver_res` are per-lane. Each is the
// lane-interleaved replay of the like-named scalar kernel in rc_tree.hpp:
// one descending / ascending sweep with the lane loop innermost.

/// down[i·L+l] = Miller-weighted cap downstream of (and including) node i.
void rc_downstream_batch(int nodes, int lanes, const std::int32_t* parent,
                         const double* cap_gnd, const double* cap_cpl,
                         const double* miller, double* down);

/// Downstream cap + Elmore delay (m1) for every lane.
void rc_elmore_batch(int nodes, int lanes, const std::int32_t* parent,
                     const double* res, const double* cap_gnd,
                     const double* cap_cpl, const double* driver_res,
                     const double* miller, double* down, double* m1);

/// Fused moment kernel for every lane: the scalar rc_moments two-sweep
/// schedule, lane-interleaved. All four output planes hold nodes × lanes.
void rc_moments_batch(int nodes, int lanes, const std::int32_t* parent,
                      const double* res, const double* cap_gnd,
                      const double* cap_cpl, const double* driver_res,
                      const double* miller, double* down, double* subtree,
                      double* m1, double* m2);

/// materialize_batch + rc_moments_batch in one call: the "score every rule"
/// fast path. Moment planes are carved from the same arena.
void moments_batch(const NetGeometry& geom, const EvalLane* lanes,
                   int n_lanes, const double* driver_res,
                   const double* miller, common::Arena& arena,
                   BatchParasitics& par, BatchMoments& out);

}  // namespace sndr::extract
