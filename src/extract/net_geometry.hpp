// Rule-independent geometry phase of two-phase RC extraction.
//
// Everything geometric about a net — the Steiner path walk, RC piece
// subdivision, per-piece congestion occupancy, and load attach points —
// depends only on the routed tree and the congestion map, never on the
// routing rule or the process corner (corner derating scales electrical
// coefficients only). NetGeometry captures that invariant part once, as
// flattened SoA arrays; materialize() then produces NetParasitics for any
// rule in O(pieces) with no path walking, no congestion queries, and no
// heap allocation beyond warming up the caller's output buffers.
//
// Invalidation contract: a NetGeometry is stale after a tree edit (routing,
// buffering, topology) or a congestion-map change. Rule changes and corner
// derating do NOT invalidate it — one GeometryCache serves every rule and
// every derated-technology clone. Results are bit-identical to fresh
// Extractor::extract_net output (which itself runs build + materialize).
#pragma once

#include <cstdint>
#include <vector>

#include "extract/extractor.hpp"

namespace sndr::extract {

/// Flattened rule-independent geometry of one net. RC piece i becomes RC
/// node i + 1 (node 0 is the driver), in the exact order extract_net
/// created nodes, so index order stays topological.
struct NetGeometry {
  // Per RC piece (SoA).
  std::vector<std::int32_t> piece_parent;  ///< upstream RC node index.
  std::vector<double> piece_len;           ///< um.
  std::vector<double> piece_occ;  ///< neighbor occupancy at the midpoint.

  // Per RC node.
  /// ClockTree node coinciding with each RC node, or -1 (matches the
  /// RcNode::tree_node tagging of extract_net, overwrites included).
  std::vector<std::int32_t> node_tree_node;
  /// Children-before-parents traversal order. Nodes are created parent
  /// first, so this is simply descending index order; it is materialized
  /// here so kernels over the SoA arrays need no tree walk.
  std::vector<std::int32_t> postorder;

  /// Load attach point, parallel to Net::loads. Buffer pin caps are read
  /// from the technology at materialize time (they move with corners);
  /// sink pin caps are design constants captured at build time.
  struct Load {
    std::int32_t rc_index = -1;
    std::int32_t buffer_cell = -1;  ///< tech.buffers index, or -1.
    double sink_cap = 0.0;          ///< F, used when buffer_cell < 0.
  };
  std::vector<Load> loads;

  /// RC node index of each tree node on the net (-1 elsewhere).
  std::vector<int> rc_index_of_tree_node;

  double wirelength = 0.0;  ///< um, sum of piece lengths.

  int pieces() const { return static_cast<int>(piece_len.size()); }
  int rc_size() const { return pieces() + 1; }
};

/// Geometry phase: walks the net's routed paths once (the single walker
/// shared by cached and fresh extraction). Performs every congestion query
/// and path decomposition extraction will ever need for this tree state.
NetGeometry build_net_geometry(const netlist::ClockTree& tree,
                               const netlist::Design& design,
                               const netlist::Net& net,
                               const ExtractOptions& options = {});

/// Electrical phase: scales the captured geometry by the per-um coefficients
/// of `rule` under `tech` (pass a derated clone for corner analysis) and
/// writes the full NetParasitics into `out`, reusing its buffers. Exactly
/// the arithmetic, in exactly the order, of the historical extract_net.
void materialize(const NetGeometry& geom, const tech::Technology& tech,
                 const tech::RoutingRule& rule, NetParasitics& out);

/// Per-net geometry for a whole net list, built eagerly (in parallel, with
/// the same deterministic chunking as extract_all) and immutable until
/// invalidate(). Share one instance across rules, corners, and evaluation
/// call sites; rebuild via invalidate() after a tree edit or congestion
/// change. `builds()` counts per-net geometry walks since construction —
/// exactly nets.size() per tree/congestion state when the cache is shared
/// properly.
class GeometryCache {
 public:
  GeometryCache(const netlist::ClockTree& tree, const netlist::Design& design,
                const netlist::NetList& nets, ExtractOptions options = {});

  const NetGeometry& geometry(int net_id) const { return geoms_.at(net_id); }
  int net_count() const { return static_cast<int>(geoms_.size()); }
  const ExtractOptions& options() const { return options_; }

  /// Re-walks every net (call after a tree edit or congestion change).
  void invalidate();

  /// Total per-net geometry builds since construction.
  std::int64_t builds() const { return builds_; }

 private:
  void build_all();

  const netlist::ClockTree* tree_;
  const netlist::Design* design_;
  const netlist::NetList* nets_;
  ExtractOptions options_;
  std::vector<NetGeometry> geoms_;
  std::int64_t builds_ = 0;
};

}  // namespace sndr::extract
