// Rule-independent geometry phase of two-phase RC extraction.
//
// Everything geometric about a net — the Steiner path walk, RC piece
// subdivision, per-piece congestion occupancy, and load attach points —
// depends only on the routed tree and the congestion map, never on the
// routing rule or the process corner (corner derating scales electrical
// coefficients only). NetGeometry captures that invariant part once, as
// flattened SoA arrays; materialize() then produces NetParasitics for any
// rule in O(pieces) with no path walking, no congestion queries, and no
// heap allocation beyond warming up the caller's output buffers.
//
// Invalidation contract: a NetGeometry is stale after a tree edit (routing,
// buffering, topology) or a congestion-map change. Rule changes and corner
// derating do NOT invalidate it — one GeometryCache serves every rule and
// every derated-technology clone. Results are bit-identical to fresh
// Extractor::extract_net output (which itself runs build + materialize).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "extract/extractor.hpp"

namespace sndr::extract {

/// Flattened rule-independent geometry of one net. RC piece i becomes RC
/// node i + 1 (node 0 is the driver), in the exact order extract_net
/// created nodes, so index order stays topological.
struct NetGeometry {
  // Per RC piece (SoA).
  std::vector<std::int32_t> piece_parent;  ///< upstream RC node index.
  std::vector<double> piece_len;           ///< um.
  std::vector<double> piece_occ;  ///< neighbor occupancy at the midpoint.

  // Per RC node.
  /// ClockTree node coinciding with each RC node, or -1 (matches the
  /// RcNode::tree_node tagging of extract_net, overwrites included).
  std::vector<std::int32_t> node_tree_node;
  /// Children-before-parents traversal order. Nodes are created parent
  /// first, so this is simply descending index order; it is materialized
  /// here so kernels over the SoA arrays need no tree walk.
  std::vector<std::int32_t> postorder;

  /// Load attach point, parallel to Net::loads. Buffer pin caps are read
  /// from the technology at materialize time (they move with corners);
  /// sink pin caps are design constants captured at build time.
  struct Load {
    std::int32_t rc_index = -1;
    std::int32_t buffer_cell = -1;  ///< tech.buffers index, or -1.
    double sink_cap = 0.0;          ///< F, used when buffer_cell < 0.
  };
  std::vector<Load> loads;

  /// Sparse (tree node, RC node index) pairs for the nodes on this net —
  /// driver first, then wires in root-first order. Deliberately NOT a
  /// dense tree-sized vector: per-net geometry must stay O(net), not
  /// O(design), or a million-net design's cache is quadratic in memory.
  struct NodeRc {
    std::int32_t tree_node = -1;
    std::int32_t rc_index = -1;
    bool operator==(const NodeRc& o) const {
      return tree_node == o.tree_node && rc_index == o.rc_index;
    }
  };
  std::vector<NodeRc> node_rc;

  /// RC node index of `tree_node`, -1 when not on this net. Linear scan —
  /// the per-net node list is short and build-time lookups walk backward
  /// from the most recent entry anyway.
  int rc_index_of(int tree_node) const {
    for (auto it = node_rc.rbegin(); it != node_rc.rend(); ++it) {
      if (it->tree_node == tree_node) return it->rc_index;
    }
    return -1;
  }

  double wirelength = 0.0;  ///< um, sum of piece lengths.

  int pieces() const { return static_cast<int>(piece_len.size()); }
  int rc_size() const { return pieces() + 1; }
};

/// Geometry phase: walks the net's routed paths once (the single walker
/// shared by cached and fresh extraction). Performs every congestion query
/// and path decomposition extraction will ever need for this tree state.
NetGeometry build_net_geometry(const netlist::ClockTree& tree,
                               const netlist::Design& design,
                               const netlist::Net& net,
                               const ExtractOptions& options = {});

/// Electrical phase: scales the captured geometry by the per-um coefficients
/// of `rule` under `tech` (pass a derated clone for corner analysis) and
/// writes the full NetParasitics into `out`, reusing its buffers. Exactly
/// the arithmetic, in exactly the order, of the historical extract_net.
void materialize(const NetGeometry& geom, const tech::Technology& tech,
                 const tech::RoutingRule& rule, NetParasitics& out);

/// Heap bytes a NetGeometry holds (vector capacities, struct excluded) —
/// the unit the GeometryCache budget is accounted in.
std::size_t geometry_bytes(const NetGeometry& geom);

/// Per-net geometry for a whole net list. Share one instance across rules,
/// corners, and evaluation call sites; rebuild via invalidate() after a
/// tree edit or congestion change.
///
/// Two modes, chosen at construction:
///
///  * Unbounded (budget_bytes == 0, the default): every geometry is built
///    eagerly (in parallel, with the same deterministic chunking as
///    extract_all) and stays immutable until invalidate(). geometry() and
///    pinned() are lock-free reads. `builds()` is exactly nets.size() per
///    tree/congestion state when the cache is shared properly.
///
///  * Budgeted (budget_bytes > 0): geometries build lazily on first use
///    and resident bytes are capped at the budget by LRU eviction. Access
///    goes through pinned(): a pinned entry is never evicted while the
///    handle lives (so pinned bytes may transiently exceed the budget —
///    the budget bounds what the cache RETAINS, not a caller's working
///    set). Eviction + rebuild reproduces the same NetGeometry bit for
///    bit, because build_net_geometry is a pure function of the (fixed)
///    tree, design, and options — every consumer sees results identical
///    to the unbounded mode, only the build count changes.
class GeometryCache {
 public:
  GeometryCache(const netlist::ClockTree& tree, const netlist::Design& design,
                const netlist::NetList& nets, ExtractOptions options = {});
  /// Budgeted-mode constructor; budget_bytes == 0 means unbounded.
  GeometryCache(const netlist::ClockTree& tree, const netlist::Design& design,
                const netlist::NetList& nets, std::size_t budget_bytes,
                ExtractOptions options);

  /// RAII access handle: keeps the entry resident (budgeted mode) for the
  /// handle's lifetime. In unbounded mode this is a plain pointer with no
  /// release work. Movable, not copyable.
  class Pinned {
   public:
    Pinned() = default;
    Pinned(Pinned&& o) noexcept
        : cache_(o.cache_), geom_(o.geom_), net_id_(o.net_id_) {
      o.cache_ = nullptr;
      o.geom_ = nullptr;
    }
    Pinned& operator=(Pinned&& o) noexcept {
      if (this != &o) {
        release();
        cache_ = o.cache_;
        geom_ = o.geom_;
        net_id_ = o.net_id_;
        o.cache_ = nullptr;
        o.geom_ = nullptr;
      }
      return *this;
    }
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    ~Pinned() { release(); }

    const NetGeometry& operator*() const { return *geom_; }
    const NetGeometry* operator->() const { return geom_; }
    const NetGeometry* get() const { return geom_; }

   private:
    friend class GeometryCache;
    Pinned(const GeometryCache* cache, const NetGeometry* geom, int net_id)
        : cache_(cache), geom_(geom), net_id_(net_id) {}
    void release();

    const GeometryCache* cache_ = nullptr;  ///< null = nothing to unpin.
    const NetGeometry* geom_ = nullptr;
    int net_id_ = -1;
  };

  /// The one access path that works in both modes. Budgeted: builds the
  /// entry if absent (waiting out a concurrent builder of the same net),
  /// pins it, and evicts cold entries down to the budget.
  Pinned pinned(int net_id) const;

  /// Direct reference; unbounded mode only (budgeted entries can be
  /// evicted under a raw reference — throws std::logic_error there).
  const NetGeometry& geometry(int net_id) const;

  int net_count() const { return static_cast<int>(nets_->size()); }
  const ExtractOptions& options() const { return options_; }

  /// Drops every cached geometry (call after a tree edit or congestion
  /// change). Unbounded: eager re-walk. Budgeted: entries rebuild lazily;
  /// no pin may be outstanding.
  void invalidate();

  /// Total per-net geometry builds since construction.
  std::int64_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }

  std::size_t budget_bytes() const { return budget_bytes_; }
  bool budgeted() const { return budget_bytes_ > 0; }
  /// Bytes of geometry currently held (both modes).
  std::size_t resident_bytes() const;
  /// Peak of resident_bytes over the cache's lifetime.
  std::size_t highwater_bytes() const;
  /// Entries dropped by the budget (0 in unbounded mode).
  std::int64_t evictions() const;

 private:
  /// Budgeted-mode entry. An entry is on the LRU list iff resident and
  /// unpinned; pinned or building entries are never eviction candidates.
  struct Slot {
    NetGeometry geom;
    std::size_t bytes = 0;
    int pins = 0;
    bool resident = false;
    bool building = false;
    int lru_prev = -1;
    int lru_next = -1;
  };

  void build_all();
  void lru_push_back(int id) const;
  void lru_unlink(int id) const;
  void evict_to_budget_locked() const;
  void unpin(int net_id) const;

  const netlist::ClockTree* tree_;
  const netlist::Design* design_;
  const netlist::NetList* nets_;
  ExtractOptions options_;
  std::size_t budget_bytes_ = 0;

  // Unbounded mode.
  std::vector<NetGeometry> geoms_;

  // Budgeted mode (all guarded by mu_; geometries build outside the lock
  // under the slot's `building` flag).
  mutable std::mutex mu_;
  mutable std::condition_variable built_cv_;
  mutable std::vector<Slot> slots_;
  mutable int lru_head_ = -1;
  mutable int lru_tail_ = -1;
  mutable std::size_t resident_bytes_ = 0;
  mutable std::size_t highwater_bytes_ = 0;
  mutable std::int64_t evictions_ = 0;

  mutable std::atomic<std::int64_t> builds_{0};
};

}  // namespace sndr::extract
