// Distributed RC tree of one extracted clock net.
//
// Node 0 is always the driver output. Every other node hangs off its parent
// through a resistance; capacitance is stored split into a grounded part
// (area + fringe + load pins) and a lateral coupling part, because the two
// are weighted differently by the consumers: timing applies a Miller factor
// to coupling for worst-case delay, power applies the average switching
// factor, and the variation analysis uses the raw coupling value.
#pragma once

#include <vector>

namespace sndr::extract {

struct RcNode {
  int parent = -1;
  double res = 0.0;      ///< ohm, resistance from parent to this node.
  double cap_gnd = 0.0;  ///< F, grounded capacitance lumped here.
  double cap_cpl = 0.0;  ///< F, lateral coupling capacitance lumped here.

  // Provenance (diagnostics, EM, crosstalk).
  int tree_node = -1;  ///< ClockTree node this rc node coincides with, or -1.
  double wire_len = 0.0;   ///< um of wire represented by the parent edge.
  double occupancy = 0.0;  ///< neighbor occupancy of that wire piece.

  double cap_total(double miller) const { return cap_gnd + miller * cap_cpl; }
};

class RcTree {
 public:
  RcTree() { nodes_.emplace_back(); }

  /// Adds a node under `parent`; returns its index.
  int add_node(int parent, double res, double cap_gnd, double cap_cpl);

  int size() const { return static_cast<int>(nodes_.size()); }
  RcNode& node(int i) { return nodes_.at(i); }
  const RcNode& node(int i) const { return nodes_.at(i); }

  double total_cap_gnd() const;
  double total_cap_cpl() const;

  /// Capacitance downstream of (and including) each node, with the given
  /// Miller weight on coupling caps. downstream[0] is the total net cap the
  /// driver sees.
  std::vector<double> downstream_cap(double miller) const;

  /// Elmore delay from the driver output (node 0) to every node, given the
  /// driver's linearized output resistance. delay[i] = Rdrv*Ctot +
  /// sum_{edges e on path to i} R_e * Cdown(e).
  std::vector<double> elmore_delay(double driver_res, double miller) const;

  /// Circuit second moment at every node (same driver model):
  /// m2_i = sum_k R_shared(i,k) C_k m1_k, i.e. the magnitude of the s^2
  /// transfer-function coefficient. The second *time* moment is 2*m2.
  /// Used by the D2M delay metric and the slew estimate.
  std::vector<double> second_moment(double driver_res, double miller) const;

  /// Nodes are appended parent-first, so index order is topological.
  const std::vector<RcNode>& nodes() const { return nodes_; }

 private:
  std::vector<RcNode> nodes_;
};

}  // namespace sndr::extract
