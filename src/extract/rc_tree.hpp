// Distributed RC tree of one extracted clock net.
//
// Node 0 is always the driver output. Every other node hangs off its parent
// through a resistance; capacitance is stored split into a grounded part
// (area + fringe + load pins) and a lateral coupling part, because the two
// are weighted differently by the consumers: timing applies a Miller factor
// to coupling for worst-case delay, power applies the average switching
// factor, and the variation analysis uses the raw coupling value.
#pragma once

#include <vector>

namespace sndr::extract {

struct RcNode {
  int parent = -1;
  double res = 0.0;      ///< ohm, resistance from parent to this node.
  double cap_gnd = 0.0;  ///< F, grounded capacitance lumped here.
  double cap_cpl = 0.0;  ///< F, lateral coupling capacitance lumped here.

  // Provenance (diagnostics, EM, crosstalk).
  int tree_node = -1;  ///< ClockTree node this rc node coincides with, or -1.
  double wire_len = 0.0;   ///< um of wire represented by the parent edge.
  double occupancy = 0.0;  ///< neighbor occupancy of that wire piece.

  double cap_total(double miller) const { return cap_gnd + miller * cap_cpl; }
};

/// Reusable scratch + results of the fused moment kernel. Vectors are
/// resized to the tree on every call; capacity persists across calls, so a
/// long-lived instance makes repeated moment evaluation allocation-free.
struct RcMoments {
  std::vector<double> down;  ///< downstream cap (Miller-weighted).
  std::vector<double> m1;    ///< Elmore delay per node.
  std::vector<double> m2;    ///< circuit second moment per node.
  /// Internal accumulator of the fused kernel: per-subtree cap-weighted
  /// delay relative to the subtree root, T_i = sum_{k in sub(i)} C_k *
  /// (m1_k - m1_i). Exposed only so the buffer can be reused.
  std::vector<double> subtree;
};

// Array-form kernels shared by RcTree and the variation analysis (which
// evaluates the same recurrences on perturbed copies of the node array).
// `nodes` must be topologically ordered (parent index < child index), which
// RcTree guarantees by construction. All output arrays hold `n` doubles.

/// One descending sweep: down[i] = Miller-weighted cap downstream of (and
/// including) node i.
void rc_downstream(const RcNode* nodes, int n, double miller, double* down);

/// Two sweeps: downstream cap + Elmore delay (m1). Identical arithmetic to
/// the historical RcTree::elmore_delay.
void rc_elmore(const RcNode* nodes, int n, double driver_res, double miller,
               double* down, double* m1);

/// Fused moment kernel: ONE descending sweep (down + the subtree accumulator
/// T_i = sum_{k in sub(i)} C_k (m1_k - m1_i), via T_p += T_i + R_i*down_i^2)
/// and ONE ascending sweep (m1 and m2 together, m2_i = m2_p +
/// R_i * (T_i + m1_i * down_i)). down/m1 are bit-identical to the separate
/// kernels; m2 is algebraically identical but associates differently than
/// the historical three-pass algorithm.
void rc_moments(const RcNode* nodes, int n, double driver_res, double miller,
                double* down, double* subtree, double* m1, double* m2);

class RcTree {
 public:
  RcTree() { nodes_.emplace_back(); }

  /// Adds a node under `parent`; returns its index.
  int add_node(int parent, double res, double cap_gnd, double cap_cpl);

  int size() const { return static_cast<int>(nodes_.size()); }
  RcNode& node(int i) { return nodes_.at(i); }
  const RcNode& node(int i) const { return nodes_.at(i); }

  double total_cap_gnd() const;
  double total_cap_cpl() const;

  /// Capacitance downstream of (and including) each node, with the given
  /// Miller weight on coupling caps. downstream[0] is the total net cap the
  /// driver sees.
  std::vector<double> downstream_cap(double miller) const;

  /// Elmore delay from the driver output (node 0) to every node, given the
  /// driver's linearized output resistance. delay[i] = Rdrv*Ctot +
  /// sum_{edges e on path to i} R_e * Cdown(e).
  std::vector<double> elmore_delay(double driver_res, double miller) const;

  /// Circuit second moment at every node (same driver model):
  /// m2_i = sum_k R_shared(i,k) C_k m1_k, i.e. the magnitude of the s^2
  /// transfer-function coefficient. The second *time* moment is 2*m2.
  /// Used by the D2M delay metric and the slew estimate.
  std::vector<double> second_moment(double driver_res, double miller) const;

  /// Fused kernel: downstream cap, m1 and m2 for every node in two sweeps
  /// total, written into caller-provided scratch (no allocation after the
  /// scratch has warmed up). Equivalent to calling the three legacy entry
  /// points above, which are now thin wrappers over this.
  void moments(double driver_res, double miller, RcMoments& out) const;

  /// Clears the tree to `size` >= 1 default nodes (node 0 the driver) so a
  /// caller can bulk-fill it in place, reusing any existing capacity.
  void reset(int size);

  /// Nodes are appended parent-first, so index order is topological.
  const std::vector<RcNode>& nodes() const { return nodes_; }
  RcNode* data() { return nodes_.data(); }
  const RcNode* data() const { return nodes_.data(); }

 private:
  std::vector<RcNode> nodes_;
};

}  // namespace sndr::extract
