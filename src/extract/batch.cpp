#include "extract/batch.hpp"

#include <cassert>
#include <map>

namespace sndr::extract {

void materialize_batch(const NetGeometry& geom, const EvalLane* lanes,
                       int n_lanes, common::Arena& arena,
                       BatchParasitics& out) {
  const int n = geom.rc_size();
  const int L = n_lanes;
  out.nodes = n;
  out.lanes = L;
  const std::int64_t plane = static_cast<std::int64_t>(n) * L;
  out.res = arena.alloc_zeroed<double>(plane);
  out.cap_gnd = arena.alloc_zeroed<double>(plane);
  out.cap_cpl = arena.alloc_zeroed<double>(plane);
  out.wire_cap_gnd = arena.alloc_zeroed<double>(L);
  out.wire_cap_cpl = arena.alloc_zeroed<double>(L);
  out.load_cap = arena.alloc_zeroed<double>(L);

  // Lane-independent topology: node i+1 hangs off piece i's parent.
  std::int32_t* parent = arena.alloc<std::int32_t>(n);
  double* wire_len = arena.alloc<double>(n);
  parent[0] = -1;
  wire_len[0] = 0.0;
  for (int i = 0; i < geom.pieces(); ++i) {
    parent[i + 1] = geom.piece_parent[i];
    wire_len[i + 1] = geom.piece_len[i];
  }
  out.parent = parent;
  out.wire_len = wire_len;

  // Per-lane per-um coefficients, exactly as the scalar materialize derives
  // them from (tech, rule).
  double* res_per_um = arena.alloc<double>(L);
  double* cgnd_per_um = arena.alloc<double>(L);
  double* ccpl_side_per_um = arena.alloc<double>(L);
  for (int l = 0; l < L; ++l) {
    const tech::MetalLayer& layer = lanes[l].tech->clock_layer;
    const tech::RoutingRule& rule = *lanes[l].rule;
    res_per_um[l] = tech::wire_res_per_um(layer, rule);
    cgnd_per_um[l] = tech::wire_cap_gnd_per_um(layer, rule);
    ccpl_side_per_um[l] = tech::wire_cap_couple_per_um(layer, rule);
  }

  // One pass over the pieces, lanes innermost. Per lane this performs the
  // scalar materialize piece loop's operations in the scalar order — lanes
  // are independent, so interleaving them changes nothing per lane. The
  // planes are distinct arena carvings; __restrict__ tells the
  // auto-vectorizer so.
  double* __restrict__ res = out.res;
  double* __restrict__ cap_gnd = out.cap_gnd;
  double* __restrict__ cap_cpl = out.cap_cpl;
  double* __restrict__ wcg = out.wire_cap_gnd;
  double* __restrict__ wcc = out.wire_cap_cpl;
  for (int i = 0; i < geom.pieces(); ++i) {
    const double piece_len = geom.piece_len[i];
    const double occ = geom.piece_occ[i];
    const std::int64_t prow = static_cast<std::int64_t>(geom.piece_parent[i]) * L;
    const std::int64_t arow = static_cast<std::int64_t>(i + 1) * L;
    for (int l = 0; l < L; ++l) {
      const double cg = cgnd_per_um[l] * piece_len;
      const double cc = 2.0 * occ * ccpl_side_per_um[l] * piece_len;
      cap_gnd[prow + l] += 0.5 * cg;
      cap_cpl[prow + l] += 0.5 * cc;
      res[arow + l] = res_per_um[l] * piece_len;
      cap_gnd[arow + l] += 0.5 * cg;
      cap_cpl[arow + l] += 0.5 * cc;
      wcg[l] += cg;
      wcc[l] += cc;
    }
  }
  // Accumulated in the same per-piece order during the geometry build.
  out.wirelength = geom.wirelength;

  for (const NetGeometry::Load& load : geom.loads) {
    const std::int64_t row = static_cast<std::int64_t>(load.rc_index) * L;
    for (int l = 0; l < L; ++l) {
      const double cap = load.buffer_cell >= 0
                             ? lanes[l].tech->buffers[load.buffer_cell].input_cap
                             : load.sink_cap;
      cap_gnd[row + l] += cap;
      out.load_cap[l] += cap;
    }
  }
}

void materialize_batch(const NetGeometry& geom, const tech::Technology& tech,
                       const tech::RuleSet& rules, common::Arena& arena,
                       BatchParasitics& out) {
  const int L = rules.size();
  EvalLane* lanes = arena.alloc<EvalLane>(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) lanes[l] = {&tech, &rules[l]};
  materialize_batch(geom, lanes, L, arena, out);
}

namespace {

#ifndef NDEBUG
/// Shape compatibility required by the cross-net kernels: identical piece
/// topology and load attach indices (lengths/occupancies/caps may differ).
bool same_shape(const NetGeometry& a, const NetGeometry& b) {
  if (a.piece_parent != b.piece_parent) return false;
  if (a.loads.size() != b.loads.size()) return false;
  for (std::size_t li = 0; li < a.loads.size(); ++li) {
    if (a.loads[li].rc_index != b.loads[li].rc_index) return false;
  }
  return true;
}
#endif

}  // namespace

void materialize_nets_batch(const NetLane* lanes, int n_lanes,
                            common::Arena& arena, BatchParasitics& out) {
  const NetGeometry& shape = *lanes[0].geom;
#ifndef NDEBUG
  for (int l = 1; l < n_lanes; ++l) {
    assert(same_shape(shape, *lanes[l].geom) &&
           "materialize_nets_batch: lanes must share geometry shape");
  }
#endif
  const int n = shape.rc_size();
  const int L = n_lanes;
  out.nodes = n;
  out.lanes = L;
  const std::int64_t plane = static_cast<std::int64_t>(n) * L;
  out.res = arena.alloc_zeroed<double>(plane);
  out.cap_gnd = arena.alloc_zeroed<double>(plane);
  out.cap_cpl = arena.alloc_zeroed<double>(plane);
  out.wire_cap_gnd = arena.alloc_zeroed<double>(L);
  out.wire_cap_cpl = arena.alloc_zeroed<double>(L);
  out.load_cap = arena.alloc_zeroed<double>(L);

  // Topology is shared; edge lengths are per lane (different nets).
  std::int32_t* parent = arena.alloc<std::int32_t>(n);
  double* wire_len_lane = arena.alloc_zeroed<double>(plane);
  parent[0] = -1;
  for (int i = 0; i < shape.pieces(); ++i) {
    parent[i + 1] = shape.piece_parent[i];
  }
  out.parent = parent;
  out.wire_len = nullptr;
  out.wire_len_lane = wire_len_lane;

  double* res_per_um = arena.alloc<double>(L);
  double* cgnd_per_um = arena.alloc<double>(L);
  double* ccpl_side_per_um = arena.alloc<double>(L);
  for (int l = 0; l < L; ++l) {
    const tech::MetalLayer& layer = lanes[l].tech->clock_layer;
    const tech::RoutingRule& rule = *lanes[l].rule;
    res_per_um[l] = tech::wire_res_per_um(layer, rule);
    cgnd_per_um[l] = tech::wire_cap_gnd_per_um(layer, rule);
    ccpl_side_per_um[l] = tech::wire_cap_couple_per_um(layer, rule);
  }

  // One pass over the shared piece topology, lanes innermost; per lane the
  // scalar materialize piece loop's operations in the scalar order, fed by
  // that lane's own piece length and occupancy.
  double* __restrict__ res = out.res;
  double* __restrict__ cap_gnd = out.cap_gnd;
  double* __restrict__ cap_cpl = out.cap_cpl;
  double* __restrict__ wcg = out.wire_cap_gnd;
  double* __restrict__ wcc = out.wire_cap_cpl;
  for (int i = 0; i < shape.pieces(); ++i) {
    const std::int64_t prow =
        static_cast<std::int64_t>(shape.piece_parent[i]) * L;
    const std::int64_t arow = static_cast<std::int64_t>(i + 1) * L;
    for (int l = 0; l < L; ++l) {
      const double piece_len = lanes[l].geom->piece_len[i];
      const double occ = lanes[l].geom->piece_occ[i];
      const double cg = cgnd_per_um[l] * piece_len;
      const double cc = 2.0 * occ * ccpl_side_per_um[l] * piece_len;
      cap_gnd[prow + l] += 0.5 * cg;
      cap_cpl[prow + l] += 0.5 * cc;
      res[arow + l] = res_per_um[l] * piece_len;
      cap_gnd[arow + l] += 0.5 * cg;
      cap_cpl[arow + l] += 0.5 * cc;
      wcg[l] += cg;
      wcc[l] += cc;
      wire_len_lane[arow + l] = piece_len;
    }
  }
  out.wirelength = 0.0;  // lane-dependent; no cross-net consumer needs it.

  for (std::size_t li = 0; li < shape.loads.size(); ++li) {
    const std::int64_t row =
        static_cast<std::int64_t>(shape.loads[li].rc_index) * L;
    for (int l = 0; l < L; ++l) {
      const NetGeometry::Load& load = lanes[l].geom->loads[li];
      const double cap = load.buffer_cell >= 0
                             ? lanes[l].tech->buffers[load.buffer_cell].input_cap
                             : load.sink_cap;
      cap_gnd[row + l] += cap;
      out.load_cap[l] += cap;
    }
  }
}

NetShapeBuckets bucket_nets_by_shape(const GeometryCache& cache) {
  NetShapeBuckets out;
  out.group_of.assign(cache.net_count(), -1);
  // Signature: piece count, the parent array, a separator, then the load
  // attach indices — exact integer equality, nothing derived.
  std::map<std::vector<std::int64_t>, int> index;
  std::vector<std::int64_t> key;
  for (int id = 0; id < cache.net_count(); ++id) {
    const GeometryCache::Pinned pin = cache.pinned(id);
    const NetGeometry& g = *pin;
    key.clear();
    key.push_back(g.pieces());
    key.insert(key.end(), g.piece_parent.begin(), g.piece_parent.end());
    key.push_back(-1);
    for (const NetGeometry::Load& load : g.loads) {
      key.push_back(load.rc_index);
    }
    const auto [it, fresh] =
        index.emplace(key, static_cast<int>(out.groups.size()));
    if (fresh) out.groups.emplace_back();
    out.groups[it->second].push_back(id);
    out.group_of[id] = it->second;
  }
  return out;
}

void scatter_lane(const NetGeometry& geom, const BatchParasitics& batch,
                  int lane, NetParasitics& out) {
  const int n = batch.nodes;
  const int L = batch.lanes;
  out.rc.reset(n);
  RcNode* nodes = out.rc.data();
  for (int i = 0; i < n; ++i) {
    RcNode& nd = nodes[i];
    nd.parent = batch.parent[i];
    nd.res = batch.res[static_cast<std::int64_t>(i) * L + lane];
    nd.cap_gnd = batch.cap_gnd[static_cast<std::int64_t>(i) * L + lane];
    nd.cap_cpl = batch.cap_cpl[static_cast<std::int64_t>(i) * L + lane];
    nd.tree_node = geom.node_tree_node[i];
    nd.wire_len = batch.wire_len[i];
    nd.occupancy = i > 0 ? geom.piece_occ[i - 1] : 0.0;
  }
  out.wirelength = batch.wirelength;
  out.wire_cap_gnd = batch.wire_cap_gnd[lane];
  out.wire_cap_cpl = batch.wire_cap_cpl[lane];
  out.load_cap = batch.load_cap[lane];
  out.load_rc_index.resize(geom.loads.size());
  for (std::size_t li = 0; li < geom.loads.size(); ++li) {
    out.load_rc_index[li] = geom.loads[li].rc_index;
  }
}

void rc_downstream_batch(int nodes, int lanes,
                         const std::int32_t* __restrict__ parent,
                         const double* __restrict__ cap_gnd,
                         const double* __restrict__ cap_cpl,
                         const double* __restrict__ miller,
                         double* __restrict__ down) {
  const std::int64_t plane = static_cast<std::int64_t>(nodes) * lanes;
  for (std::int64_t i = 0; i < plane; ++i) down[i] = 0.0;
  for (int i = nodes - 1; i >= 0; --i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * lanes;
    for (int l = 0; l < lanes; ++l) {
      down[row + l] += cap_gnd[row + l] + miller[l] * cap_cpl[row + l];
    }
    const int p = parent[i];
    if (p >= 0) {
      const std::int64_t prow = static_cast<std::int64_t>(p) * lanes;
      for (int l = 0; l < lanes; ++l) down[prow + l] += down[row + l];
    }
  }
}

void rc_elmore_batch(int nodes, int lanes,
                     const std::int32_t* __restrict__ parent,
                     const double* __restrict__ res,
                     const double* __restrict__ cap_gnd,
                     const double* __restrict__ cap_cpl,
                     const double* __restrict__ driver_res,
                     const double* __restrict__ miller,
                     double* __restrict__ down, double* __restrict__ m1) {
  rc_downstream_batch(nodes, lanes, parent, cap_gnd, cap_cpl, miller, down);
  for (int l = 0; l < lanes; ++l) m1[l] = driver_res[l] * down[l];
  for (int i = 1; i < nodes; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * lanes;
    const std::int64_t prow = static_cast<std::int64_t>(parent[i]) * lanes;
    for (int l = 0; l < lanes; ++l) {
      m1[row + l] = m1[prow + l] + res[row + l] * down[row + l];
    }
  }
}

void rc_moments_batch(int nodes, int lanes,
                      const std::int32_t* __restrict__ parent,
                      const double* __restrict__ res,
                      const double* __restrict__ cap_gnd,
                      const double* __restrict__ cap_cpl,
                      const double* __restrict__ driver_res,
                      const double* __restrict__ miller,
                      double* __restrict__ down,
                      double* __restrict__ subtree,
                      double* __restrict__ m1, double* __restrict__ m2) {
  const std::int64_t plane = static_cast<std::int64_t>(nodes) * lanes;
  for (std::int64_t i = 0; i < plane; ++i) {
    down[i] = 0.0;
    subtree[i] = 0.0;
  }
  for (int i = nodes - 1; i >= 0; --i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * lanes;
    for (int l = 0; l < lanes; ++l) {
      down[row + l] += cap_gnd[row + l] + miller[l] * cap_cpl[row + l];
    }
    const int p = parent[i];
    if (p >= 0) {
      const std::int64_t prow = static_cast<std::int64_t>(p) * lanes;
      for (int l = 0; l < lanes; ++l) {
        down[prow + l] += down[row + l];
        subtree[prow + l] +=
            subtree[row + l] + res[row + l] * down[row + l] * down[row + l];
      }
    }
  }
  for (int l = 0; l < lanes; ++l) {
    m1[l] = driver_res[l] * down[l];
    m2[l] = driver_res[l] * (subtree[l] + m1[l] * down[l]);
  }
  for (int i = 1; i < nodes; ++i) {
    const std::int64_t row = static_cast<std::int64_t>(i) * lanes;
    const std::int64_t prow = static_cast<std::int64_t>(parent[i]) * lanes;
    for (int l = 0; l < lanes; ++l) {
      m1[row + l] = m1[prow + l] + res[row + l] * down[row + l];
      m2[row + l] = m2[prow + l] +
                    res[row + l] * (subtree[row + l] + m1[row + l] * down[row + l]);
    }
  }
}

void moments_batch(const NetGeometry& geom, const EvalLane* lanes,
                   int n_lanes, const double* driver_res,
                   const double* miller, common::Arena& arena,
                   BatchParasitics& par, BatchMoments& out) {
  materialize_batch(geom, lanes, n_lanes, arena, par);
  const std::int64_t plane =
      static_cast<std::int64_t>(par.nodes) * par.lanes;
  out.nodes = par.nodes;
  out.lanes = par.lanes;
  out.down = arena.alloc<double>(plane);
  out.subtree = arena.alloc<double>(plane);
  out.m1 = arena.alloc<double>(plane);
  out.m2 = arena.alloc<double>(plane);
  rc_moments_batch(par.nodes, par.lanes, par.parent, par.res, par.cap_gnd,
                   par.cap_cpl, driver_res, miller, out.down, out.subtree,
                   out.m1, out.m2);
}

}  // namespace sndr::extract
