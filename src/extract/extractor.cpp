#include "extract/extractor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace sndr::extract {

using netlist::ClockTree;
using netlist::Net;
using netlist::NodeKind;

double load_pin_cap(const ClockTree& tree, const netlist::Design& design,
                    const tech::Technology& tech, int node_id) {
  const netlist::TreeNode& n = tree.node(node_id);
  switch (n.kind) {
    case NodeKind::kBuffer:
      return tech.buffers[n.cell].input_cap;
    case NodeKind::kSink:
      return design.sinks.at(n.sink).pin_cap;
    default:
      return 0.0;
  }
}

NetParasitics Extractor::extract_net(const ClockTree& tree, const Net& net,
                                     const tech::RoutingRule& rule) const {
  NetParasitics out;
  out.rc_index_of_tree_node.assign(tree.size(), -1);
  out.rc_index_of_tree_node[net.driver] = 0;

  const tech::MetalLayer& layer = tech_->clock_layer;
  const double res_per_um = tech::wire_res_per_um(layer, rule);
  const double cgnd_per_um = tech::wire_cap_gnd_per_um(layer, rule);
  const double ccpl_side_per_um = tech::wire_cap_couple_per_um(layer, rule);
  const netlist::CongestionMap& cong = design_->congestion;

  // net.wires is root-first, so a wire's parent tree node is already mapped.
  for (const int v : net.wires) {
    const netlist::TreeNode& n = tree.node(v);
    const int parent_rc = out.rc_index_of_tree_node.at(n.parent);
    if (parent_rc < 0) {
      throw std::logic_error("Extractor: net wires not in root-first order");
    }
    geom::Path path = n.path;
    if (path.size() < 2) path = {tree.loc(n.parent), n.loc};

    int cur = parent_rc;
    const auto segments = geom::path_segments(path);
    for (const geom::Segment& seg : segments) {
      const double len = seg.length();
      if (len <= 0.0) continue;
      const int pieces = std::max(
          1, static_cast<int>(std::ceil(len / options_.max_seg_um)));
      const double piece_len = len / pieces;
      for (int i = 0; i < pieces; ++i) {
        const geom::Point mid =
            geom::lerp(seg.a, seg.b, (i + 0.5) / pieces);
        const double occ =
            cong.valid() ? cong.occupancy_at(mid) : 0.0;
        const double cg = cgnd_per_um * piece_len;
        const double cc = 2.0 * occ * ccpl_side_per_um * piece_len;
        // Pi split: half the piece cap at the near node, half at the far.
        out.rc.node(cur).cap_gnd += 0.5 * cg;
        out.rc.node(cur).cap_cpl += 0.5 * cc;
        const int next = out.rc.add_node(cur, res_per_um * piece_len,
                                         0.5 * cg, 0.5 * cc);
        RcNode& added = out.rc.node(next);
        added.wire_len = piece_len;
        added.occupancy = occ;
        cur = next;
        out.wirelength += piece_len;
        out.wire_cap_gnd += cg;
        out.wire_cap_cpl += cc;
      }
    }
    out.rc.node(cur).tree_node = v;
    out.rc_index_of_tree_node[v] = cur;
  }

  // Attach load pin caps.
  out.load_rc_index.reserve(net.loads.size());
  for (const int load : net.loads) {
    const int rc_idx = out.rc_index_of_tree_node.at(load);
    if (rc_idx < 0) {
      throw std::logic_error("Extractor: load not reached by net wires");
    }
    const double cap = load_pin_cap(tree, *design_, *tech_, load);
    out.rc.node(rc_idx).cap_gnd += cap;
    out.load_cap += cap;
    out.load_rc_index.push_back(rc_idx);
  }
  return out;
}

std::vector<NetParasitics> Extractor::extract_all(
    const ClockTree& tree, const netlist::NetList& nets,
    const std::vector<int>& rule_of_net) const {
  if (rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument(
        "Extractor::extract_all: rule assignment size mismatch");
  }
  // Each net extracts independently into its own slot, so the parallel
  // loop is bit-identical to the serial one at any thread count.
  std::vector<NetParasitics> out(nets.size());
  common::parallel_for(nets.size(), /*grain=*/16, [&](std::int64_t i) {
    const Net& net = nets.nets[static_cast<std::size_t>(i)];
    out[i] = extract_net(tree, net, tech_->rules[rule_of_net[net.id]]);
  });
  return out;
}

}  // namespace sndr::extract
