#include "extract/extractor.hpp"

#include <stdexcept>

#include "common/parallel.hpp"
#include "extract/net_geometry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::extract {

using netlist::ClockTree;
using netlist::Net;
using netlist::NodeKind;

double load_pin_cap(const ClockTree& tree, const netlist::Design& design,
                    const tech::Technology& tech, int node_id) {
  const netlist::TreeNode& n = tree.node(node_id);
  switch (n.kind) {
    case NodeKind::kBuffer:
      return tech.buffers[n.cell].input_cap;
    case NodeKind::kSink:
      return design.sinks.at(n.sink).pin_cap;
    default:
      return 0.0;
  }
}

NetParasitics Extractor::extract_net(const ClockTree& tree, const Net& net,
                                     const tech::RoutingRule& rule) const {
  // Fresh extraction is the two phases run back to back: the geometry walk
  // and the electrical materialization share all arithmetic with the cached
  // path, which is what makes cache hits bit-identical.
  const NetGeometry geom = build_net_geometry(tree, *design_, net, options_);
  NetParasitics out;
  materialize(geom, *tech_, rule, out);
  return out;
}

std::vector<NetParasitics> Extractor::extract_all(
    const ClockTree& tree, const netlist::NetList& nets,
    const std::vector<int>& rule_of_net, const GeometryCache* geometry) const {
  if (rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument(
        "Extractor::extract_all: rule assignment size mismatch");
  }
  if (geometry != nullptr && geometry->net_count() != nets.size()) {
    throw std::invalid_argument(
        "Extractor::extract_all: geometry cache covers a different net list");
  }
  SNDR_TRACE_SPAN("extract_all");
  SNDR_COUNTER_ADD("extract.extract_all_calls", 1);
  SNDR_COUNTER_ADD("extract.nets_extracted",
                   static_cast<std::int64_t>(nets.size()));
  if (geometry != nullptr) {
    SNDR_COUNTER_ADD("extract.nets_materialized_from_cache",
                     static_cast<std::int64_t>(nets.size()));
  } else {
    SNDR_COUNTER_ADD("extract.nets_fresh_walks",
                     static_cast<std::int64_t>(nets.size()));
  }
  // Each net extracts independently into its own slot, so the parallel
  // loop is bit-identical to the serial one at any thread count.
  std::vector<NetParasitics> out(nets.size());
  common::parallel_for(nets.size(), /*grain=*/16, /*est_us_per_item=*/1.0,
                       [&](std::int64_t i) {
    const Net& net = nets.nets[static_cast<std::size_t>(i)];
    const tech::RoutingRule& rule = tech_->rules[rule_of_net[net.id]];
    if (geometry != nullptr) {
      const GeometryCache::Pinned pin = geometry->pinned(net.id);
      materialize(*pin, *tech_, rule, out[i]);
    } else {
      out[i] = extract_net(tree, net, rule);
    }
  });
  return out;
}

}  // namespace sndr::extract
