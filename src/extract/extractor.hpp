// RC extraction of routed clock nets.
//
// Turns net geometry (routed paths) + the net's routing rule + the local
// congestion context into a distributed RcTree. Edges are subdivided so no
// RC piece exceeds `max_seg_um`; each piece's capacitance is split half to
// each end (pi-ladder), and its coupling part is scaled by the neighbor
// occupancy sampled at the piece midpoint.
#pragma once

#include <vector>

#include "extract/rc_tree.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::extract {

struct ExtractOptions {
  double max_seg_um = 20.0;  ///< max wire length per RC piece.
};

/// Parasitics of one extracted net.
struct NetParasitics {
  RcTree rc;
  /// RC node index of each net load, parallel to Net::loads.
  std::vector<int> load_rc_index;

  double wirelength = 0.0;    ///< um.
  double wire_cap_gnd = 0.0;  ///< F, wire area+fringe cap.
  double wire_cap_cpl = 0.0;  ///< F, wire coupling cap (occupancy-scaled).
  double load_cap = 0.0;      ///< F, sum of load pin caps.

  /// Switched capacitance seen by the driver each clock edge, with the given
  /// power Miller factor on coupling.
  double switched_cap(double miller_power) const {
    return wire_cap_gnd + load_cap + miller_power * wire_cap_cpl;
  }
};

class GeometryCache;  // net_geometry.hpp

class Extractor {
 public:
  Extractor(const tech::Technology& tech, const netlist::Design& design,
            ExtractOptions options = {})
      : tech_(&tech), design_(&design), options_(options) {}

  /// Extracts one net routed with `rule`. Internally runs the two-phase
  /// pipeline (build_net_geometry + materialize, see net_geometry.hpp), so
  /// cached extraction is bit-identical by construction.
  NetParasitics extract_net(const netlist::ClockTree& tree,
                            const netlist::Net& net,
                            const tech::RoutingRule& rule) const;

  /// Extracts every net with its assigned rule (`rule_of_net[net.id]` is an
  /// index into the technology rule set). When `geometry` is non-null it
  /// must cover the same net list; extraction then skips the per-net
  /// geometry walk and only materializes electricals.
  std::vector<NetParasitics> extract_all(
      const netlist::ClockTree& tree, const netlist::NetList& nets,
      const std::vector<int>& rule_of_net,
      const GeometryCache* geometry = nullptr) const;

  const tech::Technology& tech() const { return *tech_; }
  const netlist::Design& design() const { return *design_; }

 private:
  const tech::Technology* tech_;
  const netlist::Design* design_;
  ExtractOptions options_;
};

/// Capacitive load hanging at a load node: buffer input cap or sink pin cap.
double load_pin_cap(const netlist::ClockTree& tree,
                    const netlist::Design& design,
                    const tech::Technology& tech, int node_id);

}  // namespace sndr::extract
