#include "extract/rc_tree.hpp"

#include <stdexcept>

namespace sndr::extract {

int RcTree::add_node(int parent, double res, double cap_gnd, double cap_cpl) {
  if (parent < 0 || parent >= size()) {
    throw std::logic_error("RcTree::add_node: invalid parent");
  }
  RcNode n;
  n.parent = parent;
  n.res = res;
  n.cap_gnd = cap_gnd;
  n.cap_cpl = cap_cpl;
  nodes_.push_back(n);
  return size() - 1;
}

void RcTree::reset(int size) {
  if (size < 1) {
    throw std::logic_error("RcTree::reset: tree needs at least the driver");
  }
  nodes_.assign(static_cast<std::size_t>(size), RcNode{});
}

double RcTree::total_cap_gnd() const {
  double c = 0.0;
  for (const RcNode& n : nodes_) c += n.cap_gnd;
  return c;
}

double RcTree::total_cap_cpl() const {
  double c = 0.0;
  for (const RcNode& n : nodes_) c += n.cap_cpl;
  return c;
}

void rc_downstream(const RcNode* nodes, int n, double miller, double* down) {
  for (int i = 0; i < n; ++i) down[i] = 0.0;
  for (int i = n - 1; i >= 0; --i) {
    down[i] += nodes[i].cap_total(miller);
    if (nodes[i].parent >= 0) down[nodes[i].parent] += down[i];
  }
}

void rc_elmore(const RcNode* nodes, int n, double driver_res, double miller,
               double* down, double* m1) {
  rc_downstream(nodes, n, miller, down);
  m1[0] = driver_res * down[0];
  for (int i = 1; i < n; ++i) {
    m1[i] = m1[nodes[i].parent] + nodes[i].res * down[i];
  }
}

void rc_moments(const RcNode* nodes, int n, double driver_res, double miller,
                double* down, double* subtree, double* m1, double* m2) {
  // Descending sweep: downstream cap, and the relative cap-weighted delay
  //   T_i = sum_{k in sub(i)} C_k * (m1_k - m1_i).
  // Moving the reference from child c up to its parent p adds R_c * down_c
  // to every delay in sub(c), hence T contributions merge as
  //   T_p += T_c + R_c * down_c^2.
  for (int i = 0; i < n; ++i) {
    down[i] = 0.0;
    subtree[i] = 0.0;
  }
  for (int i = n - 1; i >= 0; --i) {
    down[i] += nodes[i].cap_total(miller);
    const int p = nodes[i].parent;
    if (p >= 0) {
      down[p] += down[i];
      subtree[p] += subtree[i] + nodes[i].res * down[i] * down[i];
    }
  }
  // Ascending sweep: m1 by prefix-summing R*down, and m2 by prefix-summing
  // R_i * W_i where W_i = sum_{k in sub(i)} C_k m1_k = T_i + m1_i * down_i.
  m1[0] = driver_res * down[0];
  m2[0] = driver_res * (subtree[0] + m1[0] * down[0]);
  for (int i = 1; i < n; ++i) {
    const int p = nodes[i].parent;
    m1[i] = m1[p] + nodes[i].res * down[i];
    m2[i] = m2[p] + nodes[i].res * (subtree[i] + m1[i] * down[i]);
  }
}

void RcTree::moments(double driver_res, double miller, RcMoments& out) const {
  const std::size_t n = nodes_.size();
  out.down.resize(n);
  out.m1.resize(n);
  out.m2.resize(n);
  out.subtree.resize(n);
  rc_moments(nodes_.data(), size(), driver_res, miller, out.down.data(),
             out.subtree.data(), out.m1.data(), out.m2.data());
}

std::vector<double> RcTree::downstream_cap(double miller) const {
  std::vector<double> down(nodes_.size());
  rc_downstream(nodes_.data(), size(), miller, down.data());
  return down;
}

std::vector<double> RcTree::elmore_delay(double driver_res,
                                         double miller) const {
  std::vector<double> down(nodes_.size());
  std::vector<double> m1(nodes_.size());
  rc_elmore(nodes_.data(), size(), driver_res, miller, down.data(), m1.data());
  return m1;
}

std::vector<double> RcTree::second_moment(double driver_res,
                                          double miller) const {
  RcMoments scratch;
  moments(driver_res, miller, scratch);
  return std::move(scratch.m2);
}

}  // namespace sndr::extract
