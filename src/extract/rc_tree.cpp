#include "extract/rc_tree.hpp"

#include <stdexcept>

namespace sndr::extract {

int RcTree::add_node(int parent, double res, double cap_gnd, double cap_cpl) {
  if (parent < 0 || parent >= size()) {
    throw std::logic_error("RcTree::add_node: invalid parent");
  }
  RcNode n;
  n.parent = parent;
  n.res = res;
  n.cap_gnd = cap_gnd;
  n.cap_cpl = cap_cpl;
  nodes_.push_back(n);
  return size() - 1;
}

double RcTree::total_cap_gnd() const {
  double c = 0.0;
  for (const RcNode& n : nodes_) c += n.cap_gnd;
  return c;
}

double RcTree::total_cap_cpl() const {
  double c = 0.0;
  for (const RcNode& n : nodes_) c += n.cap_cpl;
  return c;
}

std::vector<double> RcTree::downstream_cap(double miller) const {
  std::vector<double> down(nodes_.size(), 0.0);
  for (int i = size() - 1; i >= 0; --i) {
    down[i] += nodes_[i].cap_total(miller);
    if (nodes_[i].parent >= 0) down[nodes_[i].parent] += down[i];
  }
  return down;
}

std::vector<double> RcTree::elmore_delay(double driver_res,
                                         double miller) const {
  const std::vector<double> down = downstream_cap(miller);
  std::vector<double> delay(nodes_.size(), 0.0);
  delay[0] = driver_res * down[0];
  for (int i = 1; i < size(); ++i) {
    delay[i] = delay[nodes_[i].parent] + nodes_[i].res * down[i];
  }
  return delay;
}

std::vector<double> RcTree::second_moment(double driver_res,
                                          double miller) const {
  // m2_i = sum_k R_ik * C_k * m1_k where R_ik is the shared resistance of the
  // paths to i and k, computed with the standard two-pass algorithm:
  // accumulate C_k * m1_k downstream, then prefix-sum R along paths.
  const std::vector<double> m1 = elmore_delay(driver_res, miller);
  std::vector<double> weighted(nodes_.size(), 0.0);
  for (int i = size() - 1; i >= 0; --i) {
    weighted[i] += nodes_[i].cap_total(miller) * m1[i];
    if (nodes_[i].parent >= 0) weighted[nodes_[i].parent] += weighted[i];
  }
  std::vector<double> m2(nodes_.size(), 0.0);
  m2[0] = driver_res * weighted[0];
  for (int i = 1; i < size(); ++i) {
    m2[i] = m2[nodes_[i].parent] + nodes_[i].res * weighted[i];
  }
  return m2;
}

}  // namespace sndr::extract
