#include "netlist/clock_domains.hpp"

#include <stdexcept>

namespace sndr::netlist {

const char* to_string(DomainElement e) {
  switch (e) {
    case DomainElement::kRoot: return "root";
    case DomainElement::kMux: return "mux";
    case DomainElement::kGate: return "icg";
    case DomainElement::kDivider: return "div";
    case DomainElement::kInverter: return "inv";
  }
  return "?";
}

int ClockDomainMap::add_domain(ClockDomain d) {
  if (domains_.empty() && d.element != DomainElement::kRoot) {
    throw std::invalid_argument(
        "ClockDomainMap: domain 0 must be the root domain");
  }
  const int id = static_cast<int>(domains_.size());
  em_scale_.push_back(d.em_scale());
  domains_.push_back(std::move(d));
  return id;
}

void ClockDomainMap::set_domain_of_node(std::vector<int> domain_of_node) {
  domain_of_node_ = std::move(domain_of_node);
}

int ClockDomainMap::domain_lca(int a, int b) const {
  const auto depth = [&](int d) {
    int n = 0;
    while (domains_.at(d).parent >= 0) {
      d = domains_[d].parent;
      ++n;
    }
    return n;
  };
  int da = depth(a);
  int db = depth(b);
  while (da > db) {
    a = domains_[a].parent;
    --da;
  }
  while (db > da) {
    b = domains_[b].parent;
    --db;
  }
  while (a != b) {
    a = domains_[a].parent;
    b = domains_[b].parent;
  }
  return a;
}

bool ClockDomainMap::path_crosses_mux(int a, int b) const {
  const int lca = domain_lca(a, b);
  for (int d : {a, b}) {
    while (d != lca) {
      if (domains_[d].element == DomainElement::kMux) return true;
      d = domains_[d].parent;
    }
  }
  return false;
}

int ClockDomainMap::divisor_ratio(int a, int b) const {
  const int da = domains_.at(a).divisor;
  const int db = domains_.at(b).divisor;
  const int hi = da > db ? da : db;
  const int lo = da > db ? db : da;
  return lo > 0 ? hi / lo : 1;
}

void ClockDomainMap::validate(int num_nodes) const {
  if (domains_.empty()) return;  // disabled map: nothing to check.
  if (domains_[0].element != DomainElement::kRoot ||
      domains_[0].parent != -1 || domains_[0].divisor != 1 ||
      domains_[0].activity != 1.0) {
    throw std::invalid_argument(
        "ClockDomainMap: domain 0 must be the neutral root domain");
  }
  for (int i = 1; i < size(); ++i) {
    const ClockDomain& d = domains_[i];
    if (d.parent < 0 || d.parent >= i) {
      throw std::invalid_argument(
          "ClockDomainMap: domain parents must precede their children");
    }
    if (d.anchor < 0 || d.anchor >= num_nodes) {
      throw std::invalid_argument("ClockDomainMap: anchor out of range");
    }
    if (d.divisor < 1 || d.divisor % domains_[d.parent].divisor != 0) {
      throw std::invalid_argument(
          "ClockDomainMap: cumulative divisor must be a multiple of the "
          "parent's");
    }
    if (!(d.activity > 0.0) || d.activity > 1.0 ||
        d.activity > domains_[d.parent].activity) {
      throw std::invalid_argument(
          "ClockDomainMap: cumulative activity must be in (0, 1] and "
          "monotone down the chain");
    }
  }
  if (enabled() &&
      domain_of_node_.size() != static_cast<std::size_t>(num_nodes)) {
    throw std::invalid_argument(
        "ClockDomainMap: node map size does not match the tree");
  }
  for (const int d : domain_of_node_) {
    if (d < 0 || d >= size()) {
      throw std::invalid_argument("ClockDomainMap: node maps to no domain");
    }
  }
}

}  // namespace sndr::netlist
