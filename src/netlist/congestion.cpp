#include "netlist/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace sndr::netlist {

CongestionMap::CongestionMap(geom::BBox area, int nx, int ny, double occupancy,
                             double capacity_per_cell)
    : area_(area), nx_(nx), ny_(ny) {
  if (nx <= 0 || ny <= 0) {
    throw std::invalid_argument("CongestionMap: grid must be positive");
  }
  if (area.empty()) {
    throw std::invalid_argument("CongestionMap: empty area");
  }
  occupancy_.assign(static_cast<std::size_t>(nx) * ny,
                    std::clamp(occupancy, 0.0, 1.0));
  capacity_.assign(static_cast<std::size_t>(nx) * ny, capacity_per_cell);
}

CongestionMap CongestionMap::uniform(geom::BBox area, int nx, int ny,
                                     double occupancy, double default_pitch_um,
                                     double clock_track_fraction) {
  const double cell_area = (area.width() / nx) * (area.height() / ny);
  const double capacity =
      cell_area / default_pitch_um * clock_track_fraction;
  return CongestionMap(area, nx, ny, occupancy, capacity);
}

int CongestionMap::cell_index(geom::Point p) const {
  const double fx = (p.x - area_.lo().x) / std::max(area_.width(), 1e-12);
  const double fy = (p.y - area_.lo().y) / std::max(area_.height(), 1e-12);
  const int ix = std::clamp(static_cast<int>(fx * nx_), 0, nx_ - 1);
  const int iy = std::clamp(static_cast<int>(fy * ny_), 0, ny_ - 1);
  return iy * nx_ + ix;
}

geom::BBox CongestionMap::cell_box(int idx) const {
  const int ix = idx % nx_;
  const int iy = idx / nx_;
  const double w = area_.width() / nx_;
  const double h = area_.height() / ny_;
  const double x0 = area_.lo().x + ix * w;
  const double y0 = area_.lo().y + iy * h;
  return geom::BBox(x0, y0, x0 + w, y0 + h);
}

double CongestionMap::occupancy_at(geom::Point p) const {
  return occupancy_[cell_index(p)];
}

double CongestionMap::avg_occupancy(const geom::Path& path) const {
  double len = 0.0;
  double weighted = 0.0;
  for_each_cell(path, [&](int idx, double l) {
    len += l;
    weighted += l * occupancy_[idx];
  });
  if (len <= 0.0) {
    return path.empty() ? occupancy_[0] : occupancy_at(path.front());
  }
  return weighted / len;
}

void CongestionMap::for_each_cell(
    const geom::Path& path,
    const std::function<void(int, double)>& fn) const {
  const double cw = area_.width() / nx_;
  const double ch = area_.height() / ny_;
  for (const geom::Segment& seg : geom::path_segments(path)) {
    const double len = seg.length();
    if (len <= 0.0) continue;
    // Walk the segment in sub-steps no longer than half a cell dimension;
    // attribute each sub-step's length to the cell of its midpoint. Exact
    // for axis-parallel segments up to the step quantization.
    const double step_limit = 0.5 * (seg.horizontal() ? cw : ch);
    const int steps =
        std::max(1, static_cast<int>(std::ceil(len / std::max(step_limit,
                                                              1e-9))));
    const double dl = len / steps;
    for (int i = 0; i < steps; ++i) {
      const double t = (i + 0.5) / steps;
      fn(cell_index(geom::lerp(seg.a, seg.b, t)), dl);
    }
  }
}

void RoutingUsage::add(const geom::Path& path, double pitch_mult) {
  if (map_ == nullptr || !map_->valid()) return;
  map_->for_each_cell(path, [&](int idx, double len) {
    used_[idx] += pitch_mult * len;
  });
}

double RoutingUsage::max_utilization() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < used_.size(); ++i) {
    const double cap = map_->capacity_cell(static_cast<int>(i));
    if (cap > 0.0) worst = std::max(worst, used_[i] / cap);
  }
  return worst;
}

int RoutingUsage::overflow_cells() const {
  int n = 0;
  for (std::size_t i = 0; i < used_.size(); ++i) {
    if (used_[i] > map_->capacity_cell(static_cast<int>(i))) ++n;
  }
  return n;
}

bool RoutingUsage::fits(const geom::Path& path, double pitch_mult) const {
  if (map_ == nullptr || !map_->valid()) return true;
  // Accumulate the candidate's own demand per cell before comparing, since
  // a path can cross the same cell through several sub-steps.
  std::map<int, double> extra;
  map_->for_each_cell(path, [&](int idx, double len) {
    extra[idx] += pitch_mult * len;
  });
  for (const auto& [idx, demand] : extra) {
    if (used_[idx] + demand > map_->capacity_cell(idx)) return false;
  }
  return true;
}

}  // namespace sndr::netlist
