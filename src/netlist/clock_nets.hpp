// Net decomposition of a buffered clock tree.
//
// A net is the wire region owned by one driver (the clock source or a buffer
// output) together with the loads it reaches (buffer inputs and sinks).
// Routing rules, extraction, slew checks, and EM checks are all per net —
// the granularity at which the paper assigns NDRs.
#pragma once

#include <vector>

#include "netlist/clock_tree.hpp"

namespace sndr::netlist {

struct Net {
  int id = -1;
  int driver = -1;  ///< source or buffer node id.
  int depth = 0;    ///< 0 for the root net, +1 per upstream buffer stage.
  /// Non-driver node ids v whose incoming edge (parent(v) -> v) belongs to
  /// this net, in root-first order.
  std::vector<int> wires;
  /// Terminating loads: buffer or sink node ids.
  std::vector<int> loads;
};

struct NetList {
  std::vector<Net> nets;
  /// Per tree-node id: net owning the edge *into* that node (-1 for root).
  std::vector<int> net_of_edge;
  /// Per tree-node id: net driven by this node (-1 if not a driver).
  std::vector<int> net_driven;

  int size() const { return static_cast<int>(nets.size()); }
  const Net& operator[](int i) const { return nets.at(i); }
};

/// Decomposes the tree; nets are numbered in root-first driver order, so the
/// root net is always net 0 and `Net::depth` is non-decreasing in id.
NetList build_nets(const ClockTree& tree);

/// Total routed length (um) of one net.
double net_wirelength(const ClockTree& tree, const Net& net);

}  // namespace sndr::netlist
