// Clock-domain model for multi-domain clock architectures.
//
// Real clock networks are not one buffered tree at one toggle rate: muxes
// select between sources, ICGs (integrated clock gates) stop subtrees for a
// fraction of cycles, dividers halve or quarter the rate of whole regions,
// and inverters flip polarity. For NDR assignment the consequence is purely
// *rate*: a subtree behind an ICG with enable duty `a` under a /k divider
// toggles a/k as often as the root clock, so its wires contribute a/k of
// their capacitance to switched power and carry sqrt(a/k) of the RMS EM
// current (charge per event is unchanged; events repeat a/k as often, and
// RMS scales with the square root of the repetition rate). The objective
// should therefore rank nets by ACTIVITY-WEIGHTED switched capacitance —
// which changes which nets deserve expensive rules.
//
// The model is an annotation layer over the existing ClockTree: a domain
// element (mux / ICG / divider / inverter) is a marked buffer node, and a
// ClockDomain is the subtree hanging below that anchor until the next
// element. Electrically every element still analyzes as its buffer cell —
// timing, slew, and variation are activity-independent — so a domain graph
// whose weights are all exactly 1.0 degenerates BITWISE to the single-tree
// results (every weighting below is a multiplication, and x * 1.0 == x for
// every finite IEEE double).
//
// An empty / single-domain map (`enabled() == false`) is the legacy
// single-tree world: every query returns the neutral weight without
// touching any stored state, so designs that never mention domains are
// untouched byte for byte.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace sndr::netlist {

/// What kind of clock element anchors a domain.
enum class DomainElement : std::uint8_t {
  kRoot = 0,  ///< the clock source itself (domain 0 only).
  kMux,       ///< clock mux: selected source; severs common-node correlation.
  kGate,      ///< ICG: subtree toggles for `duty` fraction of cycles.
  kDivider,   ///< divide-by-k: subtree toggles at 1/k of the parent rate.
  kInverter,  ///< polarity flip; rate-neutral (weight 1).
};

const char* to_string(DomainElement e);

/// A user/generator-supplied element mark on one tree node. `divide` and
/// `duty` are LOCAL to the element; cumulative values are derived by
/// cts::derive_domains along the root path.
struct DomainAnnotation {
  int node = -1;                              ///< ClockTree node (a buffer).
  DomainElement element = DomainElement::kGate;
  int divide = 1;      ///< local period divisor (kDivider; >= 1).
  double duty = 1.0;   ///< local enable duty in (0, 1] (kGate).
  std::string name;    ///< optional; derived ("d<k>_<kind>") when empty.
};

/// One clock domain: the subtree anchored at `anchor` (exclusive of deeper
/// anchors), with CUMULATIVE rate parameters relative to the root clock.
struct ClockDomain {
  std::string name = "root";
  DomainElement element = DomainElement::kRoot;
  int anchor = -1;       ///< tree node where the domain starts (-1: root).
  int parent = -1;       ///< parent domain id (-1 for domain 0).
  int divisor = 1;       ///< cumulative period divisor vs the root clock.
  double activity = 1.0; ///< cumulative enable duty in (0, 1].
  bool inverted = false; ///< cumulative polarity vs the root clock.
  int sinks = 0;         ///< design sinks inside this domain (filled late).

  /// Fraction of root-clock cycles on which this domain's wires toggle —
  /// the switched-capacitance weight. Exactly 1.0 for an ungated,
  /// undivided domain.
  double toggle_weight() const {
    return activity / static_cast<double>(divisor);
  }
  /// EM current-density scale: RMS current of a pulse train repeating at
  /// `r` times the root rate scales as sqrt(r). sqrt(1.0) == 1.0 exactly.
  double em_scale() const { return std::sqrt(toggle_weight()); }
};

/// The derived per-tree domain map: which domain every tree node belongs
/// to, plus the domain records themselves. Built by cts::derive_domains;
/// stored on the Design so every analysis (power, EM, search, signoff)
/// sees the same world. Default-constructed == domains disabled.
class ClockDomainMap {
 public:
  ClockDomainMap() = default;

  /// Multi-domain mode: more than just the root domain. Every weighting
  /// hook below answers the neutral value when disabled.
  bool enabled() const { return domains_.size() > 1; }

  int size() const { return static_cast<int>(domains_.size()); }
  const ClockDomain& domain(int id) const { return domains_.at(id); }
  const std::vector<ClockDomain>& domains() const { return domains_; }

  /// Domain of a tree node (0 / root when disabled or out of range — a map
  /// derived for one tree answers neutrally for any other).
  int domain_of_node(int node) const {
    if (!enabled() || node < 0 ||
        node >= static_cast<int>(domain_of_node_.size())) {
      return 0;
    }
    return domain_of_node_[node];
  }

  /// Switched-capacitance weight of the net driven from `driver_node`.
  double node_toggle_weight(int driver_node) const {
    if (!enabled()) return 1.0;
    return domains_[domain_of_node(driver_node)].toggle_weight();
  }

  /// EM current-density scale of wires driven from `driver_node`.
  double node_em_scale(int driver_node) const {
    if (!enabled()) return 1.0;
    return em_scale_.at(domain_of_node(driver_node));
  }

  /// Deepest common ancestor DOMAIN of `a` and `b` (walks parent chains).
  int domain_lca(int a, int b) const;

  /// True when the domain-chain path between `a` and `b` (both ends
  /// inclusive, LCA exclusive) crosses a clock mux — the pair is then
  /// "related clocks with no common node": the mux's other source came
  /// from elsewhere, so no shared-path variation cancellation may be
  /// assumed and inter-clock skew must absorb both uncertainties.
  bool path_crosses_mux(int a, int b) const;

  /// Divisor ratio of a synchronous pair (max/min; 1 for equal rates).
  int divisor_ratio(int a, int b) const;

  /// Appends a derived domain (cts::derive_domains / tests). Domain 0 must
  /// be the root domain. Returns the new id.
  int add_domain(ClockDomain d);
  void set_domain_of_node(std::vector<int> domain_of_node);
  void set_domain_sinks(int id, int sinks) { domains_.at(id).sinks = sinks; }

  /// Sanity checks (anchor/parent ids in range, divisor >= 1, activity in
  /// (0, 1], node map complete); throws std::invalid_argument. `num_nodes`
  /// is the tree size the map was derived for.
  void validate(int num_nodes) const;

 private:
  std::vector<ClockDomain> domains_;
  std::vector<int> domain_of_node_;  ///< [tree node] -> domain id.
  std::vector<double> em_scale_;     ///< per domain; cached sqrt.
};

}  // namespace sndr::netlist
