// Design-level data: clock sinks, constraints, and the congestion context in
// which the clock network is routed.
#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "netlist/clock_domains.hpp"
#include "netlist/congestion.hpp"
#include "tech/units.hpp"

namespace sndr::netlist {

/// A clock sink: a flop/latch clock pin (or a clock-gate input).
struct Sink {
  std::string name;
  geom::Point loc;
  double pin_cap = 2e-15;  ///< F.
};

/// Clock network design constraints checked by the analyzers and enforced by
/// the NDR optimizer.
struct ClockConstraints {
  double max_slew = 100 * units::ps;   ///< max transition anywhere on clock.
  double max_skew = 50 * units::ps;    ///< global sink-to-sink skew bound.
  double max_uncertainty = 35 * units::ps;  ///< 3*sigma + xtalk per sink.
  double clock_freq = 1 * units::GHz;
  /// Inter-clock skew budget for domain pairs (report/inter_clock.hpp).
  /// 0 = derive a default: max_skew for pairs with a common tree node,
  /// max_skew + 2 * max_uncertainty for mux-separated pairs (which must
  /// absorb both clocks' uncertainties with no shared-path cancellation).
  double max_inter_clock_skew = 0.0;
};

/// Optional useful-skew windows: instead of one global skew bound, each
/// sink i may arrive within [lo[i], hi[i]] of the mean latency (derived
/// from per-path setup/hold slacks). Empty vectors = plain global skew.
/// Loose windows hand the NDR optimizer extra freedom on non-critical
/// sinks; tight windows protect critical paths.
struct UsefulSkewWindows {
  std::vector<double> lo;  ///< s, per design sink (negative = may be early).
  std::vector<double> hi;  ///< s, per design sink (positive = may be late).

  bool enabled() const { return !lo.empty(); }
};

/// A design, as seen by the clock implementation flow: a core area, a clock
/// entry point, the sinks, the constraints, and the signal-routing congestion
/// the clock wires must coexist with.
struct Design {
  std::string name = "design";
  geom::BBox core;
  geom::Point clock_root;  ///< clock source (e.g. PLL output pin) location.
  std::vector<Sink> sinks;
  ClockConstraints constraints;
  UsefulSkewWindows useful_skew;  ///< optional; see UsefulSkewWindows.
  CongestionMap congestion;
  /// Multi-domain clock annotations (mux/ICG/divider/inverter subtrees),
  /// derived for the design's clock tree by cts::derive_domains. Default
  /// (disabled) leaves every analysis bitwise identical to the
  /// single-domain world — see clock_domains.hpp.
  ClockDomainMap clock_domains;

  double total_sink_cap() const {
    double c = 0.0;
    for (const Sink& s : sinks) c += s.pin_cap;
    return c;
  }
};

}  // namespace sndr::netlist
