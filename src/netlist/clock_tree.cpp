#include "netlist/clock_tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sndr::netlist {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kSource: return "source";
    case NodeKind::kBuffer: return "buffer";
    case NodeKind::kSteiner: return "steiner";
    case NodeKind::kSink: return "sink";
  }
  return "?";
}

int ClockTree::add_node(NodeKind kind, geom::Point loc, int parent) {
  if (kind == NodeKind::kSource) {
    if (root_ >= 0) throw std::logic_error("ClockTree: second source added");
  } else {
    if (parent < 0 || parent >= size()) {
      throw std::logic_error("ClockTree: node added with invalid parent");
    }
    if (nodes_[parent].kind == NodeKind::kSink) {
      throw std::logic_error("ClockTree: sink cannot have children");
    }
  }
  const int id = size();
  TreeNode n;
  n.kind = kind;
  n.loc = loc;
  n.parent = kind == NodeKind::kSource ? -1 : parent;
  nodes_.push_back(std::move(n));
  if (kind == NodeKind::kSource) {
    root_ = id;
  } else {
    nodes_[parent].children.push_back(id);
  }
  return id;
}

int ClockTree::add_source(geom::Point loc) {
  return add_node(NodeKind::kSource, loc, -1);
}

int ClockTree::add_buffer(geom::Point loc, int parent, int cell) {
  const int id = add_node(NodeKind::kBuffer, loc, parent);
  nodes_[id].cell = cell;
  return id;
}

int ClockTree::add_steiner(geom::Point loc, int parent) {
  return add_node(NodeKind::kSteiner, loc, parent);
}

int ClockTree::add_sink(geom::Point loc, int parent, int sink_index) {
  const int id = add_node(NodeKind::kSink, loc, parent);
  nodes_[id].sink = sink_index;
  return id;
}

void ClockTree::set_path(int id, geom::Path path) {
  TreeNode& n = nodes_.at(id);
  if (n.parent < 0) throw std::logic_error("ClockTree: root has no path");
  if (path.size() < 2 ||
      !geom::almost_equal(path.front(), nodes_[n.parent].loc, 1e-6) ||
      !geom::almost_equal(path.back(), n.loc, 1e-6)) {
    throw std::logic_error(
        "ClockTree::set_path: path must run parent.loc -> node.loc");
  }
  n.path = std::move(path);
}

void ClockTree::set_cell(int id, int cell) {
  TreeNode& n = nodes_.at(id);
  if (n.kind != NodeKind::kBuffer) {
    throw std::logic_error("ClockTree::set_cell: node is not a buffer");
  }
  n.cell = cell;
}

void ClockTree::move_node(int id, geom::Point loc) {
  TreeNode& n = nodes_.at(id);
  n.loc = loc;
  n.path.clear();
  for (const int c : n.children) nodes_[c].path.clear();
}

std::vector<int> ClockTree::topological_order() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(nodes_.size());
  order.push_back(root_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const int c : nodes_[order[i]].children) order.push_back(c);
  }
  return order;
}

int ClockTree::buffer_depth(int id) const {
  int depth = 0;
  for (int v = id; v >= 0; v = nodes_[v].parent) {
    if (nodes_[v].kind == NodeKind::kBuffer) ++depth;
  }
  return depth;
}

int ClockTree::max_buffer_depth() const {
  int worst = 0;
  for (int id = 0; id < size(); ++id) {
    if (nodes_[id].kind == NodeKind::kSink) {
      worst = std::max(worst, buffer_depth(id));
    }
  }
  return worst;
}

int ClockTree::count(NodeKind kind) const {
  int n = 0;
  for (const TreeNode& node : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

double ClockTree::edge_length(int id) const {
  const TreeNode& n = nodes_.at(id);
  if (n.parent < 0) return 0.0;
  if (n.path.size() >= 2) return geom::path_length(n.path);
  return geom::manhattan(nodes_[n.parent].loc, n.loc);
}

double ClockTree::total_wirelength() const {
  double len = 0.0;
  for (int id = 0; id < size(); ++id) len += edge_length(id);
  return len;
}

void ClockTree::ensure_default_paths() {
  for (const int id : topological_order()) {
    TreeNode& n = nodes_[id];
    if (n.parent < 0 || n.path.size() >= 2) continue;
    const bool horizontal_first = buffer_depth(id) % 2 == 0;
    n.path = geom::l_path(nodes_[n.parent].loc, n.loc, horizontal_first);
  }
}

void ClockTree::validate(int num_sinks) const {
  if (root_ < 0) throw std::logic_error("ClockTree: no source");
  std::vector<int> seen_sink(num_sinks, 0);
  std::vector<char> reached(nodes_.size(), 0);
  for (const int id : topological_order()) {
    reached[id] = 1;
    const TreeNode& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::kSource:
        if (id != root_) throw std::logic_error("ClockTree: stray source");
        break;
      case NodeKind::kBuffer:
        if (n.cell < 0) {
          throw std::logic_error("ClockTree: buffer without a cell");
        }
        break;
      case NodeKind::kSink: {
        if (!n.children.empty()) {
          throw std::logic_error("ClockTree: sink with children");
        }
        if (n.sink < 0 || n.sink >= num_sinks) {
          throw std::logic_error("ClockTree: sink index out of range");
        }
        if (++seen_sink[n.sink] > 1) {
          throw std::logic_error("ClockTree: sink connected twice");
        }
        break;
      }
      case NodeKind::kSteiner:
        break;
    }
    if (n.path.size() >= 2) {
      if (!geom::almost_equal(n.path.front(), nodes_[n.parent].loc, 1e-6) ||
          !geom::almost_equal(n.path.back(), n.loc, 1e-6)) {
        throw std::logic_error("ClockTree: path endpoints mismatch node " +
                               std::to_string(id));
      }
    }
  }
  for (int id = 0; id < size(); ++id) {
    if (!reached[id]) {
      throw std::logic_error("ClockTree: node unreachable from source");
    }
  }
  for (int s = 0; s < num_sinks; ++s) {
    if (seen_sink[s] == 0) {
      throw std::logic_error("ClockTree: design sink " + std::to_string(s) +
                             " not connected");
    }
  }
}

}  // namespace sndr::netlist
