// The buffered clock tree: the central data structure of the library.
//
// Nodes form a rooted tree. The root is the clock source; internal nodes are
// buffers or Steiner (branch) points; leaves are sinks. Every non-root node
// carries the routed path of the wire from its parent's location to its own
// (`path`), produced by the router. Electrical rule choice (the NDR) is made
// per *net*, where a net is the maximal wire region between one driver
// (source or buffer output) and the buffer inputs / sinks it reaches — see
// clock_nets.hpp.
#pragma once

#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/segment.hpp"

namespace sndr::netlist {

enum class NodeKind { kSource, kBuffer, kSteiner, kSink };

const char* to_string(NodeKind kind);

struct TreeNode {
  NodeKind kind = NodeKind::kSteiner;
  geom::Point loc;
  int parent = -1;
  std::vector<int> children;
  int cell = -1;    ///< buffer-library index; kBuffer only.
  int sink = -1;    ///< Design::sinks index; kSink only.
  geom::Path path;  ///< route from parent.loc to loc; empty on the root.

  bool is_driver() const {
    return kind == NodeKind::kSource || kind == NodeKind::kBuffer;
  }
};

class ClockTree {
 public:
  ClockTree() = default;

  /// Creates the root (clock source). Must be called exactly once, first.
  int add_source(geom::Point loc);
  int add_buffer(geom::Point loc, int parent, int cell);
  int add_steiner(geom::Point loc, int parent);
  int add_sink(geom::Point loc, int parent, int sink_index);

  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  int root() const { return root_; }
  const TreeNode& node(int id) const { return nodes_.at(id); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  geom::Point loc(int id) const { return nodes_.at(id).loc; }

  /// Replaces the routed path of the edge into `id`. The path must start at
  /// the parent's location and end at the node's location.
  void set_path(int id, geom::Path path);
  /// Changes a buffer's library cell.
  void set_cell(int id, int cell);
  /// Moves a node; clears the incident routed paths (they must be re-routed).
  void move_node(int id, geom::Point loc);

  /// Ids in root-first order (every parent precedes its children).
  std::vector<int> topological_order() const;

  /// Number of buffers on the source->node path, counting `id` itself.
  int buffer_depth(int id) const;
  int max_buffer_depth() const;

  int count(NodeKind kind) const;

  /// Total routed wirelength (um); edges with no explicit path count as the
  /// Manhattan distance between the endpoints.
  double total_wirelength() const;

  /// Length (um) of the edge from parent(id) to id.
  double edge_length(int id) const;

  /// Gives every non-root node missing a routed path a default L-shape
  /// (alternating bend orientation by depth to spread congestion).
  void ensure_default_paths();

  /// Structural validation; throws std::logic_error describing the first
  /// problem found. `num_sinks` is the design sink count: each design sink
  /// must appear exactly once as a leaf.
  void validate(int num_sinks) const;

 private:
  int add_node(NodeKind kind, geom::Point loc, int parent);

  std::vector<TreeNode> nodes_;
  int root_ = -1;
};

}  // namespace sndr::netlist
