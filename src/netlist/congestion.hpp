// Routing-congestion context for the clock layer.
//
// The map discretizes the core into a uniform grid. Each cell carries:
//
//  * `occupancy`  — probability in [0,1] that a track adjacent to a clock
//    wire in this cell is occupied by a (toggling) signal wire. This scales
//    the realized coupling capacitance and the crosstalk exposure of clock
//    wires crossing the cell: wider NDR spacing only pays off where
//    occupancy is high.
//  * `capacity`   — routing resource available to the clock network in the
//    cell, expressed in default-pitch track-um. A clock wire consumes
//    `pitch_mult(rule) * length` of it; the NDR optimizer must respect the
//    per-cell budget (this is why "just route everything at triple spacing"
//    is not free even though it lowers capacitance).
#pragma once

#include <functional>
#include <vector>

#include "geom/rect.hpp"
#include "geom/segment.hpp"

namespace sndr::netlist {

class CongestionMap {
 public:
  /// A 1x1 map with the given uniform occupancy and unlimited capacity.
  CongestionMap() = default;

  CongestionMap(geom::BBox area, int nx, int ny, double occupancy,
                double capacity_per_cell);

  /// Uniform occupancy, capacity derived from cell geometry: each cell gets
  /// `clock_track_fraction` of its total track length (cell area divided by
  /// the default routing pitch).
  static CongestionMap uniform(geom::BBox area, int nx, int ny,
                               double occupancy, double default_pitch_um,
                               double clock_track_fraction);

  bool valid() const { return nx_ > 0 && ny_ > 0; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  const geom::BBox& area() const { return area_; }
  int cell_count() const { return nx_ * ny_; }

  int cell_index(geom::Point p) const;
  geom::BBox cell_box(int idx) const;

  double occupancy_cell(int idx) const { return occupancy_.at(idx); }
  double capacity_cell(int idx) const { return capacity_.at(idx); }
  void set_occupancy_cell(int idx, double v) { occupancy_.at(idx) = v; }
  void set_capacity_cell(int idx, double v) { capacity_.at(idx) = v; }

  double occupancy_at(geom::Point p) const;

  /// Length-weighted mean occupancy along a rectilinear path.
  double avg_occupancy(const geom::Path& path) const;

  /// Calls fn(cell_index, length_um) for every (cell, in-cell length) pair a
  /// rectilinear path crosses. Lengths sum to the path length.
  void for_each_cell(const geom::Path& path,
                     const std::function<void(int, double)>& fn) const;

 private:
  geom::BBox area_ = geom::BBox{0, 0, 1, 1};
  int nx_ = 1;
  int ny_ = 1;
  std::vector<double> occupancy_{0.3};
  std::vector<double> capacity_{1e18};
};

/// Tracks per-cell clock routing usage against a CongestionMap's capacity.
class RoutingUsage {
 public:
  explicit RoutingUsage(const CongestionMap* map)
      : map_(map), used_(map ? map->cell_count() : 0, 0.0) {}

  /// Adds (or removes, if negative) `pitch_mult * length` usage along path.
  void add(const geom::Path& path, double pitch_mult);

  double used_cell(int idx) const { return used_.at(idx); }

  /// Worst cell utilization used/capacity over the map (0 if empty).
  double max_utilization() const;

  /// Number of cells whose usage exceeds capacity.
  int overflow_cells() const;

  /// True if adding `pitch_mult*length` along `path` keeps every crossed
  /// cell within capacity.
  bool fits(const geom::Path& path, double pitch_mult) const;

 private:
  const CongestionMap* map_ = nullptr;
  std::vector<double> used_;
};

}  // namespace sndr::netlist
