#include "netlist/clock_nets.hpp"

namespace sndr::netlist {

NetList build_nets(const ClockTree& tree) {
  NetList out;
  out.net_of_edge.assign(tree.size(), -1);
  out.net_driven.assign(tree.size(), -1);
  if (tree.empty()) return out;

  // Root-first walk: a driver starts a net; every other node's incoming edge
  // joins its parent's net context.
  for (const int id : tree.topological_order()) {
    const TreeNode& n = tree.node(id);
    if (n.parent >= 0) {
      const TreeNode& p = tree.node(n.parent);
      const int net_id =
          p.is_driver() ? out.net_driven[n.parent] : out.net_of_edge[n.parent];
      out.net_of_edge[id] = net_id;
      Net& net = out.nets[net_id];
      net.wires.push_back(id);
      if (n.kind == NodeKind::kBuffer || n.kind == NodeKind::kSink) {
        net.loads.push_back(id);
      }
    }
    if (n.is_driver()) {
      Net net;
      net.id = static_cast<int>(out.nets.size());
      net.driver = id;
      if (n.kind == NodeKind::kSource) {
        net.depth = 0;
      } else {
        net.depth = out.nets[out.net_of_edge[id]].depth + 1;
      }
      out.net_driven[id] = net.id;
      out.nets.push_back(std::move(net));
    }
  }
  return out;
}

double net_wirelength(const ClockTree& tree, const Net& net) {
  double len = 0.0;
  for (const int id : net.wires) len += tree.edge_length(id);
  return len;
}

}  // namespace sndr::netlist
