// Non-default routing (NDR) rule definitions.
//
// A routing rule scales the minimum wire width and the minimum spacing of the
// clock routing layer. The default rule is 1W1S; the conventional blanket
// clock NDR is 2W2S (double width, double spacing). The smart-NDR optimizer
// picks one rule per clock net from a RuleSet.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sndr::tech {

struct RoutingRule {
  std::string name;       ///< e.g. "2W2S".
  double width_mult = 1;  ///< wire width  = width_mult  * layer min width.
  double space_mult = 1;  ///< wire spacing = space_mult * layer min spacing.

  /// Routing-track pitch consumed per um of wire, in multiples of the
  /// default (1W1S) pitch. Drives the congestion/resource model.
  double pitch_mult(double width_frac) const {
    // width_frac = min_width / (min_width + min_space) of the layer.
    return width_mult * width_frac + space_mult * (1.0 - width_frac);
  }

  friend bool operator==(const RoutingRule&, const RoutingRule&) = default;
};

/// An ordered set of candidate rules. Index 0 is always the default rule
/// (1W1S); `blanket()` is the conventional all-clock NDR the paper's
/// baselines use (widest rule unless marked otherwise).
class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::vector<RoutingRule> rules, int blanket_index = -1);

  /// The production rule set studied in the paper's experiments:
  /// 1W1S, 1W2S, 2W1S, 2W2S, 3W3S, with 2W2S as the blanket rule.
  static RuleSet standard();

  int size() const { return static_cast<int>(rules_.size()); }
  const RoutingRule& operator[](int i) const { return rules_.at(i); }
  const RoutingRule& default_rule() const { return rules_.at(0); }
  const RoutingRule& blanket_rule() const { return rules_.at(blanket_); }
  int default_index() const { return 0; }
  int blanket_index() const { return blanket_; }

  /// Index of the rule with the given name, or -1.
  int find(const std::string& name) const;

  auto begin() const { return rules_.begin(); }
  auto end() const { return rules_.end(); }

 private:
  std::vector<RoutingRule> rules_;
  int blanket_ = 0;
};

}  // namespace sndr::tech
