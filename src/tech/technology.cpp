#include "tech/technology.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sndr::tech {

Technology Technology::make_default_45nm() {
  Technology t;
  t.name = "generic45";
  // Defaults of MetalLayer / RuleSet::standard() / BufferLibrary::standard()
  // are the 45nm-class calibration; nothing to override.
  return t;
}

std::string Technology::to_text() const {
  std::ostringstream os;
  os.precision(12);
  os << "name = " << name << "\n";
  os << "vdd = " << vdd << "\n";
  os << "miller_delay = " << miller_delay << "\n";
  os << "miller_power = " << miller_power << "\n";
  os << "aggressor_activity = " << aggressor_activity << "\n";
  os << "em_crest_factor = " << em_crest_factor << "\n";
  const MetalLayer& m = clock_layer;
  os << "layer.name = " << m.name << "\n";
  os << "layer.min_width = " << m.min_width << "\n";
  os << "layer.min_space = " << m.min_space << "\n";
  os << "layer.r_sheet = " << m.r_sheet << "\n";
  os << "layer.c_area = " << m.c_area << "\n";
  os << "layer.c_fringe = " << m.c_fringe << "\n";
  os << "layer.k_couple = " << m.k_couple << "\n";
  os << "layer.s_offset = " << m.s_offset << "\n";
  os << "layer.em_jmax = " << m.em_jmax << "\n";
  os << "layer.sigma_width = " << m.sigma_width << "\n";
  os << "layer.sigma_thickness = " << m.sigma_thickness << "\n";
  for (const RoutingRule& r : rules) {
    os << "rule = " << r.name << ' ' << r.width_mult << ' ' << r.space_mult
       << "\n";
  }
  os << "blanket_rule = " << rules.blanket_rule().name << "\n";
  for (const BufferCell& c : buffers) {
    os << "buffer = " << c.name << ' ' << c.drive_res << ' ' << c.input_cap
       << ' ' << c.intrinsic_delay << ' ' << c.internal_energy << ' '
       << c.max_cap << ' ' << c.slew_sensitivity << "\n";
  }
  return os.str();
}

namespace {

[[noreturn]] void parse_error(const std::string& source, int line_no,
                              const std::string& line,
                              const std::string& what) {
  std::ostringstream os;
  os << source << ":" << line_no << ": " << what << " in '" << line << "'";
  throw common::ParseError(os.str());
}

}  // namespace

Technology Technology::from_text(const std::string& text,
                                 const std::string& source) {
  Technology t;
  std::vector<RoutingRule> rules;
  std::vector<BufferCell> buffers;
  std::string blanket_name;

  std::map<std::string, double*> scalar_fields = {
      {"vdd", &t.vdd},
      {"miller_delay", &t.miller_delay},
      {"miller_power", &t.miller_power},
      {"aggressor_activity", &t.aggressor_activity},
      {"em_crest_factor", &t.em_crest_factor},
      {"layer.min_width", &t.clock_layer.min_width},
      {"layer.min_space", &t.clock_layer.min_space},
      {"layer.r_sheet", &t.clock_layer.r_sheet},
      {"layer.c_area", &t.clock_layer.c_area},
      {"layer.c_fringe", &t.clock_layer.c_fringe},
      {"layer.k_couple", &t.clock_layer.k_couple},
      {"layer.s_offset", &t.clock_layer.s_offset},
      {"layer.em_jmax", &t.clock_layer.em_jmax},
      {"layer.sigma_width", &t.clock_layer.sigma_width},
      {"layer.sigma_thickness", &t.clock_layer.sigma_thickness},
  };

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // Blank / comment-only line.
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        parse_error(source, line_no, line, "missing '='");
      }
      continue;
    }
    std::istringstream key_is(line.substr(0, eq));
    std::string key;
    key_is >> key;
    std::istringstream val_is(line.substr(eq + 1));

    if (key == "name") {
      val_is >> t.name;
    } else if (key == "layer.name") {
      val_is >> t.clock_layer.name;
    } else if (key == "rule") {
      RoutingRule r;
      if (!(val_is >> r.name >> r.width_mult >> r.space_mult)) {
        parse_error(source, line_no, line, "expected 'rule = NAME WMULT SMULT'");
      }
      rules.push_back(r);
    } else if (key == "blanket_rule") {
      val_is >> blanket_name;
    } else if (key == "buffer") {
      BufferCell c;
      if (!(val_is >> c.name >> c.drive_res >> c.input_cap >>
            c.intrinsic_delay >> c.internal_energy >> c.max_cap >>
            c.slew_sensitivity)) {
        parse_error(source, line_no, line,
                    "expected 'buffer = NAME RES CAP TINTR EINT CMAX SSENS'");
      }
      buffers.push_back(c);
    } else if (auto it = scalar_fields.find(key); it != scalar_fields.end()) {
      if (!(val_is >> *it->second)) {
        parse_error(source, line_no, line, "expected a numeric value");
      }
    } else {
      parse_error(source, line_no, line, "unknown key '" + key + "'");
    }
  }

  if (!rules.empty()) {
    int blanket = -1;
    if (!blanket_name.empty()) {
      for (int i = 0; i < static_cast<int>(rules.size()); ++i) {
        if (rules[i].name == blanket_name) blanket = i;
      }
      if (blanket < 0) {
        throw common::ParseError(source + ": blanket_rule '" + blanket_name +
                                 "' does not name a parsed rule");
      }
    }
    t.rules = RuleSet(std::move(rules), blanket);
  }
  if (!buffers.empty()) t.buffers = BufferLibrary(std::move(buffers));
  return t;
}

common::Result<Technology> load_technology_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("cannot open technology file " + path);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    return Technology::from_text(ss.str(), path);
  } catch (...) {
    return common::classify_exception(common::StatusCode::kIoError);
  }
}

}  // namespace sndr::tech
