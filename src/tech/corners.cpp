#include "tech/corners.hpp"

namespace sndr::tech {

std::vector<Corner> standard_corners() {
  return {
      {"slow", 1.10, 1.08, 0.95, 1.15},
      {"typ", 1.00, 1.00, 1.00, 1.00},
      {"fast", 0.90, 0.93, 1.05, 0.87},
  };
}

Technology apply_corner(const Technology& tech, const Corner& corner) {
  Technology t = tech;
  t.name = tech.name + "_" + corner.name;
  t.clock_layer.r_sheet *= corner.r_scale;
  t.clock_layer.c_area *= corner.c_scale;
  t.clock_layer.c_fringe *= corner.c_scale;
  t.clock_layer.k_couple *= corner.c_scale;
  t.vdd *= corner.vdd_scale;

  std::vector<BufferCell> cells;
  cells.reserve(t.buffers.size());
  for (const BufferCell& c : t.buffers) {
    BufferCell s = c;
    s.drive_res *= corner.cell_scale;
    s.intrinsic_delay *= corner.cell_scale;
    s.internal_energy *= corner.vdd_scale * corner.vdd_scale;
    cells.push_back(std::move(s));
  }
  t.buffers = BufferLibrary(std::move(cells));
  return t;
}

}  // namespace sndr::tech
