// Clock buffer library.
//
// Buffers are modeled with the usual switch-level abstraction used by clock
// tree synthesis: a linear drive resistance, a lumped input capacitance, an
// intrinsic delay, and an internal energy per clock cycle. Delay and output
// slew are analytic in the load, which keeps the timer closed-form while
// preserving the sensitivities the NDR optimizer relies on (load cap up =>
// slew up, drive resistance down => slew down).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace sndr::tech {

struct BufferCell {
  std::string name;          ///< e.g. "CLKBUF_X8".
  double drive_res = 300.0;  ///< ohm, linearized output resistance.
  double input_cap = 6e-15;  ///< F.
  double intrinsic_delay = 20e-12;  ///< s, zero-load delay.
  double internal_energy = 10e-15;  ///< J per full clock cycle (both edges).
  double max_cap = 250e-15;  ///< F, library max load.
  double slew_sensitivity = 0.15;  ///< d(delay)/d(input slew), unitless.

  /// Propagation delay driving `load_cap` with input transition `slew_in`.
  double delay(double load_cap, double slew_in) const {
    return intrinsic_delay + drive_res * load_cap +
           slew_sensitivity * slew_in;
  }

  /// Output transition time (10-90%) driving `load_cap`. The driven wire's
  /// distributed RC further degrades this downstream (see timing/slew).
  double output_slew(double load_cap) const {
    // ln(9) ~ 2.197: 10-90% transition of a single-pole response.
    return 2.197 * drive_res * load_cap + 0.4 * intrinsic_delay;
  }

  friend bool operator==(const BufferCell&, const BufferCell&) = default;
};

class BufferLibrary {
 public:
  BufferLibrary() = default;
  explicit BufferLibrary(std::vector<BufferCell> cells);

  /// Geometrically sized CLKBUF_X2..X32 family for the default technology.
  static BufferLibrary standard();

  int size() const { return static_cast<int>(cells_.size()); }
  const BufferCell& operator[](int i) const { return cells_.at(i); }
  const BufferCell& smallest() const { return cells_.front(); }
  const BufferCell& largest() const { return cells_.back(); }

  /// Index of the smallest cell that can drive `load_cap` with output slew
  /// <= `max_slew` and load <= max_cap; returns the largest cell if none
  /// qualifies (caller splits the load by inserting more buffers).
  int best_for_load(double load_cap, double max_slew) const;

  int find(const std::string& name) const;

  auto begin() const { return cells_.begin(); }
  auto end() const { return cells_.end(); }

 private:
  std::vector<BufferCell> cells_;  ///< sorted by increasing drive strength.
};

/// Error-boundary loader for a standalone buffer library file: the
/// `buffer = NAME RES CAP TINTR EINT CMAX SSENS` lines of the technology
/// text format ('#' comments, blank lines allowed). kNotFound when the
/// file cannot be opened, kParseError with a path:line diagnostic on
/// malformed input or an empty library; never throws.
common::Result<BufferLibrary> load_buffer_library_file(
    const std::string& path);

}  // namespace sndr::tech
