// Wire electrical model: per-layer resistance and capacitance as a function
// of the routing rule (width/spacing) and the local neighbor occupancy.
//
// The model is the standard decomposition used in pre-layout clock planning:
//
//   R/um      = r_sheet / width
//   Cg/um     = c_area * width + 2 * c_fringe            (cap to ground)
//   Cc/um     = 2 * occupancy * c_couple(spacing)        (lateral coupling)
//   c_couple(s) = k_couple / (s + s_offset)              (hyperbolic fit)
//
// `occupancy` in [0,1] is the fraction of the wire length that actually has
// a parallel neighbor at the rule's spacing; it comes from the congestion
// map of the design region the wire crosses. This is the crux of the paper's
// power argument: extra width *always* costs area/fringe capacitance, while
// extra spacing only saves coupling where a neighbor exists.
#pragma once

#include <string>

#include "tech/routing_rule.hpp"

namespace sndr::tech {

struct MetalLayer {
  std::string name = "M5";

  // Geometry (um).
  double min_width = 0.14;
  double min_space = 0.14;

  // Electrical coefficients (SI; geometry coefficients per um).
  double r_sheet = 0.25;        ///< ohm/sq.
  double c_area = 0.30e-15;     ///< F/um^2 (plate cap to adjacent planes).
  double c_fringe = 0.038e-15;  ///< F/um per edge.
  double k_couple = 16.2e-18;   ///< F*um/um, coupling = k/(s + s_offset).
  double s_offset = 0.04;       ///< um, keeps coupling finite at s->0.

  // Electromigration: maximum RMS current per um of wire width.
  double em_jmax = 2.5e-3;  ///< A/um (RMS, at reference temperature).

  // Process variation (one sigma).
  double sigma_width = 0.005;      ///< um, absolute width variation.
  double sigma_thickness = 0.05;   ///< fraction, thickness variation.

  double default_pitch() const { return min_width + min_space; }
  double width_frac() const { return min_width / default_pitch(); }
};

/// Per-um wire parasitics realized by a rule on a layer.
struct WireRc {
  double res_per_um = 0.0;      ///< ohm/um.
  double cap_gnd_per_um = 0.0;  ///< F/um, area + fringe.
  double cap_cpl_per_um = 0.0;  ///< F/um, lateral coupling (both sides).

  double cap_total_per_um() const { return cap_gnd_per_um + cap_cpl_per_um; }
};

/// Resistance per um of a wire routed with `rule`.
double wire_res_per_um(const MetalLayer& layer, const RoutingRule& rule);

/// Ground (area+fringe) capacitance per um.
double wire_cap_gnd_per_um(const MetalLayer& layer, const RoutingRule& rule);

/// One-side coupling capacitance per um at the rule's spacing, assuming a
/// neighbor is present along the full length.
double wire_cap_couple_per_um(const MetalLayer& layer,
                              const RoutingRule& rule);

/// Full per-um parasitics with the given neighbor occupancy in [0,1].
WireRc wire_rc_per_um(const MetalLayer& layer, const RoutingRule& rule,
                      double occupancy);

/// Routing pitch (um) consumed by one wire of `rule`: width + spacing.
double wire_pitch(const MetalLayer& layer, const RoutingRule& rule);

}  // namespace sndr::tech
