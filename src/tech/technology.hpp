// Aggregate technology description: the clock routing layer, the candidate
// NDR rule set, the buffer library, and global electrical parameters.
//
// A Technology can be built from the 45nm-class defaults
// (`Technology::make_default_45nm()`) or loaded from a simple `key = value`
// text format so that users can explore their own stacks (see
// examples/custom_technology.cpp).
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.hpp"
#include "tech/buffer_lib.hpp"
#include "tech/routing_rule.hpp"
#include "tech/wire_model.hpp"

namespace sndr::tech {

struct Technology {
  std::string name = "generic45";

  MetalLayer clock_layer;
  RuleSet rules = RuleSet::standard();
  BufferLibrary buffers = BufferLibrary::standard();

  // Operating point.
  double vdd = 1.1;  ///< V.

  // Crosstalk modeling.
  double miller_delay = 2.0;   ///< coupling multiplier for worst-case delay.
  double miller_power = 1.0;   ///< average coupling multiplier for power.
  double aggressor_activity = 0.3;  ///< P(neighbor toggles against us).

  // Electromigration: Irms ~= em_crest_factor * Iavg for clock waveforms.
  double em_crest_factor = 2.0;

  /// Default technology used throughout the paper reproduction.
  static Technology make_default_45nm();

  /// Serializes to / parses from the `key = value` text format. Parsing
  /// throws common::ParseError with a line diagnostic on malformed input;
  /// `source` names the input in that diagnostic.
  std::string to_text() const;
  static Technology from_text(const std::string& text,
                              const std::string& source = "<text>");
};

/// Error-boundary loader for the `key = value` technology format:
/// kNotFound when the file cannot be opened, kParseError with a path:line
/// diagnostic on malformed input; never throws.
common::Result<Technology> load_technology_file(const std::string& path);

}  // namespace sndr::tech
