// Unit conventions and readable literals.
//
// The library stores electrical quantities in SI units (ohm, farad, second,
// watt, ampere, hertz, volt) and geometry in micrometers. The constants here
// make construction sites and tests readable (e.g. `100 * units::ps`)
// and the helpers convert to conventional display units.
#pragma once

namespace sndr::units {

// Time.
inline constexpr double s = 1.0;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// Capacitance.
inline constexpr double F = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// Resistance.
inline constexpr double ohm = 1.0;
inline constexpr double kohm = 1e3;

// Power / energy / current / voltage / frequency.
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double J = 1.0;
inline constexpr double fJ = 1e-15;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double V = 1.0;
inline constexpr double Hz = 1.0;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Geometry (canonical unit is the micrometer itself).
inline constexpr double um = 1.0;
inline constexpr double mm = 1e3;
inline constexpr double nm = 1e-3;

// Display conversions.
inline constexpr double to_ps(double seconds) { return seconds / ps; }
inline constexpr double to_ns(double seconds) { return seconds / ns; }
inline constexpr double to_fF(double farads) { return farads / fF; }
inline constexpr double to_pF(double farads) { return farads / pF; }
inline constexpr double to_uW(double watts) { return watts / uW; }
inline constexpr double to_mW(double watts) { return watts / mW; }
inline constexpr double to_mA(double amps) { return amps / mA; }
inline constexpr double to_mm(double microns) { return microns / mm; }

}  // namespace sndr::units
