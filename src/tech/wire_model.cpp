#include "tech/wire_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace sndr::tech {

RuleSet::RuleSet(std::vector<RoutingRule> rules, int blanket_index)
    : rules_(std::move(rules)) {
  if (rules_.empty()) throw std::invalid_argument("RuleSet: empty rule list");
  if (rules_[0].width_mult != 1.0 || rules_[0].space_mult != 1.0) {
    throw std::invalid_argument("RuleSet: rule 0 must be the default 1W1S");
  }
  if (blanket_index < 0) {
    // Widest rule is the conventional blanket NDR.
    blanket_ = 0;
    for (int i = 1; i < size(); ++i) {
      const auto& r = rules_[i];
      const auto& b = rules_[blanket_];
      if (r.width_mult > b.width_mult ||
          (r.width_mult == b.width_mult && r.space_mult > b.space_mult)) {
        blanket_ = i;
      }
    }
  } else {
    if (blanket_index >= size()) {
      throw std::invalid_argument("RuleSet: blanket index out of range");
    }
    blanket_ = blanket_index;
  }
}

RuleSet RuleSet::standard() {
  return RuleSet(
      {
          {"1W1S", 1, 1},
          {"1W2S", 1, 2},
          {"2W1S", 2, 1},
          {"2W2S", 2, 2},
          {"3W3S", 3, 3},
      },
      /*blanket_index=*/3);
}

int RuleSet::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (rules_[i].name == name) return i;
  }
  return -1;
}

double wire_res_per_um(const MetalLayer& layer, const RoutingRule& rule) {
  const double width = layer.min_width * rule.width_mult;
  return layer.r_sheet / width;
}

double wire_cap_gnd_per_um(const MetalLayer& layer, const RoutingRule& rule) {
  const double width = layer.min_width * rule.width_mult;
  return layer.c_area * width + 2.0 * layer.c_fringe;
}

double wire_cap_couple_per_um(const MetalLayer& layer,
                              const RoutingRule& rule) {
  const double space = layer.min_space * rule.space_mult;
  return layer.k_couple / (space + layer.s_offset);
}

WireRc wire_rc_per_um(const MetalLayer& layer, const RoutingRule& rule,
                      double occupancy) {
  occupancy = std::clamp(occupancy, 0.0, 1.0);
  WireRc rc;
  rc.res_per_um = wire_res_per_um(layer, rule);
  rc.cap_gnd_per_um = wire_cap_gnd_per_um(layer, rule);
  rc.cap_cpl_per_um =
      2.0 * occupancy * wire_cap_couple_per_um(layer, rule);
  return rc;
}

double wire_pitch(const MetalLayer& layer, const RoutingRule& rule) {
  return layer.min_width * rule.width_mult +
         layer.min_space * rule.space_mult;
}

}  // namespace sndr::tech
