#include "tech/buffer_lib.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tech/units.hpp"

namespace sndr::tech {

BufferLibrary::BufferLibrary(std::vector<BufferCell> cells)
    : cells_(std::move(cells)) {
  if (cells_.empty()) {
    throw std::invalid_argument("BufferLibrary: empty cell list");
  }
  std::sort(cells_.begin(), cells_.end(),
            [](const BufferCell& a, const BufferCell& b) {
              return a.drive_res > b.drive_res;  // weakest first.
            });
}

BufferLibrary BufferLibrary::standard() {
  std::vector<BufferCell> cells;
  for (const int size : {2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    BufferCell c;
    c.name = "CLKBUF_X" + std::to_string(size);
    c.drive_res = 2400.0 / size * units::ohm;
    c.input_cap = 0.8 * size * units::fF;
    c.intrinsic_delay = 20 * units::ps;
    c.internal_energy = 1.2 * size * units::fJ;
    c.max_cap = 30.0 * size * units::fF;
    c.slew_sensitivity = 0.15;
    cells.push_back(c);
  }
  return BufferLibrary(std::move(cells));
}

int BufferLibrary::best_for_load(double load_cap, double max_slew) const {
  for (int i = 0; i < size(); ++i) {
    const BufferCell& c = cells_[i];
    if (load_cap <= c.max_cap && c.output_slew(load_cap) <= max_slew) {
      return i;
    }
  }
  return size() - 1;
}

int BufferLibrary::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (cells_[i].name == name) return i;
  }
  return -1;
}

common::Result<BufferLibrary> load_buffer_library_file(
    const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("cannot open buffer library file " +
                                    path);
  }
  std::vector<BufferCell> cells;
  std::string line;
  int line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    const std::string at = path + ":" + std::to_string(line_no) + ": ";
    std::string eq;
    if (key != "buffer" || !(ls >> eq) || eq != "=") {
      return common::Status::ParseFailure(
          at + "expected 'buffer = NAME RES CAP TINTR EINT CMAX SSENS'");
    }
    BufferCell c;
    if (!(ls >> c.name >> c.drive_res >> c.input_cap >> c.intrinsic_delay >>
          c.internal_energy >> c.max_cap >> c.slew_sensitivity)) {
      return common::Status::ParseFailure(at + "malformed buffer cell");
    }
    cells.push_back(std::move(c));
  }
  if (cells.empty()) {
    return common::Status::ParseFailure(path + ": no buffer cells");
  }
  return BufferLibrary(std::move(cells));
}

}  // namespace sndr::tech
