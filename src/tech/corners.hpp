// Process/voltage corners.
//
// A corner scales the interconnect sheet resistance, the capacitance
// coefficients, and the supply. Signoff checks the worst corner per
// constraint: slow (high R, high C, low V) dominates slew/skew/delay,
// fast (low R, low C, high V) dominates EM current density and power.
#pragma once

#include <string>
#include <vector>

#include "tech/technology.hpp"

namespace sndr::tech {

struct Corner {
  std::string name = "typ";
  double r_scale = 1.0;    ///< multiplies layer sheet resistance.
  double c_scale = 1.0;    ///< multiplies area/fringe/coupling caps.
  double vdd_scale = 1.0;  ///< multiplies supply voltage.
  /// Buffer drive resistance tracks the transistor corner; intrinsic delay
  /// scales the same way to first order.
  double cell_scale = 1.0;
};

/// The standard three-corner set used by the signoff flow.
std::vector<Corner> standard_corners();

/// Returns a Technology with the corner folded into every coefficient the
/// analyzers read (layer R/C, vdd, buffer drive/intrinsic/energy).
Technology apply_corner(const Technology& tech, const Corner& corner);

}  // namespace sndr::tech
