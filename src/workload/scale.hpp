// Synthetic scale ladder: pre-buffered clock trees at 10k / 100k / 1M nets.
//
// The paper-style workloads (generator.hpp) run real CTS + congestion
// rerouting, which is the right fidelity for quality experiments but far
// too slow to synthesize a million-net tree on every bench run. This
// module builds the tree DIRECTLY: a deterministic b-ary buffer hierarchy
// over a quadrant-subdivided floorplan, leaf buffers fanning out to sinks,
// default L-routes, and a uniform congestion field. The result exercises
// exactly the pipeline under test (extract -> evaluate -> optimize) with
// net and sink counts dialed by one knob, in O(nets) time.
//
// Determinism: everything derives from ScaleSpec::seed via workload::Rng,
// so a rung's tree is bit-identical across runs, machines, and thread
// counts — the scale bench can assert bitwise-equal optimizer output
// between budgeted and unbounded flows.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::workload {

struct ScaleSpec {
  std::string name = "scale";
  /// Driver (net) count: 1 source + (num_nets - 1) buffers.
  int num_nets = 10000;
  int branching = 4;      ///< buffer children per internal driver.
  int sinks_per_leaf = 2; ///< sinks under each childless driver.
  std::uint64_t seed = 1;

  double area_per_net_um2 = 500.0;  ///< core area scales with net count.
  double pin_cap = 2e-15;           ///< F, uniform sink load.

  // Uniform congestion field.
  double occupancy = 0.30;
  double clock_track_fraction = 0.25;
};

struct ScaleWorkload {
  netlist::Design design;
  netlist::ClockTree tree;
  netlist::NetList nets;
};

/// Builds the design + tree + nets for one rung. `buffer_cell` selects the
/// driver cell from tech.buffers (-1 = the middle of the library).
ScaleWorkload make_scale_workload(const ScaleSpec& spec,
                                  const tech::Technology& tech,
                                  int buffer_cell = -1);

}  // namespace sndr::workload
