// Deterministic multi-domain clock workloads.
//
// Takes the scale ladder's directly-built b-ary buffer tree
// (make_scale_workload) and sprinkles clock elements — ICGs, dividers,
// muxes, inverters — over its buffer nodes, then derives the
// ClockDomainMap onto the design. One knob family controls how many of
// each element appear; everything (which buffers are picked, each ICG's
// duty, each divider's ratio) derives from DomainSpec::domain_seed via
// workload::Rng, so a spec is bit-identical across runs and machines.
//
// With all element counts zero the result is exactly the scale workload:
// the domain map stays disabled and every analysis degenerates bitwise to
// the single-tree numbers — the property the scenario fuzzer pins.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/clock_domains.hpp"
#include "workload/scale.hpp"

namespace sndr::workload {

struct DomainSpec {
  ScaleSpec base;

  int gates = 2;      ///< ICG count (each gets a random duty).
  int dividers = 1;   ///< divider count (each gets a random ratio).
  int muxes = 1;      ///< clock muxes (rate-neutral; sever correlation).
  int inverters = 0;  ///< polarity flips (rate-neutral).

  double duty_min = 0.25;  ///< ICG duty drawn uniformly in
  double duty_max = 0.75;  ///< [duty_min, duty_max].
  int max_divide = 4;      ///< divider ratio drawn from {2, ..., max_divide}.

  /// Element placement / parameter stream; independent of base.seed so the
  /// same tree can carry different domain graphs.
  std::uint64_t domain_seed = 7;
};

struct DomainWorkload {
  netlist::Design design;  ///< clock_domains filled (disabled if no elements).
  netlist::ClockTree tree;
  netlist::NetList nets;
  /// The element marks that produced design.clock_domains (for reports /
  /// re-derivation in tests).
  std::vector<netlist::DomainAnnotation> annotations;
};

/// Builds the scale workload for `spec.base`, annotates up to
/// gates + dividers + muxes + inverters distinct buffer nodes (clamped to
/// the buffers available), and derives the domain map onto the design.
DomainWorkload make_domain_workload(const DomainSpec& spec,
                                    const tech::Technology& tech,
                                    int buffer_cell = -1);

}  // namespace sndr::workload
