// Synthetic benchmark design generation.
//
// The paper evaluates on placed netlist blocks; those placements are not
// redistributable, so this module builds deterministic synthetic equivalents:
// sink clouds with controlled count, spatial distribution (uniform flop
// spread, clustered register banks, or a mix), pin-cap spread, and a signal
// congestion/occupancy field over the core. DESIGN.md documents why this
// substitution preserves the behaviors the experiments measure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/design.hpp"

namespace sndr::workload {

enum class SinkDistribution { kUniform, kClustered, kMixed };

const char* to_string(SinkDistribution d);

struct DesignSpec {
  std::string name = "design";
  int num_sinks = 1000;
  SinkDistribution dist = SinkDistribution::kUniform;
  std::uint64_t seed = 1;

  // Floorplan: core area follows the sink count at constant density.
  double sink_density = 2000.0;  ///< sinks per mm^2.

  // Clustered placement.
  int clusters = 8;
  double cluster_sigma_frac = 0.04;  ///< cluster radius / core side.
  double mixed_uniform_frac = 0.4;   ///< kMixed: fraction placed uniformly.

  // Sink electrical spread.
  double pin_cap_lo = 1.5e-15;  ///< F.
  double pin_cap_hi = 3.0e-15;  ///< F.

  // Congestion field.
  double occupancy_base = 0.25;
  double occupancy_noise = 0.10;      ///< +- uniform noise per cell.
  double hotspot_occupancy = 0.55;    ///< extra occupancy at hotspot centers.
  int hotspots = 4;
  double clock_track_fraction = 0.25; ///< share of tracks clock may use.

  netlist::ClockConstraints constraints;
  /// Scale skew/uncertainty budgets with design size (real flows give
  /// bigger blocks looser clock budgets; see make_design).
  bool scale_constraints = true;
};

/// Builds the design: floorplan, sinks, congestion map, clock root at the
/// core-boundary midpoint (bottom edge), constraints copied from the spec.
netlist::Design make_design(const DesignSpec& spec);

/// The six testcases used throughout the reproduced evaluation (Table I).
/// Sizes and mixes are chosen to match the block sizes typical of the
/// paper's OpenCores-class testcases.
std::vector<DesignSpec> paper_benchmarks();

/// Convenience: a small quickstart design (200 sinks).
DesignSpec quickstart_spec();

/// Attaches synthetic useful-skew windows to a design: `tight_fraction` of
/// sinks get a tight window of +-`tight_ps` (critical launch/capture
/// pairs), the rest get a loose window of +-`loose_ps`. Each window is
/// centered on the sink's entry in `center_offsets` (its latency offset in
/// the reference implementation — critical sinks must stay where CTS
/// balanced them); pass an empty vector to center all windows on the mean.
/// Deterministic given the seed. Windows replace the global skew bound in
/// evaluation and optimization.
void attach_useful_skew(netlist::Design& design, double tight_fraction,
                        double tight_ps, double loose_ps,
                        const std::vector<double>& center_offsets = {},
                        std::uint64_t seed = 101);

}  // namespace sndr::workload
