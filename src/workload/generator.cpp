#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tech/units.hpp"
#include "workload/rng.hpp"

namespace sndr::workload {

const char* to_string(SinkDistribution d) {
  switch (d) {
    case SinkDistribution::kUniform: return "uniform";
    case SinkDistribution::kClustered: return "clustered";
    case SinkDistribution::kMixed: return "mixed";
  }
  return "?";
}

namespace {

geom::Point uniform_point(Rng& rng, const geom::BBox& core) {
  return {rng.uniform(core.lo().x, core.hi().x),
          rng.uniform(core.lo().y, core.hi().y)};
}

}  // namespace

netlist::Design make_design(const DesignSpec& spec) {
  if (spec.num_sinks <= 0) {
    throw std::invalid_argument("make_design: num_sinks must be positive");
  }
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xdeadbeef);

  netlist::Design d;
  d.name = spec.name;
  d.constraints = spec.constraints;
  if (spec.scale_constraints) {
    // Clock budgets grow with design size in real flows: skew targets track
    // insertion delay, and uncertainty (jitter) budgets track tree depth.
    // Both depth and latency grow ~logarithmically / with the core span, so
    // scale from the 256-sink baseline.
    const double growth =
        10.0 * std::log2(std::max(1.0, spec.num_sinks / 256.0));
    d.constraints.max_skew =
        std::max(spec.constraints.max_skew,
                 (30.0 + growth) * units::ps);
    d.constraints.max_uncertainty =
        std::max(spec.constraints.max_uncertainty,
                 (20.0 + growth) * units::ps);
  }

  // Floorplan: square core at constant sink density.
  const double area_mm2 = spec.num_sinks / spec.sink_density;
  const double side = std::sqrt(area_mm2) * units::mm;  // um.
  d.core = geom::BBox(0.0, 0.0, side, side);
  d.clock_root = {side / 2.0, 0.0};  // clock entry at bottom-edge midpoint.

  // Cluster centers (also reused as congestion hotspots for kClustered).
  std::vector<geom::Point> centers;
  for (int i = 0; i < std::max(1, spec.clusters); ++i) {
    centers.push_back(uniform_point(rng, d.core));
  }
  const double sigma = spec.cluster_sigma_frac * side;

  d.sinks.reserve(spec.num_sinks);
  for (int i = 0; i < spec.num_sinks; ++i) {
    geom::Point p;
    bool uniform = spec.dist == SinkDistribution::kUniform;
    if (spec.dist == SinkDistribution::kMixed) {
      uniform = rng.uniform() < spec.mixed_uniform_frac;
    }
    if (uniform) {
      p = uniform_point(rng, d.core);
    } else {
      const geom::Point c = centers[rng.uniform_int(centers.size())];
      p = d.core.clamp({rng.normal(c.x, sigma), rng.normal(c.y, sigma)});
    }
    netlist::Sink s;
    s.name = "sink_" + std::to_string(i);
    s.loc = p;
    s.pin_cap = rng.uniform(spec.pin_cap_lo, spec.pin_cap_hi);
    d.sinks.push_back(std::move(s));
  }

  // Congestion field: base + noise + hotspot bumps.
  const int grid = std::clamp(static_cast<int>(side / 100.0), 8, 64);
  // Capacity derives from the default clock-layer pitch (0.28 um for the
  // generic45 stack); designs built for another stack can rebuild the map.
  const double default_pitch = 0.28;
  d.congestion = netlist::CongestionMap::uniform(
      d.core, grid, grid, spec.occupancy_base, default_pitch,
      spec.clock_track_fraction);
  std::vector<geom::Point> hot;
  for (int i = 0; i < spec.hotspots; ++i) {
    hot.push_back(uniform_point(rng, d.core));
  }
  const double hot_radius = 0.15 * side;
  for (int ci = 0; ci < d.congestion.cell_count(); ++ci) {
    const geom::Point c = d.congestion.cell_box(ci).center();
    double occ = spec.occupancy_base +
                 rng.uniform(-spec.occupancy_noise, spec.occupancy_noise);
    for (const geom::Point& h : hot) {
      const double dist = geom::euclidean(c, h);
      occ += spec.hotspot_occupancy *
             std::exp(-0.5 * (dist / hot_radius) * (dist / hot_radius));
    }
    d.congestion.set_occupancy_cell(ci, std::clamp(occ, 0.05, 0.95));
  }
  return d;
}

std::vector<DesignSpec> paper_benchmarks() {
  std::vector<DesignSpec> specs;

  const auto add = [&](const std::string& name, int sinks,
                       SinkDistribution dist, std::uint64_t seed) {
    DesignSpec s;
    s.name = name;
    s.num_sinks = sinks;
    s.dist = dist;
    s.seed = seed;
    specs.push_back(std::move(s));
  };

  add("aes_like", 1024, SinkDistribution::kUniform, 11);
  add("jpeg_like", 2048, SinkDistribution::kClustered, 23);
  add("vga_like", 4096, SinkDistribution::kUniform, 37);
  add("ethmac_like", 8192, SinkDistribution::kMixed, 41);
  add("mpeg2_like", 16384, SinkDistribution::kClustered, 53);
  add("leon_like", 32768, SinkDistribution::kMixed, 67);
  return specs;
}

void attach_useful_skew(netlist::Design& design, double tight_fraction,
                        double tight_ps, double loose_ps,
                        const std::vector<double>& center_offsets,
                        std::uint64_t seed) {
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 0xabcdef);
  const std::size_t n = design.sinks.size();
  design.useful_skew.lo.assign(n, 0.0);
  design.useful_skew.hi.assign(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    const bool tight = rng.uniform() < tight_fraction;
    const double half = (tight ? tight_ps : loose_ps) * units::ps;
    const double center =
        center_offsets.empty() ? 0.0 : center_offsets.at(s);
    design.useful_skew.lo[s] = center - half;
    design.useful_skew.hi[s] = center + half;
  }
}

DesignSpec quickstart_spec() {
  DesignSpec s;
  s.name = "quickstart";
  s.num_sinks = 200;
  s.dist = SinkDistribution::kUniform;
  s.seed = 7;
  return s;
}

}  // namespace sndr::workload
