// Deterministic random number generation for workload synthesis.
//
// SplitMix64 core: tiny, fully deterministic across platforms (unlike
// std::normal_distribution, whose output is implementation-defined), which
// keeps every benchmark and golden test reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace sndr::workload {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (deterministic given the seed).
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Raw SplitMix64 state, for checkpoint/resume. A restored generator
  /// replays exactly the sequence the saved one would have produced.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
};

}  // namespace sndr::workload
