#include "workload/domains.hpp"

#include <algorithm>

#include "cts/domains.hpp"
#include "workload/rng.hpp"

namespace sndr::workload {

DomainWorkload make_domain_workload(const DomainSpec& spec,
                                    const tech::Technology& tech,
                                    int buffer_cell) {
  ScaleWorkload base = make_scale_workload(spec.base, tech, buffer_cell);
  DomainWorkload w;
  w.design = std::move(base.design);
  w.tree = std::move(base.tree);
  w.nets = std::move(base.nets);

  // Element kinds to place, in a fixed order; the shuffle below decides
  // where each lands, so the order here only matters for determinism.
  std::vector<netlist::DomainElement> wanted;
  wanted.insert(wanted.end(), std::max(0, spec.gates),
                netlist::DomainElement::kGate);
  wanted.insert(wanted.end(), std::max(0, spec.dividers),
                netlist::DomainElement::kDivider);
  wanted.insert(wanted.end(), std::max(0, spec.muxes),
                netlist::DomainElement::kMux);
  wanted.insert(wanted.end(), std::max(0, spec.inverters),
                netlist::DomainElement::kInverter);

  std::vector<int> candidates;
  for (int v = 0; v < w.tree.size(); ++v) {
    if (v != w.tree.root() && w.tree.node(v).is_driver()) {
      candidates.push_back(v);
    }
  }

  Rng rng(spec.domain_seed);
  // Deterministic Fisher-Yates; candidates are in node-id order going in.
  for (std::size_t i = candidates.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    std::swap(candidates[i - 1], candidates[j]);
  }

  const std::size_t n = std::min(wanted.size(), candidates.size());
  for (std::size_t i = 0; i < n; ++i) {
    netlist::DomainAnnotation a;
    a.node = candidates[i];
    a.element = wanted[i];
    if (a.element == netlist::DomainElement::kGate) {
      a.duty = rng.uniform(spec.duty_min, spec.duty_max);
    } else if (a.element == netlist::DomainElement::kDivider) {
      const int hi = std::max(2, spec.max_divide);
      a.divide = 2 + static_cast<int>(
                         rng.uniform_int(static_cast<std::uint64_t>(hi - 1)));
    }
    w.annotations.push_back(std::move(a));
  }

  w.design.clock_domains = cts::derive_domains(w.tree, w.annotations);
  return w;
}

}  // namespace sndr::workload
