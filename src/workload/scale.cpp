#include "workload/scale.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "tech/units.hpp"
#include "workload/rng.hpp"

namespace sndr::workload {

namespace {

/// Quadrant of `box` for child k (2x2 subdivision, cycling past 4).
geom::BBox quadrant(const geom::BBox& box, int k) {
  const double mx = 0.5 * (box.lo().x + box.hi().x);
  const double my = 0.5 * (box.lo().y + box.hi().y);
  const bool right = (k & 1) != 0;
  const bool top = (k & 2) != 0;
  return geom::BBox(right ? mx : box.lo().x, top ? my : box.lo().y,
                    right ? box.hi().x : mx, top ? box.hi().y : my);
}

/// A point in the middle half of `box`, jittered by the rng (keeps
/// children clear of region borders so default L-routes stay local).
geom::Point jittered_center(const geom::BBox& box, Rng& rng) {
  const double w = box.hi().x - box.lo().x;
  const double h = box.hi().y - box.lo().y;
  return {box.lo().x + w * rng.uniform(0.375, 0.625),
          box.lo().y + h * rng.uniform(0.375, 0.625)};
}

}  // namespace

ScaleWorkload make_scale_workload(const ScaleSpec& spec,
                                  const tech::Technology& tech,
                                  int buffer_cell) {
  if (spec.num_nets < 1) {
    throw std::invalid_argument("make_scale_workload: num_nets must be >= 1");
  }
  if (spec.branching < 1 || spec.sinks_per_leaf < 1) {
    throw std::invalid_argument(
        "make_scale_workload: branching and sinks_per_leaf must be >= 1");
  }
  const int cell =
      buffer_cell >= 0 ? buffer_cell : tech.buffers.size() / 2;

  ScaleWorkload w;
  Rng rng(spec.seed);

  // Floorplan: constant area per net, square core anchored at the origin.
  const double side =
      std::sqrt(static_cast<double>(spec.num_nets) * spec.area_per_net_um2);
  w.design.name = spec.name;
  w.design.core = geom::BBox(0.0, 0.0, side, side);
  w.design.clock_root = {side / 2.0, 0.0};

  // Budgets loose enough that the blanket assignment is feasible at any
  // rung — the bench measures throughput, not constraint tightness, and
  // an infeasible baseline would collapse the optimizer's search space.
  w.design.constraints.max_slew = 150 * units::ps;
  w.design.constraints.max_skew =
      (60.0 + 12.0 * std::log2(std::max(1.0, spec.num_nets / 1e3))) *
      units::ps;
  w.design.constraints.max_uncertainty =
      (45.0 + 10.0 * std::log2(std::max(1.0, spec.num_nets / 1e3))) *
      units::ps;

  // Uniform congestion field, one cell per ~200x200 um tile.
  const int grid = std::max(
      4, static_cast<int>(std::lround(side / 200.0)));
  const double default_pitch = 0.28;
  w.design.congestion = netlist::CongestionMap::uniform(
      w.design.core, grid, grid, spec.occupancy, default_pitch,
      spec.clock_track_fraction);

  // BFS b-ary buffer hierarchy: pop the next driver, give it `branching`
  // buffer children (one per quadrant of its region) while the net budget
  // lasts. Drivers that never receive buffer children become leaves and
  // fan out to sinks below. BFS order makes the tree depth-balanced, like
  // a CTS result.
  struct Pending {
    int node;
    geom::BBox region;
  };
  const int root =
      w.tree.add_source(w.design.clock_root);
  std::deque<Pending> frontier;
  frontier.push_back({root, w.design.core});
  int drivers = 1;
  std::deque<Pending> leaves;
  while (!frontier.empty()) {
    const Pending cur = frontier.front();
    frontier.pop_front();
    if (drivers >= spec.num_nets) {
      leaves.push_back(cur);
      continue;
    }
    for (int k = 0; k < spec.branching && drivers < spec.num_nets; ++k) {
      const geom::BBox sub = quadrant(cur.region, k);
      const int b =
          w.tree.add_buffer(jittered_center(sub, rng), cur.node, cell);
      ++drivers;
      frontier.push_back({b, sub});
    }
  }

  // Sinks under every leaf driver, named by index.
  for (const Pending& leaf : leaves) {
    for (int k = 0; k < spec.sinks_per_leaf; ++k) {
      const int sink_index = static_cast<int>(w.design.sinks.size());
      netlist::Sink s;
      s.name = "s" + std::to_string(sink_index);
      s.loc = jittered_center(quadrant(leaf.region, k), rng);
      s.pin_cap = spec.pin_cap;
      w.design.sinks.push_back(std::move(s));
      w.tree.add_sink(w.design.sinks.back().loc, leaf.node, sink_index);
    }
  }

  w.tree.ensure_default_paths();
  w.tree.validate(static_cast<int>(w.design.sinks.size()));
  w.nets = netlist::build_nets(w.tree);
  return w;
}

}  // namespace sndr::workload
