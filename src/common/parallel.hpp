// Deterministic parallel loop / task primitives over the shared pool.
//
// Chunk boundaries depend only on (n, grain), never on the thread count, and
// combination always happens in chunk order — so every primitive here is
// bit-identical at threads=1 and threads=N. See thread_pool.hpp for the
// pool lifecycle and the nested-call (serial fallback) rule.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace sndr::common {

/// Calls fn(i) for every i in [0, n). fn must only write state owned by
/// index i (its own output slot); iteration order across chunks is
/// unspecified, but any given i always runs exactly once.
template <typename Fn>
void parallel_for(std::int64_t n, std::int64_t grain, Fn&& fn) {
  if (n <= 0) return;
  // Serial loops see the thread-bound cancel token here (once per call,
  // not per iteration — iterations are short by contract); the parallel
  // path re-checks per chunk inside the pool.
  CancelBinding::check_current();
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (n + grain - 1) / grain;
  ThreadPool* pool = global_pool();
  if (!pool || chunks <= 1 || ThreadPool::on_worker_thread()) {
    SNDR_COUNTER_ADD("pool.serial_calls", 1);
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  SNDR_COUNTER_ADD("pool.parallel_calls", 1);
  pool->run(static_cast<int>(chunks), [&](int c) {
    const std::int64_t lo = static_cast<std::int64_t>(c) * grain;
    const std::int64_t hi = std::min(n, lo + grain);
    for (std::int64_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Cost-annotated variant: est_us_per_item is the caller's estimate of one
/// iteration's cost in microseconds. When the whole loop is estimated
/// below parallel_min_us() (thread_pool.hpp) it runs serially — dispatch
/// overhead would eat the win — otherwise it behaves exactly like the
/// 3-arg form. Bit-identity is by construction: the gate only picks
/// between the serial and chunked paths, both of which visit every i in
/// the same per-chunk order.
template <typename Fn>
void parallel_for(std::int64_t n, std::int64_t grain, double est_us_per_item,
                  Fn&& fn) {
  if (n > 0 && est_us_per_item > 0.0 &&
      static_cast<double>(n) * est_us_per_item < parallel_min_us()) {
    SNDR_COUNTER_ADD("pool.grain_serial_calls", 1);
    CancelBinding::check_current();
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  parallel_for(n, grain, std::forward<Fn>(fn));
}

/// Deterministic chunked reduction: combine(partial_of_chunk_0, ...,
/// partial_of_chunk_k) in chunk order, where each chunk accumulates
/// combine(acc, map(i)) in index order — the same association at any
/// thread count (the serial path reduces through the same chunking).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t n, std::int64_t grain, T identity, Map&& map,
                  Combine&& combine) {
  if (n <= 0) return identity;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (n + grain - 1) / grain;
  std::vector<T> partial(static_cast<std::size_t>(chunks), identity);
  parallel_for(chunks, 1, [&](std::int64_t c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = std::min(n, lo + grain);
    T acc = identity;
    for (std::int64_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    partial[static_cast<std::size_t>(c)] = acc;
  });
  T total = identity;
  for (const T& p : partial) total = combine(total, p);
  return total;
}

/// Cost-annotated reduction: gated like the cost-annotated parallel_for.
/// The serial path reduces through the same chunking (per-chunk partials
/// combined in chunk order), so the association — and therefore the result
/// — is bit-identical whichever side of the gate runs.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t n, std::int64_t grain, double est_us_per_item,
                  T identity, Map&& map, Combine&& combine) {
  if (n > 0 && est_us_per_item > 0.0 &&
      static_cast<double>(n) * est_us_per_item < parallel_min_us()) {
    SNDR_COUNTER_ADD("pool.grain_serial_calls", 1);
    CancelBinding::check_current();
    grain = std::max<std::int64_t>(1, grain);
    const std::int64_t chunks = (n + grain - 1) / grain;
    T total = identity;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = c * grain;
      const std::int64_t hi = std::min(n, lo + grain);
      T acc = identity;
      for (std::int64_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
      total = combine(total, acc);
    }
    return total;
  }
  return parallel_reduce(n, grain, identity, std::forward<Map>(map),
                         std::forward<Combine>(combine));
}

/// Runs the given thunks concurrently; returns when all have finished.
template <typename... Fns>
void parallel_invoke(Fns&&... fns) {
  std::function<void()> tasks[] = {
      std::function<void()>(std::forward<Fns>(fns))...};
  constexpr int kCount = static_cast<int>(sizeof...(Fns));
  CancelBinding::check_current();
  ThreadPool* pool = global_pool();
  if (!pool || kCount <= 1 || ThreadPool::on_worker_thread()) {
    SNDR_COUNTER_ADD("pool.serial_calls", 1);
    for (auto& t : tasks) t();
    return;
  }
  SNDR_COUNTER_ADD("pool.parallel_calls", 1);
  pool->run(kCount, [&](int i) { tasks[i](); });
}

}  // namespace sndr::common
