#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"

namespace sndr::common {

namespace {

thread_local bool t_on_worker = false;
thread_local bool t_pool_worker_thread = false;  ///< set in worker_loop.

/// RAII flag marking the current thread as executing pool chunks.
struct WorkerScope {
  bool prev;
  WorkerScope() : prev(t_on_worker) { t_on_worker = true; }
  ~WorkerScope() { t_on_worker = prev; }
};

}  // namespace

bool ThreadPool::on_worker_thread() { return t_on_worker; }

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(0, threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  SNDR_GAUGE_SET("pool.lanes", static_cast<double>(lanes()));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::work_on(const std::shared_ptr<Job>& job) {
  WorkerScope scope;
  // Chunks this lane executed, published to job->done in one batch at the
  // end so the claim loop stays free of registry and wakeup traffic.
  int executed = 0;
  {
    // Observe into the submitting session's scope, not whatever this
    // worker last saw: metrics/spans from a chunk belong to the run that
    // issued it.
    obs::ScopeBinding obs_binding(*job->scope);
    for (;;) {
      int chunk;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (job->next >= job->chunks) break;
        chunk = job->next++;
        if (job->next >= job->chunks && job_ == job) {
          job_.reset();  // fully claimed: let idle workers sleep again.
        }
      }
      try {
        // A cancelled job still *claims* every chunk (the done accounting
        // must reach job->chunks) but stops executing bodies: each
        // remaining chunk records Cancelled and run() rethrows the
        // lowest-indexed one.
        if (job->cancel && job->cancel->load(std::memory_order_relaxed)) {
          throw Cancelled();
        }
        (*job->fn)(chunk);
      } catch (...) {
        job->errors[chunk] = std::current_exception();
      }
      ++executed;
    }
    // Flush the per-lane counter while this lane's chunks are still held
    // out of job->done: the moment done reaches job->chunks the submitter
    // may return from run() and destroy the scope this binding targets.
    if (executed > 0) {
      if (t_pool_worker_thread) {
        SNDR_COUNTER_ADD("pool.chunks_on_workers", executed);
      } else {
        SNDR_COUNTER_ADD("pool.chunks_on_caller", executed);
      }
    }
  }
  if (executed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    job->done += executed;
    if (job->done >= job->chunks) done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  t_pool_worker_thread = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || job_ != nullptr; });
      if (stop_) return;
      job = job_;
    }
    work_on(job);
  }
}

void ThreadPool::run(int chunks, const std::function<void(int)>& chunk_fn) {
  if (chunks <= 0) return;
  if (workers_.empty() || on_worker_thread()) {
    // Serial / nested fallback: same chunk order, same results.
    SNDR_COUNTER_ADD("pool.nested_serial_runs", 1);
    for (int c = 0; c < chunks; ++c) chunk_fn(c);
    return;
  }
  SNDR_COUNTER_ADD("pool.jobs", 1);
  SNDR_COUNTER_ADD("pool.chunks", chunks);
  std::lock_guard<std::mutex> run_lock(run_mutex_);
  auto job = std::make_shared<Job>();
  job->fn = &chunk_fn;
  job->scope = &obs::ObsScope::current();
  job->cancel = CancelBinding::current_flag();
  job->chunks = chunks;
  job->errors.assign(static_cast<std::size_t>(chunks), nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  wake_.notify_all();
  work_on(job);
  // Take the captured exceptions under the lock: once workers have moved
  // on, their final shared_ptr<Job> release must not be the one destroying
  // an exception object the caller is still rethrowing/reading.
  std::vector<std::exception_ptr> errors;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&job] { return job->done >= job->chunks; });
    errors.swap(job->errors);
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

namespace {

std::mutex g_pool_mutex;
int g_thread_count = -1;  ///< unresolved; -1 = hardware concurrency.
std::unique_ptr<ThreadPool> g_pool;
bool g_pool_built = false;

int resolve(int n) {
  if (n >= 1) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

void set_thread_count(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const int resolved = n < 0 ? -1 : std::max(1, n);
  if (resolved == g_thread_count && g_pool_built) return;
  g_thread_count = resolved;
  g_pool.reset();
  g_pool_built = false;
}

int thread_count() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return resolve(g_thread_count);
}

ThreadPool* global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool_built) {
    const int n = resolve(g_thread_count);
    if (n > 1) g_pool = std::make_unique<ThreadPool>(n);
    g_pool_built = true;
  }
  return g_pool.get();
}

namespace {

constexpr double kDefaultParallelMinUs = 2000.0;

double resolve_parallel_min_us() {
  if (const char* env = std::getenv("SNDR_PARALLEL_MIN_US")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v >= 0.0) return v;
  }
  return kDefaultParallelMinUs;
}

/// < 0 is the "unresolved" sentinel; relaxed atomics keep concurrent reads
/// from pool workers race-free (the value is a pure tuning knob — a stale
/// read only changes *when* a loop goes parallel, never its results).
std::atomic<double> g_parallel_min_us{-1.0};

}  // namespace

double parallel_min_us() {
  double v = g_parallel_min_us.load(std::memory_order_relaxed);
  if (v < 0.0) {
    v = resolve_parallel_min_us();
    g_parallel_min_us.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_parallel_min_us(double us) {
  g_parallel_min_us.store(us < 0.0 ? resolve_parallel_min_us() : us,
                          std::memory_order_relaxed);
}

}  // namespace sndr::common
