// Fixed-size thread pool with chunked, deterministic job execution.
//
// The pool is the substrate of the library's parallel loops (parallel.hpp).
// Work is always expressed as a fixed number of *chunks* whose boundaries
// depend only on the problem size and grain — never on the thread count —
// and every chunk writes results into its own pre-assigned slot (or a
// per-chunk partial that is combined in chunk order). That is the
// determinism contract: any thread count, including the serial fallback,
// produces bit-identical floating-point results.
//
// Nested use is safe by construction: a parallel call issued from inside a
// pool worker runs serially on that worker (no deadlock, no oversubscribe),
// so coarse outer parallelism (e.g. one task per corner) automatically
// quiets the inner per-net loops.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sndr::obs {
class ObsScope;
}

namespace sndr::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the caller of run() is the last lane.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (workers + the calling thread).
  int lanes() const { return static_cast<int>(workers_.size()) + 1; }

  /// Executes chunk_fn(c) for every c in [0, chunks); blocks until all
  /// chunks finished. The calling thread participates. If chunks throw,
  /// the exception of the lowest-indexed throwing chunk is rethrown here.
  void run(int chunks, const std::function<void(int)>& chunk_fn);

  /// True on a thread currently executing a pool chunk; parallel calls
  /// made from such a thread fall back to serial execution.
  static bool on_worker_thread();

 private:
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    obs::ObsScope* scope = nullptr;  ///< caller's obs scope at submit time.
    /// The submitter's bound cancel flag (CancelBinding) at submit time;
    /// null when none. Each lane re-checks it before executing a chunk, so
    /// a cancel lands within one chunk regardless of which thread asked.
    std::shared_ptr<std::atomic<bool>> cancel;
    int chunks = 0;
    int next = 0;           ///< next unclaimed chunk (under mutex).
    int done = 0;           ///< finished chunks (under mutex).
    std::vector<std::exception_ptr> errors;  ///< per chunk, mostly null.
  };

  void worker_loop();
  /// Claims and executes chunks of `job` until none remain.
  void work_on(const std::shared_ptr<Job>& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;   ///< workers wait for a job / stop.
  std::condition_variable done_;   ///< run() waits for completion.
  std::shared_ptr<Job> job_;       ///< active job, null when idle.
  std::mutex run_mutex_;           ///< serializes concurrent run() callers.
  bool stop_ = false;
};

/// Sets the global thread budget: n < 0 restores the default (hardware
/// concurrency), n <= 1 forces the serial fallback, n > 1 uses n lanes.
/// Takes effect on the next parallel call; do not call while a parallel
/// region is executing.
void set_thread_count(int n);

/// The resolved global thread budget (>= 1).
int thread_count();

/// Minimum estimated work, in microseconds, a loop must carry before the
/// cost-annotated parallel_for/parallel_reduce overloads go parallel.
/// Committed bench data (BENCH_runtime.json) shows per-net loops of a few
/// hundred µs total running *slower* at 2-4 threads than serial on small
/// boxes — dispatch overhead dominates. Default 2000 µs; the
/// SNDR_PARALLEL_MIN_US environment variable overrides it at startup.
double parallel_min_us();

/// Overrides parallel_min_us() (for tests/tuning); us < 0 restores the
/// env/default resolution. 0 disables the gate (everything may go
/// parallel). Do not call while a parallel region is executing.
void set_parallel_min_us(double us);

/// The shared pool sized to thread_count(), or nullptr in serial mode.
ThreadPool* global_pool();

/// A session's view of the process thread budget. The pool itself is a
/// process-wide resource (rebuilding it mid-run would tear threads out
/// from under concurrent sessions), so a budget only *forwards* an
/// explicit request: apply() calls set_thread_count() when the session
/// asked for a specific lane count and is a no-op otherwise — two
/// sessions that both leave the budget at "default" never reset the
/// shared pool against each other.
class ThreadBudget {
 public:
  /// requested < 0 means "whatever the process default is"; 0/1 force the
  /// serial fallback; N uses N lanes.
  explicit ThreadBudget(int requested = -1) : requested_(requested) {}

  int requested() const { return requested_; }

  /// Forwards an explicit request to set_thread_count(); returns the
  /// resolved process-wide lane count either way.
  int apply() const {
    if (requested_ >= 0) set_thread_count(requested_);
    return thread_count();
  }

 private:
  int requested_;
};

}  // namespace sndr::common
