// Typed errors for API boundaries: Status and Result<T>.
//
// The library's internals are free to throw (parsers, invariant checks);
// the *boundaries* — file loaders, the flow runner, anything a service
// front-end calls — return a Status / Result<T> instead, so callers can
// branch on the error class without string-matching what() and the CLI can
// map each class to a distinct exit code (see tools/sndr_cli.cpp).
//
// Contract (DESIGN.md §9): a boundary function never lets an exception
// escape; it classifies what it catches. Internal code converting to the
// boundary throws ParseError for malformed input so loaders can tell
// "bad content" (kParseError) from "bad I/O" (kIoError) apart.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/cancel.hpp"

namespace sndr::common {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< caller error: bad flag, bad option value.
  kNotFound,         ///< missing file / unknown name.
  kParseError,       ///< malformed input content (path:line: message).
  kIoError,          ///< open/read/write failure on an existing target.
  kInternal,         ///< invariant violation; a bug, not a user error.
  kCancelled,        ///< cooperative cancellation (common/cancel.hpp).
};

/// Short lowercase tag for logs and tests ("ok", "not_found", ...).
const char* status_code_name(StatusCode code);

/// Thrown by internal parsers at the point of a diagnosis; boundary
/// loaders catch it and classify as StatusCode::kParseError.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class Status {
 public:
  Status() = default;  ///< ok.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "not_found: cannot open foo.txt" (or "ok").
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ParseFailure(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// A value or the Status explaining its absence. Minimal std::expected
/// stand-in (the toolchain is C++20): implicit construction from either
/// side, checked access.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit.
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from an ok Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return checked(); }
  const T& value() const& { return const_cast<Result*>(this)->checked(); }
  T&& value() && { return std::move(checked()); }

  T* operator->() { return &checked(); }
  const T* operator->() const { return &const_cast<Result*>(this)->checked(); }

 private:
  T& checked() {
    if (!value_.has_value()) {
      throw std::logic_error("Result::value on error: " + status_.to_string());
    }
    return *value_;
  }

  Status status_;  ///< ok iff value_ holds.
  std::optional<T> value_;
};

/// Classifies an in-flight exception from a boundary's catch block:
/// Cancelled -> kCancelled, ParseError -> kParseError, anything else ->
/// `fallback`.
inline Status classify_exception(StatusCode fallback = StatusCode::kIoError) {
  try {
    throw;
  } catch (const sndr::common::Cancelled& e) {
    return Status::Cancelled(e.what());
  } catch (const ParseError& e) {
    return Status::ParseFailure(e.what());
  } catch (const std::exception& e) {
    return Status(fallback, e.what());
  } catch (...) {
    return Status::Internal("unknown exception");
  }
}

}  // namespace sndr::common
