#include "common/cancel.hpp"

namespace sndr::common {

namespace {

/// The current thread's bound flag; a function-local static shared_ptr per
/// thread would pay TLS-destructor costs, so keep the null default cheap.
thread_local std::shared_ptr<std::atomic<bool>> t_cancel_flag;

const std::shared_ptr<std::atomic<bool>> kNoFlag;

}  // namespace

CancelBinding::CancelBinding(const CancelToken& token)
    : prev_(std::move(t_cancel_flag)) {
  t_cancel_flag = token.flag_;
}

CancelBinding::~CancelBinding() { t_cancel_flag = std::move(prev_); }

const std::shared_ptr<std::atomic<bool>>& CancelBinding::current_flag() {
  return t_cancel_flag;
}

}  // namespace sndr::common
