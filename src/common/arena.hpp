// Bump allocator for per-net kernel scratch.
//
// The batched evaluation kernels (extract/batch.hpp) carve a dozen short
// planes per net; sizing each as a std::vector costs a resize check and a
// potential reallocation per plane per call. An Arena turns all of that
// into pointer bumps: allocation is an aligned offset increment, reset()
// rewinds the whole arena in O(1) while keeping every block's capacity, so
// a warm per-thread arena makes repeated per-net evaluation allocation-free
// after the first net of each size class.
//
// Contract: alloc<T>() returns *uninitialized* storage for trivially
// destructible T — callers fully overwrite it and nothing is ever
// destroyed. Pointers are valid until the next reset(); reset() invalidates
// everything at once. Not thread-safe; use one Arena per thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace sndr::common {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 1 << 16)
      : first_block_bytes_(first_block_bytes < kMinBlock ? kMinBlock
                                                         : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of T, aligned to alignof(T).
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(raw_alloc(n * sizeof(T), alignof(T)));
  }

  /// Like alloc, but the storage is zero-filled.
  template <typename T>
  T* alloc_zeroed(std::size_t n) {
    static_assert(std::is_trivial_v<T>, "zero fill needs a trivial T");
    T* p = alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = T{};
    return p;
  }

  /// Rewinds to empty, keeping every block's capacity for reuse.
  void reset() {
    block_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// reset() that also returns capacity to a budget: trailing blocks are
  /// released (newest first) until the retained capacity fits max_bytes.
  /// The first block always survives, so a warm arena never degrades below
  /// its initial size; under a flow-level memory budget this keeps scratch
  /// arenas from retaining a one-off peak forever. Invalidates every
  /// outstanding pointer, exactly like reset().
  void shrink_to(std::size_t max_bytes) {
    reset();
    while (blocks_.size() > 1 && capacity() > max_bytes) {
      blocks_.pop_back();
    }
  }

  /// Total bytes held across blocks (capacity, not live allocations).
  std::size_t capacity() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

  /// Bytes handed out since the last reset (allocation watermark,
  /// alignment padding included).
  std::size_t used() const { return used_; }

 private:
  static constexpr std::size_t kMinBlock = 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= b.size) {
        offset_ = aligned + bytes;
        used_ += bytes;
        return b.data.get() + aligned;
      }
      ++block_;  // current block exhausted; try the next (kept) one.
      offset_ = 0;
    }
    // Geometric growth so a net bigger than everything before it settles
    // into one block after a single round of doubling.
    std::size_t grow = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().size * 2;
    if (grow < bytes + align) grow = bytes + align;
    Block b;
    b.data = std::make_unique<std::byte[]>(grow);
    b.size = grow;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    offset_ = bytes;  // new[] storage is maximally aligned at offset 0.
    used_ += bytes;
    return blocks_.back().data.get();
  }

  std::size_t first_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< block currently being bumped.
  std::size_t offset_ = 0;  ///< bump offset within that block.
  std::size_t used_ = 0;
};

// Process-wide arena high-water marks. Arenas are per-thread and ephemeral,
// so per-instance stats never reach the run manifest; the evaluation entry
// points instead publish each arena's peak here (CAS-max, relaxed — the
// values are monotone and order-free) and the manifest exports them as
// arena.{capacity,used}_bytes. Tracks batch-scratch growth per PR.

namespace detail {
inline std::atomic<std::uint64_t> arena_capacity_hw{0};
inline std::atomic<std::uint64_t> arena_used_hw{0};

inline void atomic_max(std::atomic<std::uint64_t>& hw, std::uint64_t v) {
  std::uint64_t cur = hw.load(std::memory_order_relaxed);
  while (cur < v &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Folds one arena's current capacity / used watermark into the marks.
/// Call after the arena has done its work (used() reflects the last pass).
inline void note_arena_highwater(const Arena& arena) {
  detail::atomic_max(detail::arena_capacity_hw, arena.capacity());
  detail::atomic_max(detail::arena_used_hw, arena.used());
}

inline std::uint64_t arena_capacity_highwater() {
  return detail::arena_capacity_hw.load(std::memory_order_relaxed);
}
inline std::uint64_t arena_used_highwater() {
  return detail::arena_used_hw.load(std::memory_order_relaxed);
}

/// Test hook: rewinds the process-wide marks (stats are otherwise monotone).
inline void reset_arena_highwater() {
  detail::arena_capacity_hw.store(0, std::memory_order_relaxed);
  detail::arena_used_hw.store(0, std::memory_order_relaxed);
}

}  // namespace sndr::common
