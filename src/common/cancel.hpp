// Cooperative cancellation: a shared flag, a typed exception, a binding.
//
// A CancelToken is a copyable handle on one shared atomic flag. The party
// that wants a run stopped calls cancel() (from any thread); the running
// code polls cancelled() — or calls check(), which throws Cancelled — at
// its natural loop boundaries: the flow's stage loop, the optimizer's
// greedy sweeps, the annealer's proposal loop, and the thread pool's
// chunk-claim loop. Cancellation is cooperative and lossless: nothing is
// torn down mid-operation, the code simply stops *between* units of work,
// unwinds via Cancelled, and the nearest error boundary classifies it as
// StatusCode::kCancelled (see common/status.hpp). A cancelled anneal keeps
// its last checkpoint, so a resubmitted job resumes bit-identically.
//
// CancelBinding threads the token through code that cannot take it as a
// parameter (the parallel primitives): it binds the token to the current
// thread; ThreadPool::run captures the submitting thread's bound token
// into the job and every lane re-checks it before claiming a chunk, so a
// long parallel_for aborts within one chunk of the cancel no matter which
// thread asked for it.
//
// A default-constructed token owns a fresh flag and is fully functional;
// there is no "null" token, so callers never branch on presence.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace sndr::common {

/// Thrown by CancelToken::check(); classify_exception maps it to
/// StatusCode::kCancelled ahead of the generic handlers.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("run cancelled") {}
};

class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; safe from any thread, idempotent.
  void cancel() { flag_->store(true, std::memory_order_relaxed); }

  /// One relaxed atomic load — cheap enough for per-iteration polling.
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  /// Throws Cancelled when the flag is set; the polling idiom for code
  /// already running under an error boundary.
  void check() const {
    if (cancelled()) throw Cancelled();
  }

  /// Two tokens share one flag iff copied from each other.
  friend bool operator==(const CancelToken& a, const CancelToken& b) {
    return a.flag_ == b.flag_;
  }

 private:
  friend class CancelBinding;
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// RAII: binds `token` as the current thread's cancel token (nestable,
/// restores the previous binding on destruction). The thread pool captures
/// the submitter's binding per job, so parallel loops issued under a
/// binding are cancellable without signature changes.
class CancelBinding {
 public:
  explicit CancelBinding(const CancelToken& token);
  ~CancelBinding();
  CancelBinding(const CancelBinding&) = delete;
  CancelBinding& operator=(const CancelBinding&) = delete;

  /// The flag bound to this thread (null when none): one load, no
  /// allocation — cheap enough for the pool's submit path.
  static const std::shared_ptr<std::atomic<bool>>& current_flag();

  /// Throws Cancelled when the current thread's bound token (if any) is
  /// cancelled; the check the parallel primitives use.
  static void check_current() {
    const auto& flag = current_flag();
    if (flag && flag->load(std::memory_order_relaxed)) throw Cancelled();
  }

 private:
  std::shared_ptr<std::atomic<bool>> prev_;
};

}  // namespace sndr::common
