// Pareto-front design-space exploration (DSE) over the flow.
//
// One optimizer run answers one point; production users ask for the
// power / skew / variation-guardband CURVE. The Explorer sweeps the
// (power_weight × max_skew × uncertainty_margin) space and emits the
// Pareto front — built as a *performance* feature: an N-point sweep costs
// far less than N independent cold runs because everything reusable is
// reused across points:
//
//   * World sharing — the technology is parsed once and the rule-impact
//     predictor is trained once (training does not depend on the swept
//     axes), exactly the serve::SharedCache contract.
//   * Geometry sharing — the axes never touch the tree, so one budgeted
//     GeometryCache (a pure function of the tree) serves every point.
//   * Memo transplant — warm exact-eval rows move between points under the
//     per-net context guard (ndr::AssignmentState::import_memo).
//   * Warm starts — each point's search is seeded from its nearest
//     already-solved neighbor's assignment, via a durable
//     `sndr.assignment_seed/1` file named in the point's own config.
//
// Reproducibility contract: every reuse channel above is either
// value-neutral (bitwise-identical results with or without it) or part of
// the point's FlowConfig (the warm-start seed file). A frontier point
// re-run standalone with its emitted config — `PointResult::config` —
// therefore reproduces the sweep's numbers bit for bit, at any thread
// count. bench/bench_dse.cpp gates both halves (speedup and identity).
//
// Modes:
//   * grid — the full Cartesian product of the axis lists, in
//     lexicographic order (power_weight outer, margin inner).
//   * refine — deterministic adaptive refinement: solve the axis-extreme
//     corners, then repeatedly bisect the config-space midpoint of the
//     adjacent non-dominated front pair with the largest normalized
//     objective-space gap (ties: lowest first-point id), until the point
//     budget is spent. Dominated points never spawn candidates — the
//     budget concentrates where the frontier is, not where it is not.
//
// Artifacts under `<results_dir>/<dse_out>/`: `pareto.csv` (all points,
// front membership flagged), `front.json` (`sndr.dse_front/1`), one
// schema-versioned run manifest and one seed file per point, and
// `sweep.ck` (`sndr.dse_sweep/2`) — an append-only sweep log: the header
// is written once and each solved point appends one block, so a killed
// sweep resumes at point granularity and the per-point durability cost
// stays O(one block). A partial trailing block (crash mid-append) is
// dropped on load and the log is compacted before the sweep continues.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "flow/config.hpp"
#include "flow/world.hpp"
#include "ndr/evaluation.hpp"
#include "ndr/predictor.hpp"
#include "obs/metrics.hpp"

namespace sndr::dse {

/// One point of the swept space. power_weight scales the annealer's
/// Metropolis energy; max_skew_ps overrides the skew constraint (0 = the
/// design's own); uncertainty_margin is the variation guardband.
struct PointSettings {
  double power_weight = 1.0;
  double max_skew_ps = 0.0;
  double uncertainty_margin = 0.05;

  bool operator==(const PointSettings& o) const {
    return power_weight == o.power_weight && max_skew_ps == o.max_skew_ps &&
           uncertainty_margin == o.uncertainty_margin;
  }
};

struct PointResult {
  int id = 0;
  PointSettings settings;
  /// Point id whose final assignment seeded this search, -1 = cold.
  int warm_from = -1;
  /// Restored from the sweep checkpoint instead of solved this run.
  bool resumed = false;
  bool feasible = false;
  bool on_front = false;

  // Signoff objectives (final_eval of the point's flow).
  double total_power = 0.0;   ///< W.
  double switched_cap = 0.0;  ///< F.
  double skew = 0.0;          ///< s.
  std::vector<double> sink_arrival;  ///< s, the bitwise-identity witness.

  ndr::RuleAssignment assignment;

  /// The exact standalone config of this point: `sndr run` with it (same
  /// results_dir, so the seed file resolves) reproduces every number above
  /// bit for bit.
  flow::FlowConfig config;
};

struct SweepResult {
  std::vector<PointResult> points;  ///< in solve order (id order).
  /// Pareto front as point ids, sorted by (power, skew, id). Never
  /// contains a point dominated by another feasible point.
  std::vector<int> front;

  /// Predictor trained by the first solved point (or the shared one
  /// passed in) — harvestable into a serve::SharedCache.
  std::shared_ptr<const ndr::RuleImpactPredictor> trained_predictor;

  int n_nets = 0;
  int solved_points = 0;    ///< solved live this run.
  int resumed_points = 0;   ///< restored from the sweep checkpoint.
  int warm_started = 0;     ///< solved points that had a warm-start seed.

  /// Accumulated metrics of every point's session plus the sweep-level
  /// dse.* series.
  obs::MetricsRegistry::Snapshot metrics;
  double wall_seconds = 0.0;
};

struct ExploreOptions {
  /// Shared immutable World for every point's session (the serve layer's
  /// lease). Null: the first point loads/trains, later points reuse its
  /// world — same sharing, locally harvested.
  const flow::World* world = nullptr;
  /// Cooperative cancellation, checked between points and threaded into
  /// every point's session.
  common::CancelToken cancel;
};

/// True iff `a` Pareto-dominates `b`: no worse on every axis (power down,
/// skew down, guardband up), strictly better on at least one. Only
/// meaningful between feasible points.
bool dominates(const PointResult& a, const PointResult& b);

/// Ids of the non-dominated feasible points, sorted by (power, skew, id).
std::vector<int> pareto_front(const std::vector<PointResult>& points);

/// Runs the sweep `base` describes (base.dse_mode, base.dse_* axes).
/// Axis lists that are empty contribute the matching scalar key's value as
/// a single grid line. Resumes from `<dse_out>/sweep.ck` when present and
/// fingerprint-compatible (kInvalidArgument otherwise — delete the file
/// to start over).
common::Result<SweepResult> explore(const flow::FlowConfig& base,
                                    const ExploreOptions& options = {});

}  // namespace sndr::dse
