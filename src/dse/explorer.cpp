#include "dse/explorer.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "flow/checkpoint.hpp"
#include "flow/flow.hpp"
#include "flow/session.hpp"
#include "ndr/assignment_state.hpp"
#include "obs/scope.hpp"

namespace sndr::dse {

namespace {

constexpr const char* kSweepSchema = "sndr.dse_sweep/2";

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// istream operator>> does not accept hexfloat; strtod does.
bool read_hexfloat(std::istream& is, double& out) {
  std::string tok;
  if (!(is >> tok)) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

/// Shortest-round-trip decimal for the human-facing artifacts (the
/// checkpoint sticks to hexfloats, which round-trip bit-exactly).
std::string decimal(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// The resolved sweep axes: each is the config's list, or the matching
/// scalar key as a single grid line.
struct Axes {
  std::vector<double> power;
  std::vector<double> skew;
  std::vector<double> margin;
};

Axes axes_from(const flow::FlowConfig& base) {
  Axes a;
  a.power = base.dse_power_weight.empty()
                ? std::vector<double>{base.power_weight}
                : base.dse_power_weight;
  a.skew = base.dse_max_skew.empty() ? std::vector<double>{base.max_skew_ps}
                                     : base.dse_max_skew;
  a.margin = base.dse_uncertainty_margin.empty()
                 ? std::vector<double>{base.uncertainty_margin}
                 : base.dse_uncertainty_margin;
  return a;
}

/// FNV-1a over everything a stored sweep point's values depend on. A
/// checkpoint from a different design, seed, mode, or axis set must not
/// resume — thread count and memory budget are deliberately excluded
/// (value-neutral by the reuse contract).
std::uint64_t sweep_fingerprint(const flow::FlowConfig& base, const Axes& a) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_str = [&](const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<unsigned char>(c));
  };
  const auto mix_double = [&](double d) { mix(std::bit_cast<std::uint64_t>(d)); };
  const auto mix_axis = [&](const std::vector<double>& axis) {
    mix(axis.size());
    for (const double d : axis) mix_double(d);
  };
  mix_str(base.design_path);
  mix_str(base.tech_path);
  mix(base.seed);
  mix(static_cast<std::uint64_t>(base.anneal_iterations));
  mix_str(base.scoring);
  mix(static_cast<std::uint64_t>(base.training_samples));
  mix_double(base.slew_margin);
  mix_double(base.em_margin);
  mix_double(base.skew_margin);
  mix(static_cast<std::uint64_t>(base.max_passes));
  mix(static_cast<std::uint64_t>(base.full_refresh_interval));
  mix(static_cast<std::uint64_t>(base.max_repair_rounds));
  mix_double(base.anneal_t_start_frac);
  mix_double(base.anneal_t_end_frac);
  mix(static_cast<std::uint64_t>(base.anneal_full_refresh_interval));
  mix_str(base.dse_mode);
  mix(static_cast<std::uint64_t>(base.dse_points));
  mix_axis(a.power);
  mix_axis(a.skew);
  mix_axis(a.margin);
  return h;
}

/// The standalone config of one sweep point. Everything the sweep varies
/// or produces is *in* the config, so `sndr run` with it reproduces the
/// point bitwise (the reproducibility contract in explorer.hpp).
flow::FlowConfig point_config(const flow::FlowConfig& base,
                              const std::string& dse_dir,
                              const PointSettings& s, int id, int warm_from) {
  flow::FlowConfig c = base;
  c.dse = false;
  c.dse_power_weight.clear();
  c.dse_max_skew.clear();
  c.dse_uncertainty_margin.clear();
  c.power_weight = s.power_weight;
  c.max_skew_ps = s.max_skew_ps;
  c.uncertainty_margin = s.uncertainty_margin;
  c.results_dir = dse_dir;
  c.metrics_out = "point_" + std::to_string(id) + ".manifest.json";
  // Point runs produce only their manifest; sweep-wide artifacts (CSV,
  // front) are the explorer's, and the anneal checkpoint would collide
  // across points.
  c.checkpoint_path.clear();
  c.spef_out.clear();
  c.svg_out.clear();
  c.csv_out.clear();
  c.trace_out.clear();
  c.warm_start =
      warm_from >= 0 ? "point_" + std::to_string(id) + ".seed" : "";
  c.command = "dse";
  return c;
}

double axis_span(const std::vector<double>& axis) {
  const auto [lo, hi] = std::minmax_element(axis.begin(), axis.end());
  return *hi - *lo;
}

/// Nearest already-solved point in normalized config space (axis spans
/// normalize the scales; a degenerate axis contributes nothing). Ties go
/// to the lowest id — fully deterministic.
int nearest_neighbor(const std::vector<PointResult>& points,
                     const PointSettings& s, const Axes& axes) {
  const double pspan = axis_span(axes.power);
  const double sspan = axis_span(axes.skew);
  const double mspan = axis_span(axes.margin);
  int best = -1;
  double best_d = 0.0;
  for (const PointResult& p : points) {
    double d = 0.0;
    if (pspan > 0.0) {
      const double x = (p.settings.power_weight - s.power_weight) / pspan;
      d += x * x;
    }
    if (sspan > 0.0) {
      const double x = (p.settings.max_skew_ps - s.max_skew_ps) / sspan;
      d += x * x;
    }
    if (mspan > 0.0) {
      const double x =
          (p.settings.uncertainty_margin - s.uncertainty_margin) / mspan;
      d += x * x;
    }
    if (best < 0 || d < best_d) {
      best = p.id;
      best_d = d;
    }
  }
  return best;
}

bool settings_taken(const std::vector<PointResult>& points,
                    const PointSettings& s) {
  for (const PointResult& p : points) {
    if (p.settings == s) return true;
  }
  return false;
}

void write_point_fields(std::ostream& os, const PointResult& p) {
  os << "point " << p.id << "\n";
  os << "settings " << hexfloat(p.settings.power_weight) << ' '
     << hexfloat(p.settings.max_skew_ps) << ' '
     << hexfloat(p.settings.uncertainty_margin) << "\n";
  os << "warm_from " << p.warm_from << "\n";
  os << "feasible " << (p.feasible ? 1 : 0) << "\n";
  os << "power " << hexfloat(p.total_power) << "\n";
  os << "switched_cap " << hexfloat(p.switched_cap) << "\n";
  os << "skew " << hexfloat(p.skew) << "\n";
  os << "arrival";
  for (const double a : p.sink_arrival) os << ' ' << hexfloat(a);
  os << "\n";
  os << "assignment";
  for (const int r : p.assignment) os << ' ' << r;
  os << "\n";
  os << "end\n";
}

/// Atomic (re)write of the sweep log: header plus the pre-serialized
/// blocks of every point already solved. Runs once per sweep — when the
/// first live point needs a header, or to compact a log whose tail was a
/// partial block (crash mid-append). tmp+rename, same contract as the
/// anneal checkpoint.
common::Status write_sweep_log(const std::string& path,
                               std::uint64_t fingerprint, int n_rules,
                               const std::string& blocks) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) {
      return common::Status::IoError("cannot write sweep checkpoint " + tmp);
    }
    f << kSweepSchema << "\n";
    f << "fingerprint " << fingerprint << "\n";
    f << "n_rules " << n_rules << "\n";
    f << blocks;
    if (!f.flush()) {
      return common::Status::IoError("short write to sweep checkpoint " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return common::Status::IoError(
        "cannot move sweep checkpoint into place: " + ec.message());
  }
  return common::Status::Ok();
}

/// Appends one solved point's block to the log. This is the steady-state
/// durability cost: O(one block), not O(sweep) — the schema/2 log has no
/// point count to patch, so solved points are never re-written.
common::Status append_sweep_point(const std::string& path,
                                  const std::string& block) {
  std::ofstream f(path, std::ios::app);
  if (!f) {
    return common::Status::IoError("cannot append to sweep checkpoint " +
                                   path);
  }
  f << block;
  if (!f.flush()) {
    return common::Status::IoError("short write to sweep checkpoint " + path);
  }
  return common::Status::Ok();
}

struct SweepCheckpoint {
  int n_rules = 0;
  std::vector<PointResult> points;
  /// The log ended in a partial block (crash mid-append). The readable
  /// prefix in `points` is valid; the caller must compact the file before
  /// appending to it.
  bool truncated = false;
};

common::Result<SweepCheckpoint> load_sweep_checkpoint(
    const std::string& path, std::uint64_t fingerprint) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("no sweep checkpoint at " + path);
  }
  int line_no = 0;
  const auto bad = [&](const std::string& what) {
    return common::Status::ParseFailure(
        path + ":" + std::to_string(line_no) + ": " + what);
  };
  std::string line;
  const auto next = [&](std::istringstream& is) {
    if (!std::getline(f, line)) return false;
    ++line_no;
    is.clear();
    is.str(line);
    return true;
  };
  const auto expect_key = [&](std::istringstream& is, const char* key) {
    std::string k;
    return static_cast<bool>(is >> k) && k == key;
  };
  const auto no_extra = [&](std::istringstream& is) {
    std::string extra;
    return !(is >> extra);
  };

  ++line_no;
  if (!std::getline(f, line) || line != kSweepSchema) {
    return bad(std::string("expected ") + kSweepSchema);
  }

  std::istringstream is;
  std::uint64_t fp = 0;
  if (!next(is) || !expect_key(is, "fingerprint") || !(is >> fp) ||
      !no_extra(is)) {
    return bad("bad 'fingerprint' line");
  }
  if (fp != fingerprint) {
    return common::Status::InvalidArgument(
        path + ":" + std::to_string(line_no) +
        ": sweep checkpoint is for different inputs (fingerprint " +
        std::to_string(fp) + " != " + std::to_string(fingerprint) +
        "); delete it to start over");
  }
  SweepCheckpoint ck;
  if (!next(is) || !expect_key(is, "n_rules") || !(is >> ck.n_rules) ||
      ck.n_rules <= 0 || !no_extra(is)) {
    return bad("bad 'n_rules' line");
  }
  // Point blocks run to EOF — the log is append-only, so there is no
  // count to check against. A malformed or incomplete block can only be
  // the tail of an append that was cut short (crash, full disk): the
  // readable prefix stays valid, the partial tail is dropped, and the
  // `truncated` flag tells the sweep to compact the file before it
  // appends again.
  while (true) {
    if (!std::getline(f, line)) break;  // clean EOF after the last block.
    ++line_no;
    is.clear();
    is.str(line);
    PointResult p;
    const bool block_ok = [&] {
      if (!expect_key(is, "point") || !(is >> p.id) ||
          p.id != static_cast<int>(ck.points.size()) || !no_extra(is)) {
        return false;
      }
      if (!next(is) || !expect_key(is, "settings") ||
          !read_hexfloat(is, p.settings.power_weight) ||
          !read_hexfloat(is, p.settings.max_skew_ps) ||
          !read_hexfloat(is, p.settings.uncertainty_margin) ||
          !no_extra(is)) {
        return false;
      }
      if (!next(is) || !expect_key(is, "warm_from") ||
          !(is >> p.warm_from) || p.warm_from < -1 || p.warm_from >= p.id ||
          !no_extra(is)) {
        return false;
      }
      int feasible = 0;
      if (!next(is) || !expect_key(is, "feasible") || !(is >> feasible) ||
          !no_extra(is)) {
        return false;
      }
      p.feasible = feasible != 0;
      if (!next(is) || !expect_key(is, "power") ||
          !read_hexfloat(is, p.total_power) || !no_extra(is)) {
        return false;
      }
      if (!next(is) || !expect_key(is, "switched_cap") ||
          !read_hexfloat(is, p.switched_cap) || !no_extra(is)) {
        return false;
      }
      if (!next(is) || !expect_key(is, "skew") ||
          !read_hexfloat(is, p.skew) || !no_extra(is)) {
        return false;
      }
      if (!next(is) || !expect_key(is, "arrival")) return false;
      double a = 0.0;
      while (read_hexfloat(is, a)) p.sink_arrival.push_back(a);
      if (p.sink_arrival.empty()) return false;
      if (!next(is) || !expect_key(is, "assignment")) return false;
      int r = 0;
      while (is >> r) {
        if (r < 0 || r >= ck.n_rules) return false;
        p.assignment.push_back(r);
      }
      if (!is.eof() || p.assignment.empty()) return false;
      return next(is) && expect_key(is, "end") && no_extra(is);
    }();
    if (!block_ok) {
      ck.truncated = true;
      break;
    }
    ck.points.push_back(std::move(p));
  }
  return ck;
}

common::Status write_pareto_csv(const std::string& path,
                                const std::vector<PointResult>& points) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return common::Status::IoError("cannot write " + path);
  f << "id,power_weight,max_skew_ps,uncertainty_margin,warm_from,resumed,"
       "feasible,on_front,total_power_w,switched_cap_f,skew_s\n";
  for (const PointResult& p : points) {
    f << p.id << ',' << decimal(p.settings.power_weight) << ','
      << decimal(p.settings.max_skew_ps) << ','
      << decimal(p.settings.uncertainty_margin) << ',' << p.warm_from << ','
      << (p.resumed ? 1 : 0) << ',' << (p.feasible ? 1 : 0) << ','
      << (p.on_front ? 1 : 0) << ',' << decimal(p.total_power) << ','
      << decimal(p.switched_cap) << ',' << decimal(p.skew) << "\n";
  }
  if (!f.flush()) return common::Status::IoError("short write to " + path);
  return common::Status::Ok();
}

common::Status write_front_json(const std::string& path,
                                const std::vector<PointResult>& points,
                                const std::vector<int>& front) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return common::Status::IoError("cannot write " + path);
  f << "{\n  \"schema\": \"sndr.dse_front/1\",\n";
  f << "  \"points\": " << points.size() << ",\n";
  f << "  \"front\": [";
  for (std::size_t i = 0; i < front.size(); ++i) {
    const PointResult& p = points[static_cast<std::size_t>(front[i])];
    f << (i == 0 ? "" : ",") << "\n    {\"id\": " << p.id
      << ", \"power_weight\": " << decimal(p.settings.power_weight)
      << ", \"max_skew_ps\": " << decimal(p.settings.max_skew_ps)
      << ", \"uncertainty_margin\": " << decimal(p.settings.uncertainty_margin)
      << ", \"total_power_w\": " << decimal(p.total_power)
      << ", \"switched_cap_f\": " << decimal(p.switched_cap)
      << ", \"skew_s\": " << decimal(p.skew) << "}";
  }
  f << (front.empty() ? "]\n" : "\n  ]\n") << "}\n";
  if (!f.flush()) return common::Status::IoError("short write to " + path);
  return common::Status::Ok();
}

}  // namespace

bool dominates(const PointResult& a, const PointResult& b) {
  const bool no_worse = a.total_power <= b.total_power && a.skew <= b.skew &&
                        a.settings.uncertainty_margin >=
                            b.settings.uncertainty_margin;
  const bool strictly_better =
      a.total_power < b.total_power || a.skew < b.skew ||
      a.settings.uncertainty_margin > b.settings.uncertainty_margin;
  return no_worse && strictly_better;
}

std::vector<int> pareto_front(const std::vector<PointResult>& points) {
  std::vector<int> front;
  for (const PointResult& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const PointResult& q : points) {
      if (q.feasible && q.id != p.id && dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(p.id);
  }
  std::sort(front.begin(), front.end(), [&points](int x, int y) {
    const PointResult& a = points[static_cast<std::size_t>(x)];
    const PointResult& b = points[static_cast<std::size_t>(y)];
    if (a.total_power != b.total_power) return a.total_power < b.total_power;
    if (a.skew != b.skew) return a.skew < b.skew;
    return a.id < b.id;
  });
  return front;
}

common::Result<SweepResult> explore(const flow::FlowConfig& base,
                                    const ExploreOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  if (!base.smart) {
    return common::Status::InvalidArgument(
        "dse requires the smart optimizer stage (smart = true)");
  }
  const Axes axes = axes_from(base);
  const std::string dse_dir = base.output_path(base.dse_out);
  std::error_code ec;
  std::filesystem::create_directories(dse_dir, ec);
  if (ec) {
    return common::Status::IoError("cannot create " + dse_dir + ": " +
                                   ec.message());
  }
  const std::uint64_t fp = sweep_fingerprint(base, axes);
  const std::string ck_path = dse_dir + "/sweep.ck";

  // Resume state: solved points from a killed sweep, consumed in id order
  // as long as the (deterministic) plan replays the same settings.
  std::vector<PointResult> restored;
  int n_rules = 0;  // known from the checkpoint or the first live session.
  bool log_on_disk_clean = false;
  if (std::filesystem::exists(ck_path)) {
    common::Result<SweepCheckpoint> ck = load_sweep_checkpoint(ck_path, fp);
    if (!ck.ok()) return ck.status();
    n_rules = ck->n_rules;
    restored = std::move(ck->points);
    log_on_disk_clean = !ck->truncated;
  }
  std::size_t restore_idx = 0;

  obs::ObsScope sweep_scope;
  SweepResult sweep;
  std::unique_ptr<flow::Session> anchor;  // first live session, kept alive:
                                          // later points borrow its
                                          // GeometryCache (pure function of
                                          // its tree — bitwise identical to
                                          // every point's own).
  flow::World harvested;
  const flow::World* world = options.world;
  /// The anchor's design as loaded, BEFORE its own max_skew override
  /// mutated the constraints — what later points' load stages copy.
  netlist::Design pristine_design;
  // Union of every solved point's exported exact-eval memo, latest row
  // per net winning. Each point imports from the whole sweep's history
  // rather than only its warm-start donor — the per-net context guard in
  // import_memo keeps any mix of sources value-neutral, so widening the
  // pool only raises the transplant rate.
  ndr::MemoSnapshot memo_union;
  const auto merge_memo = [&memo_union](ndr::MemoSnapshot&& m) {
    if (m.empty()) return;
    if (memo_union.empty()) {
      memo_union = std::move(m);
      return;
    }
    const std::size_t n_nets = m.row_warm.size();
    for (std::size_t id = 0; id < n_nets; ++id) {
      if (m.row_warm[id] == 0) continue;
      memo_union.row_warm[id] = 1;
      memo_union.driver_res[id] = m.driver_res[id];
      const std::size_t first = id * static_cast<std::size_t>(m.n_rules);
      for (int r = 0; r < m.n_rules; ++r) {
        memo_union.rows[first + static_cast<std::size_t>(r)] =
            m.rows[first + static_cast<std::size_t>(r)];
      }
    }
  };
  // The on-disk log is ready for appends when it exists, parsed cleanly,
  // and every restored block in it was actually consumed. Otherwise the
  // first live point compacts it (header + blocks of all points so far)
  // in one atomic rewrite before steady-state appending resumes.
  bool log_ready = log_on_disk_clean;
  const auto block_of = [](const PointResult& p) {
    std::ostringstream os;
    write_point_fields(os, p);
    return os.str();
  };
  const auto blocks_of = [&](const std::vector<PointResult>& pts) {
    std::string blocks;
    for (const PointResult& p : pts) blocks += block_of(p);
    return blocks;
  };

  // Solves (or restores) the next point; points get dense ids in call
  // order. Any error leaves the sweep checkpoint covering every point
  // solved so far, so a rerun resumes instead of restarting.
  const auto solve_point = [&](const PointSettings& s) -> common::Status {
    if (options.cancel.cancelled()) {
      return common::Status::Cancelled("dse sweep cancelled");
    }
    const int id = static_cast<int>(sweep.points.size());

    if (restore_idx < restored.size()) {
      PointResult& r = restored[restore_idx];
      if (r.id == id && r.settings == s) {
        ++restore_idx;
        r.resumed = true;
        r.config = point_config(base, dse_dir, s, id, r.warm_from);
        sweep.points.push_back(std::move(r));
        ++sweep.resumed_points;
        return common::Status::Ok();
      }
      // The plan diverged from the stored sweep (cannot happen under the
      // fingerprint unless the file was edited) — solve live from here on.
      // The log still holds the unconsumed blocks, so it must be
      // compacted before the next append.
      restore_idx = restored.size();
      log_ready = false;
    }

    const int warm_from = nearest_neighbor(sweep.points, s, axes);
    if (warm_from >= 0) {
      const PointResult& donor =
          sweep.points[static_cast<std::size_t>(warm_from)];
      const std::string seed_path =
          dse_dir + "/point_" + std::to_string(id) + ".seed";
      const common::Status st = flow::save_assignment_seed(
          seed_path, donor.assignment,
          flow::assignment_seed_fingerprint(
              static_cast<int>(donor.assignment.size()), n_rules));
      if (!st.ok()) return st;
    }

    PointResult p;
    p.id = id;
    p.settings = s;
    p.warm_from = warm_from;
    p.config = point_config(base, dse_dir, s, id, warm_from);

    auto session = std::make_unique<flow::Session>(p.config);
    session->cancel_token() = options.cancel;
    if (world != nullptr) session->set_world(*world);
    flow::ReuseHooks hooks;
    if (anchor != nullptr) {
      // Everything the axes cannot touch rides over from the anchor:
      // geometry cache, parsed design, synthesized+routed tree, nets.
      hooks.geometry = anchor->geometry();
      hooks.design = &pristine_design;
      hooks.cts = &anchor->cts();
      hooks.nets = &anchor->nets();
    }
    if (!memo_union.empty()) hooks.memo_in = &memo_union;
    ndr::MemoSnapshot memo_out;
    hooks.memo_out = &memo_out;
    session->set_reuse(hooks);

    flow::Flow flow(*session);
    if (anchor == nullptr) {
      // Snapshot the design between prepare() and run(): run() applies
      // this point's max_skew override in place, and later points must
      // copy the design as LOADED, not as overridden (run()'s own
      // override then lands on the copy). prepare() is idempotent, so
      // run() below does not repeat the build.
      if (common::Status st = flow.prepare(); !st.ok()) return st;
      pristine_design = session->design();
    }
    common::Result<flow::FlowResult> run = flow.run();
    if (!run.ok()) return run.status();
    const flow::FlowResult& res = run.value();

    const ndr::FlowEvaluation& ev = res.final_eval();
    p.feasible = res.feasible;
    p.total_power = ev.power.total_power;
    p.switched_cap = ev.power.switched_cap;
    p.skew = ev.timing.skew();
    p.sink_arrival = ev.timing.sink_arrival;
    const ndr::RuleAssignment* assignment = res.final_assignment();
    if (assignment == nullptr) {
      return common::Status::Internal("dse point produced no assignment");
    }
    p.assignment = *assignment;

    sweep_scope.metrics().accumulate(
        session->obs_scope().metrics().snapshot());

    if (anchor == nullptr) {
      n_rules = static_cast<int>(session->technology().rules.size());
      sweep.trained_predictor =
          res.smart ? res.smart->trained_predictor : nullptr;
      // Later points share one World: tech parsed once, predictor trained
      // once (training is axis-independent — value-neutral reuse).
      if (sweep.trained_predictor != nullptr &&
          (world == nullptr || world->predictor == nullptr)) {
        harvested = world != nullptr ? *world : session->world();
        harvested.predictor = sweep.trained_predictor;
        world = &harvested;
      }
      anchor = std::move(session);
    }

    if (warm_from >= 0) ++sweep.warm_started;
    ++sweep.solved_points;
    sweep.points.push_back(std::move(p));
    merge_memo(std::move(memo_out));
    if (log_ready) {
      return append_sweep_point(ck_path, block_of(sweep.points.back()));
    }
    common::Status sv =
        write_sweep_log(ck_path, fp, n_rules, blocks_of(sweep.points));
    log_ready = sv.ok();
    return sv;
  };

  // Plan and solve. Grid: the full Cartesian product in lexicographic
  // order (power outer, margin inner). Refine: axis-extreme corners, then
  // deterministic bisection between adjacent front points.
  if (base.dse_mode == "grid") {
    for (const double pw : axes.power) {
      for (const double sk : axes.skew) {
        for (const double mg : axes.margin) {
          const common::Status st = solve_point({pw, sk, mg});
          if (!st.ok()) return st;
        }
      }
    }
  } else {  // refine (config validation admits only grid|refine).
    const auto extremes = [](const std::vector<double>& axis) {
      std::vector<double> e{axis.front()};
      if (axis.back() != axis.front()) e.push_back(axis.back());
      return e;
    };
    std::vector<PointSettings> corners;
    for (const double pw : extremes(axes.power)) {
      for (const double sk : extremes(axes.skew)) {
        for (const double mg : extremes(axes.margin)) {
          const PointSettings s{pw, sk, mg};
          if (std::find(corners.begin(), corners.end(), s) == corners.end()) {
            corners.push_back(s);
          }
        }
      }
    }
    for (const PointSettings& s : corners) {
      const common::Status st = solve_point(s);
      if (!st.ok()) return st;
    }
    const int budget = base.dse_points > 0
                           ? base.dse_points
                           : 2 * static_cast<int>(corners.size());
    while (static_cast<int>(sweep.points.size()) < budget) {
      const std::vector<int> front = pareto_front(sweep.points);
      if (front.size() < 2) break;
      // Objective-space spans over the current front normalize the gap
      // metric; a flat objective contributes nothing.
      double pmin = 0.0, pmax = 0.0, smin = 0.0, smax = 0.0;
      for (std::size_t i = 0; i < front.size(); ++i) {
        const PointResult& q = sweep.points[static_cast<std::size_t>(front[i])];
        if (i == 0) {
          pmin = pmax = q.total_power;
          smin = smax = q.skew;
        } else {
          pmin = std::min(pmin, q.total_power);
          pmax = std::max(pmax, q.total_power);
          smin = std::min(smin, q.skew);
          smax = std::max(smax, q.skew);
        }
      }
      const double pspan = pmax - pmin;
      const double sspan = smax - smin;
      struct Pair {
        double gap2;
        int first_id;
        std::size_t index;  // position of the pair's first point in front.
      };
      std::vector<Pair> pairs;
      for (std::size_t i = 0; i + 1 < front.size(); ++i) {
        const PointResult& a = sweep.points[static_cast<std::size_t>(front[i])];
        const PointResult& b =
            sweep.points[static_cast<std::size_t>(front[i + 1])];
        double g = 0.0;
        if (pspan > 0.0) {
          const double x = (a.total_power - b.total_power) / pspan;
          g += x * x;
        }
        if (sspan > 0.0) {
          const double x = (a.skew - b.skew) / sspan;
          g += x * x;
        }
        pairs.push_back({g, front[i], i});
      }
      std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
        if (a.gap2 != b.gap2) return a.gap2 > b.gap2;
        return a.first_id < b.first_id;
      });
      bool spawned = false;
      for (const Pair& pr : pairs) {
        const PointSettings& a =
            sweep.points[static_cast<std::size_t>(front[pr.index])].settings;
        const PointSettings& b =
            sweep.points[static_cast<std::size_t>(front[pr.index + 1])]
                .settings;
        const PointSettings mid{(a.power_weight + b.power_weight) / 2.0,
                                (a.max_skew_ps + b.max_skew_ps) / 2.0,
                                (a.uncertainty_margin + b.uncertainty_margin) /
                                    2.0};
        if (settings_taken(sweep.points, mid)) continue;
        const common::Status st = solve_point(mid);
        if (!st.ok()) return st;
        spawned = true;
        break;
      }
      if (!spawned) break;  // every bisection already solved: converged.
    }
  }

  sweep.front = pareto_front(sweep.points);
  for (const int id : sweep.front) {
    sweep.points[static_cast<std::size_t>(id)].on_front = true;
  }
  sweep.n_nets = sweep.points.empty()
                     ? 0
                     : static_cast<int>(sweep.points.front().assignment.size());

  if (common::Status st = write_pareto_csv(dse_dir + "/pareto.csv",
                                           sweep.points);
      !st.ok()) {
    return st;
  }
  if (common::Status st = write_front_json(dse_dir + "/front.json",
                                           sweep.points, sweep.front);
      !st.ok()) {
    return st;
  }

  {
    obs::ScopeBinding binding(sweep_scope);
    SNDR_COUNTER_ADD("dse.points_total",
                     static_cast<std::int64_t>(sweep.points.size()));
    SNDR_COUNTER_ADD("dse.points_solved", sweep.solved_points);
    SNDR_COUNTER_ADD("dse.points_resumed", sweep.resumed_points);
    SNDR_COUNTER_ADD("dse.warm_starts", sweep.warm_started);
    SNDR_GAUGE_SET("dse.front_size",
                   static_cast<double>(sweep.front.size()));
  }
  sweep.metrics = sweep_scope.metrics().snapshot();
  sweep.wall_seconds = seconds_since(t0);
  return sweep;
}

}  // namespace sndr::dse
