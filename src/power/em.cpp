#include "power/em.hpp"

#include <algorithm>
#include <stdexcept>

namespace sndr::power {

double net_peak_current_density(const extract::NetParasitics& par,
                                const tech::Technology& tech,
                                const tech::RoutingRule& rule, double freq) {
  const std::vector<double> down =
      par.rc.downstream_cap(tech.miller_power);
  return net_peak_current_density(par, down.data(), tech, rule, freq);
}

double net_peak_current_density(const extract::NetParasitics& par,
                                const double* down,
                                const tech::Technology& tech,
                                const tech::RoutingRule& rule, double freq) {
  const double width = tech.clock_layer.min_width * rule.width_mult;
  double worst = 0.0;
  for (int i = 0; i < par.rc.size(); ++i) {
    const extract::RcNode& n = par.rc.node(i);
    if (n.wire_len <= 0.0) continue;
    // Current through this piece charges everything at and below it.
    const double i_avg = freq * tech.vdd * down[i];
    const double i_rms = tech.em_crest_factor * i_avg;
    worst = std::max(worst, i_rms / width);
  }
  return worst;
}

EmReport analyze_em(const netlist::Design& design,
                    const tech::Technology& tech,
                    const netlist::NetList& nets,
                    const std::vector<extract::NetParasitics>& parasitics,
                    const std::vector<int>& rule_of_net) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size()) ||
      rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("analyze_em: per-net input size mismatch");
  }
  const double freq = design.constraints.clock_freq;
  const double jmax = tech.clock_layer.em_jmax;

  EmReport rep;
  rep.net_peak_density.assign(nets.size(), 0.0);
  rep.net_slack.assign(nets.size(), 0.0);
  for (const netlist::Net& net : nets.nets) {
    // Domain-aware RMS scaling: the base density is computed at the root
    // rate and scaled afterwards (never by folding the scale into `freq`),
    // so the incremental searches' post-multiplied exact_eval values match
    // this signoff bit for bit — and a neutral scale (1.0) is an identity.
    const double j =
        net_peak_current_density(parasitics[net.id], tech,
                                 tech.rules[rule_of_net[net.id]], freq) *
        design.clock_domains.node_em_scale(net.driver);
    rep.net_peak_density[net.id] = j;
    rep.net_slack[net.id] = jmax - j;
    if (j > rep.worst_density) {
      rep.worst_density = j;
      rep.worst_net = net.id;
    }
  }
  return rep;
}

}  // namespace sndr::power
