// Clock network power analysis.
//
// Clock nets switch rail-to-rail once per cycle (charged and discharged), so
// each net dissipates C_switched * Vdd^2 * f; coupling capacitance enters
// with the average Miller factor. Buffer input caps and sink pins are
// charged by the net that drives them, so summing per-net switched caps
// covers the entire network without double counting. Buffers additionally
// burn their internal (short-circuit + self-load) energy every cycle.
#pragma once

#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::power {

struct PowerReport {
  std::vector<double> net_switched_cap;  ///< F, per net id.
  std::vector<double> net_power;         ///< W, per net id (wire+pins only).

  double wire_cap_gnd = 0.0;       ///< F, all wire area+fringe cap.
  double wire_cap_cpl = 0.0;       ///< F, all wire coupling cap (raw).
  double pin_cap = 0.0;            ///< F, all buffer-input + sink-pin cap.
  double switched_cap = 0.0;       ///< F, total effective switched cap.
  double net_switching_power = 0.0;    ///< W.
  double buffer_internal_power = 0.0;  ///< W.
  double total_power = 0.0;            ///< W.
};

/// Rolls up power at `design.constraints.clock_freq`.
PowerReport analyze_power(const netlist::ClockTree& tree,
                          const netlist::Design& design,
                          const tech::Technology& tech,
                          const netlist::NetList& nets,
                          const std::vector<extract::NetParasitics>& parasitics);

}  // namespace sndr::power
