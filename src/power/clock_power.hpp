// Clock network power analysis.
//
// Clock nets switch rail-to-rail once per cycle (charged and discharged), so
// each net dissipates C_switched * Vdd^2 * f; coupling capacitance enters
// with the average Miller factor. Buffer input caps and sink pins are
// charged by the net that drives them, so summing per-net switched caps
// covers the entire network without double counting. Buffers additionally
// burn their internal (short-circuit + self-load) energy every cycle.
#pragma once

#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::power {

struct PowerReport {
  std::vector<double> net_switched_cap;  ///< F, per net id (raw, unweighted).
  std::vector<double> net_power;         ///< W, per net id (wire+pins only).
  /// Per-net toggle weight (domain activity / divisor); all 1.0 in the
  /// single-domain world. net_power already includes it.
  std::vector<double> net_toggle_weight;

  double wire_cap_gnd = 0.0;       ///< F, all wire area+fringe cap.
  double wire_cap_cpl = 0.0;       ///< F, all wire coupling cap (raw).
  double pin_cap = 0.0;            ///< F, all buffer-input + sink-pin cap.
  double switched_cap = 0.0;       ///< F, total effective switched cap (raw).
  /// F, switched cap weighted per net by the domain toggle rate — the
  /// quantity clock power is actually proportional to. Bitwise equal to
  /// `switched_cap` when domains are disabled (every weight is 1.0).
  double weighted_switched_cap = 0.0;
  double net_switching_power = 0.0;    ///< W (activity-weighted).
  double buffer_internal_power = 0.0;  ///< W (activity-weighted).
  double total_power = 0.0;            ///< W.
};

/// Rolls up power at `design.constraints.clock_freq`. When
/// `design.clock_domains` is enabled, each net's (and buffer's) dynamic
/// power is weighted by its domain's toggle rate: a subtree behind an ICG
/// with duty `a` under a /k divider switches a/k as often as the root
/// clock. The weights multiply otherwise-unchanged terms, so a disabled or
/// all-neutral domain map reproduces the legacy report bit for bit.
PowerReport analyze_power(const netlist::ClockTree& tree,
                          const netlist::Design& design,
                          const tech::Technology& tech,
                          const netlist::NetList& nets,
                          const std::vector<extract::NetParasitics>& parasitics);

}  // namespace sndr::power
