// Electromigration analysis of clock wires.
//
// Clock wires carry bidirectional (charge/discharge) current, so the failure
// mechanism is RMS-current Joule heating rather than unidirectional
// transport; the standard signoff is a per-layer RMS current-density limit.
// The average current through a wire piece is the charge delivered past it
// per cycle, f * Vdd * C_downstream; the RMS value is that times a waveform
// crest factor. The check is per unit wire *width*, which is exactly why EM
// forces wide rules on high-capacitance nets near the tree root — one of the
// three constraints that make blanket NDR look necessary.
#pragma once

#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"

namespace sndr::power {

struct EmReport {
  std::vector<double> net_peak_density;  ///< A/um, per net id (worst piece).
  std::vector<double> net_slack;         ///< A/um, jmax - peak.
  double worst_density = 0.0;
  int worst_net = -1;

  int violations() const {
    int n = 0;
    for (const double s : net_slack) {
      if (s < 0.0) ++n;
    }
    return n;
  }
};

/// Peak RMS current density (A/um) over the pieces of one net routed with
/// `rule`, at clock frequency `freq`.
double net_peak_current_density(const extract::NetParasitics& par,
                                const tech::Technology& tech,
                                const tech::RoutingRule& rule, double freq);

/// As above, with the miller_power-weighted downstream cap of every RC node
/// already computed into `down` — the allocation-free hot path for callers
/// that already ran a downstream sweep.
double net_peak_current_density(const extract::NetParasitics& par,
                                const double* down,
                                const tech::Technology& tech,
                                const tech::RoutingRule& rule, double freq);

/// Whole-tree EM check at design.constraints.clock_freq. When
/// `design.clock_domains` is enabled, each net's density is scaled by its
/// domain's em_scale() (sqrt of the toggle rate: gated/divided subtrees
/// carry RMS current at the square root of their repetition rate) — the
/// lever by which activity changes which rules are feasible, since timing
/// is activity-independent. Neutral domains scale by exactly 1.0.
EmReport analyze_em(const netlist::Design& design,
                    const tech::Technology& tech,
                    const netlist::NetList& nets,
                    const std::vector<extract::NetParasitics>& parasitics,
                    const std::vector<int>& rule_of_net);

}  // namespace sndr::power
