#include "power/clock_power.hpp"

#include <stdexcept>

namespace sndr::power {

PowerReport analyze_power(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const std::vector<extract::NetParasitics>& parasitics) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("analyze_power: parasitics size mismatch");
  }
  const double freq = design.constraints.clock_freq;
  const double vdd2 = tech.vdd * tech.vdd;

  const netlist::ClockDomainMap& domains = design.clock_domains;

  PowerReport rep;
  rep.net_switched_cap.assign(nets.size(), 0.0);
  rep.net_power.assign(nets.size(), 0.0);
  rep.net_toggle_weight.assign(nets.size(), 1.0);

  for (const netlist::Net& net : nets.nets) {
    const extract::NetParasitics& par = parasitics[net.id];
    const double c_sw = par.switched_cap(tech.miller_power);
    const double w = domains.node_toggle_weight(net.driver);
    rep.net_switched_cap[net.id] = c_sw;
    rep.net_toggle_weight[net.id] = w;
    rep.net_power[net.id] = c_sw * vdd2 * freq * w;
    rep.wire_cap_gnd += par.wire_cap_gnd;
    rep.wire_cap_cpl += par.wire_cap_cpl;
    rep.pin_cap += par.load_cap;
    rep.switched_cap += c_sw;
    rep.weighted_switched_cap += c_sw * w;
    rep.net_switching_power += rep.net_power[net.id];
  }

  for (int v = 0; v < tree.size(); ++v) {
    const netlist::TreeNode& n = tree.node(v);
    if (n.kind == netlist::NodeKind::kBuffer) {
      rep.buffer_internal_power += tech.buffers[n.cell].internal_energy *
                                   freq * domains.node_toggle_weight(v);
    }
  }
  rep.total_power = rep.net_switching_power + rep.buffer_internal_power;
  return rep;
}

}  // namespace sndr::power
