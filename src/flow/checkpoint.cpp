#include "flow/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace sndr::flow {

namespace {

constexpr const char* kMagic = kCheckpointSchema;

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// istream operator>> does not accept hexfloat; strtod does.
bool read_hexfloat(std::istream& is, double& out) {
  std::string tok;
  if (!(is >> tok)) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != tok.c_str() && *end == '\0';
}

/// One `key value...` line per field; assignment vectors are
/// space-separated rule indices on a single line.
void write_fields(std::ostream& os, const ndr::AnnealCheckpoint& ck,
                  std::uint64_t fingerprint) {
  os << kMagic << "\n";
  os << "fingerprint " << fingerprint << "\n";
  os << "iteration " << ck.iteration << "\n";
  os << "temperature " << hexfloat(ck.temperature) << "\n";
  os << "cooling " << hexfloat(ck.cooling) << "\n";
  os << "rng_state " << ck.rng_state << "\n";
  os << "accepted_since_refresh " << ck.accepted_since_refresh << "\n";
  os << "proposed " << ck.proposed << "\n";
  os << "accepted " << ck.accepted << "\n";
  os << "rejected " << ck.rejected << "\n";
  os << "uphill_accepted " << ck.uphill_accepted << "\n";
  os << "delta_updates " << ck.delta_updates << "\n";
  os << "full_rebuilds " << ck.full_rebuilds << "\n";
  os << "start_cap " << hexfloat(ck.start_cap) << "\n";
  os << "start_feasible " << (ck.start_feasible ? 1 : 0) << "\n";
  os << "best_cap " << hexfloat(ck.best_cap) << "\n";
  os << "assignment";
  for (const int r : ck.assignment) os << ' ' << r;
  os << "\n";
  os << "best";
  for (const int r : ck.best) os << ' ' << r;
  os << "\n";
}

}  // namespace

std::uint64_t checkpoint_fingerprint(int n_nets, int n_rules,
                                     std::uint64_t seed, int iterations) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(n_nets));
  mix(static_cast<std::uint64_t>(n_rules));
  mix(seed);
  mix(static_cast<std::uint64_t>(iterations));
  return h;
}

common::Status save_checkpoint(const std::string& path,
                               const ndr::AnnealCheckpoint& ck,
                               std::uint64_t fingerprint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) {
      return common::Status::IoError("cannot write checkpoint " + tmp);
    }
    write_fields(f, ck, fingerprint);
    if (!f.flush()) {
      return common::Status::IoError("short write to checkpoint " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return common::Status::IoError("cannot move checkpoint into place: " +
                                   ec.message());
  }
  return common::Status::Ok();
}

common::Result<ndr::AnnealCheckpoint> load_checkpoint(
    const std::string& path, std::uint64_t fingerprint) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("no checkpoint at " + path);
  }
  int line_no = 0;
  // Malformed CONTENT is a parse error (path:line: message); a checkpoint
  // for different inputs is well-formed but unusable — invalid argument.
  const auto bad = [&](const std::string& what) {
    return common::Status::ParseFailure(
        path + ":" + std::to_string(line_no) + ": " + what);
  };
  const auto mismatch = [&](const std::string& what) {
    return common::Status::InvalidArgument(
        path + ":" + std::to_string(line_no) + ": " + what);
  };

  std::string line;
  ++line_no;
  if (!std::getline(f, line) || line != kMagic) {
    return bad(std::string("expected ") + kMagic);
  }

  ndr::AnnealCheckpoint ck;
  bool saw_fingerprint = false;
  std::set<std::string> seen;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (!seen.insert(key).second) {
      return bad("duplicate field '" + key + "'");
    }
    const auto want = [&](auto& out) { return static_cast<bool>(is >> out); };
    bool ok = true;
    if (key == "fingerprint") {
      std::uint64_t fp = 0;
      ok = want(fp);
      if (ok && fp != fingerprint) {
        return mismatch(
            "checkpoint is for different inputs (fingerprint " +
            std::to_string(fp) + " != " + std::to_string(fingerprint) +
            "); delete it to start over");
      }
      saw_fingerprint = ok;
    } else if (key == "iteration") {
      ok = want(ck.iteration) && ck.iteration >= 0;
    } else if (key == "temperature") {
      ok = read_hexfloat(is, ck.temperature);
    } else if (key == "cooling") {
      ok = read_hexfloat(is, ck.cooling);
    } else if (key == "rng_state") {
      ok = want(ck.rng_state);
    } else if (key == "accepted_since_refresh") {
      ok = want(ck.accepted_since_refresh);
    } else if (key == "proposed") {
      ok = want(ck.proposed);
    } else if (key == "accepted") {
      ok = want(ck.accepted);
    } else if (key == "rejected") {
      ok = want(ck.rejected);
    } else if (key == "uphill_accepted") {
      ok = want(ck.uphill_accepted);
    } else if (key == "delta_updates") {
      ok = want(ck.delta_updates);
    } else if (key == "full_rebuilds") {
      ok = want(ck.full_rebuilds);
    } else if (key == "start_cap") {
      ok = read_hexfloat(is, ck.start_cap);
    } else if (key == "start_feasible") {
      int v = 0;
      ok = want(v);
      ck.start_feasible = v != 0;
    } else if (key == "best_cap") {
      ok = read_hexfloat(is, ck.best_cap);
    } else if (key == "assignment" || key == "best") {
      std::vector<int>& out = key == "best" ? ck.best : ck.assignment;
      int r = 0;
      while (is >> r) out.push_back(r);
      ok = is.eof();
    } else {
      return bad("unknown field '" + key + "'");
    }
    if (!ok) return bad("bad value for '" + key + "'");
    // Scalar fields are exactly `key value`; anything after the value
    // (the classic truncation-then-append corruption) is rejected rather
    // than silently dropped. Vector fields consume the whole line above.
    std::string extra;
    if (is >> extra) {
      return bad("trailing junk '" + extra + "' after '" + key + "'");
    }
  }
  if (!saw_fingerprint) return bad("missing fingerprint");
  if (ck.assignment.empty() || ck.assignment.size() != ck.best.size()) {
    return bad("missing or mismatched assignment vectors");
  }
  return ck;
}

std::uint64_t assignment_seed_fingerprint(int n_nets, int n_rules) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(n_nets));
  mix(static_cast<std::uint64_t>(n_rules));
  return h;
}

common::Status save_assignment_seed(const std::string& path,
                                    const std::vector<int>& assignment,
                                    std::uint64_t fingerprint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) {
      return common::Status::IoError("cannot write assignment seed " + tmp);
    }
    f << kAssignmentSeedSchema << "\n";
    f << "fingerprint " << fingerprint << "\n";
    f << "assignment";
    for (const int r : assignment) f << ' ' << r;
    f << "\n";
    if (!f.flush()) {
      return common::Status::IoError("short write to assignment seed " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return common::Status::IoError("cannot move assignment seed into place: " +
                                   ec.message());
  }
  return common::Status::Ok();
}

common::Result<std::vector<int>> load_assignment_seed(
    const std::string& path, std::uint64_t fingerprint) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("no assignment seed at " + path);
  }
  int line_no = 0;
  const auto bad = [&](const std::string& what) {
    return common::Status::ParseFailure(
        path + ":" + std::to_string(line_no) + ": " + what);
  };

  std::string line;
  ++line_no;
  if (!std::getline(f, line) || line != kAssignmentSeedSchema) {
    return bad(std::string("expected ") + kAssignmentSeedSchema);
  }

  std::vector<int> assignment;
  bool saw_fingerprint = false;
  bool saw_assignment = false;
  std::set<std::string> seen;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (!seen.insert(key).second) {
      return bad("duplicate field '" + key + "'");
    }
    if (key == "fingerprint") {
      std::uint64_t fp = 0;
      if (!(is >> fp)) return bad("bad value for 'fingerprint'");
      if (fp != fingerprint) {
        return common::Status::InvalidArgument(
            path + ":" + std::to_string(line_no) +
            ": assignment seed is for different inputs (fingerprint " +
            std::to_string(fp) + " != " + std::to_string(fingerprint) +
            "); delete it to start over");
      }
      saw_fingerprint = true;
      std::string extra;
      if (is >> extra) {
        return bad("trailing junk '" + extra + "' after 'fingerprint'");
      }
    } else if (key == "assignment") {
      int r = 0;
      while (is >> r) {
        if (r < 0) return bad("negative rule index in 'assignment'");
        assignment.push_back(r);
      }
      if (!is.eof()) return bad("bad value for 'assignment'");
      saw_assignment = true;
    } else {
      return bad("unknown field '" + key + "'");
    }
  }
  if (!saw_fingerprint) return bad("missing fingerprint");
  if (!saw_assignment || assignment.empty()) {
    return bad("missing assignment vector");
  }
  return assignment;
}

}  // namespace sndr::flow
