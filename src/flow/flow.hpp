// Staged flow runner: the full smart-NDR pipeline as named stages.
//
//   load -> cts -> route -> nets -> extract -> optimize -> anneal?
//        -> corners? -> report
//
// Each stage runs under the session's obs scope with a trace span and a
// wall-clock record; the stage table lands in the run manifest ("stages"
// array, schema sndr.run_manifest/2) written by the report stage, so every
// run leaves a stage-by-stage execution record. Stage order and bodies
// match the pre-Flow CLI exactly (synthesize, reroute_for_congestion,
// refine_skew, build_nets, evaluate, optimize, anneal) — results are
// bit-identical with the old `sndr run`.
//
// run() is an error boundary (DESIGN.md §9): stage failures come back as
// a typed Status (load surfaces the loader's kNotFound/kParseError;
// anything thrown inside a build stage classifies as kInternal), never as
// an exception.
#pragma once

#include <chrono>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "flow/session.hpp"
#include "ndr/smart_ndr.hpp"
#include "obs/manifest.hpp"
#include "report/table.hpp"

namespace sndr::flow {

/// The signoff comparison table every run produces (one row per flow
/// variant: all-default, blanket-NDR, smart-NDR, smart+anneal, ...).
report::Table make_eval_table();
void add_eval_row(report::Table& table, const std::string& name,
                  const ndr::FlowEvaluation& eval);

struct FlowResult {
  ndr::FlowEvaluation default_eval;  ///< every net on the default rule.
  ndr::FlowEvaluation blanket_eval;  ///< every net on the blanket NDR.
  std::optional<ndr::SmartNdrResult> smart;
  std::optional<ndr::AnnealResult> anneal;
  std::optional<ndr::MultiCornerReport> corners;

  report::Table table = make_eval_table();
  bool feasible = false;  ///< final (smart/annealed) eval is signoff-clean.
  int threads_used = 0;
  double wall_seconds = 0.0;
  std::vector<obs::StageInfo> stages;
  /// Anneal iteration a checkpoint resumed from (0 = fresh start).
  int resumed_from_iteration = 0;

  /// The assignment the run settled on (annealed > smart > blanket).
  const ndr::RuleAssignment* final_assignment() const;
  const ndr::FlowEvaluation& final_eval() const;
};

class Flow {
 public:
  explicit Flow(Session& session) : session_(session) {}
  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  /// Runs load..extract: after success the session holds a synthesized
  /// tree, net list, and geometry cache (partial flows, `sndr eval`).
  common::Status prepare();

  /// The whole pipeline. On success the report stage has written every
  /// configured artifact under config().results_dir.
  common::Result<FlowResult> run();

  /// Stage records accumulated so far (also in FlowResult::stages).
  const std::vector<obs::StageInfo>& stages() const { return stages_; }

 private:
  /// Runs `body` as stage `name`: scope binding + trace span + timing +
  /// one StageInfo. Exceptions classify as `fallback` (kInternal for the
  /// build stages, kIoError for the artifact-writing report stage).
  common::Status stage(
      const char* name, const std::function<common::Status()>& body,
      common::StatusCode fallback = common::StatusCode::kInternal);
  void skip_stage(const char* name);

  /// The report stage. `flow_t0` is the run's start time: the manifest is
  /// written mid-stage, so it stamps wall_seconds (and a provisional
  /// "report" stage entry) itself rather than relying on records that only
  /// exist once the stage has returned.
  common::Status report(FlowResult& result,
                        std::chrono::steady_clock::time_point flow_t0);

  Session& session_;
  std::vector<obs::StageInfo> stages_;
  bool prepared_ = false;
};

}  // namespace sndr::flow
