// Unified flow configuration: one struct, one `key = value` file format,
// one precedence rule.
//
// FlowConfig subsumes the per-subsystem option structs (OptimizerOptions,
// AnnealOptions, the --threads plumbing): every knob a full run needs is a
// named key here, settable from a config file (`from_file`) or from CLI
// flags (the CLI calls `set` per flag). Precedence is CLI > file >
// defaults, implemented by ordering alone — load the file first, then
// apply CLI overrides through the same set() path.
//
// set() is the single parse point: it validates the value and returns a
// typed Status (kInvalidArgument names the key), so a typo in a config
// file and a typo on the command line produce the same diagnostic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "ndr/annealer.hpp"
#include "ndr/optimizer.hpp"

namespace sndr::flow {

struct FlowConfig {
  // Inputs.
  std::string design_path;
  std::string tech_path;  ///< empty = Technology::make_default_45nm().

  // Stage selection.
  bool smart = true;           ///< run the smart-NDR optimizer stage.
  int anneal_iterations = 0;   ///< > 0 enables the anneal stage.
  bool corners = false;        ///< multi-corner signoff stage.

  std::uint64_t seed = 1;
  int threads = -1;  ///< ThreadBudget semantics (-1 inherit, 0/1 serial).

  /// GeometryCache byte budget for every optimizer/anneal search in the
  /// flow (0 = unbounded). Accepts K/M/G suffixes on the `memory_budget`
  /// key ("64M"). Results are bit-identical at any budget; only peak
  /// memory and geometry rebuild counts change.
  std::size_t memory_budget_bytes = 0;

  /// Anneal checkpoint/resume. When `checkpoint` names a file (resolved
  /// under results_dir like other artifacts), the anneal stage snapshots
  /// its loop there every `checkpoint_interval` iterations and, when the
  /// file already exists, resumes from it instead of starting over — the
  /// resumed run is bitwise identical to an uninterrupted one.
  std::string checkpoint_path;
  int checkpoint_interval = 5000;

  // Optimizer knobs (ndr::OptimizerOptions).
  std::string scoring = "models";  ///< models | exact_net | full_sta.
  int training_samples = 400;
  double slew_margin = 0.05;
  double uncertainty_margin = 0.05;
  double em_margin = 0.05;
  double skew_margin = 0.10;
  int max_passes = 4;
  int full_refresh_interval = 256;
  int max_repair_rounds = 8;

  /// Objective weight on switched capacitance (> 0). Scales the annealer's
  /// Metropolis energy; the greedy objective is scale-invariant, so 1.0 is
  /// the bitwise-neutral default. The DSE power axis.
  double power_weight = 1.0;

  /// Max-skew override in picoseconds (0 = keep the design's constraint).
  /// Applied after the design loads, before any analysis — one design file
  /// serves a whole skew sweep. The DSE skew axis.
  double max_skew_ps = 0.0;

  /// Warm-start seed: an `sndr.assignment_seed/1` file (resolved under
  /// results_dir) whose assignment becomes the optimizer's starting point
  /// (OptimizerOptions::initial_assignment). Part of the config on
  /// purpose: a DSE point's warm start is reproducible standalone by
  /// pointing this at the same seed file.
  std::string warm_start;

  // Anneal knobs (ndr::AnnealOptions; margins above are shared).
  double anneal_t_start_frac = 0.5;
  double anneal_t_end_frac = 0.005;
  int anneal_full_refresh_interval = 512;
  /// Batched exact-eval prewarm of the anneal memo (AnnealOptions::
  /// prewarm). Results are bitwise identical either way; false measures
  /// the lazy per-net path.
  bool prewarm = true;

  // DSE (design-space exploration) sweep. `dse = true` turns the run into
  // a sweep over the axis lists below (empty axis = the scalar key's
  // value, a single grid line). See src/dse/explorer.hpp.
  bool dse = false;
  std::string dse_mode = "grid";  ///< grid | refine.
  /// Refine mode's point budget (<= 0 = default: 2x the corner count).
  int dse_points = 0;
  /// Sweep artifact directory (pareto.csv, per-point manifests, seeds,
  /// sweep checkpoint), resolved under results_dir.
  std::string dse_out = "dse";
  // Axis value lists (comma-separated in config files / CLI:
  // `dse_power_weight = 0.5,1.0,2.0`). Values obey the scalar keys'
  // validation; dse_max_skew is in picoseconds like max_skew.
  std::vector<double> dse_power_weight;
  std::vector<double> dse_max_skew;
  std::vector<double> dse_uncertainty_margin;

  // Outputs. Relative artifact paths resolve under results_dir.
  std::string results_dir = "results";
  std::string spef_out;
  std::string svg_out;
  std::string csv_out;
  std::string metrics_out;  ///< run manifest (sndr.run_manifest/2 JSON).
  std::string trace_out;    ///< Chrome-trace JSON of the stage spans.

  // Manifest provenance. Not settable keys — the embedding tool fills
  // these directly (the CLI records its own name, command, and argv).
  std::string tool = "sndr";
  std::string command = "flow";
  std::vector<std::string> raw_args;

  /// Sets one key (config-file and CLI flags share this path; hyphens
  /// normalize to underscores, so --metrics-out and `metrics_out = ...`
  /// are the same key). Returns kInvalidArgument for an unknown key or an
  /// unparsable value.
  common::Status set(const std::string& key, const std::string& value);

  /// Sets a list-valued key from already-split values (set() reaches this
  /// by splitting on commas, so `dse_power_weight = 0.5,1.0` works in
  /// files and flags alike). Unknown keys get the same did-you-mean
  /// diagnostic as set(); scalar keys are not accepted here.
  common::Status set_list(const std::string& key,
                          const std::vector<std::string>& values);

  /// Applies every `key = value` line of `path` ('#' comments, blank
  /// lines allowed). kNotFound when the file cannot be opened;
  /// kInvalidArgument with a path:line prefix on a bad line.
  common::Status from_file(const std::string& path);

  /// The keys set() accepts, sorted — usage text and tests.
  static std::vector<std::string> known_keys();

  ndr::OptimizerOptions optimizer_options() const;
  ndr::AnnealOptions anneal_options() const;
  common::ThreadBudget thread_budget() const {
    return common::ThreadBudget(threads);
  }

  /// `name` placed under results_dir (absolute paths pass through).
  std::string output_path(const std::string& name) const;
};

}  // namespace sndr::flow
