#include "flow/session.hpp"

#include <utility>

#include "io/design_io.hpp"

namespace sndr::flow {

Session::Session(FlowConfig config)
    : config_(std::move(config)), thread_budget_(config_.threads) {}

common::Status Session::load() {
  if (loaded_) return common::Status::Ok();
  if (config_.design_path.empty()) {
    return common::Status::InvalidArgument("no design configured");
  }
  if (!config_.tech_path.empty() && !world_external_) {
    common::Result<tech::Technology> tech =
        tech::load_technology_file(config_.tech_path);
    if (!tech.ok()) return tech.status();
    world_.tech = std::make_shared<const tech::Technology>(
        std::move(tech.value()));
  }
  // Reuse hooks (DSE): another session already parsed this same file —
  // copying its pristine design is bitwise identical to re-parsing.
  if (reuse_.design != nullptr) {
    design_ = *reuse_.design;
    loaded_ = true;
    return common::Status::Ok();
  }
  common::Result<netlist::Design> design =
      io::load_design_file(config_.design_path);
  if (!design.ok()) return design.status();
  if (design->sinks.empty()) {
    return common::Status::InvalidArgument("design " + config_.design_path +
                                           " has no sinks");
  }
  design_ = std::move(design.value());
  loaded_ = true;
  return common::Status::Ok();
}

void Session::set_design(netlist::Design design) {
  design_ = std::move(design);
  loaded_ = true;
}

void Session::set_technology(tech::Technology tech) {
  world_.tech =
      std::make_shared<const tech::Technology>(std::move(tech));
}

void Session::set_world(World world) {
  world_ = std::move(world);
  world_external_ = true;
}

}  // namespace sndr::flow
