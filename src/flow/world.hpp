// World: the immutable, shareable half of a run.
//
// A Session used to own the technology by value; every run carried its own
// copy and every run trained its own predictor. Splitting the session into
// an immutable World (technology, optionally a pre-trained rule-impact
// predictor) and per-job mutable state (design, tree, nets, GeometryCache,
// ObsScope) lets a multi-tenant server share one World across any number of
// concurrent jobs: the serve::SharedCache hands out refcounted Worlds keyed
// by content fingerprint, so N jobs on the same technology parse it once
// and N jobs on the same (design, tech, samples) train the predictor once.
//
// Immutability contract (DESIGN.md §12): everything reachable through a
// World is deep-const after construction — Technology is a plain value
// nobody writes, RuleImpactPredictor::predict() is const — so sharing
// requires no locks and cannot perturb results. Reusing a cached predictor
// is bitwise-identical to training fresh because training is deterministic
// in its inputs (no RNG seed, fixed sample schedule).
#pragma once

#include <memory>

#include "ndr/predictor.hpp"
#include "tech/technology.hpp"

namespace sndr::flow {

struct World {
  std::shared_ptr<const tech::Technology> tech;
  /// Warm rule-impact model for this (design, tech, training_samples), or
  /// null to train in-run. See OptimizerOptions::shared_predictor.
  std::shared_ptr<const ndr::RuleImpactPredictor> predictor;

  /// The default 45nm technology, freshly allocated (not a process-global:
  /// two default Worlds are independent, sharing only happens through an
  /// explicit cache).
  static World make_default() {
    World w;
    w.tech = std::make_shared<const tech::Technology>(
        tech::Technology::make_default_45nm());
    return w;
  }
};

}  // namespace sndr::flow
