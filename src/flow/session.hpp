// Session: one run's world, owned in one object.
//
// A Session owns everything that used to live in process-globals or loose
// locals of the CLI: the design and technology, the synthesized tree and
// net list, the shared extraction GeometryCache, the thread-budget handle,
// and — the point of the exercise — a private obs::ObsScope, so two
// Sessions running concurrently in one process keep fully disjoint
// metrics/trace state. Anything observing on behalf of a session must run
// under `obs::ScopeBinding binding(session.obs_scope())`; flow::Flow does
// this for every stage, and the thread pool re-binds the submitting
// session's scope on its workers (common/thread_pool.cpp), so session code
// rarely binds by hand.
//
// Loading goes through the typed boundaries (io::load_design_file,
// tech::load_technology_file): load() returns a Status instead of
// throwing, and the caller branches on the code (DESIGN.md §9).
#pragma once

#include <memory>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "cts/embedding.hpp"
#include "extract/net_geometry.hpp"
#include "flow/config.hpp"
#include "flow/world.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/design.hpp"
#include "obs/scope.hpp"
#include "tech/technology.hpp"

namespace sndr::flow {

/// Cross-session reuse hooks (the DSE sweep's channel). Everything here is
/// value-neutral: a session with hooks set produces results bitwise equal
/// to one without. `geometry` borrows another session's GeometryCache (a
/// pure function of the tree — Flow's extract stage then skips the
/// rebuild); `memo_in`/`memo_out` transplant exact-eval memo rows under
/// the per-net context guard (ndr::AssignmentState::import_memo). All
/// pointers are borrowed and must outlive the flow run.
struct ReuseHooks {
  const extract::GeometryCache* geometry = nullptr;
  const ndr::MemoSnapshot* memo_in = nullptr;
  ndr::MemoSnapshot* memo_out = nullptr;
  /// Prepared front-end state from another session over the same design
  /// input. The whole load→cts→route→nets pipeline is deterministic and
  /// independent of the swept axes, so copying its output is bitwise
  /// identical to rebuilding it — the flow's load/cts/route/nets stages
  /// copy instead of re-parsing/re-synthesizing. `design` must be the
  /// PRISTINE post-load design (before any max_skew override); `cts` must
  /// already be routed and skew-refined (Flow mutates it in place, so an
  /// anchor session's cts() after prepare() qualifies).
  const netlist::Design* design = nullptr;
  const cts::CtsResult* cts = nullptr;
  const netlist::NetList* nets = nullptr;
};

class Session {
 public:
  explicit Session(FlowConfig config);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const FlowConfig& config() const { return config_; }
  obs::ObsScope& obs_scope() { return scope_; }
  common::ThreadBudget& thread_budget() { return thread_budget_; }

  /// Loads the design (and technology, when configured) through the typed
  /// boundaries. Idempotent; kInvalidArgument when no design is configured
  /// or the design has no sinks.
  common::Status load();
  bool loaded() const { return loaded_; }

  /// Hands the session a design directly (tests, library callers); the
  /// technology stays at its current value until load()/set_technology.
  void set_design(netlist::Design design);
  void set_technology(tech::Technology tech);

  /// Installs a shared immutable World (flow/world.hpp). load() then skips
  /// the technology file — the World *is* the technology (and optionally a
  /// warm predictor); the serve layer resolves config.tech_path through its
  /// SharedCache before constructing the session.
  void set_world(World world);
  const World& world() const { return world_; }

  /// This run's cooperative cancel token. Flow checks it between stages;
  /// it is forwarded into the optimizer/annealer options, whose loops
  /// poll it. Copy the token out (it is a shared handle) to cancel from
  /// another thread.
  common::CancelToken& cancel_token() { return cancel_; }
  const common::CancelToken& cancel_token() const { return cancel_; }

  // State owned by the session; tree/nets/geometry are populated by the
  // flow's build stages (Flow::prepare).
  netlist::Design& design() { return design_; }
  const netlist::Design& design() const { return design_; }
  const tech::Technology& technology() const { return *world_.tech; }
  /// The synthesized tree — the session's own, or the one borrowed through
  /// the reuse hooks (a DSE warm point reads the anchor's tree in place;
  /// Flow then never builds or mutates a private copy).
  const cts::CtsResult& cts() const {
    return reuse_.cts != nullptr ? *reuse_.cts : cts_;
  }
  /// Mutable handle for the build stages (cts/route) only; reads must go
  /// through cts() so borrowed trees resolve.
  cts::CtsResult& build_cts() { return cts_; }
  netlist::NetList& nets() { return nets_; }
  const netlist::NetList& nets() const { return nets_; }

  /// The shared per-session geometry cache; built by Flow's extract stage
  /// (null before that), or borrowed through the reuse hooks (which then
  /// take precedence — the extract stage skips its build). Reset to cover
  /// tree/congestion edits.
  const extract::GeometryCache* geometry() const {
    return reuse_.geometry != nullptr ? reuse_.geometry : geometry_.get();
  }
  void set_geometry(std::unique_ptr<extract::GeometryCache> geometry) {
    geometry_ = std::move(geometry);
  }

  /// Cross-session reuse hooks (DSE). Set before Flow::run(); everything
  /// referenced must outlive the run. Value-neutral by contract.
  void set_reuse(const ReuseHooks& hooks) { reuse_ = hooks; }
  const ReuseHooks& reuse() const { return reuse_; }

 private:
  FlowConfig config_;
  obs::ObsScope scope_;
  common::ThreadBudget thread_budget_;
  common::CancelToken cancel_;
  bool loaded_ = false;
  bool world_external_ = false;  ///< set_world called; load() keeps it.

  netlist::Design design_;
  World world_ = World::make_default();
  cts::CtsResult cts_;
  netlist::NetList nets_;
  std::unique_ptr<extract::GeometryCache> geometry_;
  ReuseHooks reuse_;
};

}  // namespace sndr::flow
