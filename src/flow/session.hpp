// Session: one run's world, owned in one object.
//
// A Session owns everything that used to live in process-globals or loose
// locals of the CLI: the design and technology, the synthesized tree and
// net list, the shared extraction GeometryCache, the thread-budget handle,
// and — the point of the exercise — a private obs::ObsScope, so two
// Sessions running concurrently in one process keep fully disjoint
// metrics/trace state. Anything observing on behalf of a session must run
// under `obs::ScopeBinding binding(session.obs_scope())`; flow::Flow does
// this for every stage, and the thread pool re-binds the submitting
// session's scope on its workers (common/thread_pool.cpp), so session code
// rarely binds by hand.
//
// Loading goes through the typed boundaries (io::load_design_file,
// tech::load_technology_file): load() returns a Status instead of
// throwing, and the caller branches on the code (DESIGN.md §9).
#pragma once

#include <memory>

#include "common/cancel.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "cts/embedding.hpp"
#include "extract/net_geometry.hpp"
#include "flow/config.hpp"
#include "flow/world.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/design.hpp"
#include "obs/scope.hpp"
#include "tech/technology.hpp"

namespace sndr::flow {

class Session {
 public:
  explicit Session(FlowConfig config);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const FlowConfig& config() const { return config_; }
  obs::ObsScope& obs_scope() { return scope_; }
  common::ThreadBudget& thread_budget() { return thread_budget_; }

  /// Loads the design (and technology, when configured) through the typed
  /// boundaries. Idempotent; kInvalidArgument when no design is configured
  /// or the design has no sinks.
  common::Status load();
  bool loaded() const { return loaded_; }

  /// Hands the session a design directly (tests, library callers); the
  /// technology stays at its current value until load()/set_technology.
  void set_design(netlist::Design design);
  void set_technology(tech::Technology tech);

  /// Installs a shared immutable World (flow/world.hpp). load() then skips
  /// the technology file — the World *is* the technology (and optionally a
  /// warm predictor); the serve layer resolves config.tech_path through its
  /// SharedCache before constructing the session.
  void set_world(World world);
  const World& world() const { return world_; }

  /// This run's cooperative cancel token. Flow checks it between stages;
  /// it is forwarded into the optimizer/annealer options, whose loops
  /// poll it. Copy the token out (it is a shared handle) to cancel from
  /// another thread.
  common::CancelToken& cancel_token() { return cancel_; }
  const common::CancelToken& cancel_token() const { return cancel_; }

  // State owned by the session; tree/nets/geometry are populated by the
  // flow's build stages (Flow::prepare).
  netlist::Design& design() { return design_; }
  const netlist::Design& design() const { return design_; }
  const tech::Technology& technology() const { return *world_.tech; }
  cts::CtsResult& cts() { return cts_; }
  const cts::CtsResult& cts() const { return cts_; }
  netlist::NetList& nets() { return nets_; }
  const netlist::NetList& nets() const { return nets_; }

  /// The shared per-session geometry cache; built by Flow's extract stage
  /// (null before that). Reset to cover tree/congestion edits.
  const extract::GeometryCache* geometry() const { return geometry_.get(); }
  void set_geometry(std::unique_ptr<extract::GeometryCache> geometry) {
    geometry_ = std::move(geometry);
  }

 private:
  FlowConfig config_;
  obs::ObsScope scope_;
  common::ThreadBudget thread_budget_;
  common::CancelToken cancel_;
  bool loaded_ = false;
  bool world_external_ = false;  ///< set_world called; load() keeps it.

  netlist::Design design_;
  World world_ = World::make_default();
  cts::CtsResult cts_;
  netlist::NetList nets_;
  std::unique_ptr<extract::GeometryCache> geometry_;
};

}  // namespace sndr::flow
