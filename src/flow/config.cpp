#include "flow/config.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

namespace sndr::flow {

namespace {

bool parse_bool(const std::string& v, bool& out) {
  if (v == "true" || v == "1" || v == "yes" || v.empty()) {
    out = true;
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    out = false;
    return true;
  }
  return false;
}

bool parse_int(const std::string& v, int& out) {
  std::istringstream is(v);
  return static_cast<bool>(is >> out) && is.eof();
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  std::istringstream is(v);
  return static_cast<bool>(is >> out) && is.eof();
}

bool parse_double(const std::string& v, double& out) {
  std::istringstream is(v);
  return static_cast<bool>(is >> out) && is.eof();
}

/// Byte size with an optional K/M/G (or KB/MB/GB) suffix: "64M" = 64 MiB.
bool parse_byte_size(const std::string& v, std::size_t& out) {
  if (v.empty()) return false;
  std::size_t end = v.size();
  std::size_t mult = 1;
  if (end > 0 && (v[end - 1] == 'b' || v[end - 1] == 'B')) --end;
  if (end > 0) {
    switch (v[end - 1]) {
      case 'k': case 'K': mult = std::size_t{1} << 10; --end; break;
      case 'm': case 'M': mult = std::size_t{1} << 20; --end; break;
      case 'g': case 'G': mult = std::size_t{1} << 30; --end; break;
      default: break;
    }
  }
  if (end == 0) return false;
  std::istringstream is(v.substr(0, end));
  std::uint64_t n = 0;
  if (!(is >> n) || !is.eof()) return false;
  out = static_cast<std::size_t>(n) * mult;
  return true;
}

/// One settable key: how to parse it into the config.
using Setter =
    std::function<bool(FlowConfig&, const std::string&)>;  // false = bad value.

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter>* table = new std::map<
      std::string, Setter>{
      {"design", [](FlowConfig& c, const std::string& v) {
         c.design_path = v;
         return !v.empty();
       }},
      {"tech", [](FlowConfig& c, const std::string& v) {
         c.tech_path = v;
         return true;
       }},
      {"smart", [](FlowConfig& c, const std::string& v) {
         return parse_bool(v, c.smart);
       }},
      {"anneal", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.anneal_iterations) && c.anneal_iterations >= 0;
       }},
      {"corners", [](FlowConfig& c, const std::string& v) {
         return parse_bool(v, c.corners);
       }},
      {"seed", [](FlowConfig& c, const std::string& v) {
         return parse_u64(v, c.seed);
       }},
      {"threads", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.threads);
       }},
      {"memory_budget", [](FlowConfig& c, const std::string& v) {
         return parse_byte_size(v, c.memory_budget_bytes);
       }},
      {"checkpoint", [](FlowConfig& c, const std::string& v) {
         c.checkpoint_path = v;
         return !v.empty();
       }},
      {"checkpoint_interval", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.checkpoint_interval) &&
                c.checkpoint_interval > 0;
       }},
      {"power_weight", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.power_weight) && c.power_weight > 0.0;
       }},
      {"max_skew", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.max_skew_ps) && c.max_skew_ps >= 0.0;
       }},
      {"warm_start", [](FlowConfig& c, const std::string& v) {
         c.warm_start = v;
         return !v.empty();
       }},
      {"dse", [](FlowConfig& c, const std::string& v) {
         return parse_bool(v, c.dse);
       }},
      {"dse_mode", [](FlowConfig& c, const std::string& v) {
         if (v != "grid" && v != "refine") return false;
         c.dse_mode = v;
         return true;
       }},
      {"dse_points", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.dse_points) && c.dse_points >= 0;
       }},
      {"dse_out", [](FlowConfig& c, const std::string& v) {
         c.dse_out = v;
         return !v.empty();
       }},
      {"scoring", [](FlowConfig& c, const std::string& v) {
         if (v != "models" && v != "exact_net" && v != "full_sta") {
           return false;
         }
         c.scoring = v;
         return true;
       }},
      {"training_samples", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.training_samples) && c.training_samples > 0;
       }},
      {"slew_margin", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.slew_margin);
       }},
      {"uncertainty_margin", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.uncertainty_margin);
       }},
      {"em_margin", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.em_margin);
       }},
      {"skew_margin", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.skew_margin);
       }},
      {"max_passes", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.max_passes) && c.max_passes > 0;
       }},
      {"full_refresh_interval", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.full_refresh_interval) &&
                c.full_refresh_interval > 0;
       }},
      {"max_repair_rounds", [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.max_repair_rounds) && c.max_repair_rounds >= 0;
       }},
      {"anneal_t_start_frac", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.anneal_t_start_frac);
       }},
      {"anneal_t_end_frac", [](FlowConfig& c, const std::string& v) {
         return parse_double(v, c.anneal_t_end_frac);
       }},
      {"prewarm", [](FlowConfig& c, const std::string& v) {
         return parse_bool(v, c.prewarm);
       }},
      {"anneal_full_refresh_interval",
       [](FlowConfig& c, const std::string& v) {
         return parse_int(v, c.anneal_full_refresh_interval) &&
                c.anneal_full_refresh_interval > 0;
       }},
      {"results_dir", [](FlowConfig& c, const std::string& v) {
         c.results_dir = v;
         return !v.empty();
       }},
      {"spef", [](FlowConfig& c, const std::string& v) {
         c.spef_out = v;
         return true;
       }},
      {"svg", [](FlowConfig& c, const std::string& v) {
         c.svg_out = v;
         return true;
       }},
      {"csv", [](FlowConfig& c, const std::string& v) {
         c.csv_out = v;
         return true;
       }},
      {"metrics_out", [](FlowConfig& c, const std::string& v) {
         c.metrics_out = v;
         return true;
       }},
      {"trace_out", [](FlowConfig& c, const std::string& v) {
         c.trace_out = v;
         return true;
       }},
  };
  return *table;
}

/// One list-valued key: parses the already-split element strings. The DSE
/// axes are all doubles today; each carries the matching scalar key's
/// validation so `dse_power_weight = 0,1` fails the same way
/// `power_weight = 0` does.
using ListSetter =
    std::function<bool(FlowConfig&, const std::vector<std::string>&)>;

bool parse_double_list(const std::vector<std::string>& values,
                       std::vector<double>& out,
                       bool (*valid)(double) = nullptr) {
  std::vector<double> parsed;
  parsed.reserve(values.size());
  for (const std::string& v : values) {
    double d = 0.0;
    if (!parse_double(v, d)) return false;
    if (valid != nullptr && !valid(d)) return false;
    parsed.push_back(d);
  }
  if (parsed.empty()) return false;
  out = std::move(parsed);
  return true;
}

const std::map<std::string, ListSetter>& list_setters() {
  static const std::map<std::string, ListSetter>* table =
      new std::map<std::string, ListSetter>{
          {"dse_power_weight",
           [](FlowConfig& c, const std::vector<std::string>& vs) {
             return parse_double_list(vs, c.dse_power_weight,
                                      [](double d) { return d > 0.0; });
           }},
          {"dse_max_skew",
           [](FlowConfig& c, const std::vector<std::string>& vs) {
             return parse_double_list(vs, c.dse_max_skew,
                                      [](double d) { return d >= 0.0; });
           }},
          {"dse_uncertainty_margin",
           [](FlowConfig& c, const std::vector<std::string>& vs) {
             return parse_double_list(vs, c.dse_uncertainty_margin);
           }},
      };
  return *table;
}

std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= value.size()) {
    const std::size_t comma = value.find(',', at);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    std::string item = value.substr(at, end - at);
    const auto b = item.find_first_not_of(" \t");
    const auto e = item.find_last_not_of(" \t");
    out.push_back(b == std::string::npos ? "" : item.substr(b, e - b + 1));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

/// Levenshtein distance, the plain O(a*b) two-row form — key names are a
/// couple dozen characters, so no need for anything cleverer.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

/// The nearest known key, or empty when nothing is plausibly close (more
/// than half the typed key's characters would have to change).
std::string nearest_known_key(const std::string& key) {
  std::string best;
  std::size_t best_d = key.size() / 2 + 1;
  const auto consider = [&](const std::string& known) {
    const std::size_t d = edit_distance(key, known);
    if (d < best_d) {
      best_d = d;
      best = known;
    }
  };
  for (const auto& [known, setter] : setters()) consider(known);
  for (const auto& [known, setter] : list_setters()) consider(known);
  return best;
}

}  // namespace

common::Status FlowConfig::set(const std::string& key,
                               const std::string& value) {
  // Flag spelling and file spelling are the same key: --metrics-out and
  // `metrics_out = ...` both land on "metrics_out".
  std::string canonical = key;
  std::replace(canonical.begin(), canonical.end(), '-', '_');
  // List-valued keys ride the same entry point: the scalar string splits
  // on commas, so `dse_power_weight = 0.5,1.0` works in files and flags.
  if (list_setters().count(canonical) > 0) {
    return set_list(canonical, split_commas(value));
  }
  const auto it = setters().find(canonical);
  if (it == setters().end()) {
    std::string message = "unknown option '" + key + "'";
    if (const std::string near = nearest_known_key(canonical); !near.empty()) {
      message += " (did you mean '" + near + "'?)";
    }
    return common::Status::InvalidArgument(std::move(message));
  }
  if (!it->second(*this, value)) {
    return common::Status::InvalidArgument("bad value '" + value +
                                           "' for option '" + key + "'");
  }
  return common::Status::Ok();
}

common::Status FlowConfig::set_list(const std::string& key,
                                    const std::vector<std::string>& values) {
  std::string canonical = key;
  std::replace(canonical.begin(), canonical.end(), '-', '_');
  const auto it = list_setters().find(canonical);
  if (it == list_setters().end()) {
    std::string message = setters().count(canonical) > 0
                              ? "option '" + key + "' is not list-valued"
                              : "unknown option '" + key + "'";
    if (const std::string near = nearest_known_key(canonical);
        !near.empty() && near != canonical) {
      message += " (did you mean '" + near + "'?)";
    }
    return common::Status::InvalidArgument(std::move(message));
  }
  if (!it->second(*this, values)) {
    std::string joined;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) joined += ",";
      joined += values[i];
    }
    return common::Status::InvalidArgument("bad value '" + joined +
                                           "' for option '" + key + "'");
  }
  return common::Status::Ok();
}

common::Status FlowConfig::from_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return common::Status::NotFound("cannot open config file " + path);
  }
  std::string line;
  int line_no = 0;
  while (std::getline(f, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto eq = line.find('=');
    const std::string at = path + ":" + std::to_string(line_no) + ": ";
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument(at + "expected 'key = value'");
    }
    std::istringstream key_is(line.substr(0, eq));
    std::string key;
    key_is >> key;
    std::string tail;
    if (key.empty() || (key_is >> tail)) {
      return common::Status::InvalidArgument(at + "expected one key");
    }
    std::istringstream val_is(line.substr(eq + 1));
    std::string value;
    std::getline(val_is, value);
    const auto b = value.find_first_not_of(" \t\r");
    const auto e = value.find_last_not_of(" \t\r");
    value = b == std::string::npos ? "" : value.substr(b, e - b + 1);
    if (const common::Status s = set(key, value); !s.ok()) {
      return common::Status::InvalidArgument(at + s.message());
    }
  }
  return common::Status::Ok();
}

std::vector<std::string> FlowConfig::known_keys() {
  std::vector<std::string> keys;
  keys.reserve(setters().size() + list_setters().size());
  for (const auto& [key, setter] : setters()) keys.push_back(key);
  for (const auto& [key, setter] : list_setters()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

ndr::OptimizerOptions FlowConfig::optimizer_options() const {
  ndr::OptimizerOptions o;
  if (scoring == "exact_net") {
    o.scoring = ndr::Scoring::kExactNet;
    o.use_models = false;
  } else if (scoring == "full_sta") {
    // use_models stays true: the optimizer maps use_models == false to
    // kExactNet regardless of `scoring`.
    o.scoring = ndr::Scoring::kFullSta;
  }
  o.training_samples = training_samples;
  o.threads = threads;
  o.slew_margin = slew_margin;
  o.uncertainty_margin = uncertainty_margin;
  o.em_margin = em_margin;
  o.skew_margin = skew_margin;
  o.max_passes = max_passes;
  o.full_refresh_interval = full_refresh_interval;
  o.max_repair_rounds = max_repair_rounds;
  o.geometry_budget_bytes = memory_budget_bytes;
  o.power_weight = power_weight;
  return o;
}

ndr::AnnealOptions FlowConfig::anneal_options() const {
  ndr::AnnealOptions a;
  a.iterations = anneal_iterations;
  a.t_start_frac = anneal_t_start_frac;
  a.t_end_frac = anneal_t_end_frac;
  a.seed = seed;
  a.full_refresh_interval = anneal_full_refresh_interval;
  a.slew_margin = slew_margin;
  a.uncertainty_margin = uncertainty_margin;
  a.em_margin = em_margin;
  a.skew_margin = skew_margin;
  a.threads = threads;
  a.prewarm = prewarm;
  a.geometry_budget_bytes = memory_budget_bytes;
  a.power_weight = power_weight;
  return a;
}

std::string FlowConfig::output_path(const std::string& name) const {
  if (name.empty() || name.front() == '/' || results_dir.empty()) {
    return name;
  }
  return results_dir + "/" + name;
}

}  // namespace sndr::flow
