#include "flow/flow.hpp"

#include <chrono>
#include <filesystem>

#include "cts/refine.hpp"
#include "flow/checkpoint.hpp"
#include "io/spef.hpp"
#include "io/svg.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "route/congestion_route.hpp"
#include "tech/units.hpp"

namespace sndr::flow {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void ensure_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
}

}  // namespace

report::Table make_eval_table() {
  return report::Table({"flow", "P (mW)", "sw cap (fF)", "skew (ps)",
                        "slew (ps)", "viol s/e/u", "feasible"});
}

void add_eval_row(report::Table& table, const std::string& name,
                  const ndr::FlowEvaluation& eval) {
  table.add_row(
      {name, report::fmt(units::to_mW(eval.power.total_power), 3),
       report::fmt(units::to_fF(eval.power.switched_cap), 0),
       report::fmt(units::to_ps(eval.timing.skew()), 1),
       report::fmt(units::to_ps(eval.timing.max_slew), 1),
       std::to_string(eval.slew_violations) + "/" +
           std::to_string(eval.em_violations) + "/" +
           std::to_string(eval.uncertainty_violations),
       eval.feasible() ? "yes" : "NO"});
}

const ndr::RuleAssignment* FlowResult::final_assignment() const {
  if (anneal) return &anneal->assignment;
  if (smart) return &smart->assignment;
  return nullptr;
}

const ndr::FlowEvaluation& FlowResult::final_eval() const {
  if (anneal) return anneal->final_eval;
  if (smart) return smart->final_eval;
  return blanket_eval;
}

common::Status Flow::stage(const char* name,
                           const std::function<common::Status()>& body,
                           common::StatusCode fallback) {
  obs::ScopeBinding binding(session_.obs_scope());
  // Between-stage cancellation point: a cancel that lands while no stage
  // is running still stops the flow before the next one starts (the
  // in-stage points are the optimizer/annealer loops and the parallel
  // primitives, which unwind here as Cancelled via classify_exception).
  if (session_.cancel_token().cancelled()) {
    stages_.push_back({name, 0.0, "cancelled"});
    return common::Status::Cancelled(std::string("before stage ") + name);
  }
  const auto t0 = std::chrono::steady_clock::now();
  common::Status status;
  {
    SNDR_TRACE_SPAN(name);
    try {
      status = body();
    } catch (...) {
      status = common::classify_exception(fallback);
    }
  }
  stages_.push_back(
      {name, seconds_since(t0), status.ok() ? "ok" : status.to_string()});
  return status;
}

void Flow::skip_stage(const char* name) {
  stages_.push_back({name, 0.0, "skipped"});
}

common::Status Flow::prepare() {
  if (prepared_) return common::Status::Ok();
  session_.thread_budget().apply();

  common::Status s = stage("load", [this] { return session_.load(); });
  if (!s.ok()) return s;

  // Reuse hooks (DSE): the donated cts is already routed and
  // skew-refined, and the whole build pipeline is deterministic with no
  // dependence on the swept axes — reading it in place (session_.cts()
  // resolves to the borrowed tree) is bitwise identical to
  // re-synthesizing, at zero cost.
  const bool shared_prep = session_.reuse().cts != nullptr;
  if (shared_prep) {
    skip_stage("cts");    // borrowed from the donor, read in place.
    skip_stage("route");  // already applied in the donated tree.
  } else {
    s = stage("cts", [this] {
      session_.build_cts() =
          cts::synthesize(session_.design(), session_.technology());
      return common::Status::Ok();
    });
    if (!s.ok()) return s;
    s = stage("route", [this] {
      route::reroute_for_congestion(session_.build_cts().tree,
                                    session_.design().congestion);
      cts::refine_skew(session_.build_cts().tree, session_.design(),
                       session_.technology());
      return common::Status::Ok();
    });
    if (!s.ok()) return s;
  }

  s = stage("nets", [this] {
    session_.nets() = session_.reuse().nets != nullptr
                          ? *session_.reuse().nets
                          : netlist::build_nets(session_.cts().tree);
    return common::Status::Ok();
  });
  if (!s.ok()) return s;

  s = stage("extract", [this] {
    // A borrowed cache (DSE reuse hooks) already covers this tree — the
    // geometry is a pure function of (tree, design, nets), so skipping
    // the rebuild is value-neutral and Session::geometry() serves the
    // borrowed one.
    if (session_.reuse().geometry != nullptr) return common::Status::Ok();
    // The session cache honors the flow-wide memory budget too; the
    // optimizer and annealer build their own (also budgeted) caches tied
    // to their AssignmentState lifetimes.
    session_.set_geometry(std::make_unique<extract::GeometryCache>(
        session_.cts().tree, session_.design(), session_.nets(),
        session_.config().memory_budget_bytes, extract::ExtractOptions{}));
    return common::Status::Ok();
  });
  if (!s.ok()) return s;

  prepared_ = true;
  return common::Status::Ok();
}

common::Result<FlowResult> Flow::run() {
  const auto t0 = std::chrono::steady_clock::now();
  const FlowConfig& config = session_.config();
  FlowResult result;
  result.threads_used = session_.thread_budget().apply();

  if (common::Status s = prepare(); !s.ok()) return s;

  // Skew-axis override (DSE): tighten/relax the skew constraint AFTER the
  // tree is built, so one tree (and one geometry cache) serves a whole
  // skew sweep. Standalone runs with the same config key take exactly
  // this path, which is what makes sweep points reproducible bitwise.
  if (config.max_skew_ps > 0.0) {
    session_.design().constraints.max_skew = config.max_skew_ps * 1e-12;
  }

  const netlist::ClockTree& tree = session_.cts().tree;
  const netlist::Design& design = session_.design();
  const tech::Technology& tech = session_.technology();
  const netlist::NetList& nets = session_.nets();
  const extract::GeometryCache* geometry = session_.geometry();

  common::Status s = stage("optimize", [&] {
    // The all-default / blanket-NDR rows are diagnostics: they never feed
    // the optimizer. A DSE warm point (donated prep) skips them — value-
    // neutral for the point's result, and the cost lands only on the
    // standalone path where a user actually reads the table.
    const bool baseline_rows =
        session_.reuse().cts == nullptr || !config.smart;
    if (baseline_rows) {
      result.default_eval = ndr::evaluate(tree, design, tech, nets,
                                          ndr::assign_all(nets, 0), {},
                                          geometry);
      add_eval_row(result.table, "all-default", result.default_eval);
      result.blanket_eval = ndr::evaluate(
          tree, design, tech, nets,
          ndr::assign_all(nets, tech.rules.blanket_index()), {}, geometry);
      add_eval_row(result.table, "blanket-NDR", result.blanket_eval);
    }
    if (config.smart) {
      ndr::OptimizerOptions o = config.optimizer_options();
      o.cancel = session_.cancel_token();
      o.shared_predictor = session_.world().predictor;
      // Cross-session reuse (DSE): borrow the shared geometry and adopt
      // transplantable memo rows; both channels are value-neutral.
      o.shared_geometry = session_.reuse().geometry;
      o.memo_in = session_.reuse().memo_in;
      if (config.anneal_iterations <= 0) {
        o.memo_out = session_.reuse().memo_out;  // else the annealer's.
      }
      if (!config.warm_start.empty()) {
        // Warm start is part of the config: the seed file is named by a
        // key, so a standalone rerun of this exact config replays the
        // identical starting assignment.
        const std::string path = config.output_path(config.warm_start);
        common::Result<std::vector<int>> seed = load_assignment_seed(
            path, assignment_seed_fingerprint(nets.size(),
                                              tech.rules.size()));
        if (!seed.ok()) return seed.status();
        o.initial_assignment = std::move(seed).value();
      }
      result.smart = ndr::optimize_smart_ndr(tree, design, tech, nets, o);
      add_eval_row(result.table, "smart-NDR", result.smart->final_eval);
    }
    return common::Status::Ok();
  });
  if (!s.ok()) return s;

  if (config.smart && config.anneal_iterations > 0) {
    s = stage("anneal", [&] {
      ndr::AnnealOptions a = config.anneal_options();
      a.cancel = session_.cancel_token();
      a.shared_geometry = session_.reuse().geometry;
      a.memo_in = session_.reuse().memo_in;
      a.memo_out = session_.reuse().memo_out;
      if (!config.checkpoint_path.empty()) {
        const std::string path = config.output_path(config.checkpoint_path);
        const std::uint64_t fp = checkpoint_fingerprint(
            nets.size(), tech.rules.size(), config.seed, a.iterations);
        if (std::filesystem::exists(path)) {
          common::Result<ndr::AnnealCheckpoint> ck = load_checkpoint(path, fp);
          if (!ck.ok()) return ck.status();
          result.resumed_from_iteration = ck.value().iteration;
          a.resume = std::move(ck).value();
        }
        a.checkpoint_interval = config.checkpoint_interval;
        a.checkpoint_sink = [path, fp](const ndr::AnnealCheckpoint& ck) {
          ensure_parent_dir(path);
          const common::Status ss = save_checkpoint(path, ck, fp);
          // A failed snapshot must not kill the run it exists to protect.
          if (!ss.ok()) {
            SNDR_COUNTER_ADD("flow.checkpoint_save_failures", 1);
          }
        };
      }
      result.anneal = ndr::anneal_rules(tree, design, tech, nets,
                                        result.smart->assignment, a);
      add_eval_row(result.table, "smart+anneal", result.anneal->final_eval);
      return common::Status::Ok();
    });
    if (!s.ok()) return s;
  } else {
    skip_stage("anneal");
  }

  if (config.corners) {
    s = stage("corners", [&] {
      const ndr::RuleAssignment* assignment = result.final_assignment();
      result.corners = ndr::evaluate_corners(
          tree, design, tech, nets,
          assignment != nullptr
              ? *assignment
              : ndr::assign_all(nets, tech.rules.blanket_index()),
          tech::standard_corners(), {}, geometry);
      return common::Status::Ok();
    });
    if (!s.ok()) return s;
  } else {
    skip_stage("corners");
  }

  result.feasible = result.smart ? result.final_eval().feasible() : true;

  if (s = report(result, t0); !s.ok()) return s;

  result.wall_seconds = seconds_since(t0);
  result.stages = stages_;
  return result;
}

common::Status Flow::report(FlowResult& result,
                            std::chrono::steady_clock::time_point flow_t0) {
  const FlowConfig& config = session_.config();
  const auto report_t0 = std::chrono::steady_clock::now();
  return stage(
      "report",
      [&] {
        if (!config.spef_out.empty() && result.smart) {
          const std::string path = config.output_path(config.spef_out);
          ensure_parent_dir(path);
          io::write_spef_file(path, session_.cts().tree, session_.design(),
                              session_.nets(),
                              result.final_eval().parasitics);
        }
        if (!config.svg_out.empty() && result.smart) {
          const std::string path = config.output_path(config.svg_out);
          ensure_parent_dir(path);
          io::write_svg_file(path, session_.cts().tree, session_.design(),
                             session_.technology(), session_.nets(),
                             *result.final_assignment());
        }
        if (!config.csv_out.empty()) {
          const std::string path = config.output_path(config.csv_out);
          ensure_parent_dir(path);
          result.table.write_csv(path);
        }
        if (!config.metrics_out.empty()) {
          obs::RunInfo info;
          info.tool = config.tool;
          info.command = config.command;
          info.args = config.raw_args;
          info.threads = result.threads_used;
          info.seed = config.seed;
          // Timed at manifest-write, so the run's wall clock and stage
          // table cover the report stage itself: its StageInfo is only
          // pushed after this body returns, hence the provisional entry.
          info.wall_seconds = seconds_since(flow_t0);
          info.stages = stages_;
          info.stages.push_back({"report", seconds_since(report_t0), "ok"});
          const std::string path = config.output_path(config.metrics_out);
          ensure_parent_dir(path);
          obs::write_run_manifest(path, info);
        }
        if (!config.trace_out.empty()) {
          const std::string path = config.output_path(config.trace_out);
          ensure_parent_dir(path);
          obs::write_chrome_trace_file(path);
        }
        return common::Status::Ok();
      },
      common::StatusCode::kIoError);
}

}  // namespace sndr::flow
