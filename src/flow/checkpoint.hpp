// Durable anneal checkpoints: the flow-level half of preemption survival.
//
// The annealer emits AnnealCheckpoint snapshots (see ndr/annealer.hpp);
// this module gives them a file format and a validity check so a killed
// million-net run restarts where it left off instead of from iteration 0.
//
// Format: `sndr.anneal_checkpoint/1`, line-oriented text. Floating-point
// fields are written as hexfloats (%a), which round-trip bit-exactly —
// the resumed trajectory is bitwise identical to the uninterrupted run.
// Saves are atomic (write to <path>.tmp, then rename), so a crash during
// a save leaves the previous snapshot intact.
//
// A fingerprint of the search inputs (net count, rule count, seed,
// iteration budget) is stored in the file; loading with a different
// fingerprint fails with kInvalidArgument rather than silently resuming a
// checkpoint from some other design or configuration.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "ndr/annealer.hpp"

namespace sndr::flow {

/// Schema tag written as the first line of every checkpoint file; also
/// printed by `sndr version` so operators can match binaries to on-disk
/// checkpoints.
inline constexpr const char* kCheckpointSchema = "sndr.anneal_checkpoint/1";

/// FNV-1a over the inputs the checkpoint is only valid against.
std::uint64_t checkpoint_fingerprint(int n_nets, int n_rules,
                                     std::uint64_t seed, int iterations);

/// Atomically writes `ck` to `path`. kIoError on filesystem failure.
common::Status save_checkpoint(const std::string& path,
                               const ndr::AnnealCheckpoint& ck,
                               std::uint64_t fingerprint);

/// kNotFound when `path` does not exist; kInvalidArgument on a malformed
/// file or a fingerprint mismatch (path:line in the message).
common::Result<ndr::AnnealCheckpoint> load_checkpoint(
    const std::string& path, std::uint64_t fingerprint);

/// Assignment seed files: a bare rule assignment with a shape fingerprint,
/// the durable form of a warm start. The DSE sweep writes one per point
/// (the nearest solved neighbor's assignment) and names it in the point's
/// `warm_start` config key, so re-running that config standalone replays
/// the identical starting state. Same atomicity/diagnostic contract as
/// the anneal checkpoint format above.
inline constexpr const char* kAssignmentSeedSchema = "sndr.assignment_seed/1";

/// FNV-1a over the search shape a seed is valid against.
std::uint64_t assignment_seed_fingerprint(int n_nets, int n_rules);

/// Atomically writes `assignment` to `path`. kIoError on failure.
common::Status save_assignment_seed(const std::string& path,
                                    const std::vector<int>& assignment,
                                    std::uint64_t fingerprint);

/// kNotFound when `path` does not exist; kInvalidArgument on fingerprint
/// mismatch; parse failures carry path:line.
common::Result<std::vector<int>> load_assignment_seed(
    const std::string& path, std::uint64_t fingerprint);

}  // namespace sndr::flow
