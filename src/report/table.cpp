#include "report/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sndr::report {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: no columns");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("Table::write_csv: cannot open " + path);
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      f << (c == 0 ? "" : ",") << csv_escape(cells[c]);
    }
    f << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << std::showpos
     << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace sndr::report
