// Fixed-width table and CSV emission shared by the benches and examples.
//
// Every bench prints its table to stdout (the paper-reproduction artifact)
// and optionally writes the same rows as CSV next to the binary so the
// series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sndr::report {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Adds a row; cells are already-formatted strings. Throws on arity
  /// mismatch with the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void write_csv(const std::string& path) const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double value, int precision = 2);

/// Formats as a percentage with sign, e.g. -23.4%.
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace sndr::report
