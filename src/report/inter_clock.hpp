// Inter-clock (domain-pair) skew signoff.
//
// A single global skew bound is the right check inside one clock domain,
// but a multi-domain network also hands off data BETWEEN domains: every
// pair of related clocks needs its cross-domain launch/capture skew
// bounded. Two cases, following industry signoff practice:
//
//  * Pair with a common tree node (the usual case inside one tree): the
//    shared path up to the deepest common ancestor tracks identically
//    across process variation, so the raw cross-pair arrival spread is the
//    honest skew and the global-skew-style budget applies.
//
//  * Pair separated by a clock mux ("related clocks with no common node"):
//    the mux's alternate source came from elsewhere, so no shared-path
//    cancellation may be assumed — the check must additionally absorb both
//    domains' worst per-sink uncertainties (3*sigma + crosstalk) as an
//    explicit guard.
//
// The budget is ClockConstraints::max_inter_clock_skew when set; otherwise
// a derived default of max_skew (common-node pairs) or max_skew +
// 2 * max_uncertainty (mux pairs) — chosen so a design that passes the
// global skew and uncertainty checks also passes here, making the
// inter-clock report purely additive until a user pins a tighter budget.
//
// With domains disabled the report is empty (enabled == false, zero
// violations), so single-domain evaluations are untouched.
#pragma once

#include <vector>

#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "timing/tree_timing.hpp"
#include "timing/variation.hpp"

namespace sndr::report {

/// One checked domain pair.
struct InterClockPair {
  int domain_a = -1;
  int domain_b = -1;
  int common_node = -1;  ///< tree node; -1 = no common node (mux pair).
  int divisor_ratio = 1; ///< synchronous ratio between the two rates.
  double skew = 0.0;     ///< s, max cross-pair |arrival_i - arrival_j|.
  double guard = 0.0;    ///< s, uncertainty guard (mux pairs only).
  double budget = 0.0;   ///< s, the limit applied to skew + guard.
  int sink_early = -1;   ///< design sink with the earliest arrival of pair.
  int sink_late = -1;    ///< design sink with the latest arrival of pair.
  bool ok = true;
};

struct InterClockReport {
  bool enabled = false;  ///< false = single-domain design, nothing checked.
  std::vector<InterClockPair> pairs;
  double worst_skew = 0.0;  ///< s, max pair skew (guard excluded).
  int violations = 0;

  bool ok() const { return violations == 0; }
};

/// Checks every pair of sink-bearing clock domains of
/// `design.clock_domains` against the inter-clock budget. `timing` and
/// `variation` must come from the same evaluation of (tree, nets).
InterClockReport check_inter_clock(const netlist::ClockTree& tree,
                                   const netlist::Design& design,
                                   const timing::TimingReport& timing,
                                   const timing::VariationReport& variation);

}  // namespace sndr::report
