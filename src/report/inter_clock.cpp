#include "report/inter_clock.hpp"

#include <algorithm>

namespace sndr::report {

namespace {

/// Deepest common ancestor of two tree nodes (parent-pointer walk; the
/// trees here are shallow — O(depth) per query).
int tree_lca(const netlist::ClockTree& tree, int a, int b) {
  const auto depth = [&](int v) {
    int n = 0;
    while (tree.node(v).parent >= 0) {
      v = tree.node(v).parent;
      ++n;
    }
    return n;
  };
  int da = depth(a);
  int db = depth(b);
  while (da > db) {
    a = tree.node(a).parent;
    --da;
  }
  while (db > da) {
    b = tree.node(b).parent;
    --db;
  }
  while (a != b) {
    a = tree.node(a).parent;
    b = tree.node(b).parent;
  }
  return a;
}

/// Per-domain arrival/uncertainty extremes.
struct DomainStats {
  int sinks = 0;
  double min_arrival = 0.0;
  double max_arrival = 0.0;
  int sink_min = -1;
  int sink_max = -1;
  double worst_uncertainty = 0.0;
};

}  // namespace

InterClockReport check_inter_clock(const netlist::ClockTree& tree,
                                   const netlist::Design& design,
                                   const timing::TimingReport& timing,
                                   const timing::VariationReport& variation) {
  InterClockReport rep;
  const netlist::ClockDomainMap& domains = design.clock_domains;
  if (!domains.enabled()) return rep;
  rep.enabled = true;

  std::vector<DomainStats> stats(domains.size());
  for (int v = 0; v < tree.size(); ++v) {
    const netlist::TreeNode& n = tree.node(v);
    if (n.kind != netlist::NodeKind::kSink) continue;
    const int s = n.sink;
    DomainStats& d = stats[domains.domain_of_node(v)];
    const double arr = timing.sink_arrival[s];
    if (d.sinks == 0 || arr < d.min_arrival) {
      d.min_arrival = arr;
      d.sink_min = s;
    }
    if (d.sinks == 0 || arr > d.max_arrival) {
      d.max_arrival = arr;
      d.sink_max = s;
    }
    d.worst_uncertainty =
        std::max(d.worst_uncertainty, variation.sink_uncertainty[s]);
    ++d.sinks;
  }

  const netlist::ClockConstraints& c = design.constraints;
  for (int a = 0; a < domains.size(); ++a) {
    if (stats[a].sinks == 0) continue;
    for (int b = a + 1; b < domains.size(); ++b) {
      if (stats[b].sinks == 0) continue;
      InterClockPair p;
      p.domain_a = a;
      p.domain_b = b;
      p.divisor_ratio = domains.divisor_ratio(a, b);
      const bool mux_pair = domains.path_crosses_mux(a, b);
      if (!mux_pair) {
        const int anchor_a =
            domains.domain(a).anchor < 0 ? 0 : domains.domain(a).anchor;
        const int anchor_b =
            domains.domain(b).anchor < 0 ? 0 : domains.domain(b).anchor;
        p.common_node = tree_lca(tree, anchor_a, anchor_b);
      }
      const double lo_ab = stats[a].max_arrival - stats[b].min_arrival;
      const double lo_ba = stats[b].max_arrival - stats[a].min_arrival;
      if (lo_ab >= lo_ba) {
        p.skew = lo_ab;
        p.sink_late = stats[a].sink_max;
        p.sink_early = stats[b].sink_min;
      } else {
        p.skew = lo_ba;
        p.sink_late = stats[b].sink_max;
        p.sink_early = stats[a].sink_min;
      }
      if (mux_pair) {
        p.guard = stats[a].worst_uncertainty + stats[b].worst_uncertainty;
      }
      p.budget = c.max_inter_clock_skew > 0.0
                     ? c.max_inter_clock_skew
                     : c.max_skew + (mux_pair ? 2.0 * c.max_uncertainty
                                              : 0.0);
      p.ok = p.skew + p.guard <= p.budget;
      if (!p.ok) ++rep.violations;
      rep.worst_skew = std::max(rep.worst_skew, p.skew);
      rep.pairs.push_back(p);
    }
  }
  return rep;
}

}  // namespace sndr::report
