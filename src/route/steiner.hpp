// Rectilinear Steiner tree construction.
//
// A Prim-style heuristic with edge splitting: terminals join the growing
// tree either at an existing node or at the closest point of an existing
// L-routed edge (which then becomes a Steiner branch point). Quality is
// within a few percent of FLUTE-class constructors on clock-scale nets and
// the implementation is dependency-free and deterministic.
#pragma once

#include <vector>

#include "geom/point.hpp"
#include "geom/segment.hpp"

namespace sndr::route {

struct SteinerTree {
  /// Node 0 is the root (the first terminal given). parent[0] == -1.
  std::vector<geom::Point> points;
  std::vector<int> parent;
  /// Routed path parent[i] -> i (rectilinear), parallel to points.
  std::vector<geom::Path> paths;
  /// For each input terminal, its node index in `points`.
  std::vector<int> terminal_node;

  int size() const { return static_cast<int>(points.size()); }
  double length() const;
};

/// Builds a rectilinear Steiner tree connecting all terminals; the first
/// terminal is the root (driver pin). Throws on an empty terminal list.
SteinerTree build_rsmt(const std::vector<geom::Point>& terminals);

/// Closest point to `p` on the rectilinear path, and its L1 distance.
std::pair<geom::Point, double> closest_on_path(const geom::Path& path,
                                               geom::Point p);

}  // namespace sndr::route
