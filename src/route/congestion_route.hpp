// Congestion-aware finishing passes over a synthesized clock tree, and the
// routing-resource accounting the NDR optimizer checks against.
#pragma once

#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/congestion.hpp"
#include "tech/technology.hpp"

namespace sndr::route {

/// For every plain two-bend candidate edge (an L), picks the orientation
/// (HV vs VH) whose route crosses lower-occupancy cells, without changing
/// wirelength (so the CTS delay balance is preserved). Edges carrying
/// detours (snaking) are left untouched. Returns the number of edges
/// re-oriented.
int reroute_for_congestion(netlist::ClockTree& tree,
                           const netlist::CongestionMap& map);

/// Accumulates per-cell clock routing usage of the whole tree under a rule
/// assignment (`rule_of_net[i]` indexes tech.rules).
netlist::RoutingUsage compute_usage(const netlist::ClockTree& tree,
                                    const netlist::NetList& nets,
                                    const std::vector<int>& rule_of_net,
                                    const tech::Technology& tech,
                                    const netlist::CongestionMap& map);

}  // namespace sndr::route
