#include "route/congestion_route.hpp"

#include <stdexcept>

namespace sndr::route {

int reroute_for_congestion(netlist::ClockTree& tree,
                           const netlist::CongestionMap& map) {
  if (!map.valid()) return 0;
  int changed = 0;
  for (const int id : tree.topological_order()) {
    const netlist::TreeNode& n = tree.node(id);
    if (n.parent < 0) continue;
    const geom::Point a = tree.loc(n.parent);
    const geom::Point b = n.loc;
    if (a.x == b.x || a.y == b.y) continue;  // straight, nothing to choose.
    // Skip edges that are not plain Ls (detoured edges carry balance).
    const double direct = geom::manhattan(a, b);
    if (n.path.size() >= 2 &&
        geom::path_length(n.path) > direct + 1e-9) {
      continue;
    }
    const geom::Path hv = geom::l_path(a, b, true);
    const geom::Path vh = geom::l_path(a, b, false);
    const double occ_hv = map.avg_occupancy(hv);
    const double occ_vh = map.avg_occupancy(vh);
    const geom::Path& pick = occ_hv <= occ_vh ? hv : vh;
    if (n.path.size() < 2 || pick != n.path) {
      tree.set_path(id, pick);
      ++changed;
    }
  }
  return changed;
}

netlist::RoutingUsage compute_usage(const netlist::ClockTree& tree,
                                    const netlist::NetList& nets,
                                    const std::vector<int>& rule_of_net,
                                    const tech::Technology& tech,
                                    const netlist::CongestionMap& map) {
  if (rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("compute_usage: rule assignment mismatch");
  }
  netlist::RoutingUsage usage(&map);
  const double width_frac = tech.clock_layer.width_frac();
  for (const netlist::Net& net : nets.nets) {
    const double pitch_mult =
        tech.rules[rule_of_net[net.id]].pitch_mult(width_frac);
    for (const int v : net.wires) {
      const netlist::TreeNode& n = tree.node(v);
      if (n.path.size() >= 2) {
        usage.add(n.path, pitch_mult);
      } else if (n.parent >= 0) {
        usage.add({tree.loc(n.parent), n.loc}, pitch_mult);
      }
    }
  }
  return usage;
}

}  // namespace sndr::route
