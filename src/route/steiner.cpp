#include "route/steiner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sndr::route {

double SteinerTree::length() const {
  double len = 0.0;
  for (const geom::Path& p : paths) len += geom::path_length(p);
  return len;
}

std::pair<geom::Point, double> closest_on_path(const geom::Path& path,
                                               geom::Point p) {
  geom::Point best = path.empty() ? geom::Point{} : path.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (const geom::Segment& seg : geom::path_segments(path)) {
    geom::Point q;
    if (seg.horizontal()) {
      q = {std::clamp(p.x, std::min(seg.a.x, seg.b.x),
                      std::max(seg.a.x, seg.b.x)),
           seg.a.y};
    } else {
      q = {seg.a.x, std::clamp(p.y, std::min(seg.a.y, seg.b.y),
                               std::max(seg.a.y, seg.b.y))};
    }
    const double d = geom::manhattan(p, q);
    if (d < best_d) {
      best_d = d;
      best = q;
    }
  }
  if (path.size() == 1 || best_d == std::numeric_limits<double>::infinity()) {
    best = path.front();
    best_d = geom::manhattan(p, best);
  }
  return {best, best_d};
}

SteinerTree build_rsmt(const std::vector<geom::Point>& terminals) {
  if (terminals.empty()) {
    throw std::invalid_argument("build_rsmt: no terminals");
  }
  SteinerTree tree;
  tree.points.push_back(terminals[0]);
  tree.parent.push_back(-1);
  tree.paths.emplace_back();
  tree.terminal_node.assign(terminals.size(), -1);
  tree.terminal_node[0] = 0;

  std::vector<int> pending;
  for (int i = 1; i < static_cast<int>(terminals.size()); ++i) {
    pending.push_back(i);
  }

  while (!pending.empty()) {
    // Find the pending terminal closest to the current tree, measuring
    // distance to nodes and to interior points of routed edges.
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_pi = 0;
    int best_node = -1;       // attach at an existing node...
    int best_edge = -1;       // ...or by splitting this edge,
    geom::Point best_split;   // at this point.

    for (std::size_t pi = 0; pi < pending.size(); ++pi) {
      const geom::Point t = terminals[pending[pi]];
      for (int v = 0; v < tree.size(); ++v) {
        const double d = geom::manhattan(t, tree.points[v]);
        if (d < best_d) {
          best_d = d;
          best_pi = pi;
          best_node = v;
          best_edge = -1;
        }
        if (tree.parent[v] >= 0 && tree.paths[v].size() >= 2) {
          const auto [q, dq] = closest_on_path(tree.paths[v], t);
          if (dq + 1e-12 < best_d) {
            best_d = dq;
            best_pi = pi;
            best_node = -1;
            best_edge = v;
            best_split = q;
          }
        }
      }
    }

    int attach = best_node;
    if (best_edge >= 0) {
      // Split the edge parent(best_edge) -> best_edge at best_split.
      const geom::Path& full = tree.paths[best_edge];
      double along = 0.0;
      {
        // Arc length of the closest point along the path.
        double acc = 0.0;
        double best_err = std::numeric_limits<double>::infinity();
        for (std::size_t i = 1; i < full.size(); ++i) {
          const geom::Segment seg{full[i - 1], full[i]};
          const auto [q, dq] = closest_on_path({seg.a, seg.b}, best_split);
          const double err = dq;
          if (err < best_err) {
            best_err = err;
            along = acc + geom::manhattan(seg.a, q);
          }
          acc += seg.length();
        }
      }
      auto [head, tail] = geom::split_at(full, along);
      const int split_node = tree.size();
      tree.points.push_back(best_split);
      tree.parent.push_back(tree.parent[best_edge]);
      tree.paths.push_back(head);
      // Re-hang the old child below the split node.
      tree.parent[best_edge] = split_node;
      tree.paths[best_edge] = tail;
      attach = split_node;
    }

    const int term = pending[best_pi];
    const int node = tree.size();
    tree.points.push_back(terminals[term]);
    tree.parent.push_back(attach);
    tree.paths.push_back(geom::l_path(tree.points[attach], terminals[term],
                                      /*horizontal_first=*/node % 2 == 0));
    tree.terminal_node[term] = node;
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_pi));
  }
  return tree;
}

}  // namespace sndr::route
