#include "timing/tree_timing.hpp"

#include <algorithm>
#include <stdexcept>

#include "timing/delay_metrics.hpp"

namespace sndr::timing {

using netlist::NodeKind;

TimingReport analyze(const netlist::ClockTree& tree,
                     const netlist::Design& design,
                     const tech::Technology& tech,
                     const netlist::NetList& nets,
                     const std::vector<extract::NetParasitics>& parasitics,
                     const AnalysisOptions& options) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument("timing::analyze: parasitics size mismatch");
  }
  TimingReport rep;
  rep.sink_arrival.assign(design.sinks.size(), 0.0);
  rep.sink_slew.assign(design.sinks.size(), 0.0);
  rep.node_arrival.assign(tree.size(), 0.0);
  rep.node_slew.assign(tree.size(), 0.0);
  rep.net_max_load_slew.assign(nets.size(), 0.0);
  rep.net_driver_load.assign(nets.size(), 0.0);

  rep.min_latency = std::numeric_limits<double>::infinity();
  rep.max_latency = -std::numeric_limits<double>::infinity();

  // Nets are root-first, so the driver's input arrival/slew are final by the
  // time its net is processed. One moment scratch serves every net.
  extract::RcMoments moments;
  for (const netlist::Net& net : nets.nets) {
    const extract::NetParasitics& par = parasitics[net.id];
    const netlist::TreeNode& drv = tree.node(net.driver);

    const double miller = options.timing_miller;

    // Driver stage. The driver's resistive R*C contribution is carried by
    // the RC-tree moments (driver_res enters the Elmore recursion), so the
    // cell itself only contributes its intrinsic delay and the input-slew
    // sensitivity — adding BufferCell::delay here would double-count R*C.
    double out_arrival = 0.0;
    double out_slew = 0.0;  // transition at the driver output, pre-wire.
    double driver_res = 0.0;
    if (drv.kind == NodeKind::kSource) {
      driver_res = options.source_drive_res;
      out_arrival = 0.0;
      out_slew = options.source_slew;
    } else {
      const tech::BufferCell& cell = tech.buffers[drv.cell];
      driver_res = cell.drive_res;
      const double in_arrival = rep.node_arrival[net.driver];
      const double in_slew = rep.node_slew[net.driver];
      out_arrival = in_arrival + cell.intrinsic_delay +
                    cell.slew_sensitivity * in_slew;
      out_slew = 0.4 * cell.intrinsic_delay;  // regenerated edge.
    }

    // Fused kernel: down-cap, m1 and m2 in two sweeps, no allocation.
    par.rc.moments(driver_res, miller, moments);
    const std::vector<double>& m1 = moments.m1;
    const std::vector<double>& m2 = moments.m2;
    rep.net_driver_load[net.id] = moments.down[0];

    for (std::size_t li = 0; li < net.loads.size(); ++li) {
      const int load = net.loads[li];
      const int rc = par.load_rc_index[li];
      const double wire_delay = options.use_d2m
                                    ? delay_d2m(m1[rc], m2[rc])
                                    : delay_elmore(m1[rc]);
      const double arrival = out_arrival + wire_delay;
      const double slew = peri_slew(out_slew, step_slew(m1[rc], m2[rc]));
      rep.node_arrival[load] = arrival;
      rep.node_slew[load] = slew;
      rep.net_max_load_slew[net.id] =
          std::max(rep.net_max_load_slew[net.id], slew);
      rep.max_slew = std::max(rep.max_slew, slew);

      const netlist::TreeNode& ln = tree.node(load);
      if (ln.kind == NodeKind::kSink) {
        rep.sink_arrival[ln.sink] = arrival;
        rep.sink_slew[ln.sink] = slew;
        rep.min_latency = std::min(rep.min_latency, arrival);
        rep.max_latency = std::max(rep.max_latency, arrival);
      }
    }
  }

  if (design.sinks.empty()) {
    rep.min_latency = rep.max_latency = 0.0;
  }
  return rep;
}

}  // namespace sndr::timing
