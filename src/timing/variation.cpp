#include "timing/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace sndr::timing {

using netlist::NodeKind;

double NetVariationDetail::worst_sigma() const {
  double w = 0.0;
  for (const double s : load_sigma) w = std::max(w, s);
  return w;
}

double NetVariationDetail::worst_xtalk() const {
  double w = 0.0;
  for (const double x : load_xtalk) w = std::max(w, x);
  return w;
}

double net_driver_res(const netlist::ClockTree& tree,
                      const tech::Technology& tech, const netlist::Net& net,
                      const AnalysisOptions& options) {
  const netlist::TreeNode& drv = tree.node(net.driver);
  return drv.kind == NodeKind::kSource ? options.source_drive_res
                                       : tech.buffers[drv.cell].drive_res;
}

namespace {

/// Elmore delay at each load for the given node array, through the shared
/// scratch kernels (no allocation once the scratch has warmed up).
void load_elmore(const extract::RcNode* nodes, int n,
                 const std::vector<int>& load_rc_index, double driver_res,
                 double miller, VariationScratch& scratch,
                 std::vector<double>& out) {
  scratch.down.resize(static_cast<std::size_t>(n));
  scratch.m1.resize(static_cast<std::size_t>(n));
  extract::rc_elmore(nodes, n, driver_res, miller, scratch.down.data(),
                     scratch.m1.data());
  out.resize(load_rc_index.size());
  for (std::size_t i = 0; i < load_rc_index.size(); ++i) {
    out[i] = scratch.m1[load_rc_index[i]];
  }
}

}  // namespace

void net_variation(const extract::NetParasitics& par,
                   const tech::Technology& tech,
                   const tech::RoutingRule& rule, double driver_res,
                   VariationScratch& scratch, NetVariationDetail& out) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double width = layer.min_width * rule.width_mult;
  const double d_w = layer.sigma_width;        // um, 1 sigma.
  const double d_t = layer.sigma_thickness;    // fraction, 1 sigma.

  const extract::RcNode* nodes = par.rc.data();
  const int n = par.rc.size();

  load_elmore(nodes, n, par.load_rc_index, driver_res, 1.0, scratch,
              scratch.base);

  // Width +1 sigma: R scales W/(W+dW); area cap grows by c_area*dW per um.
  scratch.perturbed.assign(par.rc.nodes().begin(), par.rc.nodes().end());
  for (extract::RcNode& pn : scratch.perturbed) {
    if (pn.wire_len <= 0.0) continue;
    pn.res *= width / (width + d_w);
    pn.cap_gnd += layer.c_area * d_w * pn.wire_len;
  }
  load_elmore(scratch.perturbed.data(), n, par.load_rc_index, driver_res, 1.0,
              scratch, scratch.w_pert);

  // Thickness +1 sigma: R scales 1/(1+dT); coupling scales (1+dT).
  scratch.perturbed.assign(par.rc.nodes().begin(), par.rc.nodes().end());
  for (extract::RcNode& pn : scratch.perturbed) {
    if (pn.wire_len <= 0.0) continue;
    pn.res /= 1.0 + d_t;
    pn.cap_cpl *= 1.0 + d_t;
  }
  load_elmore(scratch.perturbed.data(), n, par.load_rc_index, driver_res, 1.0,
              scratch, scratch.t_pert);

  // Crosstalk: extra Miller charge on coupling caps, weighted by the
  // probability that the neighbor actually switches against us.
  load_elmore(nodes, n, par.load_rc_index, driver_res, tech.miller_delay,
              scratch, scratch.x_pert);

  out.load_sigma.resize(scratch.base.size());
  out.load_xtalk.resize(scratch.base.size());
  for (std::size_t i = 0; i < scratch.base.size(); ++i) {
    const double dw = scratch.w_pert[i] - scratch.base[i];
    const double dt = scratch.t_pert[i] - scratch.base[i];
    out.load_sigma[i] = std::sqrt(dw * dw + dt * dt);
    out.load_xtalk[i] = tech.aggressor_activity *
                        std::max(0.0, scratch.x_pert[i] - scratch.base[i]);
  }
}

NetVariationDetail net_variation(const extract::NetParasitics& par,
                                 const tech::Technology& tech,
                                 const tech::RoutingRule& rule,
                                 double driver_res) {
  VariationScratch scratch;
  NetVariationDetail out;
  net_variation(par, tech, rule, driver_res, scratch, out);
  return out;
}

VariationReport analyze_variation(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const std::vector<extract::NetParasitics>& parasitics,
    const std::vector<int>& rule_of_net, const AnalysisOptions& options) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size()) ||
      rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument(
        "analyze_variation: per-net input size mismatch");
  }

  VariationReport rep;
  rep.net_sigma.assign(nets.size(), 0.0);
  rep.net_xtalk.assign(nets.size(), 0.0);
  rep.sink_sigma.assign(design.sinks.size(), 0.0);
  rep.sink_xtalk.assign(design.sinks.size(), 0.0);
  rep.sink_uncertainty.assign(design.sinks.size(), 0.0);

  // Accumulators at driver inputs (tree node id -> path variance / xtalk).
  std::vector<double> node_var(tree.size(), 0.0);
  std::vector<double> node_xtalk(tree.size(), 0.0);

  // The heavy part — three perturbed RC solves per net — is independent
  // per net; compute details into per-net slots in parallel. The cheap
  // root-to-sink accumulation below stays sequential (it walks nets in
  // root-first order), so the result is identical at any thread count.
  std::vector<NetVariationDetail> details(nets.size());
  common::parallel_for(nets.size(), /*grain=*/8, /*est_us_per_item=*/2.0,
                       [&](std::int64_t i) {
    thread_local VariationScratch scratch;  // reused across nets per worker.
    const netlist::Net& net = nets.nets[static_cast<std::size_t>(i)];
    net_variation(parasitics[net.id], tech, tech.rules[rule_of_net[net.id]],
                  net_driver_res(tree, tech, net, options), scratch,
                  details[i]);
  });

  for (const netlist::Net& net : nets.nets) {
    const NetVariationDetail& detail = details[net.id];
    rep.net_sigma[net.id] = detail.worst_sigma();
    rep.net_xtalk[net.id] = detail.worst_xtalk();

    const double up_var = node_var[net.driver];
    const double up_xtalk = node_xtalk[net.driver];
    for (std::size_t li = 0; li < net.loads.size(); ++li) {
      const int load = net.loads[li];
      node_var[load] = up_var + detail.load_sigma[li] * detail.load_sigma[li];
      node_xtalk[load] = up_xtalk + detail.load_xtalk[li];
      const netlist::TreeNode& ln = tree.node(load);
      if (ln.kind == NodeKind::kSink) {
        const double sigma = std::sqrt(node_var[load]);
        rep.sink_sigma[ln.sink] = sigma;
        rep.sink_xtalk[ln.sink] = node_xtalk[load];
        rep.sink_uncertainty[ln.sink] = 3.0 * sigma + node_xtalk[load];
        rep.max_uncertainty =
            std::max(rep.max_uncertainty, rep.sink_uncertainty[ln.sink]);
      }
    }
  }
  return rep;
}

}  // namespace sndr::timing
