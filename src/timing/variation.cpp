#include "timing/variation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"

namespace sndr::timing {

using netlist::NodeKind;

double NetVariationDetail::worst_sigma() const {
  double w = 0.0;
  for (const double s : load_sigma) w = std::max(w, s);
  return w;
}

double NetVariationDetail::worst_xtalk() const {
  double w = 0.0;
  for (const double x : load_xtalk) w = std::max(w, x);
  return w;
}

double net_driver_res(const netlist::ClockTree& tree,
                      const tech::Technology& tech, const netlist::Net& net,
                      const AnalysisOptions& options) {
  const netlist::TreeNode& drv = tree.node(net.driver);
  return drv.kind == NodeKind::kSource ? options.source_drive_res
                                       : tech.buffers[drv.cell].drive_res;
}

namespace {

/// Elmore delay at each load of `par` for the given RC tree.
std::vector<double> load_elmore(const extract::RcTree& rc,
                                const std::vector<int>& load_rc_index,
                                double driver_res, double miller) {
  const std::vector<double> m1 = rc.elmore_delay(driver_res, miller);
  std::vector<double> out(load_rc_index.size(), 0.0);
  for (std::size_t i = 0; i < load_rc_index.size(); ++i) {
    out[i] = m1[load_rc_index[i]];
  }
  return out;
}

}  // namespace

NetVariationDetail net_variation(const extract::NetParasitics& par,
                                 const tech::Technology& tech,
                                 const tech::RoutingRule& rule,
                                 double driver_res) {
  const tech::MetalLayer& layer = tech.clock_layer;
  const double width = layer.min_width * rule.width_mult;
  const double d_w = layer.sigma_width;        // um, 1 sigma.
  const double d_t = layer.sigma_thickness;    // fraction, 1 sigma.

  const std::vector<double> base =
      load_elmore(par.rc, par.load_rc_index, driver_res, 1.0);

  // Width +1 sigma: R scales W/(W+dW); area cap grows by c_area*dW per um.
  extract::RcTree width_rc = par.rc;
  for (int i = 0; i < width_rc.size(); ++i) {
    extract::RcNode& n = width_rc.node(i);
    if (n.wire_len <= 0.0) continue;
    n.res *= width / (width + d_w);
    n.cap_gnd += layer.c_area * d_w * n.wire_len;
  }
  const std::vector<double> w_pert =
      load_elmore(width_rc, par.load_rc_index, driver_res, 1.0);

  // Thickness +1 sigma: R scales 1/(1+dT); coupling scales (1+dT).
  extract::RcTree thick_rc = par.rc;
  for (int i = 0; i < thick_rc.size(); ++i) {
    extract::RcNode& n = thick_rc.node(i);
    if (n.wire_len <= 0.0) continue;
    n.res /= 1.0 + d_t;
    n.cap_cpl *= 1.0 + d_t;
  }
  const std::vector<double> t_pert =
      load_elmore(thick_rc, par.load_rc_index, driver_res, 1.0);

  // Crosstalk: extra Miller charge on coupling caps, weighted by the
  // probability that the neighbor actually switches against us.
  const std::vector<double> x_pert = load_elmore(
      par.rc, par.load_rc_index, driver_res, tech.miller_delay);

  NetVariationDetail out;
  out.load_sigma.resize(base.size());
  out.load_xtalk.resize(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double dw = w_pert[i] - base[i];
    const double dt = t_pert[i] - base[i];
    out.load_sigma[i] = std::sqrt(dw * dw + dt * dt);
    out.load_xtalk[i] =
        tech.aggressor_activity * std::max(0.0, x_pert[i] - base[i]);
  }
  return out;
}

VariationReport analyze_variation(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const std::vector<extract::NetParasitics>& parasitics,
    const std::vector<int>& rule_of_net, const AnalysisOptions& options) {
  if (parasitics.size() != static_cast<std::size_t>(nets.size()) ||
      rule_of_net.size() != static_cast<std::size_t>(nets.size())) {
    throw std::invalid_argument(
        "analyze_variation: per-net input size mismatch");
  }

  VariationReport rep;
  rep.net_sigma.assign(nets.size(), 0.0);
  rep.net_xtalk.assign(nets.size(), 0.0);
  rep.sink_sigma.assign(design.sinks.size(), 0.0);
  rep.sink_xtalk.assign(design.sinks.size(), 0.0);
  rep.sink_uncertainty.assign(design.sinks.size(), 0.0);

  // Accumulators at driver inputs (tree node id -> path variance / xtalk).
  std::vector<double> node_var(tree.size(), 0.0);
  std::vector<double> node_xtalk(tree.size(), 0.0);

  // The heavy part — three perturbed RC solves per net — is independent
  // per net; compute details into per-net slots in parallel. The cheap
  // root-to-sink accumulation below stays sequential (it walks nets in
  // root-first order), so the result is identical at any thread count.
  std::vector<NetVariationDetail> details(nets.size());
  common::parallel_for(nets.size(), /*grain=*/8, [&](std::int64_t i) {
    const netlist::Net& net = nets.nets[static_cast<std::size_t>(i)];
    details[i] = net_variation(parasitics[net.id], tech,
                               tech.rules[rule_of_net[net.id]],
                               net_driver_res(tree, tech, net, options));
  });

  for (const netlist::Net& net : nets.nets) {
    const NetVariationDetail& detail = details[net.id];
    rep.net_sigma[net.id] = detail.worst_sigma();
    rep.net_xtalk[net.id] = detail.worst_xtalk();

    const double up_var = node_var[net.driver];
    const double up_xtalk = node_xtalk[net.driver];
    for (std::size_t li = 0; li < net.loads.size(); ++li) {
      const int load = net.loads[li];
      node_var[load] = up_var + detail.load_sigma[li] * detail.load_sigma[li];
      node_xtalk[load] = up_xtalk + detail.load_xtalk[li];
      const netlist::TreeNode& ln = tree.node(load);
      if (ln.kind == NodeKind::kSink) {
        const double sigma = std::sqrt(node_var[load]);
        rep.sink_sigma[ln.sink] = sigma;
        rep.sink_xtalk[ln.sink] = node_xtalk[load];
        rep.sink_uncertainty[ln.sink] = 3.0 * sigma + node_xtalk[load];
        rep.max_uncertainty =
            std::max(rep.max_uncertainty, rep.sink_uncertainty[ln.sink]);
      }
    }
  }
  return rep;
}

}  // namespace sndr::timing
