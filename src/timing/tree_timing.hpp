// Full clock-tree timing analysis: per-sink insertion delay (latency), skew,
// and transition times at every buffer input and sink.
#pragma once

#include <limits>
#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"

namespace sndr::timing {

struct AnalysisOptions {
  double source_drive_res = 100.0;        ///< ohm, clock source driver.
  double source_slew = 40 * units::ps;    ///< transition at the source pin.
  bool use_d2m = true;                    ///< D2M latency (else Elmore).
  /// Miller factor on coupling caps for nominal timing; worst-case crosstalk
  /// is handled separately by the variation analysis.
  double timing_miller = 1.0;
};

struct TimingReport {
  // Indexed by design sink id.
  std::vector<double> sink_arrival;  ///< s, clock latency to each sink.
  std::vector<double> sink_slew;     ///< s.

  // Indexed by clock tree node id (0 where not applicable).
  std::vector<double> node_arrival;
  std::vector<double> node_slew;

  // Indexed by net id.
  std::vector<double> net_max_load_slew;  ///< worst slew among net loads.
  std::vector<double> net_driver_load;    ///< F, cap seen by the net driver.

  double min_latency = 0.0;
  double max_latency = 0.0;
  double max_slew = 0.0;

  double skew() const { return max_latency - min_latency; }

  int slew_violations(double max_allowed) const {
    int n = 0;
    for (const double s : net_max_load_slew) {
      if (s > max_allowed) ++n;
    }
    return n;
  }
};

/// Times the whole tree from pre-extracted parasitics (`parasitics[i]` for
/// net i). Nets must be in build_nets order (root-first).
TimingReport analyze(const netlist::ClockTree& tree,
                     const netlist::Design& design,
                     const tech::Technology& tech,
                     const netlist::NetList& nets,
                     const std::vector<extract::NetParasitics>& parasitics,
                     const AnalysisOptions& options = {});

}  // namespace sndr::timing
