#include "timing/delta_timing.hpp"

#include <algorithm>
#include <stdexcept>

#include "timing/delay_metrics.hpp"
#include "timing/variation.hpp"

namespace sndr::timing {

using netlist::NodeKind;

DeltaTimer::DeltaTimer(const netlist::ClockTree& tree,
                       const netlist::Design& design,
                       const tech::Technology& tech,
                       const netlist::NetList& nets,
                       const AnalysisOptions& options)
    : tree_(&tree), tech_(&tech), nets_(&nets), options_(options) {
  const int n_nets = nets.size();
  child_nets_.assign(n_nets, {});
  loads_off_.assign(static_cast<std::size_t>(n_nets) + 1, 0);
  for (const netlist::Net& net : nets.nets) {
    loads_off_[net.id + 1] =
        loads_off_[net.id] + net.loads.size();
    for (const int load : net.loads) {
      const int child = nets.net_driven[load];
      if (child >= 0) child_nets_[net.id].push_back(child);
    }
  }
  wire_delay_.assign(loads_off_[n_nets], 0.0);
  step_slew_.assign(loads_off_[n_nets], 0.0);
  wd_worst_.assign(n_nets, 0.0);
  node_arrival_.assign(tree.size(), 0.0);
  node_slew_.assign(tree.size(), 0.0);
  sink_arrival_.assign(design.sinks.size(), 0.0);
  sink_slew_.assign(design.sinks.size(), 0.0);
}

void DeltaTimer::rebuild(
    const std::vector<extract::NetParasitics>& parasitics,
    const TimingReport& report) {
  if (parasitics.size() != static_cast<std::size_t>(nets_->size())) {
    throw std::invalid_argument(
        "DeltaTimer::rebuild: parasitics size mismatch");
  }
  node_arrival_ = report.node_arrival;
  node_slew_ = report.node_slew;
  sink_arrival_ = report.sink_arrival;
  sink_slew_ = report.sink_slew;

  for (const netlist::Net& net : nets_->nets) {
    const extract::NetParasitics& par = parasitics[net.id];
    const double driver_res = net_driver_res(*tree_, *tech_, net, options_);
    par.rc.moments(driver_res, options_.timing_miller, moments_);
    const std::size_t off = loads_off_[net.id];
    for (std::size_t li = 0; li < net.loads.size(); ++li) {
      const int rc = par.load_rc_index[li];
      wire_delay_[off + li] = options_.use_d2m
                                  ? delay_d2m(moments_.m1[rc], moments_.m2[rc])
                                  : delay_elmore(moments_.m1[rc]);
      step_slew_[off + li] = step_slew(moments_.m1[rc], moments_.m2[rc]);
    }
    // Worst per-net wire delay is always D2M — it replays the historic
    // AssignmentState::rebuild loop, which ignored use_d2m.
    double worst = 0.0;
    for (const int rc : par.load_rc_index) {
      worst = std::max(worst, delay_d2m(moments_.m1[rc], moments_.m2[rc]));
    }
    wd_worst_[net.id] = worst;
  }
  subtree_.clear();
  synced_ = true;
}

void DeltaTimer::apply_net_change(int net_id,
                                  const extract::NetParasitics& par) {
  if (!synced_) {
    throw std::logic_error("DeltaTimer::apply_net_change before rebuild");
  }
  const netlist::Net& changed = nets_->nets[static_cast<std::size_t>(net_id)];
  const double driver_res =
      net_driver_res(*tree_, *tech_, changed, options_);
  par.rc.moments(driver_res, options_.timing_miller, moments_);
  const std::size_t off = loads_off_[net_id];
  for (std::size_t li = 0; li < changed.loads.size(); ++li) {
    const int rc = par.load_rc_index[li];
    wire_delay_[off + li] = options_.use_d2m
                                ? delay_d2m(moments_.m1[rc], moments_.m2[rc])
                                : delay_elmore(moments_.m1[rc]);
    step_slew_[off + li] = step_slew(moments_.m1[rc], moments_.m2[rc]);
  }
  double worst = 0.0;
  for (const int rc : par.load_rc_index) {
    worst = std::max(worst, delay_d2m(moments_.m1[rc], moments_.m2[rc]));
  }
  wd_worst_[net_id] = worst;

  // Collect the descendant net subtree, then process in ascending id order:
  // net ids are depth-monotonic, so ascending order visits parents first and
  // every driver's input arrival/slew is final before its net is replayed.
  subtree_.clear();
  subtree_.push_back(net_id);
  for (std::size_t head = 0; head < subtree_.size(); ++head) {
    for (const int child : child_nets_[subtree_[head]]) {
      subtree_.push_back(child);
    }
  }
  std::sort(subtree_.begin(), subtree_.end());
  for (const int id : subtree_) {
    propagate_net(nets_->nets[static_cast<std::size_t>(id)]);
  }
}

void DeltaTimer::propagate_net(const netlist::Net& net) {
  const netlist::TreeNode& drv = tree_->node(net.driver);
  double out_arrival = 0.0;
  double out_slew = 0.0;
  if (drv.kind == NodeKind::kSource) {
    out_arrival = 0.0;
    out_slew = options_.source_slew;
  } else {
    const tech::BufferCell& cell = tech_->buffers[drv.cell];
    const double in_arrival = node_arrival_[net.driver];
    const double in_slew = node_slew_[net.driver];
    out_arrival = in_arrival + cell.intrinsic_delay +
                  cell.slew_sensitivity * in_slew;
    out_slew = 0.4 * cell.intrinsic_delay;  // regenerated edge.
  }

  const std::size_t off = loads_off_[net.id];
  for (std::size_t li = 0; li < net.loads.size(); ++li) {
    const int load = net.loads[li];
    const double arrival = out_arrival + wire_delay_[off + li];
    const double slew = peri_slew(out_slew, step_slew_[off + li]);
    node_arrival_[load] = arrival;
    node_slew_[load] = slew;
    const netlist::TreeNode& ln = tree_->node(load);
    if (ln.kind == NodeKind::kSink) {
      sink_arrival_[ln.sink] = arrival;
      sink_slew_[ln.sink] = slew;
    }
  }
}

}  // namespace sndr::timing
