// Delay-variation analysis: process-induced sigma and crosstalk-induced
// delta-delay of clock paths.
//
// This is the analysis that justifies non-default rules in the first place:
//
//  * Process: wire width varies by sigma_width (absolute) and thickness by
//    sigma_thickness (relative). Narrow wires have proportionally larger
//    resistance variation, so *wider* rules shrink the delay sigma.
//  * Crosstalk: a toggling neighbor injects up to (miller_delay - 1) extra
//    coupling charge; *wider spacing* shrinks the coupling and with it the
//    delta-delay window.
//
// Per-load responses are computed by re-evaluating Elmore on a perturbed
// copy of the net's RC tree (the provenance fields of RcNode make the
// perturbation exact without re-extraction). Path uncertainty accumulates
// RSS for the random process part and linearly for the crosstalk bound:
//     U(sink) = 3 * sqrt(sum sigma_net^2) + sum xtalk_net.
#pragma once

#include <vector>

#include "timing/tree_timing.hpp"

namespace sndr::timing {

/// Per-load variation responses of one net.
struct NetVariationDetail {
  std::vector<double> load_sigma;  ///< s, 1-sigma process delay variation.
  std::vector<double> load_xtalk;  ///< s, expected crosstalk delta-delay.

  double worst_sigma() const;
  double worst_xtalk() const;
};

/// Reusable buffers for the scratch-based net_variation overload: one
/// perturbed copy of the node array (reused for both process corners), the
/// Elmore kernel outputs, and the per-load delay responses. Warm buffers
/// make repeated per-net variation analysis allocation-free.
struct VariationScratch {
  std::vector<extract::RcNode> perturbed;
  std::vector<double> down;    ///< kernel scratch.
  std::vector<double> m1;      ///< kernel scratch.
  std::vector<double> base;    ///< per-load nominal Elmore delay.
  std::vector<double> w_pert;  ///< per-load delay, width +1 sigma.
  std::vector<double> t_pert;  ///< per-load delay, thickness +1 sigma.
  std::vector<double> x_pert;  ///< per-load delay, aggressor Miller charge.
};

/// Variation of one extracted net routed with `rule`, given its driver's
/// linearized resistance.
NetVariationDetail net_variation(const extract::NetParasitics& par,
                                 const tech::Technology& tech,
                                 const tech::RoutingRule& rule,
                                 double driver_res);

/// Scratch-based overload: identical arithmetic (bit-identical results),
/// writing into `out` and reusing `scratch` instead of copying the RC tree
/// and allocating result vectors on every call.
void net_variation(const extract::NetParasitics& par,
                   const tech::Technology& tech,
                   const tech::RoutingRule& rule, double driver_res,
                   VariationScratch& scratch, NetVariationDetail& out);

struct VariationReport {
  // Per net id (worst load of the net).
  std::vector<double> net_sigma;
  std::vector<double> net_xtalk;

  // Per design sink id, accumulated along the source->sink path.
  std::vector<double> sink_sigma;        ///< RSS of per-net sigmas.
  std::vector<double> sink_xtalk;        ///< linear sum of xtalk bounds.
  std::vector<double> sink_uncertainty;  ///< 3*sigma + xtalk.

  double max_uncertainty = 0.0;

  int violations(double max_allowed) const {
    int n = 0;
    for (const double u : sink_uncertainty) {
      if (u > max_allowed) ++n;
    }
    return n;
  }
};

/// Whole-tree variation analysis. `rule_of_net[i]` indexes tech.rules.
VariationReport analyze_variation(
    const netlist::ClockTree& tree, const netlist::Design& design,
    const tech::Technology& tech, const netlist::NetList& nets,
    const std::vector<extract::NetParasitics>& parasitics,
    const std::vector<int>& rule_of_net, const AnalysisOptions& options = {});

/// Linearized output resistance of the net's driver (source or buffer).
double net_driver_res(const netlist::ClockTree& tree,
                      const tech::Technology& tech, const netlist::Net& net,
                      const AnalysisOptions& options);

}  // namespace sndr::timing
