// Incremental (delta) timing for single-net parasitic changes.
//
// timing::analyze walks every net of the tree; a rule-assignment search
// changes ONE net per move, and the buffer model localizes the blast
// radius: a buffer regenerates its output edge (out_slew depends only on
// the cell), so a parasitic change on net N perturbs N's own loads and —
// through arrival and first-level input slew — the nets downstream of N.
// Everything outside N's sink subtree is untouched.
//
// DeltaTimer exploits that: it caches, per net, the per-load wire delay and
// step slew the analyze recurrence would compute, plus the node arrival /
// slew arrays themselves. apply_net_change() re-solves the moments of the
// changed net only (O(pieces)) and then REPLAYS analyze's per-net formulas
// over the descendant subtree (O(subtree fanout)) — absolute values, never
// accumulated deltas, in analyze's exact floating-point op order — so the
// maintained arrays stay BITWISE identical to a fresh analyze() of the
// current assignment. rebuild() is the reference resync point; callers
// re-run it at configurable intervals and (in debug builds) assert the
// bitwise agreement. tests/delta_timing_test.cpp pins the contract.
#pragma once

#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "timing/tree_timing.hpp"

namespace sndr::timing {

class DeltaTimer {
 public:
  DeltaTimer(const netlist::ClockTree& tree, const netlist::Design& design,
             const tech::Technology& tech, const netlist::NetList& nets,
             const AnalysisOptions& options);

  /// Full resync from a whole-tree analysis of the current assignment:
  /// copies the report's arrival/slew arrays and re-derives every net's
  /// per-load wire delay / step slew from `parasitics` (which must be what
  /// the report was computed from). O(tree) — the reference path.
  void rebuild(const std::vector<extract::NetParasitics>& parasitics,
               const TimingReport& report);

  /// Exact incremental update after net `net_id`'s parasitics changed to
  /// `par` (e.g. a rule re-materialization). Re-solves that net's moments,
  /// refreshes its per-load caches, and replays the analyze recurrence over
  /// the net and its descendant nets, parents first. After this call the
  /// arrays below are bitwise equal to a fresh analyze() with `par`
  /// substituted. Requires a prior rebuild().
  void apply_net_change(int net_id, const extract::NetParasitics& par);

  bool synced() const { return synced_; }

  /// Maintained mirrors of the TimingReport arrays (same indexing).
  const std::vector<double>& sink_arrival() const { return sink_arrival_; }
  const std::vector<double>& sink_slew() const { return sink_slew_; }
  const std::vector<double>& node_arrival() const { return node_arrival_; }
  const std::vector<double>& node_slew() const { return node_slew_; }

  /// Worst D2M wire delay over the net's loads under its current
  /// parasitics — the exact value AssignmentState::rebuild() historically
  /// derived per net from a fresh moment solve (D2M regardless of
  /// AnalysisOptions::use_d2m, matching that loop).
  double net_wire_delay_worst(int net_id) const { return wd_worst_[net_id]; }

  /// Net ids updated by the last apply_net_change (ascending: the changed
  /// net and its descendants). Empty before the first apply.
  const std::vector<int>& last_updated_nets() const { return subtree_; }

 private:
  /// Replays analyze's per-net body from the cached per-load delay/slew
  /// and the maintained upstream arrival/slew.
  void propagate_net(const netlist::Net& net);

  const netlist::ClockTree* tree_;
  const tech::Technology* tech_;
  const netlist::NetList* nets_;
  AnalysisOptions options_;

  /// Nets driven by each net's buffer loads (static topology).
  std::vector<std::vector<int>> child_nets_;

  /// Flattened per-load caches: loads_off_[net] indexes into the arrays.
  std::vector<std::size_t> loads_off_;
  std::vector<double> wire_delay_;  ///< per load, D2M or Elmore per options.
  std::vector<double> step_slew_;   ///< per load, pre-PERI wire slew.
  std::vector<double> wd_worst_;    ///< per net, worst D2M load delay.

  std::vector<double> node_arrival_;
  std::vector<double> node_slew_;
  std::vector<double> sink_arrival_;
  std::vector<double> sink_slew_;

  extract::RcMoments moments_;  ///< warm scratch for apply_net_change.
  std::vector<int> subtree_;    ///< scratch: nets touched by the last apply.
  bool synced_ = false;
};

}  // namespace sndr::timing
