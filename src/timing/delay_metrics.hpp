// Closed-form interconnect delay and slew metrics on RC-tree moments.
//
// The library times clock nets with moment-based metrics: Elmore (m1) for
// sensitivity-friendly pessimistic delay, D2M for calibrated latency, and a
// two-moment Gaussian slew metric combined through PERI across stages.
// For a single-pole response all three are exact, and on RC trees they
// preserve the monotonicities the NDR optimizer depends on.
#pragma once

#include <cmath>

namespace sndr::timing {

// Moment conventions: m1 is the Elmore delay (first time moment of the
// impulse response); m2 here is the *circuit* second moment
//   m2 = sum_k R_shared(i,k) * C_k * m1_k
// (the s^2 coefficient magnitude of the transfer function), which is what
// RcTree::second_moment computes. The second *time* moment of the impulse
// response is 2*m2; for a single pole with time constant tau: m1 = tau,
// m2 = tau^2.

/// 50% delay from the first moment (classic Elmore, pessimistic).
inline double delay_elmore(double m1) { return m1; }

/// D2M metric of Alpert et al.: ln2 * m1^2 / sqrt(m2). Exact for a single
/// pole (ln2 * tau); near-exact for typical on-chip RC trees; never exceeds
/// Elmore in practice.
inline double delay_d2m(double m1, double m2) {
  if (m2 <= 0.0) return 0.0;
  return 0.6931471805599453 * m1 * m1 / std::sqrt(m2);
}

/// 10-90% transition time of the step response from two moments: the
/// impulse response is matched to a distribution with variance
/// (2*m2 - m1^2); ln9 * sqrt(variance) is exact for one pole (ln9 * tau).
inline double step_slew(double m1, double m2) {
  const double var = 2.0 * m2 - m1 * m1;
  return var <= 0.0 ? 0.0 : 2.197224577336220 * std::sqrt(var);
}

/// PERI (Kashyap et al.): combine the input transition with the stage's own
/// step-response transition.
inline double peri_slew(double slew_in, double slew_step) {
  return std::sqrt(slew_in * slew_in + slew_step * slew_step);
}

}  // namespace sndr::timing
