#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <ostream>

namespace sndr::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};

struct SinkState {
  mutable std::mutex mutex;
  std::vector<SpanRecord> records;
  std::int64_t dropped = 0;
};

SinkState& sink_state() {
  static SinkState* s = new SinkState();  // leaked: thread-exit safe.
  return *s;
}

std::atomic<std::int32_t> g_next_tid{0};

std::int32_t local_tid() {
  thread_local std::int32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::int32_t t_depth = 0;

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t trace_now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point base = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              base)
      .count();
}

TraceSink& TraceSink::instance() {
  static TraceSink* inst = new TraceSink();  // leaked.
  return *inst;
}

void TraceSink::append(const SpanRecord& r) {
  SinkState& st = sink_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  if (st.records.size() >= kMaxRecords) {
    ++st.dropped;
    return;
  }
  st.records.push_back(r);
}

std::vector<SpanRecord> TraceSink::records() const {
  SinkState& st = sink_state();
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    out = st.records;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::vector<TraceSink::SpanAggregate> TraceSink::aggregate() const {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& r : records()) {
    SpanAggregate& agg = by_name[r.name];
    agg.name = r.name;
    ++agg.count;
    agg.total_s += static_cast<double>(r.dur_ns) * 1e-9;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::int64_t TraceSink::dropped() const {
  SinkState& st = sink_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.dropped;
}

void TraceSink::reset() {
  SinkState& st = sink_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.records.clear();
  st.dropped = 0;
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  const std::vector<SpanRecord> recs = records();
  const auto old_precision = os.precision(15);
  os << "[\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const SpanRecord& r = recs[i];
    os << "{\"name\":\"" << r.name << "\",\"cat\":\"sndr\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(r.start_ns) * 1e-3
       << ",\"dur\":" << static_cast<double>(r.dur_ns) * 1e-3
       << ",\"pid\":1,\"tid\":" << r.tid << "}"
       << (i + 1 < recs.size() ? ",\n" : "\n");
  }
  os << "]\n";
  os.precision(old_precision);
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!tracing_enabled()) return;
  active_ = true;
  ++t_depth;
  start_ns_ = trace_now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::int64_t end_ns = trace_now_ns();
  const std::int32_t depth = --t_depth;
  TraceSink::instance().append(
      {name_, start_ns_, end_ns - start_ns_, depth, local_tid()});
}

}  // namespace sndr::obs
