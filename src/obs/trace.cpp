#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <ostream>

#include "obs/scope.hpp"

namespace sndr::obs {

namespace {

std::atomic<bool> g_tracing_enabled{true};

std::atomic<std::int32_t> g_next_tid{0};

std::int32_t local_tid() {
  thread_local std::int32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Nesting depth is a per-thread property independent of the scope the
// span records into.
thread_local std::int32_t t_depth = 0;

}  // namespace

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) {
  g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::int64_t trace_now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point base = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              base)
      .count();
}

TraceSink& TraceSink::instance() { return ObsScope::current().trace(); }

void TraceSink::append(const SpanRecord& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= kMaxRecords) {
    ++dropped_;
    return;
  }
  records_.push_back(r);
}

std::vector<SpanRecord> TraceSink::records() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = records_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::vector<TraceSink::SpanAggregate> TraceSink::aggregate() const {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& r : records()) {
    SpanAggregate& agg = by_name[r.name];
    agg.name = r.name;
    ++agg.count;
    agg.total_s += static_cast<double>(r.dur_ns) * 1e-9;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::int64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceSink::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  dropped_ = 0;
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  const std::vector<SpanRecord> recs = records();
  const auto old_precision = os.precision(15);
  os << "[\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const SpanRecord& r = recs[i];
    os << "{\"name\":\"" << r.name << "\",\"cat\":\"sndr\",\"ph\":\"X\""
       << ",\"ts\":" << static_cast<double>(r.start_ns) * 1e-3
       << ",\"dur\":" << static_cast<double>(r.dur_ns) * 1e-3
       << ",\"pid\":1,\"tid\":" << r.tid << "}"
       << (i + 1 < recs.size() ? ",\n" : "\n");
  }
  os << "]\n";
  os.precision(old_precision);
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!tracing_enabled()) return;
  sink_ = &TraceSink::instance();
  ++t_depth;
  start_ns_ = trace_now_ns();
}

TraceSpan::~TraceSpan() {
  if (sink_ == nullptr) return;
  const std::int64_t end_ns = trace_now_ns();
  const std::int32_t depth = --t_depth;
  sink_->append({name_, start_ns_, end_ns - start_ns_, depth, local_tid()});
}

}  // namespace sndr::obs
