// Observation scopes: a MetricsRegistry + TraceSink pair with a
// thread-local "current scope" binding.
//
// Historically both were process-global singletons; a multi-session
// process (flow::Session) needs each run's observations isolated. The
// scheme that keeps every existing SNDR_METRIC_* / SNDR_TRACE_SPAN call
// site compiling (and the disabled path at one load + branch):
//
//   * Metric *names* register in one process-global name table, so the
//     per-call-site `static const int id` the macros cache stays valid
//     against any registry instance (ids are name-table indices, values
//     live per instance).
//   * `MetricsRegistry::instance()` / `TraceSink::instance()` resolve to
//     the *current scope*: a thread-local pointer, defaulting to the
//     process-wide default scope — unscoped code behaves exactly as
//     before.
//   * `ScopeBinding` (RAII) binds a scope to the current thread;
//     flow::Flow binds its Session's scope for the run. The thread pool
//     captures the caller's scope per job and rebinds it on every worker
//     chunk, so parallel loops observe into the session that issued them.
//
// Two sessions bound to two scopes on two threads therefore produce fully
// disjoint snapshots (tests/flow_test.cpp pins this under TSan).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::obs {

class ObsScope {
 public:
  ObsScope() = default;
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  /// The process-wide scope unscoped code observes into (leaked; safe at
  /// any point of thread/static destruction).
  static ObsScope& default_scope();

  /// The scope bound to the current thread (default_scope when none).
  static ObsScope& current();

 private:
  MetricsRegistry metrics_;
  TraceSink trace_;
};

/// RAII binding of `scope` to the current thread; restores the previous
/// binding on destruction. Bindings nest.
class ScopeBinding {
 public:
  explicit ScopeBinding(ObsScope& scope);
  ~ScopeBinding();
  ScopeBinding(const ScopeBinding&) = delete;
  ScopeBinding& operator=(const ScopeBinding&) = delete;

 private:
  ObsScope* prev_;
};

}  // namespace sndr::obs
