// Hierarchical trace spans over a monotonic clock.
//
// SNDR_TRACE_SPAN("stage") opens an RAII span: construction notes the
// steady-clock time and nesting depth, destruction appends one SpanRecord
// to the current scope's TraceSink (obs/scope.hpp; the sink is captured at
// construction so a span never splits across scopes). Spans are
// *stage-grained* by convention (extract_all, evaluate, anneal,
// predictor_train...) — never per-net or per-RC-piece — so a full CLI run
// produces hundreds of records, not millions; a fixed cap (with a drop
// counter) bounds memory regardless.
//
// Thread ids are obs-local: the first thread to trace is tid 0, the next
// tid 1, ... (pool workers pick up stable ids the first time they trace).
// Disabled mode (set_tracing_enabled(false)) reduces the macro to one
// relaxed atomic load — no clock read, no lock, no allocation.
//
// Exports: TraceSink::aggregate() feeds the per-stage span table of the
// run manifest (manifest.hpp); write_chrome_trace() emits the JSON that
// chrome://tracing / Perfetto load directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace sndr::obs {

/// Global tracing switch (default: on).
bool tracing_enabled();
void set_tracing_enabled(bool on);

struct SpanRecord {
  const char* name = nullptr;  ///< static string (macro passes literals).
  std::int64_t start_ns = 0;   ///< steady clock, relative to process base.
  std::int64_t dur_ns = 0;
  std::int32_t depth = 0;  ///< nesting level on the recording thread.
  std::int32_t tid = 0;    ///< obs-local thread id.
};

class TraceSink {
 public:
  /// Records kept before further spans are counted as dropped.
  static constexpr std::size_t kMaxRecords = 1u << 18;

  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// The current scope's sink (ObsScope::current().trace()); the
  /// process-wide default when no scope is bound to this thread.
  static TraceSink& instance();

  /// All finished spans, ordered by (start_ns, tid).
  std::vector<SpanRecord> records() const;

  struct SpanAggregate {
    std::string name;
    std::int64_t count = 0;
    double total_s = 0.0;  ///< sum of durations (nested spans overlap).
  };
  /// Per-name rollup, name-sorted — the manifest's span table.
  std::vector<SpanAggregate> aggregate() const;

  std::int64_t dropped() const;
  void reset();

  /// Chrome-trace JSON (chrome://tracing, Perfetto): one complete ("ph":
  /// "X") event per span, timestamps in microseconds.
  void write_chrome_trace(std::ostream& os) const;

  void append(const SpanRecord& r);  ///< TraceSpan internal use.

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::int64_t dropped_ = 0;
};

/// RAII span; prefer the SNDR_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  TraceSink* sink_ = nullptr;  ///< captured at construction.
  std::int64_t start_ns_ = 0;
};

/// Nanoseconds since the process's trace epoch (first use).
std::int64_t trace_now_ns();

}  // namespace sndr::obs

#define SNDR_OBS_CONCAT2_TRACE(a, b) a##b
#define SNDR_OBS_CONCAT_TRACE(a, b) SNDR_OBS_CONCAT2_TRACE(a, b)
#define SNDR_TRACE_SPAN(name) \
  ::sndr::obs::TraceSpan SNDR_OBS_CONCAT_TRACE(sndr_trace_span_, __LINE__)(name)
