#include "obs/scope.hpp"

namespace sndr::obs {

namespace {

thread_local ObsScope* t_current_scope = nullptr;

}  // namespace

ObsScope& ObsScope::default_scope() {
  // Leaked: unscoped observations may arrive during static destruction
  // (thread-exit hooks, atexit I/O); the default scope must outlive all.
  static ObsScope* scope = new ObsScope();
  return *scope;
}

ObsScope& ObsScope::current() {
  ObsScope* s = t_current_scope;
  return s ? *s : default_scope();
}

ScopeBinding::ScopeBinding(ObsScope& scope) : prev_(t_current_scope) {
  t_current_scope = &scope;
}

ScopeBinding::~ScopeBinding() { t_current_scope = prev_; }

}  // namespace sndr::obs
