#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

namespace sndr::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Relaxed add for atomic<double> via CAS (portable across libstdc++
/// versions that predate floating fetch_add).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// One thread's lock-free slice of every metric. All slots are atomics so
/// snapshot() may read them from another thread; the owning thread is the
/// only writer (except reset(), which is test-only by contract).
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::int64_t>, kMaxCounters> counters{};
  struct Hist {
    std::atomic<std::int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::int64_t>, kHistBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists;

  void zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

  /// Folds this shard into `into` (relaxed adds; used on thread retire).
  void merge_into(Shard& into) const {
    for (int i = 0; i < kMaxCounters; ++i) {
      const std::int64_t v = counters[i].load(std::memory_order_relaxed);
      if (v != 0) into.counters[i].fetch_add(v, std::memory_order_relaxed);
    }
    for (int i = 0; i < kMaxHistograms; ++i) {
      const Hist& h = hists[i];
      const std::int64_t n = h.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      into.hists[i].count.fetch_add(n, std::memory_order_relaxed);
      atomic_add(into.hists[i].sum, h.sum.load(std::memory_order_relaxed));
      atomic_min(into.hists[i].min, h.min.load(std::memory_order_relaxed));
      atomic_max(into.hists[i].max, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistBuckets; ++b) {
        const std::int64_t c = h.buckets[b].load(std::memory_order_relaxed);
        if (c != 0) {
          into.hists[i].buckets[b].fetch_add(c, std::memory_order_relaxed);
        }
      }
    }
  }
};

namespace {

/// Registry internals live in one leaked block so thread-exit hooks can
/// run at any point of static destruction.
struct State {
  std::mutex mutex;  ///< registration, shard list, snapshot, reset.
  std::map<std::string, int> counter_ids;
  std::map<std::string, int> gauge_ids;
  std::map<std::string, int> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  std::array<std::atomic<double>, MetricsRegistry::kMaxGauges> gauges{};
  std::vector<MetricsRegistry::Shard*> live_shards;
  MetricsRegistry::Shard retired;  ///< totals of exited threads.
};

State& state() {
  static State* s = new State();  // leaked: see comment above.
  return *s;
}

int register_name(std::map<std::string, int>& ids,
                  std::vector<std::string>& names, const std::string& name,
                  int cap, const char* kind, const State& st) {
  // One name, one type: collisions across kinds are programming errors.
  const int in_others = (st.counter_ids.count(name) ? 1 : 0) +
                        (st.gauge_ids.count(name) ? 1 : 0) +
                        (st.hist_ids.count(name) ? 1 : 0);
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  if (in_others > 0) {
    throw std::logic_error("obs: metric '" + name +
                           "' already registered with another type");
  }
  if (static_cast<int>(names.size()) >= cap) {
    throw std::runtime_error(std::string("obs: too many ") + kind +
                             " metrics (cap reached)");
  }
  const int id = static_cast<int>(names.size());
  names.push_back(name);
  ids.emplace(name, id);
  return id;
}

}  // namespace

/// Thread-local shard holder: registers on first metric write from a
/// thread, merges into the retired accumulator on thread exit.
struct MetricsRegistry::ThreadShard {
  Shard* shard = nullptr;
  ThreadShard() {
    shard = new Shard();
    State& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.live_shards.push_back(shard);
  }
  ~ThreadShard() {
    State& st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    shard->merge_into(st.retired);
    st.live_shards.erase(
        std::find(st.live_shards.begin(), st.live_shards.end(), shard));
    delete shard;
  }
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* inst = new MetricsRegistry();  // leaked.
  return *inst;
}

MetricsRegistry::Shard* MetricsRegistry::local_shard() {
  thread_local ThreadShard tls;
  return tls.shard;
}

int MetricsRegistry::counter(const std::string& name) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return register_name(st.counter_ids, st.counter_names, name, kMaxCounters,
                       "counter", st);
}

int MetricsRegistry::gauge(const std::string& name) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return register_name(st.gauge_ids, st.gauge_names, name, kMaxGauges,
                       "gauge", st);
}

int MetricsRegistry::histogram(const std::string& name) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return register_name(st.hist_ids, st.hist_names, name, kMaxHistograms,
                       "histogram", st);
}

void MetricsRegistry::add(int counter_id, std::int64_t delta) {
  if (!metrics_enabled()) return;
  if (counter_id < 0 || counter_id >= kMaxCounters) return;
  local_shard()->counters[counter_id].fetch_add(delta,
                                                std::memory_order_relaxed);
}

void MetricsRegistry::set(int gauge_id, double value) {
  if (!metrics_enabled()) return;
  if (gauge_id < 0 || gauge_id >= kMaxGauges) return;
  state().gauges[gauge_id].store(value, std::memory_order_relaxed);
}

double MetricsRegistry::bucket_lower_bound(int i) {
  return std::ldexp(1.0, i - kBucketBias);
}

void MetricsRegistry::observe(int histogram_id, double value) {
  if (!metrics_enabled()) return;
  if (histogram_id < 0 || histogram_id >= kMaxHistograms) return;
  Shard::Hist& h = local_shard()->hists[histogram_id];
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(h.sum, value);
  atomic_min(h.min, value);
  atomic_max(h.max, value);
  int bucket = 0;  // zero / negative / underflow land in bucket 0.
  if (value > 0.0 && std::isfinite(value)) {
    bucket = std::clamp(std::ilogb(value) + kBucketBias, 0,
                        kHistBuckets - 1);
  }
  h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::Snapshot::counter(
    const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsRegistry::Snapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  Snapshot out;

  // std::map iteration gives name order directly.
  for (const auto& [name, id] : st.counter_ids) {
    std::int64_t total =
        st.retired.counters[id].load(std::memory_order_relaxed);
    for (const Shard* s : st.live_shards) {
      total += s->counters[id].load(std::memory_order_relaxed);
    }
    out.counters.emplace_back(name, total);
  }
  for (const auto& [name, id] : st.gauge_ids) {
    out.gauges.emplace_back(name,
                            st.gauges[id].load(std::memory_order_relaxed));
  }
  for (const auto& [name, id] : st.hist_ids) {
    HistogramSnapshot hs;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::array<std::int64_t, kHistBuckets> buckets{};
    const auto fold = [&](const Shard& s) {
      const Shard::Hist& h = s.hists[id];
      hs.count += h.count.load(std::memory_order_relaxed);
      hs.sum += h.sum.load(std::memory_order_relaxed);
      lo = std::min(lo, h.min.load(std::memory_order_relaxed));
      hi = std::max(hi, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistBuckets; ++b) {
        buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    };
    fold(st.retired);
    for (const Shard* s : st.live_shards) fold(*s);
    if (hs.count > 0) {
      hs.min = lo;
      hs.max = hi;
    }
    for (int b = 0; b < kHistBuckets; ++b) {
      if (buckets[b] != 0) {
        hs.buckets.emplace_back(bucket_lower_bound(b), buckets[b]);
      }
    }
    out.histograms.emplace_back(name, std::move(hs));
  }
  return out;
}

void MetricsRegistry::reset() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.retired.zero();
  for (Shard* s : st.live_shards) s->zero();
  for (auto& g : st.gauges) g.store(0.0, std::memory_order_relaxed);
}

}  // namespace sndr::obs
