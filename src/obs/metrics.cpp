#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "obs/scope.hpp"

namespace sndr::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Relaxed add for atomic<double> via CAS (portable across libstdc++
/// versions that predate floating fetch_add).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// One thread's lock-free slice of every metric in one registry. All slots
/// are atomics so snapshot() may read them from another thread; the owning
/// thread is the only writer (except reset(), which is test-only by
/// contract).
struct MetricsRegistry::Shard {
  std::array<std::atomic<std::int64_t>, kMaxCounters> counters{};
  struct Hist {
    std::atomic<std::int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::array<std::atomic<std::int64_t>, kHistBuckets> buckets{};
  };
  std::array<Hist, kMaxHistograms> hists;

  void zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : hists) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      h.max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

/// The process-global name table shared by every registry instance. Lives
/// in one leaked block so registration can happen at any point of static
/// construction/destruction.
struct NameTable {
  std::mutex mutex;
  std::map<std::string, int> counter_ids;
  std::map<std::string, int> gauge_ids;
  std::map<std::string, int> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
};

NameTable& names() {
  static NameTable* t = new NameTable();  // leaked: see comment above.
  return *t;
}

int register_name(std::map<std::string, int>& ids,
                  std::vector<std::string>& names_out,
                  const std::string& name, int cap, const char* kind,
                  const NameTable& table) {
  const auto it = ids.find(name);
  if (it != ids.end()) return it->second;
  // One name, one type: collisions across kinds are programming errors.
  const int in_others = (table.counter_ids.count(name) ? 1 : 0) +
                        (table.gauge_ids.count(name) ? 1 : 0) +
                        (table.hist_ids.count(name) ? 1 : 0);
  if (in_others > 0) {
    throw std::logic_error("obs: metric '" + name +
                           "' already registered with another type");
  }
  if (static_cast<int>(names_out.size()) >= cap) {
    throw std::runtime_error(std::string("obs: too many ") + kind +
                             " metrics (cap reached)");
  }
  const int id = static_cast<int>(names_out.size());
  names_out.push_back(name);
  ids.emplace(name, id);
  return id;
}

std::atomic<std::uint64_t> g_next_registry_uid{1};

/// One-entry per-thread cache of the last (registry, shard) pair this
/// thread wrote to. Validated by registry uid (uids are never reused), so
/// a stale entry for a destroyed registry can never be dereferenced. No
/// destructor: shards are registry-owned, thread exit needs no hook.
struct TlsShardCache {
  std::uint64_t uid = 0;
  MetricsRegistry::Shard* shard = nullptr;
};
thread_local TlsShardCache t_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  return ObsScope::current().metrics();
}

MetricsRegistry::Shard* MetricsRegistry::local_shard() {
  if (t_shard_cache.uid == uid_) return t_shard_cache.shard;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id tid = std::this_thread::get_id();
  Shard* shard = nullptr;
  for (const auto& [id, s] : shards_) {
    if (id == tid) {
      shard = s.get();
      break;
    }
  }
  if (shard == nullptr) {
    shards_.emplace_back(tid, std::make_unique<Shard>());
    shard = shards_.back().second.get();
  }
  t_shard_cache = {uid_, shard};
  return shard;
}

int MetricsRegistry::counter(const std::string& name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mutex);
  return register_name(t.counter_ids, t.counter_names, name, kMaxCounters,
                       "counter", t);
}

int MetricsRegistry::gauge(const std::string& name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mutex);
  return register_name(t.gauge_ids, t.gauge_names, name, kMaxGauges, "gauge",
                       t);
}

int MetricsRegistry::histogram(const std::string& name) {
  NameTable& t = names();
  std::lock_guard<std::mutex> lock(t.mutex);
  return register_name(t.hist_ids, t.hist_names, name, kMaxHistograms,
                       "histogram", t);
}

void MetricsRegistry::add(int counter_id, std::int64_t delta) {
  if (!metrics_enabled()) return;
  if (counter_id < 0 || counter_id >= kMaxCounters) return;
  local_shard()->counters[counter_id].fetch_add(delta,
                                                std::memory_order_relaxed);
}

void MetricsRegistry::set(int gauge_id, double value) {
  if (!metrics_enabled()) return;
  if (gauge_id < 0 || gauge_id >= kMaxGauges) return;
  gauges_[gauge_id].store(value, std::memory_order_relaxed);
}

double MetricsRegistry::bucket_lower_bound(int i) {
  return std::ldexp(1.0, i - kBucketBias);
}

void MetricsRegistry::observe(int histogram_id, double value) {
  if (!metrics_enabled()) return;
  if (histogram_id < 0 || histogram_id >= kMaxHistograms) return;
  Shard::Hist& h = local_shard()->hists[histogram_id];
  h.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(h.sum, value);
  // min/max: the owning thread is the only writer, plain RMW is safe.
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
  int bucket = 0;  // zero / negative / underflow land in bucket 0.
  if (value > 0.0 && std::isfinite(value)) {
    bucket = std::clamp(std::ilogb(value) + kBucketBias, 0,
                        kHistBuckets - 1);
  }
  h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::Snapshot::counter(
    const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsRegistry::Snapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

const MetricsRegistry::HistogramSnapshot* MetricsRegistry::Snapshot::histogram(
    const std::string& name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  NameTable& t = names();
  // Lock order everywhere: name table, then registry.
  std::lock_guard<std::mutex> names_lock(t.mutex);
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;

  // std::map iteration gives name order directly.
  for (const auto& [name, id] : t.counter_ids) {
    std::int64_t total = 0;
    for (const auto& [tid, s] : shards_) {
      total += s->counters[id].load(std::memory_order_relaxed);
    }
    out.counters.emplace_back(name, total);
  }
  for (const auto& [name, id] : t.gauge_ids) {
    out.gauges.emplace_back(name,
                            gauges_[id].load(std::memory_order_relaxed));
  }
  for (const auto& [name, id] : t.hist_ids) {
    HistogramSnapshot hs;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::array<std::int64_t, kHistBuckets> buckets{};
    for (const auto& [tid, s] : shards_) {
      const Shard::Hist& h = s->hists[id];
      hs.count += h.count.load(std::memory_order_relaxed);
      hs.sum += h.sum.load(std::memory_order_relaxed);
      lo = std::min(lo, h.min.load(std::memory_order_relaxed));
      hi = std::max(hi, h.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kHistBuckets; ++b) {
        buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (hs.count > 0) {
      hs.min = lo;
      hs.max = hi;
    }
    for (int b = 0; b < kHistBuckets; ++b) {
      if (buckets[b] != 0) {
        hs.buckets.emplace_back(bucket_lower_bound(b), buckets[b]);
      }
    }
    out.histograms.emplace_back(name, std::move(hs));
  }
  return out;
}

void MetricsRegistry::accumulate(const Snapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    add(counter(name), value);
  }
  for (const auto& [name, value] : snap.gauges) {
    set(gauge(name), value);
  }
  for (const auto& [name, hs] : snap.histograms) {
    if (hs.count == 0) continue;
    const int id = histogram(name);
    if (id < 0 || id >= kMaxHistograms) continue;
    Shard::Hist& h = local_shard()->hists[id];
    h.count.fetch_add(hs.count, std::memory_order_relaxed);
    atomic_add(h.sum, hs.sum);
    if (hs.min < h.min.load(std::memory_order_relaxed)) {
      h.min.store(hs.min, std::memory_order_relaxed);
    }
    if (hs.max > h.max.load(std::memory_order_relaxed)) {
      h.max.store(hs.max, std::memory_order_relaxed);
    }
    for (const auto& [lower, count] : hs.buckets) {
      // Snapshot buckets carry their exact power-of-two lower bound, so
      // the index recovers losslessly: i = ilogb(lower) + bias.
      const int b =
          std::clamp(std::ilogb(lower) + kBucketBias, 0, kHistBuckets - 1);
      h.buckets[b].fetch_add(count, std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [tid, s] : shards_) s->zero();
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
}

}  // namespace sndr::obs
