// Scoped metrics: typed counters, gauges, and histograms.
//
// A registry is the sink for every quantitative observation the library
// makes about itself (cache hits, nets extracted, anneal moves, pool
// jobs...). Registries are *instances* — one per ObsScope (obs/scope.hpp)
// — so concurrent sessions in one process observe into disjoint stores;
// `MetricsRegistry::instance()` resolves to the current scope's registry,
// which for unscoped code is the process-wide default. Design
// constraints, in order:
//
//   * Hot-path writes are lock-free: counter/histogram updates land in a
//     per-(thread, registry) shard (plain relaxed atomics the owning
//     thread never contends on); snapshot() merges the shards. Shards are
//     owned by the registry, so nothing is lost when a thread exits and
//     everything is freed when the registry (its scope / session) dies.
//   * Metric *names* live in one process-global name table shared by all
//     registries: the per-call-site `static const int id` the macros
//     cache is a name-table index, valid against any registry.
//   * Zero overhead when disabled: every instrumentation macro first
//     reads one atomic flag and touches nothing else — no clock, no
//     registration, no thread-local setup, no allocation
//     (tests/obs_test.cpp pins the no-allocation guarantee).
//   * Fixed capacity: metric slots are preallocated arrays, so shard
//     updates never race a container growth. Exceeding a capacity throws
//     at registration time (a programming error, not a runtime state).
//
// Naming convention (DESIGN.md §7): lowercase dotted paths, subsystem
// first — "extract.geometry.builds", "ndr.exact_cache.hits",
// "anneal.proposed", "pool.jobs". Hot loops that cannot afford even a
// relaxed atomic per event keep a local plain counter and flush the
// delta at a natural boundary (see AssignmentState::flush_metrics).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sndr::obs {

/// Global metrics switch (default: on). Disabling makes every macro and
/// registry write below a single relaxed load + branch.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// hits/total-style ratio that reports 0.0 instead of dividing by zero
/// (greedy models-mode flows legitimately make zero exact evals).
inline double safe_ratio(std::int64_t num, std::int64_t den) {
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

class MetricsRegistry {
 public:
  // Capacities are deliberate hard caps: shards are fixed arrays so the
  // lock-free write path never races a resize.
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 128;
  static constexpr int kMaxHistograms = 64;
  /// Power-of-two histogram buckets: bucket i spans [2^(i-kBucketBias),
  /// 2^(i+1-kBucketBias)); index 0 also absorbs zero/negative/underflow.
  static constexpr int kHistBuckets = 96;
  static constexpr int kBucketBias = 80;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The current scope's registry (ObsScope::current().metrics()); the
  /// process-wide default when no scope is bound to this thread.
  static MetricsRegistry& instance();

  /// Register-or-lookup by name in the process-global name table; returns
  /// a stable id valid for the write calls on *any* registry instance. A
  /// name is bound to one type — reusing it with another type throws.
  int counter(const std::string& name);
  int gauge(const std::string& name);
  int histogram(const std::string& name);

  void add(int counter_id, std::int64_t delta);
  void set(int gauge_id, double value);
  void observe(int histogram_id, double value);

  struct HistogramSnapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0.
    double max = 0.0;
    /// Sparse nonzero buckets as (lower bound, count), ascending.
    std::vector<std::pair<double, std::int64_t>> buckets;
  };

  /// A merged, name-sorted view of every registered metric.
  struct Snapshot {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /// Counter value by name (0 when absent) — convenient for tests.
    std::int64_t counter(const std::string& name) const;
    double gauge(const std::string& name) const;
    /// Histogram by name, or null when absent (tests asserting the
    /// per-job serve histograms / DSE reuse distributions).
    const HistogramSnapshot* histogram(const std::string& name) const;
  };
  Snapshot snapshot() const;

  /// Folds another registry's snapshot into this one: counters add,
  /// histograms merge (count/sum/min/max/buckets), gauges last-write-wins.
  /// This is how a server aggregates per-job scopes into one server-level
  /// registry — take each finished job's snapshot and accumulate it; the
  /// union is then visible through this registry's own snapshot().
  void accumulate(const Snapshot& snap);

  /// Zeroes every value in this registry (name registrations are global
  /// and survive). Testing / run isolation only; concurrent writers may
  /// leak observations into the new epoch.
  void reset();

  /// Inclusive lower bound of histogram bucket `i`.
  static double bucket_lower_bound(int i);

  // Implementation detail (defined in metrics.cpp); public only so the
  // thread-local shard cache can hold Shard pointers.
  struct Shard;

 private:
  Shard* local_shard();

  const std::uint64_t uid_;  ///< process-unique, never reused.
  mutable std::mutex mutex_;  ///< shard list, snapshot, reset.
  /// One shard per writing thread, owned here (freed with the registry).
  std::vector<std::pair<std::thread::id, std::unique_ptr<Shard>>> shards_;
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

}  // namespace sndr::obs

// Instrumentation macros. `name` must be a string literal (or otherwise
// live forever); the registry id resolves once per call site and is valid
// for every registry instance (global name table).
#define SNDR_OBS_CONCAT2(a, b) a##b
#define SNDR_OBS_CONCAT(a, b) SNDR_OBS_CONCAT2(a, b)

#define SNDR_COUNTER_ADD(name, delta)                                     \
  do {                                                                    \
    if (::sndr::obs::metrics_enabled()) {                                 \
      static const int SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__) =          \
          ::sndr::obs::MetricsRegistry::instance().counter(name);         \
      ::sndr::obs::MetricsRegistry::instance().add(                       \
          SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__), (delta));              \
    }                                                                     \
  } while (0)

#define SNDR_GAUGE_SET(name, value)                                       \
  do {                                                                    \
    if (::sndr::obs::metrics_enabled()) {                                 \
      static const int SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__) =          \
          ::sndr::obs::MetricsRegistry::instance().gauge(name);           \
      ::sndr::obs::MetricsRegistry::instance().set(                       \
          SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__), (value));              \
    }                                                                     \
  } while (0)

#define SNDR_HISTOGRAM_OBSERVE(name, value)                               \
  do {                                                                    \
    if (::sndr::obs::metrics_enabled()) {                                 \
      static const int SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__) =          \
          ::sndr::obs::MetricsRegistry::instance().histogram(name);       \
      ::sndr::obs::MetricsRegistry::instance().observe(                   \
          SNDR_OBS_CONCAT(sndr_obs_id_, __LINE__), (value));              \
    }                                                                     \
  } while (0)
