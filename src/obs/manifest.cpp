#include "obs/manifest.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "common/arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sndr::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trippable decimal form, locale-independent.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string detect_git_describe() {
  std::string out;
  if (FILE* p = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buf[128];
    while (std::fgets(buf, sizeof(buf), p) != nullptr) out += buf;
    pclose(p);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string detect_host() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] ? buf : "unknown";
}

std::string utc_now_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Derived rates that only make sense as counter ratios; emitted when the
/// underlying counters are registered.
void append_derived(const MetricsRegistry::Snapshot& snap,
                    std::vector<std::pair<std::string, double>>& out) {
  const auto has = [&](const char* name) {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return true;
    }
    return false;
  };
  if (has("ndr.exact_cache.hits") || has("ndr.exact_cache.misses")) {
    const std::int64_t hits = snap.counter("ndr.exact_cache.hits");
    const std::int64_t misses = snap.counter("ndr.exact_cache.misses");
    out.emplace_back("ndr.exact_cache.hit_rate",
                     safe_ratio(hits, hits + misses));
  }
  if (has("anneal.proposed")) {
    out.emplace_back("anneal.acceptance_rate",
                     safe_ratio(snap.counter("anneal.accepted"),
                                snap.counter("anneal.proposed")));
  }
  if (has("extract.geometry.builds") && has("ndr.evaluations")) {
    // Builds per evaluation: ~0 when the geometry cache is shared well.
    out.emplace_back("extract.geometry.builds_per_evaluation",
                     safe_ratio(snap.counter("extract.geometry.builds"),
                                snap.counter("ndr.evaluations")));
  }
}

}  // namespace

std::string git_describe() {
  // Cached: one popen per process, not one per manifest — a server writing
  // hundreds of per-job manifests must not fork for each.
  static const std::string cached = detect_git_describe();
  return cached;
}

std::string run_manifest_json(const RunInfo& info) {
  const MetricsRegistry::Snapshot snap =
      MetricsRegistry::instance().snapshot();
  const std::vector<TraceSink::SpanAggregate> spans =
      TraceSink::instance().aggregate();
  std::vector<std::pair<std::string, double>> derived;
  append_derived(snap, derived);

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kManifestSchema << "\",\n";
  os << "  \"tool\": \"" << json_escape(info.tool) << "\",\n";
  os << "  \"command\": \"" << json_escape(info.command) << "\",\n";
  os << "  \"args\": [";
  for (std::size_t i = 0; i < info.args.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(info.args[i]) << "\"";
  }
  os << "],\n";
  os << "  \"git\": \"" << json_escape(git_describe()) << "\",\n";
  os << "  \"host\": \"" << json_escape(detect_host()) << "\",\n";
  os << "  \"started_utc\": \"" << utc_now_iso8601() << "\",\n";
  os << "  \"wall_seconds\": " << fmt_double(info.wall_seconds) << ",\n";
  os << "  \"threads\": " << info.threads << ",\n";
  os << "  \"seed\": " << info.seed << ",\n";

  os << "  \"stages\": [";
  for (std::size_t i = 0; i < info.stages.size(); ++i) {
    const StageInfo& s = info.stages[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(s.name)
       << "\", \"seconds\": " << fmt_double(s.seconds) << ", \"status\": \""
       << json_escape(s.status) << "\"}";
  }
  os << (info.stages.empty() ? "" : "\n  ") << "],\n";

  os << "  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSink::SpanAggregate& s = spans[i];
    os << (i ? "," : "") << "\n    {\"name\": \"" << json_escape(s.name)
       << "\", \"count\": " << s.count
       << ", \"total_s\": " << fmt_double(s.total_s)
       << ", \"mean_s\": "
       << fmt_double(s.count > 0 ? s.total_s / static_cast<double>(s.count)
                                 : 0.0)
       << "}";
  }
  os << (spans.empty() ? "" : "\n  ") << "],\n";
  os << "  \"spans_dropped\": " << TraceSink::instance().dropped() << ",\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(snap.counters[i].first)
       << "\": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n";

  // Arena scratch high-water marks are tracked outside the registry (the
  // evaluation entry points fold per-thread arenas into process-wide CAS
  // maxima); splice them into the gauge map here, keeping the sorted order
  // the snapshot guarantees.
  std::vector<std::pair<std::string, double>> gauges = snap.gauges;
  gauges.emplace_back(
      "arena.capacity_bytes",
      static_cast<double>(common::arena_capacity_highwater()));
  gauges.emplace_back("arena.used_bytes",
                      static_cast<double>(common::arena_used_highwater()));
  // Peak RSS sits next to the arena marks so one manifest answers "how
  // much memory did this run actually take" (ru_maxrss is KiB on Linux).
  {
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      gauges.emplace_back("process.peak_rss_bytes",
                          static_cast<double>(ru.ru_maxrss) * 1024.0);
    }
  }
  std::sort(gauges.begin(), gauges.end());

  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(gauges[i].first)
       << "\": " << fmt_double(gauges[i].second);
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i ? "," : "") << "\n    \"" << json_escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << fmt_double(h.sum)
       << ", \"min\": " << fmt_double(h.count > 0 ? h.min : 0.0)
       << ", \"max\": " << fmt_double(h.count > 0 ? h.max : 0.0)
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "[" << fmt_double(h.buckets[b].first) << ", "
         << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "},\n";

  os << "  \"derived\": {";
  for (std::size_t i = 0; i < derived.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << json_escape(derived[i].first)
       << "\": " << fmt_double(derived[i].second);
  }
  os << (derived.empty() ? "" : "\n  ") << "}\n";
  os << "}\n";
  return os.str();
}

void write_run_manifest(const std::string& path, const RunInfo& info) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp);
    if (!f) {
      throw std::runtime_error("obs: cannot open manifest output " + tmp);
    }
    f << run_manifest_json(info);
    f.flush();
    if (!f.good()) {
      std::remove(tmp.c_str());
      throw std::runtime_error("obs: failed writing manifest " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("obs: cannot rename manifest into place: " +
                             path + ": " + ec.message());
  }
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("obs: cannot open trace output " + path);
  }
  TraceSink::instance().write_chrome_trace(f);
  if (!f.good()) {
    throw std::runtime_error("obs: failed writing trace " + path);
  }
}

}  // namespace sndr::obs
