// Run manifests: one schema-versioned JSON document per invocation.
//
// A manifest is the durable record of a run — what was run (tool,
// command, args, git state, host), how (threads, seed), and what the
// observability layer saw (per-stage span rollup, every registry
// counter/gauge/histogram, derived rates). The CLI writes one per
// invocation behind --metrics-out; bench binaries write one per run so
// perf trajectory is a byproduct of observability
// (scripts/bench_check.sh reads kernel numbers out of the bench
// manifest instead of a hand-rolled format).
//
// Schema "sndr.run_manifest/2" — one key per line, keys in fixed order,
// metric names sorted — so the document is diffable, greppable, and
// golden-testable (tests/manifest_golden_test.cpp normalizes the
// volatile fields: git, host, started_utc, wall_seconds, span times and
// *.seconds gauges). /2 added the "stages" array: the flow runner
// (src/flow) records one entry per pipeline stage (name, wall seconds,
// ok/skipped/error), so every run's manifest doubles as a stage-by-stage
// execution record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sndr::obs {

inline constexpr const char* kManifestSchema = "sndr.run_manifest/2";

/// One pipeline stage as executed (flow::Flow fills these).
struct StageInfo {
  std::string name;       ///< e.g. "load", "cts", "optimize".
  double seconds = -1.0;  ///< stage wall time; < 0 = unknown.
  std::string status = "ok";  ///< "ok", "skipped", or an error summary.
};

struct RunInfo {
  std::string tool;     ///< e.g. "sndr_cli", "bench_micro_kernels".
  std::string command;  ///< e.g. "run", "micro_kernels".
  std::vector<std::string> args;
  int threads = 0;            ///< resolved lane count.
  std::uint64_t seed = 0;
  double wall_seconds = -1.0;  ///< whole-run wall time; < 0 = unknown.
  std::vector<StageInfo> stages;  ///< empty for non-staged tools.
};

/// The manifest document for the current process state (full registry
/// snapshot + span rollup + derived rates).
std::string run_manifest_json(const RunInfo& info);

/// The `git describe --always --dirty` of the working tree at first call
/// ("unknown" outside a checkout), cached for the process lifetime. This
/// is the value every manifest's "git" key carries; `sndr version` prints
/// the same string.
std::string git_describe();

/// Writes run_manifest_json to `path` atomically (<path>.tmp + rename, the
/// same discipline as checkpoints — a reader never sees a torn manifest
/// and a cancelled run leaves either the complete document or nothing).
/// Throws std::runtime_error on I/O failure.
void write_run_manifest(const std::string& path, const RunInfo& info);

/// Writes the Chrome-trace JSON of every recorded span to `path`.
void write_chrome_trace_file(const std::string& path);

}  // namespace sndr::obs
