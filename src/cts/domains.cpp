#include "cts/domains.hpp"

#include <stdexcept>
#include <string>
#include <unordered_map>

namespace sndr::cts {

netlist::ClockDomainMap derive_domains(
    const netlist::ClockTree& tree,
    const std::vector<netlist::DomainAnnotation>& annotations) {
  using netlist::ClockDomain;
  using netlist::DomainAnnotation;
  using netlist::DomainElement;

  if (tree.empty()) {
    throw std::invalid_argument("derive_domains: empty tree");
  }

  std::unordered_map<int, const DomainAnnotation*> anchor_at;
  anchor_at.reserve(annotations.size());
  for (const DomainAnnotation& a : annotations) {
    if (a.node < 0 || a.node >= tree.size()) {
      throw std::invalid_argument("derive_domains: annotation node " +
                                  std::to_string(a.node) + " out of range");
    }
    if (a.node == tree.root() || !tree.node(a.node).is_driver()) {
      throw std::invalid_argument(
          "derive_domains: annotation node " + std::to_string(a.node) +
          " must be a non-root buffer");
    }
    if (a.element == DomainElement::kRoot) {
      throw std::invalid_argument(
          "derive_domains: kRoot is reserved for domain 0");
    }
    if (a.divide < 1) {
      throw std::invalid_argument("derive_domains: divide must be >= 1");
    }
    if (!(a.duty > 0.0) || a.duty > 1.0) {
      throw std::invalid_argument("derive_domains: duty must be in (0, 1]");
    }
    if (!anchor_at.emplace(a.node, &a).second) {
      throw std::invalid_argument("derive_domains: duplicate anchor at node " +
                                  std::to_string(a.node));
    }
  }

  netlist::ClockDomainMap map;
  ClockDomain root;
  root.anchor = tree.root();
  map.add_domain(root);

  std::vector<int> dom_of_node(static_cast<std::size_t>(tree.size()), 0);
  for (const int v : tree.topological_order()) {
    const netlist::TreeNode& n = tree.node(v);
    int dom = n.parent < 0 ? 0 : dom_of_node[n.parent];
    const auto it = anchor_at.find(v);
    if (it != anchor_at.end()) {
      const DomainAnnotation& a = *it->second;
      const ClockDomain& up = map.domain(dom);
      ClockDomain d;
      d.element = a.element;
      d.anchor = v;
      d.parent = dom;
      d.divisor = up.divisor * a.divide;
      d.activity = up.activity * a.duty;
      d.inverted = up.inverted != (a.element == DomainElement::kInverter);
      d.name = a.name;
      if (d.name.empty()) {
        d.name = "d" + std::to_string(map.size()) + "_" +
                 netlist::to_string(a.element);
      }
      dom = map.add_domain(std::move(d));
    }
    dom_of_node[v] = dom;
  }

  std::vector<int> sinks(static_cast<std::size_t>(map.size()), 0);
  for (int v = 0; v < tree.size(); ++v) {
    if (tree.node(v).kind == netlist::NodeKind::kSink) {
      ++sinks[dom_of_node[v]];
    }
  }
  map.set_domain_of_node(std::move(dom_of_node));
  for (int d = 0; d < map.size(); ++d) map.set_domain_sinks(d, sinks[d]);

  map.validate(tree.size());
  return map;
}

}  // namespace sndr::cts
