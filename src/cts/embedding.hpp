// Delay-balanced buffered embedding (the "geometry + buffering" half of CTS).
//
// A DME-style bottom-up pass walks the abstract topology and, at each merge,
// places the tapping point on the rectilinear path between the two child
// roots so that the Elmore delays to both subtrees' sinks are equal; if one
// side is slower than the other can compensate, the fast side's wire is
// elongated (snaked). When the capacitance accumulated at a merge point
// exceeds the buffering budget, a buffer sized for the load is inserted at
// that point and the subtree above it sees only the buffer's input cap —
// because merges balance *delay* (wire + buffer stages included), the
// resulting buffered tree is near-zero-skew by construction.
//
// The planning RC values are taken from one routing rule (conventionally the
// blanket NDR, matching industrial practice of building the clock tree under
// the assumption that every clock net gets the NDR); the smart-NDR optimizer
// later re-assigns rules net by net.
#pragma once

#include <memory>

#include "cts/topology.hpp"
#include "netlist/clock_tree.hpp"
#include "netlist/design.hpp"
#include "tech/technology.hpp"
#include "tech/units.hpp"

namespace sndr::cts {

/// Which connectivity generator the synthesis uses (see topology.hpp).
enum class TopologyMode { kMmm, kHybridHtree };

struct CtsOptions {
  TopologyMode topology = TopologyMode::kMmm;
  /// Levels of geometric H-tree recursion before MMM takes over
  /// (kHybridHtree only).
  int htree_levels = 6;
  /// Rule index (into Technology::rules) assumed during construction; -1
  /// means the technology's blanket rule.
  int planning_rule = -1;
  /// Neighbor occupancy assumed for planning capacitance. Deliberately
  /// pessimistic: under-planning coupling in congestion hotspots leads to
  /// undersized buffers and post-extraction slew misses.
  double planning_occupancy = 0.5;
  /// A buffer is inserted once the accumulated subtree cap reaches this.
  double max_unbuffered_cap = 100 * units::fF;
  /// Long merge spans are broken with repeater chains so no net's wire run
  /// exceeds roughly this length (wire resistance, not capacitance, is what
  /// kills slew on trunk routes).
  double max_unbuffered_len = 300.0;  ///< um.
  /// Target transition used to size buffers.
  double target_slew = 80 * units::ps;
  /// Guard band on target_slew during cell selection, absorbing the gap
  /// between planned and extracted capacitance (hotspot coupling).
  double sizing_derate = 0.80;
  /// Nominal input slew assumed for buffer delay during construction.
  double nominal_slew = 60 * units::ps;
  /// Cap threshold above which the root of the whole tree gets a buffer
  /// regardless (drives the net from the clock source).
  bool buffer_root = true;
};

/// Result of synthesis: a valid buffered, routed ClockTree plus stats.
struct CtsResult {
  netlist::ClockTree tree;
  int buffers = 0;
  int merges = 0;
  double wirelength = 0.0;      ///< um, total.
  double elongation = 0.0;      ///< um, wirelength added by snaking.
  /// s, worst per-merge delay mismatch left unabsorbed because snaking was
  /// clamped at the unbuffered-length budget (adds to skew).
  double residual_imbalance = 0.0;
  double planned_latency = 0.0; ///< s, balanced delay estimate at the root.
};

/// Full clock tree synthesis: topology + balanced buffered embedding.
CtsResult synthesize(const netlist::Design& design,
                     const tech::Technology& tech,
                     const CtsOptions& options = {});

}  // namespace sndr::cts
