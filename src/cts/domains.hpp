// Deriving the per-tree ClockDomainMap from element annotations.
//
// Domain elements (mux / ICG / divider / inverter) are marks on buffer
// nodes of a built ClockTree; everything below an anchor — until the next
// anchor — belongs to that element's domain. derive_domains() walks the
// tree once in topological order, accumulating divisor / activity /
// polarity down every root path, and produces the ClockDomainMap the rest
// of the stack (power weighting, EM scaling, search energy, inter-clock
// signoff) consumes. The derivation is pure: same tree + same annotations
// -> bitwise-identical map, on any machine and at any thread count.
#pragma once

#include <vector>

#include "netlist/clock_domains.hpp"
#include "netlist/clock_tree.hpp"

namespace sndr::cts {

/// Builds the domain map of `tree` under `annotations`.
///
/// Rules:
///  * every annotation must mark a distinct non-root driver (buffer) node;
///  * cumulative divisor multiplies the annotation's `divide` down the
///    root path; cumulative activity multiplies `duty`; an inverter flips
///    cumulative polarity (all elements carry their defaults for the
///    parameters that don't apply to them, so a mux is rate-neutral);
///  * with no annotations the result is the single-domain (disabled) map:
///    every weighting hook answers exactly 1.0.
///
/// Sink counts per domain are filled in. The returned map passes
/// ClockDomainMap::validate(tree.size()). Throws std::invalid_argument on
/// malformed annotations (bad node, duplicate anchor, divide < 1, duty
/// outside (0, 1]).
netlist::ClockDomainMap derive_domains(
    const netlist::ClockTree& tree,
    const std::vector<netlist::DomainAnnotation>& annotations);

}  // namespace sndr::cts
