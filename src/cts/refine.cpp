#include "cts/refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "extract/extractor.hpp"
#include "netlist/clock_nets.hpp"

namespace sndr::cts {

namespace {

/// Mean sink latency under every tree node (NaN-free: nodes without sinks
/// get 0 and a count of 0).
struct SubtreeLatency {
  std::vector<double> sum;
  std::vector<int> count;
};

SubtreeLatency subtree_latency(const netlist::ClockTree& tree,
                               const timing::TimingReport& rep) {
  SubtreeLatency s;
  s.sum.assign(tree.size(), 0.0);
  s.count.assign(tree.size(), 0);
  const std::vector<int> order = tree.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int id = *it;
    const netlist::TreeNode& n = tree.node(id);
    if (n.kind == netlist::NodeKind::kSink) {
      s.sum[id] = rep.sink_arrival[n.sink];
      s.count[id] = 1;
    }
    if (n.parent >= 0) {
      s.sum[n.parent] += s.sum[id];
      s.count[n.parent] += s.count[id];
    }
  }
  return s;
}

}  // namespace

RefineResult refine_skew(netlist::ClockTree& tree,
                         const netlist::Design& design,
                         const tech::Technology& tech,
                         const RefineOptions& options) {
  RefineResult result;
  const int rule_idx = options.planning_rule >= 0
                           ? options.planning_rule
                           : tech.rules.blanket_index();
  const extract::Extractor extractor(tech, design);
  const double skew_goal =
      options.target_fraction * design.constraints.max_skew;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const netlist::NetList nets = netlist::build_nets(tree);
    const auto parasitics = extractor.extract_all(
        tree, nets,
        std::vector<int>(static_cast<std::size_t>(nets.size()), rule_idx));
    const timing::TimingReport rep = timing::analyze(
        tree, design, tech, nets, parasitics, options.analysis);
    if (iter == 0) result.initial_skew = rep.skew();
    result.final_skew = rep.skew();
    result.iterations = iter;
    if (rep.skew() <= skew_goal) break;

    const SubtreeLatency sub = subtree_latency(tree, rep);
    const double target = sub.count[tree.root()] > 0
                              ? sub.sum[tree.root()] / sub.count[tree.root()]
                              : 0.0;

    // Top-down: each buffer corrects the residual error of its subtree that
    // ancestors have not already corrected.
    std::vector<double> corrected(tree.size(), 0.0);
    int resizes_this_iter = 0;
    for (const int id : tree.topological_order()) {
      netlist::TreeNode n = tree.node(id);
      if (n.parent >= 0) corrected[id] = corrected[n.parent];
      if (n.kind != netlist::NodeKind::kBuffer || sub.count[id] == 0) {
        continue;
      }
      const double err =
          sub.sum[id] / sub.count[id] - target + corrected[id];
      // err > 0: subtree too slow -> need a faster (bigger) cell.
      const double load = rep.net_driver_load[nets.net_driven[id]];
      if (load <= 0.0) continue;
      const tech::BufferCell& cur = tech.buffers[n.cell];
      int best = n.cell;
      double best_gap = std::abs(err);  // delta achieved by not resizing: 0.
      for (int cc = 0; cc < tech.buffers.size(); ++cc) {
        if (cc == n.cell) continue;
        const tech::BufferCell& cand = tech.buffers[cc];
        if (load > cand.max_cap ||
            cand.output_slew(load) > options.max_output_slew) {
          continue;
        }
        // Latency change if swapped: intrinsic + R*C through the wire m1.
        const double delta = (cand.intrinsic_delay - cur.intrinsic_delay) +
                             (cand.drive_res - cur.drive_res) * load;
        const double gap = std::abs(err - (-delta));
        // We want delta ~ -err (slow down fast subtrees: err<0 => delta>0).
        if (gap + 1e-15 < best_gap) {
          best_gap = gap;
          best = cc;
        }
      }
      if (best != n.cell) {
        const double delta =
            (tech.buffers[best].intrinsic_delay - cur.intrinsic_delay) +
            (tech.buffers[best].drive_res - cur.drive_res) * load;
        tree.set_cell(id, best);
        corrected[id] += delta;
        ++resizes_this_iter;
        ++result.resizes;
      }
    }
    if (resizes_this_iter == 0) break;
  }

  // Final measurement if we resized on the last pass.
  const netlist::NetList nets = netlist::build_nets(tree);
  const auto parasitics = extractor.extract_all(
      tree, nets,
      std::vector<int>(static_cast<std::size_t>(nets.size()), rule_idx));
  result.final_skew =
      timing::analyze(tree, design, tech, nets, parasitics, options.analysis)
          .skew();
  return result;
}

}  // namespace sndr::cts
